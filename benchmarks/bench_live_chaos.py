"""E15 -- Rolling-restart + partition chaos, measured on both substrates.

Regenerates the E15 table through the harness: every design point runs
the same seeded chaos program -- rolling AD restarts (state retained,
the regime graceful restart exists for) followed by partition windows --
twice, once on the deterministic simulator and once over real asyncio/
UDP sockets under supervision, replaying the zipf workload through the
stale compiled FIB at every disruption.  Emits
``benchmarks/out/live_chaos.txt``.

The table mixes regimes on purpose: simulator rows are seeded
measurements and byte-deterministic (the determinism gate diffs them),
while live-substrate rows ride wall-clock scheduling and legitimately
jitter in their settle/message columns (the gate drops them before
comparing).  The fidelity footer is the anchor between the two: the
post-chaos routes digest of the sim and live twins must agree for the
link-state family.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pytest

from _common import OUT_DIR, emit
from repro.harness import run_experiment


@pytest.fixture(scope="module")
def run():
    return run_experiment("live_chaos", jobs=2, runs_dir=f"{OUT_DIR}/runs")


def test_live_chaos(benchmark, run):
    spec, records, text = run
    emit("live_chaos", text)

    assert len(records) == len(spec.protocols) * 2  # sim + live twins
    digests = {}
    for rec in records:
        chaos = rec.chaos
        assert chaos is not None
        # The program actually ran: every restart and partition produced
        # a measured chaos event group, and every group settled.
        assert chaos["restarts"] == spec.faults[0].restarts
        assert chaos["partitions"] == spec.faults[0].partitions
        assert len(chaos["groups"]) >= (
            2 * chaos["restarts"] + 2 * chaos["partitions"]
        )
        assert all(g["quiesced"] for g in chaos["groups"])
        assert 0.0 <= chaos["availability"] <= 1.0
        if rec.substrate == "live":
            # The closing maintenance sweep restarted every serve task
            # and the supervisor never exhausted a node's budget.
            assert chaos["serve_restarts"] == rec.scenario["num_ads"]
            assert chaos["supervisor"]["gave_up"] == []
        digests.setdefault(rec.cell["label"], {})[rec.substrate] = chaos[
            "routes_digest"
        ]

    # Fidelity anchor: deterministic tie-breaks make the link-state
    # family's post-chaos routes identical across substrates.  (The DV
    # family's tie-breaks can legitimately depend on arrival order.)
    for label, subs in digests.items():
        if label.startswith("ls-"):
            assert subs["sim"] == subs["live"], label

    # The headline claim: graceful restart measurably lowers the
    # zipf-weighted data-plane outage tail on the link-state family.
    by_label = {r.cell["label"]: r for r in records if r.substrate == "sim"}
    helped = 0
    for name in ("ls-hbh", "ls-hbh-topo"):
        plain = by_label.get(name)
        graced = by_label.get(f"{name}+gr")
        if plain is None or graced is None:
            continue
        assert (
            graced.dataplane["series"]["outage_p99"]
            <= plain.dataplane["series"]["outage_p99"]
        ), name
        if (
            graced.dataplane["series"]["outage_p99"]
            < plain.dataplane["series"]["outage_p99"]
        ):
            helped += 1
    assert helped >= 1

    benchmark.pedantic(
        run_experiment,
        args=("live_chaos",),
        kwargs=dict(smoke=True, jobs=2),
        iterations=1,
        rounds=1,
    )
