"""Verify benchmark outputs are deterministic.

Every file under ``benchmarks/out/`` is a simulated, seeded measurement
and must be byte-identical run to run -- with two exceptions: the
``synth ms/route`` column of ``scaling.txt`` is wall-clock
(``time.perf_counter``) and legitimately varies, and the rows of
``live_chaos.txt`` and ``version_skew.txt`` measured on the live
(asyncio/UDP) substrate ride real scheduling, so every line carrying a
standalone ``live`` token is dropped before comparison (the simulator rows -- availability, outage
tails, digests -- remain byte-checked).  This script compares the
working-tree outputs against a git reference (default ``HEAD``) under
those masks and exits non-zero on any other difference.

Usage (after regenerating the outputs)::

    PYTHONPATH=src python -m pytest benchmarks/ -q
    python benchmarks/check_determinism.py [--baseline-ref HEAD]
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: file name -> header of the wall-clock column to mask.
WALL_CLOCK_COLUMNS = {"scaling.txt": "synth ms/route"}

#: Files mixing deterministic simulator rows with live-substrate rows.
#: Lines carrying a standalone ``live`` token (the substrate column, the
#: sim-vs-live fidelity footer) are wall-clock measurements and are
#: dropped before comparison; everything else stays byte-checked.
LIVE_ROW_FILES = {"live_chaos.txt", "version_skew.txt"}
_LIVE_TOKEN = re.compile(r"\blive\b")

#: Outputs every full bench run must produce; a missing one means the
#: suite was run partially (or an experiment silently stopped emitting)
#: and the determinism verdict would be vacuous for it.
REQUIRED_OUTPUTS = {
    "ablation_a1_fast_path.txt",
    "ablation_a2_flooding.txt",
    "ablation_a3_pg_cache.txt",
    "ablation_a4_idrp_multiroute.txt",
    "ablation_a5_hierarchical.txt",
    "ablation_a6_trigger_delay.txt",
    "abstraction.txt",
    "availability.txt",
    "convergence.txt",
    "dataplane_tail.txt",
    "fig1_topology.txt",
    "granularity.txt",
    "live_chaos.txt",
    "partial_order.txt",
    "robustness.txt",
    "robustness_churn.txt",
    "robustness_misbehavior.txt",
    "scaling.txt",
    "setup_overhead.txt",
    "synthesis_strategies.txt",
    "table1_design_space.txt",
    "version_skew.txt",
}


def drop_live_rows(name: str, text: str) -> str:
    """Drop live-substrate lines from files that mix both regimes."""
    if name not in LIVE_ROW_FILES:
        return text
    return "\n".join(
        line for line in text.splitlines() if not _LIVE_TOKEN.search(line)
    )


def mask_wall_clock(name: str, text: str) -> str:
    """Truncate lines at the wall-clock column, if the file has one."""
    column = WALL_CLOCK_COLUMNS.get(name)
    if column is None:
        return text
    lines = text.splitlines()
    offset = None
    for line in lines:
        if column in line:
            offset = line.index(column)
            break
    if offset is None:
        return text
    return "\n".join(line[:offset].rstrip() for line in lines)


def baseline_text(ref: str, name: str) -> str | None:
    proc = subprocess.run(
        ["git", "show", f"{ref}:benchmarks/out/{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    return proc.stdout if proc.returncode == 0 else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref holding the reference outputs (default: HEAD)",
    )
    args = parser.parse_args(argv)

    resolves = subprocess.run(
        ["git", "rev-parse", "--verify", "--quiet", f"{args.baseline_ref}^{{commit}}"],
        cwd=REPO_ROOT,
        capture_output=True,
    )
    if resolves.returncode != 0:
        print(f"baseline ref {args.baseline_ref!r} does not resolve to a commit")
        return 2

    names = sorted(f for f in os.listdir(OUT_DIR) if f.endswith(".txt"))
    if not names:
        print("no benchmark outputs found; run the bench suite first")
        return 2
    missing = sorted(REQUIRED_OUTPUTS - set(names))
    if missing:
        print(f"missing expected benchmark outputs: {', '.join(missing)}")
        print("run the full bench suite before checking determinism")
        return 2

    failures = []
    for name in names:
        with open(os.path.join(OUT_DIR, name)) as fh:
            current = fh.read()
        reference = baseline_text(args.baseline_ref, name)
        if reference is None:
            print(f"  NEW  {name} (not in {args.baseline_ref}; skipped)")
            continue
        current = mask_wall_clock(name, drop_live_rows(name, current))
        reference = mask_wall_clock(name, drop_live_rows(name, reference))
        if current == reference:
            print(f"  ok   {name}")
        else:
            print(f"  DIFF {name}")
            failures.append(name)

    if failures:
        print(
            f"\n{len(failures)} file(s) drifted from {args.baseline_ref} "
            f"outside wall-clock columns: {', '.join(failures)}"
        )
        print("Benchmark outputs must be deterministic; investigate before "
              "committing.")
        return 1
    print(f"\nall {len(names)} benchmark outputs deterministic "
          f"(vs {args.baseline_ref})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
