"""E2 -- Figure 1, regenerated.

The paper's Figure 1 shows an example internet: a backbone/regional/
campus hierarchy augmented with lateral and bypass links.  This bench
regenerates that family of topologies across the exception-link density
knobs and reports the composition the figure illustrates: AD counts per
level, AD kinds (stub / multi-homed / transit / hybrid), and link kinds
(hierarchical / lateral / bypass).
"""


from _common import emit
from repro.adgraph.ad import ADKind, Level, LinkKind
from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.analysis.tables import Table

BASE = dict(num_backbones=2, regionals_per_backbone=3, campuses_per_parent=4)


def _compose(lateral, bypass, multihome, seed=0):
    cfg = TopologyConfig(
        lateral_prob=lateral,
        bypass_prob=bypass,
        multihome_prob=multihome,
        seed=seed,
        **BASE,
    )
    return generate_internet(cfg)


def test_fig1_topology_composition(benchmark):
    table = Table(
        "lateral/bypass/multihome",
        "ADs",
        "bb/reg/cam",
        "stub",
        "multi",
        "transit",
        "hybrid",
        "hier links",
        "lateral",
        "bypass",
        "connected",
        title="Figure 1 (regenerated): internet composition vs exception-link density",
    )
    sweeps = [
        (0.0, 0.0, 0.0),
        (0.2, 0.05, 0.1),
        (0.3, 0.1, 0.15),  # the Figure-1-like default
        (0.5, 0.2, 0.3),
        (0.8, 0.4, 0.5),
    ]
    for lateral, bypass, multihome in sweeps:
        g = benchmark.pedantic(
            _compose, args=(lateral, bypass, multihome), iterations=1, rounds=1
        ) if (lateral, bypass, multihome) == sweeps[2] else _compose(
            lateral, bypass, multihome
        )
        levels = g.level_counts()
        kinds = g.kind_counts()
        links = g.link_kind_counts()
        table.add(
            f"{lateral:.1f}/{bypass:.2f}/{multihome:.2f}",
            g.num_ads,
            f"{levels[Level.BACKBONE]}/{levels[Level.REGIONAL]}/{levels[Level.CAMPUS]}",
            kinds[ADKind.STUB],
            kinds[ADKind.MULTIHOMED],
            kinds[ADKind.TRANSIT],
            kinds[ADKind.HYBRID],
            links[LinkKind.HIERARCHICAL],
            links[LinkKind.LATERAL],
            links[LinkKind.BYPASS],
            "yes" if g.is_connected() else "NO",
        )
        assert g.is_connected()
    emit("fig1_topology", table.render())


def test_fig1_exception_links_persist(benchmark):
    """The paper's point: lateral/bypass links persist at all densities >0
    and the pure hierarchy is a tree."""
    pure = _compose(0.0, 0.0, 0.0)
    # Pure hierarchy: one hierarchical link per non-backbone AD, plus the
    # full backbone mesh.
    nb = BASE["num_backbones"]
    assert pure.num_links == (pure.num_ads - nb) + nb * (nb - 1) // 2
    augmented = benchmark(_compose, 0.3, 0.1, 0.15)
    kinds = augmented.link_kind_counts()
    assert kinds[LinkKind.LATERAL] >= 1
    assert augmented.num_links > augmented.num_ads - 1
