"""Simulator-core throughput benchmark: events/sec with the perf
features on vs. off.

The speed program's referee.  One harness cell per (scale, protocol,
perf-config): a scaled E7 topology, initial convergence, then a probed
link-churn timeline -- the regime where the delta paths matter, because
every LSDB version bump makes each probed node re-derive its believed
internet and its routes.  Both configs run through
:func:`repro.harness.session.execute_cell`, the exact worker entry point
the experiment sweeps use, so the numbers describe the real harness and
the two runs must produce **identical** records (events, messages,
computations, robustness) -- the fast paths may only change wall-clock.

Throughput is reported two ways:

* ``events_per_sec`` -- simulation events over the *active* phases
  (``converge`` + ``failures`` + ``faults`` wall-clock).  The active
  phases include the interleaved data-plane probes, which is where the
  legacy from-scratch recomputes burn their time; this is the headline
  number the acceptance threshold and the CI gate watch.
* ``engine_events_per_sec`` -- the same events over ``engine.run`` only
  (pure message-pump throughput, excluding probe-time route derivation).

Results are printed and written machine-readably to
``BENCH_sim_core.json`` at the repo root.  Runs standalone
(``python benchmarks/bench_sim_throughput.py [--smoke] [--gate <json>]``)
or under pytest with the rest of the bench suite (smoke-sized there).
The ``--gate`` mode implements the soft CI perf gate: re-measure the
200-AD smoke point and exit non-zero on a >30% events/sec regression
against the committed baseline (the CI step runs it with
``continue-on-error``: machine variance makes this advisory, not a
merge blocker).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.harness.session import execute_cell
from repro.harness.spec import Cell, FailureSpec, FaultSpec, ProtocolSpec, ScenarioSpec

SEED = 47
SCALES = [50, 200, 400]

#: LS-family design points: the protocols whose local-view and SPF
#: recomputes the perf features rework.  (DV-family protocols compute
#: inside their message handlers and are untouched by this program.)
PROTOCOLS = ["plain-ls", "ls-hbh", "ls-src-topo"]

#: Acceptance bar (ISSUE 6): the fast config must be at least this much
#: faster, in active-phase events/sec, on an LS-family design point at
#: the 400-AD scale point.
SPEEDUP_THRESHOLD = 2.0
ACCEPTANCE_SCALE = 400

#: Soft CI gate: flag a >30% events/sec drop at the gate point.
GATE_DROP = 0.30
GATE_SCALE = 200
GATE_PROTOCOL = "plain-ls"

JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_sim_core.json",
)

#: The probed churn workload (identical for every cell): six link flaps
#: after initial convergence, RoutePulse sampling every scenario flow on
#: a fine-grained timeline.  Probing is deliberately heavy -- every
#: sample re-derives believed views and routes at the current LSDB
#: version, which is exactly the recompute path the perf features
#: rework (and what availability sweeps like E3/E11 pay at scale).
WORKLOAD = dict(flaps=6, spacing=300.0, probe_interval=25.0, probe_flows=24)
NUM_FLOWS = 24

#: Active phases: wall-clock that scales with the simulated workload
#: (setup phases like "scenario"/"build" are excluded -- they are paid
#: once regardless of how fast the simulator core runs).
ACTIVE_PHASES = ("converge", "failures", "faults")


def _cell(target_ads: int, protocol: str, perf: str) -> Cell:
    return Cell(
        experiment="bench_sim_throughput",
        index=0,
        scenario=ScenarioSpec(
            kind="scaled", target_ads=target_ads, seed=SEED, num_flows=NUM_FLOWS
        ),
        protocol=ProtocolSpec(
            name=protocol, label=f"{protocol}/{perf}", options=(("perf", perf),)
        ),
        failure=FailureSpec(),
        fault=FaultSpec(
            flaps=WORKLOAD["flaps"],
            spacing=WORKLOAD["spacing"],
            probe_interval=WORKLOAD["probe_interval"],
            probe_flows=WORKLOAD["probe_flows"],
            seed=SEED,
        ),
    )


def _measure(target_ads: int, protocol: str, perf: str):
    record = execute_cell(_cell(target_ads, protocol, perf))
    events = sum(ep.events for ep in record.episodes)
    messages = sum(record.messages.values())
    timings = record.timings
    active = sum(timings.get(p, 0.0) for p in ACTIVE_PHASES)
    engine = timings.get("engine.run", 0.0)
    return record, {
        "events": events,
        "messages": messages,
        "active_s": round(active, 4),
        "engine_run_s": round(engine, 4),
        "proto_spf_s": round(timings.get("proto.spf", 0.0), 4),
        "proto_flood_s": round(timings.get("proto.flood", 0.0), 4),
        "events_per_sec": round(events / active, 1) if active else 0.0,
        "engine_events_per_sec": round(events / engine, 1) if engine else 0.0,
        "messages_per_sec": round(messages / active, 1) if active else 0.0,
    }


def _same_simulation(legacy_record, fast_record) -> bool:
    """The perf features may change only wall-clock, nothing observable."""
    return (
        legacy_record.episodes == fast_record.episodes
        and legacy_record.messages == fast_record.messages
        and legacy_record.message_bytes == fast_record.message_bytes
        and legacy_record.computations == fast_record.computations
        and legacy_record.state == fast_record.state
        and legacy_record.robustness == fast_record.robustness
    )


def bench_scale_point(target_ads: int, protocols):
    rows = []
    scenario_info = None
    for protocol in protocols:
        legacy_record, legacy = _measure(target_ads, protocol, "none")
        fast_record, fast = _measure(target_ads, protocol, "all")
        if not _same_simulation(legacy_record, fast_record):
            raise AssertionError(
                f"perf features changed simulation results for {protocol} "
                f"at {target_ads} ADs"
            )
        if scenario_info is None:
            scenario_info = {
                "ads": legacy_record.scenario["num_ads"],
                "links": legacy_record.scenario["num_links"],
                "terms": legacy_record.scenario["num_terms"],
            }
        rows.append(
            {
                "protocol": protocol,
                "events": legacy["events"],
                "messages": legacy["messages"],
                "legacy": legacy,
                "fast": fast,
                "speedup": round(
                    fast["events_per_sec"] / legacy["events_per_sec"], 2
                )
                if legacy["events_per_sec"]
                else 0.0,
                "identical": True,
            }
        )
    point = {"target_ads": target_ads}
    point.update(scenario_info or {})
    point["protocols"] = rows
    return point


def run_bench(scales=SCALES, protocols=PROTOCOLS, json_path=JSON_PATH):
    points = [bench_scale_point(s, protocols) for s in scales]
    result = {
        "bench": "sim_core",
        "description": (
            "harness-cell throughput (probed link-churn workload on E7 "
            "scaled topologies): perf=all vs perf=none; events_per_sec "
            "is events over the active converge+failures+faults phases"
        ),
        "seed": SEED,
        "workload": dict(WORKLOAD, num_flows=NUM_FLOWS),
        "scale_points": points,
        "acceptance": {
            "scale": ACCEPTANCE_SCALE,
            "metric": "events_per_sec speedup (fast vs legacy)",
            "threshold": SPEEDUP_THRESHOLD,
        },
        "gate": {
            "scale": GATE_SCALE,
            "protocol": GATE_PROTOCOL,
            "metric": "fast events_per_sec",
            "max_drop": GATE_DROP,
        },
    }
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")

    header = (
        f"{'ADs':>5}  {'protocol':<12}  {'events':>7}  "
        f"{'legacy ev/s':>11}  {'fast ev/s':>10}  {'speedup':>7}  "
        f"{'legacy spf s':>12}  {'fast spf s':>10}"
    )
    lines = ["simulator core: perf=all vs perf=none (probed churn cells)",
             header, "-" * len(header)]
    for point in points:
        for row in point["protocols"]:
            lines.append(
                f"{point['ads']:>5}  {row['protocol']:<12}  "
                f"{row['events']:>7}  "
                f"{row['legacy']['events_per_sec']:>11.0f}  "
                f"{row['fast']['events_per_sec']:>10.0f}  "
                f"{row['speedup']:>7.2f}  "
                f"{row['legacy']['proto_spf_s']:>12.3f}  "
                f"{row['fast']['proto_spf_s']:>10.3f}"
            )
    print("\n".join(lines))
    if json_path:
        print(f"[written to {json_path}]")
    return result


def best_speedup_at(result, scale):
    rows = [
        row
        for point in result["scale_points"]
        if point["target_ads"] == scale
        for row in point["protocols"]
    ]
    return max((row["speedup"] for row in rows), default=0.0)


def check_gate(baseline_path: str) -> int:
    """Soft CI gate: re-measure the gate point, compare to the baseline.

    Returns a process exit code (0 ok / 1 regressed).  Advisory by
    design: the CI step runs with ``continue-on-error`` because shared
    runners are noisy; the committed baseline is refreshed whenever the
    full bench is re-run on the reference machine.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    gate = baseline.get("gate", {})
    scale = gate.get("scale", GATE_SCALE)
    protocol = gate.get("protocol", GATE_PROTOCOL)
    max_drop = gate.get("max_drop", GATE_DROP)
    committed = None
    for point in baseline["scale_points"]:
        if point["target_ads"] == scale:
            for row in point["protocols"]:
                if row["protocol"] == protocol:
                    committed = row["fast"]["events_per_sec"]
    if committed is None:
        print(f"gate: no committed {protocol}@{scale} point; skipping")
        return 0
    _, fast = _measure(scale, protocol, "all")
    current = fast["events_per_sec"]
    floor = committed * (1.0 - max_drop)
    verdict = "OK" if current >= floor else "REGRESSED"
    print(
        f"perf gate [{protocol}@{scale} ADs]: current {current:.0f} ev/s "
        f"vs committed {committed:.0f} ev/s "
        f"(floor {floor:.0f}, -{max_drop:.0%}) -> {verdict}"
    )
    return 0 if current >= floor else 1


def test_sim_throughput_smoke():
    """Smoke-sized run: one scale, two protocols, equivalence enforced.

    The speedup threshold is only asserted by the full standalone run
    (``__main__``): at 50 ADs the legacy recomputes are cheap enough
    that the ratio is noise, but the identical-records check -- the part
    that guards correctness -- is exactly as strong.
    """
    result = run_bench(
        scales=[50], protocols=["plain-ls", "ls-hbh"], json_path=""
    )
    for point in result["scale_points"]:
        for row in point["protocols"]:
            assert row["identical"]
            assert row["events"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run (CI): 50-AD point only, no threshold "
        "enforcement, no JSON artifact",
    )
    parser.add_argument(
        "--gate",
        metavar="BASELINE_JSON",
        default=None,
        help="soft perf-regression gate: re-measure the gate point and "
        "compare to the committed baseline (exit 1 on >30%% drop)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="where to write the JSON artifact ('' to skip; default: "
        "BENCH_sim_core.json at the repo root, or nowhere in --smoke "
        "mode so a smoke run never clobbers the real artifact)",
    )
    args = parser.parse_args()
    if args.gate is not None:
        sys.exit(check_gate(args.gate))
    if args.out is None:
        args.out = "" if args.smoke else JSON_PATH
    if args.smoke:
        run_bench(scales=[50], protocols=["plain-ls", "ls-hbh"], json_path=args.out)
    else:
        out = run_bench(json_path=args.out)
        speedup = best_speedup_at(out, ACCEPTANCE_SCALE)
        if speedup < SPEEDUP_THRESHOLD:
            sys.exit(
                f"FAIL: best events/sec speedup {speedup}x < "
                f"{SPEEDUP_THRESHOLD}x at {ACCEPTANCE_SCALE} ADs"
            )
        print(
            f"OK: {speedup}x best events/sec speedup at {ACCEPTANCE_SCALE} "
            f"ADs (threshold {SPEEDUP_THRESHOLD}x)"
        )
