"""E16 -- Mixed-version rolling upgrade, measured on both substrates.

Regenerates the E16 table through the harness: every design point starts
its whole 63-AD population at wire v1 with HELLO negotiation on, then a
rolling upgrade flips the ADs to the current wire version in seeded
waves -- plus a downgrade/re-upgrade leg for the last wave -- while the
zipf workload replays through the stale compiled FIB at every
disruption.  The sweep runs twice, once on the deterministic simulator
and once over real asyncio/UDP sockets (a serve-task bounce per AD,
modeling the binary upgrade).  Emits ``benchmarks/out/version_skew.txt``.

As with E15, simulator rows are byte-deterministic (the determinism gate
diffs them) while live rows legitimately jitter in their message/settle
columns (the gate drops them).  Two anchors hold the table together: the
``stable`` column (every wave's routes digest matched the pre-upgrade
baseline -- the upgrade was invisible to routing) and the fidelity
footer (post-upgrade sim and live routes agree for the link-state
family).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pytest

from _common import OUT_DIR, emit
from repro.harness import run_experiment


@pytest.fixture(scope="module")
def run():
    return run_experiment("mixed_version", jobs=2, runs_dir=f"{OUT_DIR}/runs")


def test_version_skew(benchmark, run):
    spec, records, text = run
    emit("version_skew", text)

    assert len(records) == len(spec.protocols) * 2  # sim + live twins
    fault = spec.faults[0]
    expected_waves = fault.upgrade_waves + (2 if fault.rollback else 0)
    digests = {}
    for rec in records:
        v = rec.versioning
        assert v is not None
        # The sweep actually ran: v1 start, current-version target,
        # every wave measured, every wave settled.
        assert v["wire_start"] == 1
        assert v["wire_target"] > v["wire_start"]
        assert len(v["waves"]) == expected_waves
        assert sum(w["ads"] for w in v["waves"][: fault.upgrade_waves]) == (
            rec.scenario["num_ads"]
        )
        assert all(w["quiesced"] for w in v["waves"])
        # Nothing was ever version-blocked: a mixed v1/v2 population is
        # a supported regime, not a fault.
        assert v["negotiation"]["blocked_pairs"] == 0
        assert v["version_rejected"] == 0
        # The headline robustness claim: the whole upgrade (and the
        # rollback) was invisible to routing, wave by wave.
        assert v["digest_stable"], rec.cell["label"]
        if rec.substrate == "live":
            # Upgrade bounces are operator-initiated: the supervisor
            # never charged them and never gave up on a node.
            assert v["supervisor"]["restarts"] == 0
            assert v["supervisor"]["gave_up"] == []
        digests.setdefault(rec.cell["label"], {})[rec.substrate] = v[
            "routes_digest"
        ]

    # Fidelity anchor: the link-state family's post-upgrade routes are
    # identical across substrates (DV-family tie-breaks may not be).
    for label, subs in digests.items():
        if label.startswith("ls-"):
            assert subs["sim"] == subs["live"], label

    benchmark.pedantic(
        run_experiment,
        args=("mixed_version",),
        kwargs=dict(smoke=True, jobs=2),
        iterations=1,
        rounds=1,
    )
