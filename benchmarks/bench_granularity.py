"""E5 -- The cost of source-specific policy granularity.

Quantifies Sections 5.2.1 and 5.3: as transit policies discriminate
among sources,

* hop-by-hop forwarding state fans out -- a transit AD needs *multiple
  next hops per destination* (the "multiple spanning trees"), measured
  as FIB fanout;
* every transit AD replicates the per-flow route computation (LS-HbH),
  while ORWG transit ADs never compute routes at all;
* IDRP's single advertised route per destination serves ever fewer
  sources, so availability decays;
* the advertised policy volume (PT bytes) grows linearly with classes.
"""

from collections import defaultdict

import pytest

from _common import emit
from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.analysis.tables import Table
from repro.core.evaluation import evaluate_availability
from repro.policy.flows import FlowSpec
from repro.policy.generators import source_class_policies
from repro.protocols import make_protocol

CLASSES = [1, 2, 4, 8, 16, 32]


@pytest.fixture(scope="module")
def setting():
    graph = generate_internet(
        TopologyConfig(
            num_backbones=2,
            regionals_per_backbone=3,
            campuses_per_parent=5,
            lateral_prob=0.4,
            bypass_prob=0.15,
            seed=23,
        )
    )
    stubs = [a.ad_id for a in graph.ads() if a.level.rank == 0]
    # Many sources, few destinations: the per-source-tree pressure case.
    # Destinations are spread across the hierarchy (not siblings).
    dests = stubs[:: max(1, len(stubs) // 3)][:3]
    sources = [s for s in stubs if s not in dests]
    flows = [FlowSpec(s, d) for d in dests for s in sources]
    return graph, flows, set(sources)


def _fib_fanout(proto, flows):
    """Distinct next hops per (transit AD, destination) under LS-HbH."""
    fanout = defaultdict(set)
    for flow in flows:
        path = proto.find_route(flow)
        if path is None:
            continue
        for i in range(1, len(path) - 1):
            fanout[(path[i], flow.dst)].add(path[i + 1])
    if not fanout:
        return 0.0, 0
    sizes = [len(v) for v in fanout.values()]
    return sum(sizes) / len(sizes), max(sizes)


def _run_granularity(graph, flows, sources, classes):
    scen = source_class_policies(graph, classes, refusal_prob=0.3, seed=4)

    hbh = make_protocol("ls-hbh", graph.copy(), scen.policies.copy())
    hbh.converge()
    mean_fan, max_fan = _fib_fanout(hbh, flows)
    transit_comps = sum(
        n
        for (ad, kind), n in hbh.network.metrics.computations.items()
        if kind == "policy_route" and ad not in sources
    )

    orwg = make_protocol("orwg", graph.copy(), scen.policies.copy())
    orwg.converge()
    orwg_rep = evaluate_availability(
        orwg.graph, orwg.policies, flows, orwg.find_route
    )
    orwg_transit = sum(
        n
        for (ad, kind), n in orwg.network.metrics.computations.items()
        if kind == "synthesis" and ad not in sources
    )

    idrp = make_protocol("idrp", graph.copy(), scen.policies.copy())
    idrp.converge()
    idrp_rep = evaluate_availability(
        idrp.graph, idrp.policies, flows, idrp.find_route
    )

    return dict(
        pts=scen.policies.num_terms,
        pt_bytes=scen.policies.size_bytes(),
        mean_fan=mean_fan,
        max_fan=max_fan,
        transit_comps=transit_comps,
        orwg_transit=orwg_transit,
        idrp_avail=idrp_rep.availability,
        orwg_avail=orwg_rep.availability,
    )


def test_granularity_cost(benchmark, setting):
    graph, flows, sources = setting
    table = Table(
        "classes",
        "PTs",
        "PT KB",
        "FIB fanout mean",
        "FIB fanout max",
        "LS-HbH transit comps",
        "ORWG transit comps",
        "IDRP avail",
        "ORWG avail",
        title=(
            f"E5: source-specific granularity ({len(flows)} flows, "
            f"{len(sources)} sources -> 3 destinations)"
        ),
    )
    results = {}
    for classes in CLASSES:
        r = _run_granularity(graph, flows, sources, classes)
        results[classes] = r
        table.add(
            classes,
            r["pts"],
            f"{r['pt_bytes'] / 1024:.1f}",
            f"{r['mean_fan']:.2f}",
            r["max_fan"],
            r["transit_comps"],
            r["orwg_transit"],
            f"{r['idrp_avail']:.2f}",
            f"{r['orwg_avail']:.2f}",
        )
    emit("granularity", table.render())

    # Shape assertions.
    assert results[CLASSES[-1]]["pts"] > results[1]["pts"] * 8
    assert results[CLASSES[-1]]["max_fan"] >= results[1]["max_fan"]
    assert all(r["orwg_transit"] == 0 for r in results.values())
    assert all(r["orwg_avail"] == 1.0 for r in results.values())
    assert results[CLASSES[-1]]["idrp_avail"] <= results[1]["idrp_avail"]

    benchmark.pedantic(
        _run_granularity, args=(graph, flows, sources, 8), iterations=1, rounds=1
    )
