"""Ablations A1-A4: pricing the reproduction's own design choices.

These are not paper tables; they isolate mechanisms the paper reasons
about (or that this implementation chose), one knob at a time:

* **A1** -- synthesis fast path: constrained-Dijkstra walk relaxation
  with exact fallback, vs always-exact branch-and-bound.
* **A2** -- database distribution (Section 6, issue 3): full flooding vs
  spanning-tree-scoped flooding -- message savings and the robustness
  price after a tree-link failure.
* **A3** -- PG state limits (Section 6, issue 3): bounded handle caches
  vs delivery success under concurrent routes.
* **A4** -- Section 5.2's multiple-routes-per-destination extension:
  availability recovered vs routing-table replication paid, per class
  count.
* **A5** -- Section 6's pruning heuristic: hierarchical corridor
  synthesis over a region partition vs flat full-topology synthesis.
* **A6** -- triggered-update batching delay: update coalescing trades
  message volume against convergence time.
"""

import pytest

from _common import emit
from repro.adgraph.failures import safe_failure_candidates
from repro.adgraph.trees import spanning_tree_links
from repro.analysis.tables import Table
from repro.core.evaluation import evaluate_availability, sample_flows
from repro.core.synthesis import (
    SynthesisStats,
    exhaustive_best_path,
    synthesize_route,
)
from repro.policy.generators import source_class_policies
from repro.policy.legality import path_cost
from repro.protocols import make_protocol
from repro.workloads import reference_scenario


@pytest.fixture(scope="module")
def scenario():
    return reference_scenario(seed=71)


def test_a1_synthesis_fast_path(benchmark, scenario):
    """Walk relaxation + fallback vs always-exact search."""
    flows = scenario.flows[:40]

    def fast():
        stats = SynthesisStats()
        routes = [
            synthesize_route(scenario.graph, scenario.policies, f, stats=stats)
            for f in flows
        ]
        return routes, stats

    def exact():
        stats = SynthesisStats()
        paths = [
            exhaustive_best_path(scenario.graph, scenario.policies, f, stats=stats)
            for f in flows
        ]
        return paths, stats

    fast_routes, fast_stats = fast()
    exact_paths, exact_stats = exact()

    # Same answers (cost-equal optima), wildly different work.
    agreements = 0
    for route, path, flow in zip(fast_routes, exact_paths, flows):
        if route is None:
            assert path is None
        else:
            assert path is not None
            assert path_cost(scenario.graph, route.path, flow.qos.metric) == (
                pytest.approx(path_cost(scenario.graph, path, flow.qos.metric))
            )
            agreements += 1

    table = Table(
        "strategy",
        "states expanded",
        "fallback runs",
        "routes found",
        title=f"A1: synthesis fast path vs always-exact ({len(flows)} flows)",
    )
    table.add("dijkstra + fallback", fast_stats.states_expanded,
              fast_stats.fallback_runs, fast_stats.routes_found)
    table.add("always exact", exact_stats.states_expanded,
              exact_stats.fallback_runs, agreements)
    emit("ablation_a1_fast_path", table.render())

    assert fast_stats.states_expanded < exact_stats.states_expanded / 2
    benchmark.pedantic(fast, iterations=1, rounds=1)


def test_a2_flooding_scope(benchmark, scenario):
    """Full vs spanning-tree flooding: savings and robustness price."""

    def converge(flooding):
        proto = make_protocol(
            "orwg", scenario.graph.copy(), scenario.policies.copy(), flooding=flooding
        )
        result = proto.converge()
        return proto, result

    full_proto, full_res = converge("full")
    tree_proto, tree_res = converge("tree")

    def desync_after_tree_failure(proto):
        tree = spanning_tree_links(proto.graph)
        candidates = [k for k in safe_failure_candidates(proto.graph) if k in tree]
        if not candidates:
            return 0
        a, b = candidates[0]
        proto.network.set_link_status(a, b, up=False)
        proto.network.run()
        reference = proto.network.node(a).lsdb
        stale = sum(
            1
            for ad in proto.graph.ad_ids()
            if proto.network.node(ad).lsdb != reference
        )
        return stale

    full_stale = desync_after_tree_failure(full_proto)
    tree_stale = desync_after_tree_failure(tree_proto)

    table = Table(
        "flooding",
        "msgs to converge",
        "KB",
        "stale LSDBs after tree-link failure",
        title="A2: database distribution -- full vs spanning-tree flooding",
    )
    table.add("full", full_res.messages, f"{full_res.bytes / 1024:.0f}", full_stale)
    table.add("tree", tree_res.messages, f"{tree_res.bytes / 1024:.0f}", tree_stale)
    emit("ablation_a2_flooding", table.render())

    assert tree_res.messages < full_res.messages
    assert full_stale == 0
    assert tree_stale > 0  # the robustness price

    benchmark.pedantic(converge, args=("tree",), iterations=1, rounds=1)


def test_a3_pg_cache_limits(benchmark, scenario):
    """Bounded PG caches: delivery success vs state held."""
    flows = [
        f
        for f in scenario.flows
        if synthesize_route(scenario.graph, scenario.policies, f) is not None
    ][:12]
    assert len(flows) == 12

    def run(limit):
        proto = make_protocol(
            "orwg", scenario.graph.copy(), scenario.policies.copy(), pg_cache_limit=limit
        )
        proto.converge()
        attempts = []
        for flow in flows:
            attempt = proto.open_route(flow)
            attempts.append(attempt)
        proto.network.run()
        established = [a for a in attempts if a.established]
        for a in established:
            proto.send_data(a, packets=2)
        proto.network.run()
        delivered = sum(proto.delivered(a) for a in established)
        evictions = sum(
            proto.network.node(ad).pg.evictions for ad in proto.graph.ad_ids()
        )
        state = max(proto.pg_cache_size(ad) for ad in proto.graph.ad_ids())
        return len(established), delivered, evictions, state

    table = Table(
        "PG cache limit",
        "routes established",
        "pkts delivered (of 2/route)",
        "evictions",
        "max PG state",
        title=f"A3: PG state limits under {len(flows)} concurrent routes",
    )
    results = {}
    for limit in (None, 16, 8, 4, 2):
        est, delivered, evictions, state = run(limit)
        results[limit] = (est, delivered, evictions, state)
        table.add("unbounded" if limit is None else limit, est, delivered,
                  evictions, state)
    emit("ablation_a3_pg_cache", table.render())

    unbounded = results[None]
    tiny = results[2]
    assert unbounded[2] == 0
    assert tiny[1] < unbounded[1]  # deliveries lost to eviction
    assert tiny[3] <= 2

    benchmark.pedantic(run, args=(8,), iterations=1, rounds=1)


def test_a4_idrp_multiroute(benchmark, scenario):
    """Section 5.2's multiple advertised routes: availability vs table
    replication."""
    graph = scenario.graph
    scen = source_class_policies(graph, 6, refusal_prob=0.3, seed=7)
    flows = sample_flows(graph, 40, seed=8)

    def run(classes):
        proto = make_protocol(
            "idrp", graph.copy(), scen.policies.copy(), route_classes=classes
        )
        res = proto.converge()
        rep = evaluate_availability(
            proto.graph, proto.policies, flows, proto.find_route
        )
        return dict(
            avail=rep.availability,
            illegal=rep.n_illegal,
            rib=proto.total_rib_size(),
            msgs=res.messages,
            kb=res.bytes / 1024,
        )

    table = Table(
        "route classes",
        "availability",
        "illegal",
        "total RIB",
        "msgs",
        "KB",
        title="A4: IDRP multiple routes per destination (Section 5.2 extension)",
    )
    results = {}
    for classes in (1, 2, 6):
        r = run(classes)
        results[classes] = r
        table.add(classes, f"{r['avail']:.2f}", r["illegal"], r["rib"],
                  r["msgs"], f"{r['kb']:.0f}")
    emit("ablation_a4_idrp_multiroute", table.render())

    assert results[6]["avail"] >= results[1]["avail"]
    assert results[6]["rib"] > 3 * results[1]["rib"]  # the replication bill
    assert all(r["illegal"] == 0 for r in results.values())

    benchmark.pedantic(run, args=(2,), iterations=1, rounds=1)


def test_a5_hierarchical_synthesis(benchmark):
    """Section 6's pruning heuristic: corridor-restricted synthesis over a
    region partition vs flat full-topology synthesis, at several internet
    sizes."""
    from repro.core.hierarchical import HierarchicalSynthesizer
    from repro.workloads import scaled_scenario

    table = Table(
        "ADs",
        "routable flows",
        "flat states",
        "hier states",
        "saving",
        "corridor hit ratio",
        "fallbacks",
        "availability preserved",
        title=(
            "A5: hierarchical (corridor) synthesis vs flat synthesis "
            "(routable flows -- pruning cannot help prove a route's absence)"
        ),
    )
    results = {}
    for size in (50, 100, 200):
        scen = scaled_scenario(size, seed=81)
        # Pruning targets route *finding*; proving absence is inherently
        # global, so the comparison uses routable flows.
        flows = [
            f
            for f in scen.flows
            if synthesize_route(scen.graph, scen.policies, f) is not None
        ]
        flat_stats = SynthesisStats()
        flat_found = 0
        for flow in flows:
            if synthesize_route(
                scen.graph, scen.policies, flow, stats=flat_stats
            ) is not None:
                flat_found += 1
        hier = HierarchicalSynthesizer(scen.graph, scen.policies)
        hier_found = sum(hier.route(f) is not None for f in flows)
        saving = 1 - hier.stats.synthesis.states_expanded / max(
            1, flat_stats.states_expanded
        )
        results[size] = (flat_stats, hier, flat_found, hier_found)
        table.add(
            scen.graph.num_ads,
            len(flows),
            flat_stats.states_expanded,
            hier.stats.synthesis.states_expanded,
            f"{saving:+.0%}",
            f"{hier.stats.hit_ratio:.2f}",
            hier.stats.fallbacks,
            "yes" if hier_found == flat_found else "NO",
        )
    emit("ablation_a5_hierarchical", table.render())

    for size, (flat_stats, hier, flat_found, hier_found) in results.items():
        assert hier_found == flat_found  # fallback keeps completeness
    # At the largest size the corridor pruning must pay off.
    flat_stats, hier, _, _ = results[200]
    assert hier.stats.synthesis.states_expanded < flat_stats.states_expanded
    assert hier.stats.hit_ratio > 0.5

    benchmark.pedantic(
        lambda: [
            HierarchicalSynthesizer(
                scaled_scenario(100, seed=81).graph,
                scaled_scenario(100, seed=81).policies,
            )
        ],
        iterations=1,
        rounds=1,
    )


def test_a6_trigger_delay(benchmark, scenario):
    """Update batching: the triggered-update flush delay trades message
    volume against convergence time.  A tiny delay sends near-per-change
    updates; a long delay coalesces whole waves into single updates but
    holds routes stale for longer."""
    from repro.adgraph.failures import random_failure_plan
    from repro.simul.runner import run_with_failures

    plan = random_failure_plan(scenario.graph, count=4, repair=True, seed=71)

    def run(delay):
        proto = make_protocol(
            "naive-dv", scenario.graph.copy(), scenario.policies.copy(), trigger_delay=delay
        )
        initial, episodes = run_with_failures(proto.build(), plan)
        msgs = [e.result.messages for e in episodes]
        times = [e.result.time for e in episodes]
        return dict(
            initial=initial.messages,
            initial_time=initial.time,
            mean_msgs=sum(msgs) / len(msgs),
            mean_time=sum(times) / len(times),
        )

    table = Table(
        "flush delay",
        "initial msgs",
        "initial time",
        "msgs/event",
        "time/event",
        title="A6: triggered-update batching delay (naive DV)",
    )
    results = {}
    for delay in (0.1, 1.0, 5.0, 20.0):
        r = run(delay)
        results[delay] = r
        table.add(
            delay,
            r["initial"],
            f"{r['initial_time']:.0f}",
            f"{r['mean_msgs']:.0f}",
            f"{r['mean_time']:.0f}",
        )
    emit("ablation_a6_trigger_delay", table.render())

    # Shape: batching harder saves messages and costs time.
    assert results[20.0]["initial"] <= results[0.1]["initial"]
    assert results[20.0]["initial_time"] > results[0.1]["initial_time"]

    benchmark.pedantic(run, args=(1.0,), iterations=1, rounds=1)
