"""E11 -- Robustness under channel loss and topology churn.

The paper's qualitative arguments (Sections 4-5) assume control messages
arrive; this experiment measures what each Table-1 design point does when
they do not.  Every protocol runs plain and hardened (``+h``: sequence
dedup, ack+retransmit, bounded LSA refresh -- see
:mod:`repro.protocols.hardening`) under three channel regimes (clean, 5%
loss, 20% loss with duplication and jitter), each with the same seeded
churn timeline: two link flaps followed by one AD crash/restart with
state lost.  RoutePulse probes data-plane reachability throughout; route
quality is evaluated against ground truth after the timeline settles.

The headline claims this pins:

* hardened LS+PT design points (``ls-hbh+h``, ``orwg+h``) keep full
  availability at 5% loss -- the recommended architecture survives a
  realistically bad channel;
* unhardened variants measurably degrade as loss grows (stale LSDBs and
  wedged setups turn into missing routes);
* every hardened run still quiesces: retransmissions and refresh bursts
  are bounded, so impairment does not buy livelock.

Runs through the experiment harness; raw telemetry (including the
RoutePulse outage/TTR summaries and channel counters) lands in
``benchmarks/out/runs/robustness.jsonl``.
"""

import pytest

from _common import OUT_DIR, emit
from repro.harness import run_experiment


@pytest.fixture(scope="module")
def run():
    return run_experiment("robustness", runs_dir=f"{OUT_DIR}/runs")


def test_robustness_under_loss_and_churn(benchmark, run):
    spec, records, text = run
    emit("robustness", text)

    n_faults = len(spec.faults)
    losses = [fault.loss for fault in spec.faults]
    avail = {
        (p.display, fault.loss): records[pi * n_faults + fi]
        for pi, p in enumerate(spec.protocols)
        for fi, fault in enumerate(spec.faults)
    }

    def quality(label, loss):
        return avail[(label, loss)].route_quality["availability"]

    # Hardened runs all quiesce: retries and refresh bursts are bounded.
    for (label, _loss), rec in avail.items():
        if label.endswith("+h"):
            assert rec.quiesced, f"{label} did not quiesce"

    # The recommended LS+PT design points, hardened, ride out 5% loss
    # plus the churn timeline at full availability.
    assert 0.05 in losses
    assert quality("ls-hbh+h", 0.05) == 1.0
    assert quality("orwg+h", 0.05) == 1.0

    # Unhardened variants measurably degrade as the channel worsens.
    worst = max(losses)
    assert quality("ls-hbh", worst) < quality("ls-hbh+h", worst)
    assert quality("orwg", worst) < quality("orwg+h", worst)
    assert quality("ls-hbh", worst) < quality("ls-hbh", 0.0)

    # The probed timeline produced samples for every cell.
    assert all(r.robustness["samples"] > 0 for r in records)
    # Impaired cells actually exercised the channel.
    for (label, loss), rec in avail.items():
        if loss > 0:
            assert rec.channel["dropped"] > 0, (label, loss)

    benchmark.pedantic(
        run_experiment,
        args=("robustness",),
        kwargs=dict(smoke=True),
        iterations=1,
        rounds=1,
    )
