"""E8 -- Mutual satisfiability of policies in a single partial ordering.

Quantifies Section 5.1.1's two complaints about the ECMA approach:

* "policies of different ADs may not be mutually satisfiable.  That is
  to say, there may not be a single partial ordering that simultaneously
  expresses the policies of all ADs" -- measured as the fraction of
  random policy-constraint sets that admit a consistent ordering, vs the
  number of ADs and the per-AD policy count;
* "when policy changes, the partial ordering may need to be recomputed
  and may require another round of negotiation" -- measured as the
  probability that adding one more policy breaks an existing ordering.
"""

import random


from _common import emit
from repro.adgraph.partial_order import (
    order_from_constraints,
    try_order_from_constraints,
)
from repro.analysis.tables import Table

TRIALS = 120


def _random_constraints(rng, n_ads, n_constraints):
    """Each constraint is an AD's policy preference 'I must be below X'
    (e.g. to keep X's traffic from transiting me upward)."""
    out = []
    while len(out) < n_constraints:
        a, b = rng.sample(range(n_ads), 2)
        out.append((a, b))
    return out


def _satisfiable_fraction(n_ads, n_constraints, seed):
    rng = random.Random(seed)
    ok = 0
    for _ in range(TRIALS):
        constraints = _random_constraints(rng, n_ads, n_constraints)
        if try_order_from_constraints(range(n_ads), constraints) is not None:
            ok += 1
    return ok / TRIALS


def _renegotiation_probability(n_ads, n_constraints, seed):
    """Given a satisfiable ordering, how often does ONE new policy
    constraint conflict with it (forcing global renegotiation)?"""
    rng = random.Random(seed)
    broken = attempts = 0
    while attempts < TRIALS:
        constraints = _random_constraints(rng, n_ads, n_constraints)
        if try_order_from_constraints(range(n_ads), constraints) is None:
            continue
        attempts += 1
        extra = _random_constraints(rng, n_ads, 1)
        combined = constraints + extra
        if try_order_from_constraints(range(n_ads), combined) is None:
            broken += 1
    return broken / attempts


def test_partial_order_satisfiability(benchmark):
    table = Table(
        "ADs",
        "constraints/AD=0.5",
        "1.0",
        "1.5",
        "2.0",
        title=(
            "E8a: fraction of random policy sets expressible in a single "
            f"partial ordering ({TRIALS} trials each)"
        ),
    )
    fractions = {}
    for n_ads in (10, 20, 40, 80):
        row = []
        for density in (0.5, 1.0, 1.5, 2.0):
            frac = _satisfiable_fraction(n_ads, int(n_ads * density), seed=n_ads)
            fractions[(n_ads, density)] = frac
            row.append(f"{frac:.2f}")
        table.add(n_ads, *row)

    reneg = Table(
        "ADs",
        "P(one new policy breaks the ordering)",
        title="E8b: renegotiation pressure after a single policy change",
    )
    for n_ads in (10, 20, 40, 80):
        p = _renegotiation_probability(n_ads, n_ads, seed=n_ads + 1)
        reneg.add(n_ads, f"{p:.2f}")
    emit("partial_order", table.render() + "\n\n" + reneg.render())

    # Shape: satisfiability decays with constraint density; dense policy
    # sets are rarely expressible in one ordering.
    for n_ads in (20, 40, 80):
        assert fractions[(n_ads, 2.0)] <= fractions[(n_ads, 0.5)]
    assert fractions[(80, 2.0)] < 0.5

    benchmark.pedantic(
        _satisfiable_fraction, args=(40, 40, 7), iterations=1, rounds=1
    )


def test_ordering_construction_cost(benchmark):
    """Cost of (re)computing the global ordering -- the ECMA authority's
    recurring job."""
    rng = random.Random(3)
    n_ads = 200
    constraints = []
    # Build a guaranteed-acyclic constraint set (respect id order).
    while len(constraints) < 400:
        a, b = rng.sample(range(n_ads), 2)
        constraints.append((min(a, b), max(a, b)))
    order = benchmark(order_from_constraints, range(n_ads), constraints)
    for low, high in constraints:
        assert order.rank(low) < order.rank(high)
