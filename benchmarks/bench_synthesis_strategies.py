"""E10 -- Route synthesis strategies: precompute vs on-demand vs hybrid.

Section 6, research issue 1 (and Section 5.4.1): "Precomputation of all
policy routes in a large internet is computationally intractable, while
on demand computation may introduce excessive latency at setup time.
Consequently, a combination of precomputation and on-demand computation
should be used ... precomputation could use heuristics to prune the
search and limit it to commonly used routes."

Under a Zipf request stream we measure, per strategy: up-front work,
table memory, request-time latency proxy (states expanded per request),
and hit ratio -- including the hybrid's sensitivity to how many popular
routes are precomputed.
"""

import pytest

from _common import emit
from repro.analysis.tables import Table
from repro.core.strategies import (
    HybridStrategy,
    OnDemandStrategy,
    PrecomputeStrategy,
)
from repro.core.synthesis import RouteSynthesizer
from repro.policy.flows import FlowSpec
from repro.workloads import reference_scenario
from repro.workloads.traffic import request_sequence, uniform_traffic

REQUESTS = 2000
ZIPF_S = 1.0


@pytest.fixture(scope="module")
def setting():
    scenario = reference_scenario(seed=61, restrictiveness=0.2)
    matrix = uniform_traffic(scenario.graph, 120, seed=62, fixed_hour=12)
    requests = request_sequence(matrix, REQUESTS, zipf_s=ZIPF_S, seed=63)
    # The full flow universe a precompute-all strategy must cover: every
    # ordered pair of edge (leaf-level) ADs -- the realistic lower bound
    # on "all policy routes".
    edges = [a.ad_id for a in scenario.graph.ads() if a.level.rank == 0]
    universe = [FlowSpec(s, d) for s in edges for d in edges if s != d]
    return scenario, matrix, requests, universe


def _fresh_synth(scenario):
    return RouteSynthesizer(scenario.graph, scenario.policies)


def _drive(strategy, requests):
    answered = sum(strategy.lookup(f) is not None for f in requests)
    return answered


def test_synthesis_strategies(benchmark, setting):
    scenario, matrix, requests, universe = setting
    popular = [f for f, _ in sorted(matrix.entries, key=lambda e: -e[1])]

    strategies = [
        ("precompute-all", PrecomputeStrategy(_fresh_synth(scenario), universe)),
        ("on-demand (LRU 64)", OnDemandStrategy(_fresh_synth(scenario), 64)),
        (
            "hybrid (top 20 + LRU 64)",
            HybridStrategy(_fresh_synth(scenario), popular[:20], 64),
        ),
        (
            "hybrid (top 60 + LRU 64)",
            HybridStrategy(_fresh_synth(scenario), popular[:60], 64),
        ),
    ]

    table = Table(
        "strategy",
        "precompute states",
        "table size",
        "answered",
        "hit ratio",
        "mean states/request",
        title=(
            f"E10: synthesis strategies under a Zipf(s={ZIPF_S}) stream of "
            f"{REQUESTS} requests (universe: {len(universe)} flows)"
        ),
    )
    stats = {}
    for name, strategy in strategies:
        answered = _drive(strategy, requests)
        s = strategy.stats
        stats[name] = (s, strategy.table_size, answered)
        table.add(
            name,
            s.precompute_states,
            strategy.table_size,
            answered,
            f"{s.hit_ratio:.2f}",
            f"{s.mean_request_states:.1f}",
        )
    emit("synthesis_strategies", table.render())

    pre = stats["precompute-all"][0]
    ond = stats["on-demand (LRU 64)"][0]
    hyb = stats["hybrid (top 60 + LRU 64)"][0]
    # Precompute-all: huge up-front bill, zero request-time work.
    assert pre.precompute_states > 50 * hyb.precompute_states / 60
    assert pre.mean_request_states == 0.0
    # On-demand: no up-front bill, pays at request time.
    assert ond.precompute_states == 0
    assert ond.mean_request_states > 0
    # Hybrid: small up-front bill, near-zero request-time work -- the
    # paper's recommended combination.
    assert hyb.precompute_states < pre.precompute_states
    assert hyb.mean_request_states <= ond.mean_request_states
    assert hyb.hit_ratio >= ond.hit_ratio

    benchmark.pedantic(
        lambda: _drive(
            HybridStrategy(_fresh_synth(scenario), popular[:40], 64), requests
        ),
        iterations=1,
        rounds=1,
    )
