"""E7 -- Scaling with internet size.

The paper's scale model (Section 2.2) aims at 10^5 ADs; this bench sweeps
shape-preserving internets from 25 to 400 ADs and reports how each
architecture's control traffic, per-AD state, and route-computation cost
grow.  The absolute numbers are simulator-scale; the paper-relevant
output is the growth *shape*: DV update volume vs LS flooding volume
(with PTs aboard), RIB/LSDB state, and synthesis work per route.

Runs through the experiment harness; the per-size convergence telemetry
is persisted under ``benchmarks/out/runs/`` and the rendered table is
identical to the pre-harness bench (modulo the wall-clock
``synth ms/route`` column, which ``check_determinism.py`` masks).
"""

import pytest

from _common import OUT_DIR, emit
from repro.harness import run_experiment
from repro.harness.experiments import SCALING_SIZES


@pytest.fixture(scope="module")
def run():
    return run_experiment("scaling", runs_dir=f"{OUT_DIR}/runs")


def test_scaling_sweep(benchmark, run):
    spec, records, text = run
    emit("scaling", text)

    n_protocols = len(spec.protocols)
    by_size = {}
    for si in range(len(spec.scenarios)):
        group = {
            rec.cell["protocol"]: rec
            for rec in records[si * n_protocols : (si + 1) * n_protocols]
        }
        by_size[SCALING_SIZES[si]] = group

    # Shape: everything grows with size; flooding volume grows
    # super-linearly (every LSA crosses every link), and ORWG state is
    # the LSDB (linear in ADs).
    first, last = by_size[SCALING_SIZES[0]], by_size[SCALING_SIZES[-1]]
    growth = last["idrp"].scenario["num_ads"] / first["idrp"].scenario["num_ads"]
    for proto in ("idrp", "ecma", "orwg"):
        assert last[proto].initial.messages > first[proto].initial.messages
        assert last[proto].quiesced
    assert (
        last["orwg"].state["max_rib"]
        >= first["orwg"].state["max_rib"] * (growth / 2)
    )

    benchmark.pedantic(
        run_experiment,
        args=("scaling",),
        kwargs=dict(smoke=True),
        iterations=1,
        rounds=1,
    )
