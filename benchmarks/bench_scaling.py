"""E7 -- Scaling with internet size.

The paper's scale model (Section 2.2) aims at 10^5 ADs; this bench sweeps
shape-preserving internets from 25 to 400 ADs and reports how each
architecture's control traffic, per-AD state, and route-computation cost
grow.  The absolute numbers are simulator-scale; the paper-relevant
output is the growth *shape*: DV update volume vs LS flooding volume
(with PTs aboard), RIB/LSDB state, and synthesis work per route.
"""

import time

import pytest

from _common import emit
from repro.analysis.tables import Table
from repro.core.synthesis import RouteSynthesizer
from repro.protocols.ecma import ECMAProtocol
from repro.protocols.idrp import IDRPProtocol
from repro.protocols.orwg import ORWGProtocol
from repro.workloads import scaled_scenario

SIZES = [25, 50, 100, 200, 400]


def _converge_stats(cls, scenario):
    proto = cls(scenario.graph.copy(), scenario.policies.copy())
    result = proto.converge()
    return dict(
        msgs=result.messages,
        kb=result.bytes / 1024,
        max_rib=proto.max_rib_size(),
    )


def _synthesis_stats(scenario):
    syn = RouteSynthesizer(scenario.graph, scenario.policies)
    t0 = time.perf_counter()
    found = sum(syn.route(f) is not None for f in scenario.flows)
    elapsed = (time.perf_counter() - t0) / max(1, len(scenario.flows))
    return dict(
        found=found,
        states_per_route=syn.stats.states_expanded / max(1, syn.stats.dijkstra_runs),
        ms_per_route=elapsed * 1000,
    )


def test_scaling_sweep(benchmark):
    rows = {}
    table = Table(
        "ADs",
        "links",
        "PTs",
        "idrp msgs",
        "idrp KB",
        "ecma msgs",
        "ecma KB",
        "orwg msgs",
        "orwg KB",
        "orwg max RIB",
        "synth states/route",
        "synth ms/route",
        title="E7: growth with internet size (shape-preserving topologies)",
    )
    for size in SIZES:
        scenario = scaled_scenario(size, seed=41)
        idrp = _converge_stats(IDRPProtocol, scenario)
        ecma = _converge_stats(ECMAProtocol, scenario)
        orwg = _converge_stats(ORWGProtocol, scenario)
        syn = _synthesis_stats(scenario)
        rows[size] = dict(idrp=idrp, ecma=ecma, orwg=orwg, syn=syn,
                          ads=scenario.graph.num_ads)
        table.add(
            scenario.graph.num_ads,
            scenario.graph.num_links,
            scenario.policies.num_terms,
            idrp["msgs"],
            f"{idrp['kb']:.0f}",
            ecma["msgs"],
            f"{ecma['kb']:.0f}",
            orwg["msgs"],
            f"{orwg['kb']:.0f}",
            orwg["max_rib"],
            f"{syn['states_per_route']:.0f}",
            f"{syn['ms_per_route']:.2f}",
        )
    emit("scaling", table.render())

    # Shape: everything grows with size; flooding volume grows
    # super-linearly (every LSA crosses every link), and ORWG state is
    # the LSDB (linear in ADs).
    first, last = rows[SIZES[0]], rows[SIZES[-1]]
    growth = last["ads"] / first["ads"]
    for proto in ("idrp", "ecma", "orwg"):
        assert last[proto]["msgs"] > first[proto]["msgs"]
    assert last["orwg"]["max_rib"] >= first["orwg"]["max_rib"] * (growth / 2)

    benchmark.pedantic(
        _converge_stats,
        args=(ORWGProtocol, scaled_scenario(100, seed=41)),
        iterations=1,
        rounds=1,
    )
