"""E3 -- Route availability vs. policy restrictiveness.

Quantifies the paper's central comparative claim:

* Sections 5.1/5.2 -- hop-by-hop designs leave sources without a route
  "when in fact a legal route exists" (availability < 1), or forward
  traffic through ADs whose policies forbid it (illegal routes);
* Sections 5.3/5.4 -- the link-state + policy-terms designs discover a
  route exactly when one exists.

The sweep raises policy restrictiveness from 0 (hierarchical defaults)
to 0.6; the availability gap between architectures widens as policies
bite harder.

Runs through the experiment harness: one cell per (restrictiveness,
protocol), route-quality telemetry persisted under
``benchmarks/out/runs/``.
"""

import pytest

from _common import OUT_DIR, emit
from repro.harness import run_experiment


@pytest.fixture(scope="module")
def run():
    return run_experiment("availability", runs_dir=f"{OUT_DIR}/runs")


def test_availability_sweep(benchmark, run):
    spec, records, text = run
    emit("availability", text)

    n_protocols = len(spec.protocols)
    results = {}
    for si, scenario in enumerate(spec.scenarios):
        for pi, protocol in enumerate(spec.protocols):
            record = records[si * n_protocols + pi]
            results[(protocol.display, scenario.restrictiveness)] = (
                record.route_quality
            )
    sweep = [s.restrictiveness for s in spec.scenarios]

    # Shape assertions (who wins, and where the gap opens).
    for r in sweep:
        assert results[("orwg", r)]["availability"] == 1.0
        assert results[("ls-hbh", r)]["availability"] == 1.0
        assert results[("orwg", r)]["n_illegal"] == 0
    hard = sweep[-1]
    assert results[("idrp", hard)]["availability"] < 1.0
    assert (
        results[("bgp2", hard)]["availability"]
        <= results[("idrp", hard)]["availability"]
    )
    assert results[("naive-dv", hard)]["n_illegal"] > 0

    benchmark.pedantic(
        run_experiment,
        args=("availability",),
        kwargs=dict(smoke=True),
        iterations=1,
        rounds=1,
    )
