"""E3 -- Route availability vs. policy restrictiveness.

Quantifies the paper's central comparative claim:

* Sections 5.1/5.2 -- hop-by-hop designs leave sources without a route
  "when in fact a legal route exists" (availability < 1), or forward
  traffic through ADs whose policies forbid it (illegal routes);
* Sections 5.3/5.4 -- the link-state + policy-terms designs discover a
  route exactly when one exists.

The sweep raises policy restrictiveness from 0 (hierarchical defaults)
to 0.6; the availability gap between architectures widens as policies
bite harder.
"""

import pytest

from _common import emit
from repro.analysis.tables import Table
from repro.core.evaluation import evaluate_availability, sample_flows
from repro.policy.generators import restricted_policies
from repro.protocols.dv import DistanceVectorProtocol
from repro.protocols.ecma import ECMAProtocol
from repro.protocols.idrp import BGP2Protocol, IDRPProtocol
from repro.protocols.lshbh import LinkStateHopByHopProtocol
from repro.protocols.orwg import ORWGProtocol
from repro.adgraph.generator import TopologyConfig, generate_internet

PROTOCOLS = [
    ("naive-dv", DistanceVectorProtocol),
    ("ecma", ECMAProtocol),
    ("bgp2", BGP2Protocol),
    ("idrp", IDRPProtocol),
    ("ls-hbh", LinkStateHopByHopProtocol),
    ("orwg", ORWGProtocol),
]

RESTRICTIVENESS = [0.0, 0.2, 0.4, 0.6]


@pytest.fixture(scope="module")
def setting():
    graph = generate_internet(
        TopologyConfig(
            num_backbones=2,
            regionals_per_backbone=4,
            campuses_per_parent=4,
            seed=9,
        )
    )
    flows = sample_flows(graph, 40, seed=10)
    return graph, flows


def _evaluate(graph, policies, flows, cls):
    proto = cls(graph.copy(), policies.copy())
    proto.converge()
    return evaluate_availability(proto.graph, proto.policies, flows, proto.find_route)


def test_availability_sweep(benchmark, setting):
    graph, flows = setting
    avail = Table(
        "protocol",
        *[f"r={r:.1f}" for r in RESTRICTIVENESS],
        title="E3a: route availability (found legal / existing legal)",
    )
    illegal = Table(
        "protocol",
        *[f"r={r:.1f}" for r in RESTRICTIVENESS],
        title="E3b: illegal routes produced (of 40 flows)",
    )
    scenarios = {
        r: restricted_policies(graph, r, seed=9).policies for r in RESTRICTIVENESS
    }
    results = {}
    for name, cls in PROTOCOLS:
        row_a, row_i = [], []
        for r in RESTRICTIVENESS:
            report = _evaluate(graph, scenarios[r], flows, cls)
            results[(name, r)] = report
            row_a.append(f"{report.availability:.2f}")
            row_i.append(report.n_illegal)
        avail.add(name, *row_a)
        illegal.add(name, *row_i)
    emit("availability", avail.render() + "\n\n" + illegal.render())

    # Shape assertions (who wins, and where the gap opens).
    for r in RESTRICTIVENESS:
        assert results[("orwg", r)].availability == 1.0
        assert results[("ls-hbh", r)].availability == 1.0
        assert results[("orwg", r)].n_illegal == 0
    hard = RESTRICTIVENESS[-1]
    assert results[("idrp", hard)].availability < 1.0
    assert results[("bgp2", hard)].availability <= results[("idrp", hard)].availability
    assert results[("naive-dv", hard)].n_illegal > 0

    # Benchmark one representative evaluation (ORWG at r=0.4).
    benchmark.pedantic(
        _evaluate,
        args=(graph, scenarios[0.4], flows, ORWGProtocol),
        iterations=1,
        rounds=1,
    )
