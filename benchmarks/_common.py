"""Shared benchmark plumbing.

Every bench regenerates one experiment's table (E1-E10 in DESIGN.md) and
emits it through :func:`emit`, which both prints it (visible with
``pytest -s`` and in pytest-benchmark's captured output) and writes it to
``benchmarks/out/<name>.txt`` so runs can be diffed.
"""

from __future__ import annotations

import os

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")


def emit(name: str, text: str) -> str:
    """Print an experiment artifact and persist it under benchmarks/out."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path
