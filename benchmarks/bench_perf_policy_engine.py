"""Perf micro-benchmark for the indexed policy-term engine.

The paper calls policy route synthesis "probably the most difficult
aspect" of the recommended architecture (Section 6), and every synthesis
edge relaxation bottoms out in ``PolicyDatabase.permitting_term``.  This
bench measures that predicate under the source-class granularity workload
(the E5 axis: one PT per served source class, finite source sets) on the
E7 shape-preserving topologies, with the indexed engine on vs. off:

* **lookups** -- record the exact (owner, flow, prev, next) query trace
  one full synthesis pass issues, then replay it repeatedly against a
  seed-semantics linear-scan database and against the indexed+memoized
  engine.  This is the repeated-synthesis lookup cost: what LS-hop-by-hop
  replication, k-alternative re-runs, and availability sweeps pay.
* **synthesis** -- end-to-end repeated synthesis over the same flows in
  both modes, asserting the routes are *identical* (the engine is a pure
  optimisation; no routing answer may change).

Results are printed and written machine-readably to
``BENCH_policy_engine.json`` at the repo root, so the perf trajectory is
tracked from this PR onward.  Runs standalone (``python
benchmarks/bench_perf_policy_engine.py [--smoke]``) or under pytest with
the rest of the bench suite.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.adgraph.generator import generate_internet, scaled_config
from repro.core.evaluation import sample_flows
from repro.core.synthesis import RouteSynthesizer
from repro.policy.generators import source_class_policies

SIZES = [100, 200, 400]
SEED = 41
NUM_SOURCE_CLASSES = 12
LOOKUP_REPEATS = 10
SYNTH_REPEATS = 3
NUM_FLOWS = 40

#: Acceptance bar: repeated-synthesis lookups at the 200-AD scale point
#: must be at least this much faster with the index+memo engine.
SPEEDUP_THRESHOLD = 3.0

JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_policy_engine.json",
)


def _build_setting(target_ads: int):
    graph = generate_internet(scaled_config(target_ads, seed=SEED))
    policies = source_class_policies(
        graph, num_classes=NUM_SOURCE_CLASSES, refusal_prob=0.25, seed=SEED
    ).policies
    flows = sample_flows(graph, NUM_FLOWS, seed=SEED + 1)
    return graph, policies, flows


def _record_queries(graph, policies, flows):
    """The (owner, flow, prev, next) trace of one full synthesis pass."""
    db = policies.copy()
    db.use_index = False
    queries = []
    scan = db.permitting_term

    def recorder(ad_id, flow, prev, nxt):
        queries.append((ad_id, flow, prev, nxt))
        return scan(ad_id, flow, prev, nxt)

    db.permitting_term = recorder  # instance shadow; removed below
    syn = RouteSynthesizer(graph, db)
    for flow in flows:
        syn.route(flow)
    del db.permitting_term
    return queries


def _time_lookups(policies, queries, use_index: bool, repeats: int):
    """Mean ns/lookup replaying the trace against a fresh database."""
    db = policies.copy()
    db.use_index = use_index
    lookup = db.permitting_term
    t0 = time.perf_counter()
    for _ in range(repeats):
        for ad_id, flow, prev, nxt in queries:
            lookup(ad_id, flow, prev, nxt)
    elapsed = time.perf_counter() - t0
    hit_rate = db.cache_hits / db.lookups if db.lookups else 0.0
    return elapsed * 1e9 / (repeats * len(queries)), hit_rate


def _time_synthesis(graph, policies, flows, use_index: bool, repeats: int):
    """Mean ms/route for repeated full synthesis; returns the paths too."""
    db = policies.copy()
    db.use_index = use_index
    syn = RouteSynthesizer(graph, db)
    paths = []
    t0 = time.perf_counter()
    for _ in range(repeats):
        paths = [
            None if r is None else r.path for r in (syn.route(f) for f in flows)
        ]
    elapsed = time.perf_counter() - t0
    return elapsed * 1e3 / (repeats * len(flows)), paths


def bench_scale_point(target_ads: int, lookup_repeats: int, synth_repeats: int):
    graph, policies, flows = _build_setting(target_ads)
    queries = _record_queries(graph, policies, flows)

    linear_ns, _ = _time_lookups(policies, queries, False, lookup_repeats)
    indexed_ns, hit_rate = _time_lookups(policies, queries, True, lookup_repeats)

    linear_ms, linear_paths = _time_synthesis(
        graph, policies, flows, False, synth_repeats
    )
    indexed_ms, indexed_paths = _time_synthesis(
        graph, policies, flows, True, synth_repeats
    )
    if linear_paths != indexed_paths:
        raise AssertionError(
            f"indexed engine changed routing answers at {target_ads} ADs"
        )

    return {
        "target_ads": target_ads,
        "ads": graph.num_ads,
        "links": graph.num_links,
        "terms": policies.num_terms,
        "flows": len(flows),
        "queries_per_pass": len(queries),
        "lookup_ns_linear": round(linear_ns, 1),
        "lookup_ns_indexed": round(indexed_ns, 1),
        "lookup_speedup": round(linear_ns / indexed_ns, 2),
        "decision_cache_hit_rate": round(hit_rate, 4),
        "synth_ms_per_route_linear": round(linear_ms, 4),
        "synth_ms_per_route_indexed": round(indexed_ms, 4),
        "synth_speedup": round(linear_ms / indexed_ms, 2),
        "routes_identical": True,
    }


def run_bench(
    sizes=SIZES,
    lookup_repeats=LOOKUP_REPEATS,
    synth_repeats=SYNTH_REPEATS,
    json_path=JSON_PATH,
):
    points = [bench_scale_point(s, lookup_repeats, synth_repeats) for s in sizes]
    result = {
        "bench": "policy_engine",
        "description": (
            "indexed + version-memoized permitting_term vs seed linear scan "
            "(source-class policies on E7 scaled topologies)"
        ),
        "seed": SEED,
        "num_source_classes": NUM_SOURCE_CLASSES,
        "repeats": {"lookup": lookup_repeats, "synthesis": synth_repeats},
        "scale_points": points,
        "acceptance": {
            "scale": 200,
            "metric": "lookup_speedup",
            "threshold": SPEEDUP_THRESHOLD,
        },
    }
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")

    header = (
        f"{'ADs':>5}  {'terms':>5}  {'queries':>8}  "
        f"{'scan ns':>8}  {'idx ns':>7}  {'lookup x':>8}  "
        f"{'scan ms/rt':>10}  {'idx ms/rt':>9}  {'synth x':>7}"
    )
    lines = ["policy-term engine: indexed+memo vs linear scan", header,
             "-" * len(header)]
    for p in points:
        lines.append(
            f"{p['ads']:>5}  {p['terms']:>5}  {p['queries_per_pass']:>8}  "
            f"{p['lookup_ns_linear']:>8.0f}  {p['lookup_ns_indexed']:>7.0f}  "
            f"{p['lookup_speedup']:>8.2f}  "
            f"{p['synth_ms_per_route_linear']:>10.3f}  "
            f"{p['synth_ms_per_route_indexed']:>9.3f}  "
            f"{p['synth_speedup']:>7.2f}"
        )
    print("\n".join(lines))
    if json_path:
        print(f"[written to {json_path}]")
    return result


def test_policy_engine_speedup():
    """Acceptance: >= 3x on repeated-synthesis lookups at 200 ADs."""
    result = run_bench()
    by_scale = {p["target_ads"]: p for p in result["scale_points"]}
    point = by_scale[200]
    assert point["routes_identical"]
    assert point["lookup_speedup"] >= SPEEDUP_THRESHOLD, (
        f"lookup speedup {point['lookup_speedup']} below "
        f"{SPEEDUP_THRESHOLD}x at 200 ADs"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run (CI): one 50-AD point, fewer repeats, no "
        "threshold enforcement",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="where to write the JSON artifact ('' to skip; default: "
        "BENCH_policy_engine.json at the repo root, or nowhere in "
        "--smoke mode so a smoke run never clobbers the real artifact)",
    )
    args = parser.parse_args()
    if args.out is None:
        args.out = "" if args.smoke else JSON_PATH
    if args.smoke:
        out = run_bench(
            sizes=[50], lookup_repeats=3, synth_repeats=2, json_path=args.out
        )
    else:
        out = run_bench(json_path=args.out)
        point = {p["target_ads"]: p for p in out["scale_points"]}[200]
        if point["lookup_speedup"] < SPEEDUP_THRESHOLD:
            sys.exit(
                f"FAIL: lookup speedup {point['lookup_speedup']}x < "
                f"{SPEEDUP_THRESHOLD}x at 200 ADs"
            )
        print(
            f"OK: {point['lookup_speedup']}x lookup speedup at 200 ADs "
            f"(threshold {SPEEDUP_THRESHOLD}x)"
        )
