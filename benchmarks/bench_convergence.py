"""E4 -- Convergence after topology change.

Quantifies Section 4.3 ("[DV algorithms] can converge slowly ... link
state algorithms do not exhibit the same convergence problems") and
Section 5.1.1 ("Changes in topology result in rapid convergence since
the partial ordering suppresses looping ... prevent the count to
infinity phenomenon common to other DV algorithms").

Two event classes are measured separately, because they stress different
mechanisms:

* **reroute** events -- a redundant link fails; alternatives exist, and
  every protocol just has to find them;
* **partition** events -- a stub AD's only access link fails; the
  destination becomes unreachable, which is exactly where naive DV
  counts to infinity (cost grows with the metric cap), the ECMA ordering
  bounds the bounce, path vector withdraws in one wave, and link state
  floods one LSA.

ECMA is run restricted to a single QOS class so tables are size-matched
with the other DV protocols; its full per-QOS replication is priced in
E1/E7 instead.
"""

import pytest

from _common import emit
from repro.adgraph.failures import FailurePlan, LinkFailure, random_failure_plan
from repro.analysis.tables import Table
from repro.policy.qos import QOS
from repro.protocols.dv import DistanceVectorProtocol
from repro.protocols.ecma import ECMAProtocol
from repro.protocols.idrp import IDRPProtocol
from repro.protocols.orwg import ORWGProtocol
from repro.protocols.spf import PlainLinkStateProtocol
from repro.simul.runner import run_with_failures
from repro.workloads import reference_scenario

CONTENDERS = [
    ("naive-dv(inf=16)", lambda g, p: DistanceVectorProtocol(g, p, infinity=16)),
    ("naive-dv(inf=64)", lambda g, p: DistanceVectorProtocol(g, p, infinity=64)),
    (
        "ecma(1 qos)",
        lambda g, p: ECMAProtocol(g, p, qos_classes=frozenset({QOS.DEFAULT})),
    ),
    ("idrp", IDRPProtocol),
    ("plain-ls", PlainLinkStateProtocol),
    ("orwg", ORWGProtocol),
]


def _partition_plan(graph, count, start=100.0, spacing=500.0):
    """Fail (and repair) the single access link of ``count`` stub ADs."""
    events = []
    t = start
    stubs = [a for a in graph.stub_ads() if graph.degree(a.ad_id) == 1]
    for ad in stubs[:count]:
        link = graph.links_of(ad.ad_id)[0]
        events.append(LinkFailure(t, link.a, link.b, up=False))
        events.append(LinkFailure(t + spacing / 2, link.a, link.b, up=True))
        t += spacing
    return FailurePlan(tuple(events))


@pytest.fixture(scope="module")
def setting():
    scenario = reference_scenario(seed=17)
    reroute = random_failure_plan(scenario.graph, count=5, repair=True, seed=17)
    partition = _partition_plan(scenario.graph, count=4)
    return scenario, reroute, partition


def _mean_event_cost(scenario, plan, factory):
    proto = factory(scenario.graph.copy(), scenario.policies.copy())
    initial, episodes = run_with_failures(proto.build(), plan)
    msgs = [e.result.messages for e in episodes]
    times = [e.result.time for e in episodes]
    return dict(
        initial=initial.messages,
        mean_msgs=sum(msgs) / len(msgs),
        max_msgs=max(msgs),
        mean_time=sum(times) / len(times),
    )


def test_convergence_after_failures(benchmark, setting):
    scenario, reroute, partition = setting
    table = Table(
        "protocol",
        "initial msgs",
        "reroute msgs/event",
        "partition msgs/event",
        "partition max",
        "partition time",
        title=(
            "E4: reconvergence cost per topology event "
            f"({scenario.graph.num_ads} ADs; reroute vs partition events)"
        ),
    )
    stats = {}
    for name, factory in CONTENDERS:
        r = _mean_event_cost(scenario, reroute, factory)
        p = _mean_event_cost(scenario, partition, factory)
        stats[name] = (r, p)
        table.add(
            name,
            r["initial"],
            f"{r['mean_msgs']:.0f}",
            f"{p['mean_msgs']:.0f}",
            p["max_msgs"],
            f"{p['mean_time']:.0f}",
        )
    emit("convergence", table.render())

    # Shape: count-to-infinity on partitions grows with the metric cap,
    # the partial ordering bounds it, path vector and LS stay cheap.
    naive16 = stats["naive-dv(inf=16)"][1]["mean_msgs"]
    naive64 = stats["naive-dv(inf=64)"][1]["mean_msgs"]
    ecma = stats["ecma(1 qos)"][1]["mean_msgs"]
    assert naive64 > naive16
    assert ecma < naive64
    assert stats["idrp"][1]["mean_msgs"] < naive64
    assert stats["plain-ls"][1]["mean_msgs"] < naive64

    benchmark.pedantic(
        _mean_event_cost,
        args=(scenario, partition, CONTENDERS[2][1]),
        iterations=1,
        rounds=1,
    )
