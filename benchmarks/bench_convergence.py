"""E4 -- Convergence after topology change.

Quantifies Section 4.3 ("[DV algorithms] can converge slowly ... link
state algorithms do not exhibit the same convergence problems") and
Section 5.1.1 ("Changes in topology result in rapid convergence since
the partial ordering suppresses looping ... prevent the count to
infinity phenomenon common to other DV algorithms").

Two event classes are measured separately, because they stress different
mechanisms:

* **reroute** events -- a redundant link fails; alternatives exist, and
  every protocol just has to find them;
* **partition** events -- a stub AD's only access link fails; the
  destination becomes unreachable, which is exactly where naive DV
  counts to infinity (cost grows with the metric cap), the ECMA ordering
  bounds the bounce, path vector withdraws in one wave, and link state
  floods one LSA.

ECMA is run restricted to a single QOS class so tables are size-matched
with the other DV protocols; its full per-QOS replication is priced in
E1/E7 instead.

Runs through the experiment harness: each (protocol, event-class) cell
is one run whose per-episode telemetry lands in
``benchmarks/out/runs/convergence.jsonl``.
"""

import pytest

from _common import OUT_DIR, emit
from repro.harness import run_experiment
from repro.harness.experiments import episode_cost


@pytest.fixture(scope="module")
def run():
    return run_experiment("convergence", runs_dir=f"{OUT_DIR}/runs")


def test_convergence_after_failures(benchmark, run):
    spec, records, text = run
    emit("convergence", text)

    n_failures = len(spec.failures)
    stats = {
        p.display: (
            episode_cost(records[pi * n_failures]),
            episode_cost(records[pi * n_failures + 1]),
        )
        for pi, p in enumerate(spec.protocols)
    }

    # Shape: count-to-infinity on partitions grows with the metric cap,
    # the partial ordering bounds it, path vector and LS stay cheap.
    naive16 = stats["naive-dv(inf=16)"][1]["mean_msgs"]
    naive64 = stats["naive-dv(inf=64)"][1]["mean_msgs"]
    ecma = stats["ecma(1 qos)"][1]["mean_msgs"]
    assert naive64 > naive16
    assert ecma < naive64
    assert stats["idrp"][1]["mean_msgs"] < naive64
    assert stats["plain-ls"][1]["mean_msgs"] < naive64
    # Every episode quiesced -- these are convergence costs, not cutoffs.
    assert all(r.quiesced for r in records)

    benchmark.pedantic(
        run_experiment,
        args=("convergence",),
        kwargs=dict(smoke=True),
        iterations=1,
        rounds=1,
    )
