"""E9 -- The price and payoff of the AD-level abstraction.

Section 4.1: treating an inter-AD route as a sequence of ADs "reduces
the amount of information exchanged between ADs ... As with any
abstraction or hierarchical routing, some optimality may be lost.
Nonetheless the benefits of this abstraction far outweigh its costs."

This bench prices both sides with :class:`repro.adgraph.RouterExpansion`:
ADs expand into internal router rings (more routers at higher levels),
inter-AD links attach to border routers, and for sampled flows we compare
the router-level optimal path cost with the best router-level realisation
of the AD-level route.  Routing-information volume is compared at the two
granularities.
"""

import random


from _common import emit
from repro.adgraph.expansion import RouterExpansion
from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.core.synthesis import synthesize_route
from repro.policy.flows import FlowSpec
from repro.policy.generators import open_policies


def _measure_abstraction(graph, flows):
    expansion = RouterExpansion(graph)
    policies = open_policies(graph).policies
    stretches = []
    for flow in flows:
        route = synthesize_route(graph, policies, flow)
        if route is None:
            continue
        stretch = expansion.stretch(route.path)
        if stretch is not None:
            stretches.append(stretch)
    info_ad, info_router = expansion.information_volume()
    return stretches, info_ad, info_router, expansion.total_routers()


def test_abstraction_price(benchmark):
    table = Table(
        "topology",
        "routers",
        "AD-level info",
        "router-level info",
        "info ratio",
        "stretch mean",
        "stretch p95",
        "stretch max",
        title="E9: AD-level abstraction -- information saved vs optimality lost",
    )
    all_ok = []
    for seed in (51, 52, 53):
        graph = generate_internet(
            TopologyConfig(
                num_backbones=2,
                regionals_per_backbone=3,
                campuses_per_parent=4,
                lateral_prob=0.4,
                bypass_prob=0.15,
                seed=seed,
            )
        )
        rng = random.Random(seed)
        stubs = [a.ad_id for a in graph.stub_ads()]
        flows = [FlowSpec(*rng.sample(stubs, 2)) for _ in range(40)]
        stretches, info_ad, info_router, routers = _measure_abstraction(graph, flows)
        s = summarize(stretches)
        all_ok.append((s, info_ad, info_router))
        table.add(
            f"seed {seed} ({graph.num_ads} ADs)",
            routers,
            info_ad,
            info_router,
            f"{info_router / info_ad:.1f}x",
            f"{s.mean:.3f}",
            f"{s.p95:.3f}",
            f"{s.maximum:.3f}",
        )
    emit("abstraction", table.render())

    # Shape: stretch is small (a few percent mean), information saving
    # is large -- "benefits far outweigh the costs".
    for s, info_ad, info_router in all_ok:
        assert s.mean < 1.5
        assert s.minimum >= 1.0 - 1e-9
        assert info_router > 3 * info_ad

    graph = generate_internet(TopologyConfig(seed=51))
    stubs = [a.ad_id for a in graph.stub_ads()]
    flows = [FlowSpec(stubs[0], stubs[-1])]
    benchmark.pedantic(
        _measure_abstraction, args=(graph, flows), iterations=1, rounds=1
    )
