"""E1 -- Table 1, measured.

Regenerates the paper's Table 1 (the eight-point design space) augmented
with measured properties per point: convergence cost, route availability
vs. ground truth, illegal routes, forwarding loops, source control,
computation and state.

Paper artifact: Table 1 ("Design Space for Inter-AD Routing"), plus the
Section 5 per-point analyses it indexes.
"""

import pytest

from _common import emit
from repro.core.scorecard import build_scorecard, render_scorecard
from repro.workloads import reference_scenario


@pytest.fixture(scope="module")
def scenario():
    return reference_scenario(seed=1, num_flows=40)


def test_table1_design_space(benchmark, scenario):
    rows = benchmark.pedantic(
        build_scorecard,
        args=(scenario.graph, scenario.policies, scenario.flows),
        iterations=1,
        rounds=1,
    )
    text = render_scorecard(rows)
    emit("table1_design_space", text)

    by_label = {r.point.label: r for r in rows}
    # The paper's conclusion must hold in the measurement.
    orwg = by_label["LS/Src/PT"]
    assert orwg.availability == 1.0
    assert orwg.illegal_routes == 0
    assert orwg.source_control
    # Topology-expressed policy leaks illegal routes (expressiveness gap).
    assert by_label["DV/HbH/Topo"].illegal_routes > 0
    # Path vector is conservative: legal but starved.
    assert by_label["DV/HbH/PT"].availability < 1.0
