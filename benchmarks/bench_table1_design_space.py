"""E1 -- Table 1, measured.

Regenerates the paper's Table 1 (the eight-point design space) augmented
with measured properties per point: convergence cost, route availability
vs. ground truth, illegal routes, forwarding loops, source control,
computation and state.

Runs through the experiment harness (:mod:`repro.harness`): the measured
rows come from persisted :class:`~repro.harness.record.RunRecord`
telemetry, and the rendered table is byte-identical to what
``build_scorecard`` produced before the harness existed.

Paper artifact: Table 1 ("Design Space for Inter-AD Routing"), plus the
Section 5 per-point analyses it indexes.
"""

import pytest

from _common import OUT_DIR, emit
from repro.core.scorecard import score_rows_from_records
from repro.harness import run_experiment


@pytest.fixture(scope="module")
def run():
    return run_experiment(
        "table1_design_space", runs_dir=f"{OUT_DIR}/runs"
    )


def test_table1_design_space(benchmark, run):
    spec, records, text = run
    emit("table1_design_space", text)

    rows = score_rows_from_records(records)
    by_label = {r.point.label: r for r in rows}
    # Every run must have actually quiesced for the numbers to mean anything.
    assert all(r.quiesced for r in records)
    # The paper's conclusion must hold in the measurement.
    orwg = by_label["LS/Src/PT"]
    assert orwg.availability == 1.0
    assert orwg.illegal_routes == 0
    assert orwg.source_control
    # Topology-expressed policy leaks illegal routes (expressiveness gap).
    assert by_label["DV/HbH/Topo"].illegal_routes > 0
    # Path vector is conservative: legal but starved.
    assert by_label["DV/HbH/PT"].availability < 1.0

    benchmark.pedantic(
        run_experiment,
        args=("table1_design_space",),
        kwargs=dict(smoke=True),
        iterations=1,
        rounds=1,
    )
