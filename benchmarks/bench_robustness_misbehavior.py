"""E12 -- Misbehaving-AD blast radius and receiver-side containment.

The paper's design points all assume ADs advertise truthfully; this
experiment measures what happens when exactly one does not.  A single
liar (swept over stub / regional / backbone roles) tells one scheduled
lie -- a route leak (forged permissive policy), a bogus origin, a stale
replay at inflated sequence, a zeroed metric, or a forged third-party
policy term -- and RoutePulse tracks the blast radius: probed flows that
get hijacked through the liar, or break despite a clean pre-lie
baseline.  Every Table-1 design point runs plain and validating (``+v``:
path plausibility, origin sanity, sequence-jump guards, metric floors,
term registry checks, and per-neighbor quarantine -- see
:mod:`repro.protocols.validation`).

The headline claims this pins:

* a validating receiver contains a backbone route leak: the ``+v``
  steady-state blast radius is strictly smaller than plain on the
  recommended LS+PT design points (``ls-hbh``, ``orwg``);
* containment is surgical: every quarantine in the whole sweep hits the
  actual liar -- zero false quarantines, including the lie-free
  baseline cells;
* expressibility is architectural: design points that do not carry
  policy terms cannot leak a route, and design points without sequence
  numbers cannot be replay-poisoned (the ``told`` column of the table).

Runs through the experiment harness; raw telemetry (including the
per-round blast series and validation counters) lands in
``benchmarks/out/runs/robustness_misbehavior.jsonl``.
"""

import pytest

from _common import OUT_DIR, emit
from repro.harness import run_experiment


@pytest.fixture(scope="module")
def run():
    return run_experiment("robustness_misbehavior", runs_dir=f"{OUT_DIR}/runs")


def test_misbehavior_blast_radius_and_containment(benchmark, run):
    spec, records, text = run
    emit("robustness_misbehavior", text)

    n_mis = len(spec.misbehaviors)
    cells = {
        (p.display, m.display): records[pi * n_mis + mi]
        for pi, p in enumerate(spec.protocols)
        for mi, m in enumerate(spec.misbehaviors)
    }

    def steady(label, lie):
        return cells[(label, lie)].misbehavior["steady_blast"]

    # A validating receiver contains the backbone route leak: strictly
    # smaller steady-state blast radius than the plain protocol, on the
    # recommended LS+PT design points.
    leak = "route-leak@backbone"
    for name in ("ls-hbh", "orwg"):
        assert steady(name, leak) > 0, f"{name}: leak produced no blast"
        assert steady(f"{name}+v", leak) < steady(name, leak)

    # The liars actually told the lie in those cells, and the validators
    # charged and quarantined the real liar.
    for name in ("ls-hbh", "orwg"):
        block = cells[(f"{name}+v", leak)].misbehavior
        assert block["applied"]
        assert block["counters"]["violations"] > 0
        assert block["counters"]["quarantines"] > 0
        assert block["counters"]["quarantined_ads"] == [block["liar"]]

    # Containment is surgical across the entire sweep: no validator ever
    # quarantines an honest AD -- including every lie-free baseline.
    for (label, lie), rec in cells.items():
        if rec.misbehavior is not None:
            assert rec.misbehavior["counters"]["false_quarantines"] == 0, (
                label,
                lie,
            )

    # Lie-free baselines of validating protocols see zero violations:
    # honest advertisements never trip a receiver-side check.
    for protocol in spec.protocols:
        rec = cells.get((protocol.display, "baseline"))
        if rec is not None and protocol.display.endswith("+v"):
            assert rec.misbehavior["counters"]["violations"] == 0, (
                protocol.display
            )

    # Expressibility is architectural: term-free LS design points cannot
    # leak a route; IDRP-family paths carry no sequence numbers to replay.
    for name in ("ls-hbh-topo", "ls-src-topo"):
        assert not cells[(name, leak)].misbehavior["applied"]
    assert not cells[("pv-src", "stale-replay@backbone")].misbehavior["applied"]

    benchmark.pedantic(
        run_experiment,
        args=("robustness_misbehavior",),
        kwargs=dict(smoke=True),
        iterations=1,
        rounds=1,
    )
