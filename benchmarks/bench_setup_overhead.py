"""E6 -- Route setup amortisation, header overhead, and PG state.

Quantifies Section 5.4.1's data-plane mechanism: "the first packet ...
acts as a policy route setup packet ... a handle is assigned at the time
that the Policy Route is set up and successive data packets use that
handle."

Measured across traffic locality (Zipf skew of flow popularity):

* setup latency (simulated round-trip) distribution;
* per-packet header bytes: handle mode (amortising the setup) vs.
  carrying the full source route in every packet;
* PG cache state and hit behaviour: how many setups a transit AD holds,
  and how many packets each amortises over.
"""

import pytest

from _common import emit
from repro.analysis.stats import summarize
from repro.analysis.tables import Table
from repro.forwarding.headers import (
    amortized_handle_bytes,
    source_route_header_bytes,
)
from repro.protocols import make_protocol
from repro.workloads import reference_scenario
from repro.workloads.traffic import request_sequence, uniform_traffic

ZIPF_SKEWS = [0.0, 0.8, 1.6]
REQUESTS = 150
PACKETS_PER_REQUEST = 8


def _routable_matrix(scenario, n_flows, seed):
    """A flow population restricted to flows with a legal route: real
    sources stop asking for destinations they can never reach, so the
    request stream should not be dominated by dead flows."""
    from repro.core.synthesis import synthesize_route
    from repro.workloads.traffic import TrafficMatrix

    matrix = uniform_traffic(scenario.graph, 3 * n_flows, seed=seed)
    routable = [
        (flow, weight)
        for flow, weight in matrix.entries
        if synthesize_route(scenario.graph, scenario.policies, flow) is not None
    ]
    return TrafficMatrix(tuple(routable[:n_flows]))


def _run_locality(scenario, zipf_s):
    proto = make_protocol("orwg", scenario.graph.copy(), scenario.policies.copy())
    proto.converge()
    matrix = _routable_matrix(scenario, 40, seed=31)
    requests = request_sequence(matrix, REQUESTS, zipf_s=zipf_s, seed=32)

    open_routes = {}
    latencies = []
    setups = reuses = failures = 0
    for flow in requests:
        attempt = open_routes.get(flow)
        if attempt is not None and attempt.established:
            reuses += 1
        else:
            attempt = proto.open_route(flow)
            proto.network.run()
            if attempt.established:
                setups += 1
                latencies.append(attempt.latency)
                open_routes[flow] = attempt
            else:
                failures += 1
                continue
        proto.send_data(attempt, packets=PACKETS_PER_REQUEST)
        proto.network.run()

    delivered = sum(proto.delivered(a) for a in open_routes.values())
    cache = [proto.pg_cache_size(a) for a in proto.graph.ad_ids()]
    mean_route_len = (
        sum(len(a.route) for a in open_routes.values()) / max(1, len(open_routes))
    )
    return dict(
        proto=proto,
        setups=setups,
        reuses=reuses,
        failures=failures,
        latency=summarize(latencies) if latencies else None,
        delivered=delivered,
        max_cache=max(cache),
        total_cache=sum(cache),
        mean_route_len=mean_route_len,
    )


@pytest.fixture(scope="module")
def scenario():
    return reference_scenario(seed=29, restrictiveness=0.2)


def test_setup_amortisation_vs_locality(benchmark, scenario):
    table = Table(
        "zipf s",
        "setups",
        "handle reuses",
        "no-route",
        "setup RTT p50",
        "setup RTT p95",
        "pkts delivered",
        "max PG cache",
        "total PG state",
        title=f"E6a: setup amortisation vs traffic locality ({REQUESTS} route requests)",
    )
    results = {}
    for s in ZIPF_SKEWS:
        r = _run_locality(scenario, s)
        results[s] = r
        lat = r["latency"]
        table.add(
            f"{s:.1f}",
            r["setups"],
            r["reuses"],
            r["failures"],
            f"{lat.p50:.0f}" if lat else "-",
            f"{lat.p95:.0f}" if lat else "-",
            r["delivered"],
            r["max_cache"],
            r["total_cache"],
        )

    # Header-byte comparison at the measured mean route length.
    route_len = max(2, round(results[0.0]["mean_route_len"]))
    transits = max(0, route_len - 2)
    hdr = Table(
        "packets on route",
        "per-packet source route",
        "setup+handle amortised",
        "saving",
        title=f"E6b: header bytes per packet (route length {route_len} ADs)",
    )
    per_packet = source_route_header_bytes(route_len)
    for n in (1, 2, 5, 10, 50, 200):
        amortised = amortized_handle_bytes(route_len, transits, n)
        hdr.add(
            n,
            per_packet,
            f"{amortised:.1f}",
            f"{(1 - amortised / per_packet) * 100:+.0f}%",
        )
    emit("setup_overhead", table.render() + "\n\n" + hdr.render())

    # Shape: higher locality -> fewer setups, more reuse; long streams
    # amortise below per-packet source routing.
    assert results[ZIPF_SKEWS[-1]]["setups"] <= results[0.0]["setups"]
    assert results[ZIPF_SKEWS[-1]]["reuses"] >= results[0.0]["reuses"]
    assert amortized_handle_bytes(route_len, transits, 50) < per_packet
    assert amortized_handle_bytes(route_len, transits, 1) > per_packet

    benchmark.pedantic(
        _run_locality, args=(scenario, 0.8), iterations=1, rounds=1
    )
