"""E13 -- Control-plane overload under a churn storm.

E11 (loss) and E12 (lies) stress what arrives; this experiment stresses
*how much* arrives.  Every router processes updates through a bounded
ingress queue (:mod:`repro.simul.ingress`) while a seeded storm flaps
six lateral links concurrently (:func:`repro.faults.plan.churn_storm_plan`),
and every Table-1 design point runs raw, hardened (``+h``), and
paced+damped (``+pd``: hardening plus MRAI-style update pacing,
hold-down, and BGP-style flap damping -- see
:mod:`repro.protocols.pacing`).  The cell event budget is deliberately
tight: a control plane that chases every flap hits it (the ``*`` rows),
which is the discrete-event analogue of a router melting under its own
update load.

The headline claims this pins:

* raw (and merely hardened) LS-family variants melt down: flooding every
  flap through finite queues exhausts the event budget at every storm
  point, with thousands of queue-overflow drops;
* the paced+damped LS+PT design points (``ls-hbh+pd``, ``orwg+pd``)
  quench the same storm: they quiesce within budget, hold full
  post-storm availability, and cut ingress drops by orders of magnitude
  -- damping stops the chase, pacing batches what remains;
* the defenses are not free: hold-down trades probed availability
  during slow storms (bad news is reacted to late), which the ok%
  column reports honestly.

Runs through the experiment harness; raw telemetry (including the
RunRecord ``overload`` block: queue peak depth, drops, suppressed and
paced announcements, service duty cycle) lands in
``benchmarks/out/runs/robustness_churn.jsonl``.
"""

import pytest

from _common import OUT_DIR, emit
from repro.harness import run_experiment


@pytest.fixture(scope="module")
def run():
    return run_experiment("robustness_churn", runs_dir=f"{OUT_DIR}/runs")


def test_overload_under_churn_storm(benchmark, run):
    spec, records, text = run
    emit("robustness_churn", text)

    n_faults = len(spec.faults)
    by_cell = {
        (p.display, f.display): records[pi * n_faults + fi]
        for pi, p in enumerate(spec.protocols)
        for fi, f in enumerate(spec.faults)
    }

    # Every cell ran through a bounded queue and was probed.
    for rec in records:
        assert rec.overload is not None
        assert rec.overload["capacity"] is not None
        assert rec.robustness["samples"] > 0

    # The paced+damped recommended design points quench the storm: they
    # quiesce within the tight event budget and hold full post-storm
    # availability at every storm point.
    for label in ("ls-hbh+pd", "orwg+pd"):
        for f in spec.faults:
            rec = by_cell[(label, f.display)]
            assert rec.quiesced, (label, f.display)
            assert rec.route_quality["availability"] >= 0.9, (label, f.display)

    # At least one raw variant melts down: the storm exhausts its event
    # budget (or strands it below half availability).
    melted = [
        rec
        for (label, _), rec in by_cell.items()
        if "+" not in label
        and (not rec.quiesced or rec.route_quality["availability"] < 0.5)
    ]
    assert melted, "no raw variant melted under the storm"

    # Damping + pacing visibly relieve the queues: for the recommended
    # design points, the paced variant drops fewer ingress messages and
    # suppresses/defers announcements the raw variant blasts out.
    for name in ("ls-hbh", "orwg"):
        for f in spec.faults:
            raw = by_cell[(name, f.display)].overload
            paced = by_cell[(f"{name}+pd", f.display)].overload
            assert paced["dropped"] < raw["dropped"], (name, f.display)
            assert paced["suppressed_announcements"] + paced["paced_deferrals"] > 0
            assert paced["duty_cycle"] < raw["duty_cycle"], (name, f.display)

    benchmark.pedantic(
        run_experiment,
        args=("robustness_churn",),
        kwargs=dict(smoke=True),
        iterations=1,
        rounds=1,
    )
