"""E14 -- Data-plane tail latency under convergence + FIB throughput.

Two deliverables share this bench because they share machinery
(:mod:`repro.traffic`):

* **The experiment table** (pytest path): regenerate E14 through the
  harness -- every design point replays the same seeded 10^6-flow zipf
  workload against FIBs recompiled at every convergence epoch of a
  fault storm -- and emit ``benchmarks/out/dataplane_tail.txt``.  The
  table is pure simulation (no wall-clock columns), so the determinism
  gate diffs it byte-for-byte.
* **The throughput benchmark** (standalone path): measure compiled-FIB
  batched replay against the legacy per-packet forwarder via
  :mod:`repro.traffic.bench` and write ``BENCH_dataplane.json`` at the
  repo root.  The acceptance bar is a >=10x flows/sec speedup with
  verdict identity on every flow; ``--gate`` implements the soft CI
  perf gate (>30% compiled-flows/sec drop at the ls-hbh point fails the
  step, but the CI step runs with ``continue-on-error`` because shared
  runners are noisy).

Runs standalone (``python benchmarks/bench_dataplane.py [--smoke]
[--gate <json>] [--out <json>]``) or under pytest with the rest of the
bench suite.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pytest

from _common import OUT_DIR, emit
from repro.harness import run_experiment
from repro.traffic import bench

JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_dataplane.json",
)


# ------------------------------------------------------------- E14 table


@pytest.fixture(scope="module")
def run():
    return run_experiment("dataplane_tail", runs_dir=f"{OUT_DIR}/runs")


def test_dataplane_tail(benchmark, run):
    spec, records, text = run
    emit("dataplane_tail", text)

    assert len(records) == len(spec.protocols)
    for rec in records:
        dp = rec.dataplane
        assert dp is not None
        # Production scale: the full grid replays 10^6 flows per cell.
        assert dp["workload"]["flows"] >= 1_000_000
        # The storm was actually observed: initial + episode + probe
        # epochs + final all snapshotted a FIB and replayed the workload.
        epochs = dp["series"]["epochs"]
        assert len(epochs) >= 4
        assert epochs[0]["label"] == "initial"
        assert epochs[-1]["label"] == "final"
        # Tails are well-formed fractions/latencies.
        for key in ("outage_p50", "outage_p99", "outage_p999"):
            assert 0.0 <= dp["series"][key] <= 1.0
        assert dp["series"]["worst_gap"] >= epochs[0]["reach_gap"]
        # Compiled state is small: KB, not the 10^6-flow workload.
        assert 0 < dp["fib"]["bytes"] < 1_000_000

    # The storm hurts: at least one design point's worst epoch loses
    # more flows than its converged start.
    assert any(
        r.dataplane["series"]["worst_gap"]
        > r.dataplane["series"]["epochs"][0]["reach_gap"]
        for r in records
    )

    benchmark.pedantic(
        run_experiment,
        args=("dataplane_tail",),
        kwargs=dict(smoke=True),
        iterations=1,
        rounds=1,
    )


# ------------------------------------------------------- throughput bench


def test_dataplane_throughput_smoke():
    """Smoke-sized throughput point: identity enforced, timing advisory.

    The 10x speedup bar is only asserted by the full standalone run
    (``__main__``): at smoke scale the constant costs dominate and the
    ratio is noise, but verdict identity -- the correctness half of the
    bench -- is exactly as strong.
    """
    result = bench.run_bench(
        protocols=bench.PROTOCOLS_SMOKE,
        flows=bench.FLOWS_SMOKE,
        pairs=bench.PAIRS_SMOKE,
        repeats=1,
    )
    for row in result["protocols"]:
        assert row["identical"], row["protocol"]
        assert row["flows"] == bench.FLOWS_SMOKE
        assert sum(row["verdicts"].values()) == row["flows"]


def check_gate(baseline_path: str) -> int:
    """Soft CI gate: re-measure the gate point, compare to the baseline.

    Returns a process exit code (0 ok / 1 regressed / 0 skip when the
    baseline lacks the gate point).
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    gate = baseline.get("gate", {})
    protocol = gate.get("protocol", bench.GATE_PROTOCOL)
    wl = baseline.get("workload", {})
    current = bench.run_bench(
        protocols=(protocol,),
        flows=wl.get("flows", bench.FLOWS),
        pairs=wl.get("pairs", bench.PAIRS),
        zipf_s=wl.get("zipf_s", bench.ZIPF_S),
        seed=wl.get("seed", bench.WORKLOAD_SEED),
    )
    verdict = bench.gate_verdict(baseline, current)
    if verdict is None:
        print(f"gate: no committed {protocol} point; skipping")
        return 0
    print(verdict)
    return 0 if verdict.endswith("OK") else 1


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run (CI): 50k flows, two protocols, no "
        "threshold enforcement, no JSON artifact",
    )
    parser.add_argument(
        "--gate",
        metavar="BASELINE_JSON",
        default=None,
        help="soft perf-regression gate: re-measure the gate point and "
        "compare compiled flows/sec to the committed baseline "
        "(exit 1 on >30%% drop)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="where to write the JSON artifact ('' to skip; default: "
        "BENCH_dataplane.json at the repo root, or nowhere in --smoke "
        "mode so a smoke run never clobbers the real artifact)",
    )
    args = parser.parse_args()
    if args.gate is not None:
        sys.exit(check_gate(args.gate))
    if args.out is None:
        args.out = "" if args.smoke else JSON_PATH
    if args.smoke:
        result = bench.run_bench(
            protocols=bench.PROTOCOLS_SMOKE,
            flows=bench.FLOWS_SMOKE,
            pairs=bench.PAIRS_SMOKE,
        )
    else:
        result = bench.run_bench()
    print(bench.render_table(result))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"[written to {args.out}]")
    broken = [r["protocol"] for r in result["protocols"] if not r["identical"]]
    if broken:
        sys.exit(f"FAIL: compiled verdicts diverge for: {', '.join(broken)}")
    if not args.smoke:
        speedup = bench.best_speedup(result)
        if speedup < bench.SPEEDUP_THRESHOLD:
            sys.exit(
                f"FAIL: best flows/sec speedup {speedup}x < "
                f"{bench.SPEEDUP_THRESHOLD}x"
            )
        print(
            f"OK: {speedup}x best flows/sec speedup "
            f"(threshold {bench.SPEEDUP_THRESHOLD}x), verdicts identical"
        )
