#!/usr/bin/env python
"""Route setup walk-through: handles, caches, and policy change.

Narrates the ORWG data plane of Section 5.4.1 step by step on a small
internet: setup packet (full route + cited Policy Terms), per-hop
validation at Policy Gateways, handle-based data packets, header-byte
comparison against per-packet source routing, and what happens when a
transit AD changes its policy under an established route.

Run:  python examples/route_setup_demo.py
"""

from repro.forwarding.headers import (
    handle_header_bytes,
    setup_header_bytes,
    source_route_header_bytes,
)
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm
from repro.protocols import make_protocol
from repro.workloads import reference_scenario


def main() -> None:
    scenario = reference_scenario(seed=2)
    graph, policies = scenario.graph, scenario.policies
    protocol = make_protocol("orwg", graph, policies)
    protocol.converge()

    flow = next(
        f for f in scenario.flows if protocol.source_route(f) is not None
        and len(protocol.source_route(f)) >= 4
    )
    route = protocol.source_route(flow)
    print(f"flow {flow}")
    print(f"policy route: {'->'.join(map(str, route))} ({len(route) - 1} hops)\n")

    # --- setup ---
    attempt = protocol.open_route(flow)
    protocol.network.run()
    print(f"setup: {attempt.state}, round-trip {attempt.latency:.1f} time units")
    for ad in route:
        print(f"  PG at AD {ad}: cache holds {protocol.pg_cache_size(ad)} handle(s)")

    # --- headers ---
    transits = len(route) - 2
    print("\nheader bytes per packet:")
    print(f"  setup packet (route + {transits} PT citations): "
          f"{setup_header_bytes(len(route), transits)}")
    print(f"  per-packet source route:                      "
          f"{source_route_header_bytes(len(route))}")
    print(f"  handle data packet:                           "
          f"{handle_header_bytes()}")

    # --- data ---
    protocol.send_data(attempt, packets=20)
    protocol.network.run()
    print(f"\ndelivered {protocol.delivered(attempt)}/20 packets via handle")

    # --- policy change ---
    victim = route[1]
    print(f"\nAD {victim} now refuses all transit and re-floods its terms...")
    policies.remove_terms(victim)
    policies.add_term(PolicyTerm(owner=victim, sources=ADSet.none()))
    protocol.notify_policy_change(victim)
    protocol.network.run()
    protocol.send_data(attempt, packets=1)
    protocol.network.run()
    print(f"next data packet: attempt is now '{attempt.state}' ({attempt.reason})")

    retry = protocol.open_route(flow)
    protocol.network.run()
    if retry.established:
        print(f"re-setup found a new legal route: "
              f"{'->'.join(map(str, retry.route))}")
    else:
        print(f"re-setup failed: {retry.reason} (no alternative legal route)")


if __name__ == "__main__":
    main()
