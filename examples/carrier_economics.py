#!/usr/bin/env python
"""Carrier economics: charging, policy trade-offs, ordering negotiation.

The paper's policy model (Section 2.3) includes "charging and accounting
policies"; its conclusion (Section 6) predicts administrators will need
tools to weigh a policy's resource savings against its costs.  This
example runs a regional carrier's business review:

1. settle the books for a gravity traffic matrix under current policies;
2. propose monetising transit (a charge on the carrier's policy terms)
   and measure how much traffic flees to cheaper routes when sources
   weigh charges in their selection criteria;
3. ECMA coda: the carriers try to encode their business preferences as a
   single partial ordering and discover which demands the central
   authority has to reject.

Run:  python examples/carrier_economics.py
"""

from dataclasses import replace

from repro.analysis.tables import Table
from repro.core.synthesis import synthesize_route
from repro.mgmt.accounting import settle
from repro.mgmt.negotiation import negotiate_ordering
from repro.policy.selection import RouteSelectionPolicy
from repro.workloads import reference_scenario
from repro.workloads.traffic import gravity_traffic


def main() -> None:
    scenario = reference_scenario(seed=31, restrictiveness=0.0)
    graph, policies = scenario.graph, scenario.policies
    matrix = gravity_traffic(graph, 60, seed=32)

    # 1. Books under free transit.
    ledger = settle(graph, policies, matrix)
    print(ledger.summary())

    # 2. The top carrier monetises: a steep charge on all its terms
    #    (terms are immutable values; re-advertise charged replacements).
    top_carrier = max(
        ledger.entries, key=lambda ad: ledger.entries[ad].carried_volume
    )
    charge = 25.0
    print(f"\nAD {top_carrier} (carried volume "
          f"{ledger.entries[top_carrier].carried_volume:g}) sets charge {charge}")
    old_terms = policies.terms_of(top_carrier)
    policies.remove_terms(top_carrier)
    for term in old_terms:
        policies.add_term(replace(term, charge=charge, term_id=-1))

    table = Table(
        "sources weigh charges?",
        "carrier revenue",
        "carrier volume",
        "routed volume",
        title="Revenue vs price sensitivity",
    )
    for weight in (0.0, 1.0):
        selection = RouteSelectionPolicy(charge_weight=weight)
        finder = lambda f: synthesize_route(graph, policies, f, selection)
        books = settle(graph, policies, matrix, finder=finder)
        entry = books.entries.get(top_carrier)
        table.add(
            "no" if weight == 0 else "yes (weight 1.0)",
            f"{entry.revenue:.0f}" if entry else "0",
            f"{entry.carried_volume:g}" if entry else "0",
            f"{books.routed_volume:g}",
        )
    print(table.render())
    print("(price-sensitive sources detour around the charging carrier "
          "where a free legal route exists)")

    # 3. ECMA coda: encode 'I shall be above my competitors' preferences.
    regionals = [a.ad_id for a in graph.ads() if a.level.name == "REGIONAL"]
    demands = []
    for i, r in enumerate(regionals):
        # Every regional demands to outrank the next two (cyclically) --
        # mutually unsatisfiable by construction at the wrap-around.
        demands.append((regionals[(i + 1) % len(regionals)], r))
    result = negotiate_ordering(graph.ad_ids(), demands)
    print(f"\nECMA ordering negotiation over {len(demands)} ranking demands:")
    print(result.summary())


if __name__ == "__main__":
    main()
