#!/usr/bin/env python
"""Tour of Table 1: run all eight design points on one internet.

The paper dismisses half its design space with qualitative arguments;
this example *measures* every cell on a common topology, policy scenario
and traffic sample, printing the measured Table 1 next to the paper's
verdicts.

Run:  python examples/design_space_tour.py
"""

from repro.core.scorecard import build_scorecard, render_scorecard
from repro.workloads import reference_scenario


def main() -> None:
    scenario = reference_scenario(seed=3)
    print(
        f"scenario: {scenario.graph.num_ads} ADs, "
        f"{scenario.policies.num_terms} policy terms, "
        f"{len(scenario.flows)} sample flows\n"
    )
    rows = build_scorecard(scenario.graph, scenario.policies, scenario.flows)
    print(render_scorecard(rows))
    print()
    print("Paper verdicts (Section 5):")
    for row in rows:
        verdict = row.paper_verdict
        tag = (
            "RECOMMENDED"
            if verdict.recommended
            else ("dismissed" if verdict.dismissed else "analysed")
        )
        proposal = f" [{verdict.proposal}]" if verdict.proposal else ""
        print(f"  {row.point.label:14s} ({tag}, S{verdict.section}){proposal}")
        print(f"      {verdict.summary}")


if __name__ == "__main__":
    main()
