#!/usr/bin/env python
"""Convergence study: reconvergence cost after link failures.

Reproduces the Section 4.3 / 5.1.1 story: naive distance vector pays a
count-to-infinity tax after failures; the ECMA partial ordering bounds
it; path-vector (IDRP) suppresses loops via full AD paths; link-state
floods the change once and recomputes locally.

Run:  python examples/convergence_study.py
"""

from repro.adgraph.failures import random_failure_plan
from repro.analysis.tables import Table
from repro.protocols import make_protocol
from repro.simul.runner import run_with_failures
from repro.workloads import reference_scenario


def main() -> None:
    scenario = reference_scenario(seed=11)
    plan = random_failure_plan(scenario.graph, count=5, repair=True, seed=11)
    print(
        f"scenario: {scenario.graph.num_ads} ADs; failing/repairing "
        f"{len(plan) // 2} links one at a time\n"
    )

    contenders = [
        ("naive DV (inf=32)", lambda g, p: make_protocol("naive-dv", g, p, infinity=32)),
        ("ECMA (partial order)", lambda g, p: make_protocol("ecma", g, p)),
        ("IDRP (path vector)", lambda g, p: make_protocol("idrp", g, p)),
        ("ORWG (link state)", lambda g, p: make_protocol("orwg", g, p)),
    ]

    table = Table(
        "protocol",
        "initial msgs",
        "per-failure msgs",
        "per-failure KB",
        "per-failure time",
        title="Reconvergence cost after a single link failure (mean over episodes)",
    )
    for name, factory in contenders:
        proto = factory(scenario.graph.copy(), scenario.policies.copy())
        initial, episodes = run_with_failures(proto.build(), plan)
        n = len(episodes)
        msgs = sum(e.result.messages for e in episodes) / n
        kb = sum(e.result.bytes for e in episodes) / n / 1024
        time = sum(e.result.time for e in episodes) / n
        table.add(name, initial.messages, f"{msgs:.0f}", f"{kb:.1f}", f"{time:.0f}")
    print(table.render())


if __name__ == "__main__":
    main()
