#!/usr/bin/env python
"""QOS routing: different Qualities of Service take different routes.

Section 3 of the paper reviews how the 1990 IGP generation (IGRP, OSPF,
IS-IS) supports a handful of QOS classes by repeating the route
computation per metric; Section 2.3 makes QOS one of the policy
dimensions transit ADs may restrict.  This example shows both halves:

* the same source/destination pair gets a *low-delay* route and a
  different *low-cost* route;
* a transit AD that only serves a QOS class (a policy term restriction)
  pulls that class's traffic through itself;
* ECMA's per-QOS FIB replication is visible as state.

Run:  python examples/qos_routing.py
"""

from dataclasses import replace

from repro.analysis.tables import Table
from repro.policy.qos import QOS
from repro.protocols import make_protocol
from repro.workloads import reference_scenario


def main() -> None:
    scenario = reference_scenario(seed=23, restrictiveness=0.0)
    graph, policies = scenario.graph, scenario.policies
    protocol = make_protocol("orwg", graph, policies)
    protocol.converge()

    # Find a flow whose delay-optimal and cost-optimal routes differ.
    divergent = None
    for flow in scenario.flows:
        delay_route = protocol.source_route(replace(flow, qos=QOS.LOW_DELAY))
        cost_route = protocol.source_route(replace(flow, qos=QOS.LOW_COST))
        if delay_route and cost_route and delay_route != cost_route:
            divergent = (flow, delay_route, cost_route)
            break

    if divergent is None:
        print("no divergent flow in this sample (unusual seed)")
        return
    flow, delay_route, cost_route = divergent
    bw_route = protocol.source_route(replace(flow, qos=QOS.HIGH_BANDWIDTH))
    table = Table("QOS class", "route", "delay", "cost", "bottleneck bw",
                  title=f"QOS-differentiated routing for {flow.src}->{flow.dst}")
    from repro.policy.legality import path_cost, path_metric

    rows = [("low_delay", delay_route), ("low_cost", cost_route)]
    if bw_route:
        rows.append(("high_bandwidth (widest path)", bw_route))
    for name, route in rows:
        table.add(
            name,
            "->".join(map(str, route)),
            f"{path_cost(graph, route, 'delay'):.1f}",
            f"{path_cost(graph, route, 'cost'):.1f}",
            f"{path_metric(graph, route, QOS.HIGH_BANDWIDTH):.1f}",
        )
    print(table.render())

    # ECMA's per-QOS FIBs: one table per class at every AD.
    ecma = make_protocol("ecma", graph.copy(), policies.copy())
    ecma.converge()
    one_qos = make_protocol(
        "ecma", graph.copy(), policies.copy(), qos_classes=frozenset({QOS.DEFAULT})
    )
    one_qos.converge()
    print(
        f"\nECMA routing-table entries at the busiest AD: "
        f"{ecma.max_rib_size()} with {len(QOS.additive_classes())} "
        f"(additive) QOS classes, {one_qos.max_rib_size()} with one -- the "
        f"per-QOS FIB replication the ECMA proposal describes.  The "
        f"bottleneck-composed bandwidth class is not DV-expressible at "
        f"all; only the link-state route servers serve it."
    )


if __name__ == "__main__":
    main()
