#!/usr/bin/env python
"""Hierarchical route synthesis: the Section 6 pruning heuristic at work.

The paper's hardest open problem is route synthesis at scale.  This
example partitions a generated internet into regions, shows the region
super-graph, and compares flat (full-topology) synthesis against
corridor-pruned hierarchical synthesis on the same flows — same routes
found, a fraction of the search states.

Run:  python examples/hierarchical_synthesis.py
"""

from collections import Counter

from repro.analysis.tables import Table
from repro.core.hierarchical import (
    HierarchicalSynthesizer,
    build_super_graph,
    partition_by_region,
)
from repro.core.synthesis import SynthesisStats, synthesize_route
from repro.workloads import scaled_scenario


def main() -> None:
    scenario = scaled_scenario(150, seed=19)
    graph, policies = scenario.graph, scenario.policies
    region = partition_by_region(graph)
    super_graph = build_super_graph(graph, region)
    sizes = Counter(region.values())
    print(
        f"internet: {graph.num_ads} ADs partitioned into "
        f"{super_graph.number_of_nodes()} regions "
        f"(sizes {sorted(sizes.values(), reverse=True)}), "
        f"{super_graph.number_of_edges()} region adjacencies\n"
    )

    flows = [
        f
        for f in scenario.flows
        if synthesize_route(graph, policies, f) is not None
    ]

    flat_stats = SynthesisStats()
    for flow in flows:
        synthesize_route(graph, policies, flow, stats=flat_stats)

    hier = HierarchicalSynthesizer(graph, policies)
    same_route = 0
    for flow in flows:
        flat_route = synthesize_route(graph, policies, flow)
        hier_route = hier.route(flow)
        assert hier_route is not None, "fallback keeps completeness"
        if hier_route.path == flat_route.path:
            same_route += 1

    table = Table("metric", "flat", "hierarchical", title="Synthesis comparison")
    table.add("routable flows resolved", len(flows), len(flows))
    table.add("search states expanded", flat_stats.states_expanded,
              hier.stats.synthesis.states_expanded)
    table.add("corridor hit ratio", "-", f"{hier.stats.hit_ratio:.2f}")
    table.add("full-search fallbacks", "-", hier.stats.fallbacks)
    print(table.render())
    saving = 1 - hier.stats.synthesis.states_expanded / flat_stats.states_expanded
    print(
        f"\n{saving:.0%} of search work saved; "
        f"{same_route}/{len(flows)} flows got the identical optimal route "
        f"(the rest got a legal corridor route)."
    )


if __name__ == "__main__":
    main()
