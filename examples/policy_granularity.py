#!/usr/bin/env python
"""Policy granularity: who pays as policies become source-specific?

Sections 5.2.1 and 5.3 argue that hop-by-hop designs do not scale as
policies discriminate among sources: transit ADs must compute (and
store) per-source routes, while under source routing transit ADs stay
idle and the single advertised path-vector route serves ever fewer
sources.  This example sweeps the number of source classes and shows all
three effects.

Run:  python examples/policy_granularity.py
"""

from repro.analysis.tables import Table
from repro.core.evaluation import evaluate_availability, sample_flows
from repro.policy.generators import source_class_policies
from repro.protocols import make_protocol
from repro.adgraph.generator import TopologyConfig, generate_internet


def main() -> None:
    graph = generate_internet(
        TopologyConfig(
            num_backbones=2,
            regionals_per_backbone=3,
            campuses_per_parent=4,
            seed=5,
        )
    )
    flows = sample_flows(graph, 40, seed=6)
    sources = {f.src for f in flows}

    table = Table(
        "classes",
        "PTs",
        "LS-HbH transit comps",
        "ORWG transit comps",
        "IDRP avail",
        "ORWG avail",
        title="Cost of source-specific policy granularity",
    )
    for classes in (1, 2, 4, 8, 16):
        scen = source_class_policies(graph, classes, refusal_prob=0.25, seed=3)

        def transit_comps(proto, kind):
            return sum(
                n
                for (ad, k), n in proto.network.metrics.computations.items()
                if k == kind and ad not in sources
            )

        hbh = make_protocol("ls-hbh", graph.copy(), scen.policies.copy())
        hbh.converge()
        for f in flows:
            hbh.find_route(f)

        orwg = make_protocol("orwg", graph.copy(), scen.policies.copy())
        orwg.converge()
        orwg_rep = evaluate_availability(
            orwg.graph, orwg.policies, flows, orwg.find_route
        )

        idrp = make_protocol("idrp", graph.copy(), scen.policies.copy())
        idrp.converge()
        idrp_rep = evaluate_availability(
            idrp.graph, idrp.policies, flows, idrp.find_route
        )

        table.add(
            classes,
            scen.policies.num_terms,
            transit_comps(hbh, "policy_route"),
            transit_comps(orwg, "synthesis"),
            f"{idrp_rep.availability:.2f}",
            f"{orwg_rep.availability:.2f}",
        )
    print(table.render())
    print(
        "\nReading: transit-AD computation grows with class count under "
        "hop-by-hop LS,\nstays zero under source routing; IDRP's single "
        "advertised route serves fewer\nsources as granularity rises, "
        "while ORWG keeps full availability."
    )


if __name__ == "__main__":
    main()
