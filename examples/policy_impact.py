#!/usr/bin/env python
"""Administrator tools: predict a policy's impact before advertising it.

Section 6 of the paper calls for "network management tools to assist
[administrators] in predicting the impact of their policies on the
service received from the routing architecture".  This example plays a
regional network's administrator:

1. audit current connectivity (who is already blocked, and by whom);
2. rank the internet's most critical transit ADs;
3. evaluate a proposed restriction *offline* — before flooding it — and
   read the damage report;
4. compare with the softer variant the report suggests.

Run:  python examples/policy_impact.py
"""

from repro.mgmt.audit import connectivity_audit
from repro.mgmt.impact import PolicyChange, PolicyImpactAnalyzer
from repro.policy.sets import ADSet, TimeWindow
from repro.policy.terms import PolicyTerm
from repro.workloads import reference_scenario


def main() -> None:
    scenario = reference_scenario(seed=13, restrictiveness=0.2)
    graph, policies = scenario.graph, scenario.policies

    # 1. Where do we stand?
    audit = connectivity_audit(graph, policies, scenario.flows)
    print(audit.summary())

    # 2. Who can do the most damage?
    analyzer = PolicyImpactAnalyzer(graph, policies, flows=scenario.flows)
    print("\nMost critical transit ADs (flows stranded if they withdrew):")
    critical = analyzer.rank_critical_transits(top=3)
    for ad_id, damage in critical:
        print(f"  AD {ad_id}: {damage} flow(s)")

    # 3. The most critical AD considers going customers-only at daytime.
    owner = critical[0][0]
    from repro.policy.generators import customer_cone

    cone = customer_cone(graph, owner)
    harsh = PolicyChange.replace_with(
        PolicyTerm(owner=owner, sources=ADSet.of(cone)),
    )
    print(f"\nProposal A: AD {owner} carries only its customer cone "
          f"({len(cone)} ADs):")
    print(analyzer.assess(harsh).summary())

    # 4. The softer variant: everyone off-peak, customers any time.
    soft = PolicyChange.replace_with(
        PolicyTerm(owner=owner, sources=ADSet.of(cone)),
        PolicyTerm(owner=owner, window=TimeWindow(20, 8)),
    )
    print(f"\nProposal B: same, plus open transit 20:00-08:00:")
    print(analyzer.assess(soft).summary())


if __name__ == "__main__":
    main()
