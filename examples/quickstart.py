#!/usr/bin/env python
"""Quickstart: build an internet, run the recommended architecture, route.

This walks the core loop of the library in ~40 lines:

1. generate a Figure-1 style inter-AD topology;
2. attach hierarchical transit policies with some random restrictions;
3. run the ORWG/IDPR protocol (link state + source routing + Policy
   Terms) to convergence;
4. ask the source's Route Server for a policy route, with and without
   private route-selection criteria;
5. set the route up and push data packets down the handle.

Run:  python examples/quickstart.py
"""

from repro import (
    FlowSpec,
    RouteSelectionPolicy,
    TopologyConfig,
    generate_internet,
    make_protocol,
    restricted_policies,
)


def main() -> None:
    # 1. A ~60-AD internet: backbones, regionals, campuses, plus lateral
    #    and bypass links.
    graph = generate_internet(
        TopologyConfig(
            num_backbones=3,
            regionals_per_backbone=4,
            campuses_per_parent=4,
            seed=7,
        )
    )
    print(f"topology: {graph.num_ads} ADs, {graph.num_links} links")

    # 2. Policies: open transit at the core, limited transit at hybrids,
    #    random restrictions sprinkled on top.
    scenario = restricted_policies(graph, restrictiveness=0.3, seed=7)
    print(f"policies: {scenario.policies.num_terms} policy terms")

    # 3. Converge the control plane (LSA + PT flooding).
    protocol = make_protocol("orwg", graph, scenario.policies)
    result = protocol.converge()
    print(
        f"converged: {result.messages} messages, "
        f"{result.bytes / 1024:.1f} KB, t={result.time:.0f}"
    )

    # 4. Source-route a flow between two campus ADs.
    stubs = [ad.ad_id for ad in graph.stub_ads()]
    flow = FlowSpec(src=stubs[0], dst=stubs[-1])
    route = protocol.source_route(flow)
    print(f"policy route for {flow}: {'->'.join(map(str, route))}")

    # The source's criteria stay private: avoid an AD on the best route.
    if len(route) > 2:
        selection = RouteSelectionPolicy(avoid_ads=frozenset({route[1]}))
        detour = protocol.source_route(flow, selection)
        print(f"avoiding AD {route[1]}: {detour and '->'.join(map(str, detour))}")

    # 5. Route setup + handle-based data forwarding (Section 5.4.1).
    attempt = protocol.open_route(flow)
    protocol.network.run()
    print(
        f"setup {attempt.state} in {attempt.latency:.1f} time units, "
        f"handle={attempt.handle.src}:{attempt.handle.local_id}"
    )
    protocol.send_data(attempt, packets=10)
    protocol.network.run()
    print(f"delivered {protocol.delivered(attempt)}/10 data packets")


if __name__ == "__main__":
    main()
