"""Naive Bellman-Ford distance vector: the Section 4.3 baseline.

A textbook hop-count DV protocol with triggered (batched) updates.  Two
knobs matter for the convergence experiment (E4):

* ``split_horizon`` / ``poison_reverse`` — off by default, so the protocol
  exhibits the classic *count-to-infinity* the paper attributes to DV
  ("they can converge slowly", Section 4.3): after a failure, stale
  routes bounce between neighbours, inflating one hop per exchange until
  the ``infinity`` cap kills them.
* ``infinity`` — the metric cap (RIP's 16 by default).

The protocol is policy-blind: it computes shortest hop-count routes and
will happily forward through ADs whose policies forbid the traffic --
the availability evaluator counts those as illegal routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple

from repro.adgraph.ad import ADId, InterADLink
from repro.adgraph.graph import InterADGraph
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.protocols.base import ForwardingMode, RoutingProtocol
from repro.protocols.pacing import OverloadDefenseMixin
from repro.protocols.validation import OFF, NeighborGuard, ValidationConfig
from repro.simul.messages import AD_ID_BYTES, METRIC_BYTES, Message
from repro.simul.network import SimNetwork
from repro.simul.node import ProtocolNode

#: Default metric cap ("infinity"), after RIP.
DEFAULT_INFINITY = 16

#: Default delay before a triggered update batch is flushed.  Larger
#: delays coalesce more changes per update (fewer messages) at the cost
#: of slower convergence -- ablation A6 sweeps this trade-off.
TRIGGER_DELAY = 1.0


@dataclass(frozen=True)
class DVUpdate(Message):
    """A distance-vector advertisement: (destination, hop metric) pairs.

    ``poisons`` carries poisoned-reverse destinations separately from
    genuine entries: they are authoritative but must not solicit a
    re-offer (see the re-offer rule in :meth:`DVNode.on_message`).
    """

    entries: Tuple[Tuple[ADId, int], ...]
    poisons: Tuple[ADId, ...] = ()

    def size_bytes(self) -> int:
        return (
            super().size_bytes()
            + len(self.entries) * (AD_ID_BYTES + METRIC_BYTES)
            + len(self.poisons) * AD_ID_BYTES
        )


@dataclass
class _TableEntry:
    metric: int
    next_hop: Optional[ADId]


class DVNode(OverloadDefenseMixin, ProtocolNode):
    """The per-AD Bellman-Ford process."""

    validation: ValidationConfig = OFF
    guard: Optional[NeighborGuard] = None
    trusted_graph: Optional[InterADGraph] = None

    LIE_REASSERT_INTERVAL = 60.0
    LIE_REASSERT_COUNT = 6

    def __init__(
        self,
        ad_id: ADId,
        infinity: int = DEFAULT_INFINITY,
        split_horizon: bool = False,
        poison_reverse: bool = False,
        trigger_delay: float = TRIGGER_DELAY,
    ) -> None:
        super().__init__(ad_id)
        self.infinity = infinity
        self.split_horizon = split_horizon
        self.poison_reverse = poison_reverse
        self.trigger_delay = trigger_delay
        self.table: Dict[ADId, _TableEntry] = {ad_id: _TableEntry(0, ad_id)}
        self._flush_pending = False
        self._active_lies: Dict[str, Optional[ADId]] = {}
        self._lie_ticks_left = 0
        self._lie_tick_pending = False

    # --------------------------------------------------------------- control

    def start(self) -> None:
        self._schedule_flush()

    def on_message(self, sender: ADId, msg: Message) -> None:
        assert isinstance(msg, DVUpdate)
        if self.guard is not None and self.guard.suppresses(sender):
            return
        changed = False
        have_better_news = False
        for dest in msg.poisons:
            entry = self.table.get(dest)
            if entry is not None and entry.next_hop == sender:
                if entry.metric != self.infinity:
                    entry.metric = self.infinity
                    changed = True
                    self._damp_loss(dest)
        for dest, metric in msg.entries:
            if dest == self.ad_id:
                continue
            if self._rejects(sender, dest, metric):
                continue
            candidate = min(metric + 1, self.infinity)
            entry = self.table.get(dest)
            # Purely triggered updates need this re-offer rule: if the
            # sender is worse off than what we could give it, flush our
            # table so it can recover (periodic updates would do this for
            # free, at the cost of never quiescing).
            if entry is not None and entry.next_hop != sender:
                if entry.metric + 1 < metric:
                    have_better_news = True
            if entry is None:
                if candidate < self.infinity:
                    self.table[dest] = _TableEntry(candidate, sender)
                    changed = True
            elif entry.next_hop == sender:
                # News from the current next hop is authoritative, better
                # or worse -- this is what enables count-to-infinity.
                if entry.metric != candidate:
                    if candidate >= self.infinity > entry.metric:
                        self._damp_loss(dest)
                    entry.metric = candidate
                    changed = True
            elif candidate < entry.metric:
                entry.metric = candidate
                entry.next_hop = sender
                changed = True
        if changed:
            self.note_computation("dv_recompute")
        if changed or have_better_news:
            self._schedule_flush()

    def on_link_change(self, link: InterADLink, up: bool) -> None:
        nbr = link.other(self.ad_id)
        if up:
            # A new neighbour: share the full table immediately.
            self._schedule_flush()
            return
        changed = False
        for dest, entry in self.table.items():
            if entry.next_hop == nbr and dest != self.ad_id:
                if entry.metric != self.infinity:
                    entry.metric = self.infinity
                    changed = True
                    self._damp_loss(dest)
        if changed:
            self._enter_holddown()
            self._schedule_flush()

    # ------------------------------------------------------------ validation

    def _rejects(self, sender: ADId, dest: ADId, metric: int) -> bool:
        if not self.validation.checks_enabled:
            return False
        reason = self._check_entry(sender, dest, metric)
        if reason is None:
            return False
        if self.guard is not None:
            self.guard.violation(sender, reason)
        return True

    def _check_entry(self, sender: ADId, dest: ADId, metric: int) -> Optional[str]:
        """Hop-count sanity: metric 0 means "I am the destination" and
        metric 1 means "I am adjacent to it" -- both are checkable
        against the registry; anything deeper is not (DV hides paths)."""
        cfg = self.validation
        if cfg.metric_guard and metric == 0 and dest != sender:
            return "zero metric for foreign destination"
        if cfg.origin_check and self.trusted_graph is not None:
            if not self.trusted_graph.has_ad(dest):
                return "unregistered destination"
            if metric == 1 and not self.trusted_graph.has_link(sender, dest):
                return "claimed adjacency is unregistered"
        return None

    # ----------------------------------------------------------- misbehavior

    def misbehave(self, lie: str, target: Optional[ADId] = None) -> bool:
        applied = self._tell_lie(lie, target)
        if applied and self._lie_ticks_left == 0:
            self._lie_ticks_left = self.LIE_REASSERT_COUNT
            self._arm_lie_tick()
        return applied

    def _tell_lie(self, lie: str, target: Optional[ADId] = None) -> bool:
        if lie == "metric-lie":
            self._active_lies[lie] = None
            self._schedule_flush()
            return True
        if lie == "bogus-origin":
            if target is None:
                return False
            self._active_lies[lie] = target
            self._schedule_flush()
            return True
        # DV is policy-blind (nothing to leak) and carries no sequence
        # numbers or terms (nothing to replay or forge).
        return False

    def behave(self) -> None:
        self._active_lies.clear()
        self._lie_ticks_left = 0

    def _arm_lie_tick(self) -> None:
        if not self._lie_tick_pending:
            self._lie_tick_pending = True
            self.schedule(self.LIE_REASSERT_INTERVAL, self._lie_tick)

    def _lie_tick(self) -> None:
        self._lie_tick_pending = False
        if not self._active_lies or self._lie_ticks_left <= 0:
            return
        self._lie_ticks_left -= 1
        self._schedule_flush()
        if self._lie_ticks_left > 0:
            self._arm_lie_tick()

    def _apply_lies(self, entries: "list") -> "list":
        if "metric-lie" in self._active_lies:
            entries = [(d, 0) for d, _m in entries]
        victim = self._active_lies.get("bogus-origin")
        if victim is not None and victim != self.ad_id:
            entries = [(d, m) for d, m in entries if d != victim]
            entries.append((victim, 0))
            entries.sort()
        return entries

    # ------------------------------------------------------------- advertise

    def _schedule_flush(self) -> None:
        if not self._flush_pending:
            self._flush_pending = True
            self.schedule(self.trigger_delay, self._flush)

    def _flush(self) -> None:
        wait = self._pacing_defers_flush()
        if wait is not None:
            self.schedule(wait, self._flush)
            return
        self._flush_pending = False
        # Suppressed destinations are withdrawn once, then omitted from
        # every flush until their flap penalty decays (repeating the
        # withdrawal would solicit re-offers forever).
        withdraw: set = set()
        silent: set = set()
        if self.pacing.damp and self._damper is not None:
            for dest in self.table:
                if dest != self.ad_id and self._damp_suppressed(dest):
                    (withdraw if self._suppress_withdraw_once(dest) else silent).add(dest)
                    self.suppressed_announcements += 1
        for nbr in self.neighbors():
            entries = []
            poisons = []
            for dest in sorted(self.table):
                entry = self.table[dest]
                if dest in withdraw:
                    entries.append((dest, self.infinity))
                    continue
                if dest in silent:
                    continue
                if self.split_horizon and entry.next_hop == nbr and dest != self.ad_id:
                    if self.poison_reverse:
                        poisons.append(dest)
                    continue
                entries.append((dest, entry.metric))
            if self._active_lies:
                entries = self._apply_lies(entries)
            if entries or poisons:
                self.send(nbr, DVUpdate(tuple(entries), tuple(poisons)))

    def _on_reuse(self, key) -> None:
        # A damped destination became reusable: re-advertise its entry.
        self._schedule_flush()

    # ------------------------------------------------------------ forwarding

    def route_to(self, dest: ADId) -> Optional[ADId]:
        """Next hop toward ``dest``, or ``None`` if unreachable."""
        entry = self.table.get(dest)
        if entry is None or entry.metric >= self.infinity:
            return None
        return entry.next_hop

    def reachable_count(self) -> int:
        return sum(1 for e in self.table.values() if e.metric < self.infinity)


class DistanceVectorProtocol(RoutingProtocol):
    """Driver for the naive DV baseline."""

    name: ClassVar[str] = "naive-dv"
    design_point = None
    mode = ForwardingMode.HOP_BY_HOP
    policy_aware: ClassVar[bool] = False
    #: Naive DV forwards on destination alone.
    fib_key_fields: ClassVar[Tuple[str, ...]] = ("src", "dst")

    def __init__(
        self,
        graph: InterADGraph,
        policies: PolicyDatabase,
        infinity: int = DEFAULT_INFINITY,
        split_horizon: bool = False,
        poison_reverse: bool = False,
        trigger_delay: float = TRIGGER_DELAY,
    ) -> None:
        super().__init__(graph, policies)
        if trigger_delay < 0:
            raise ValueError("trigger_delay must be non-negative")
        self.infinity = infinity
        self.split_horizon = split_horizon
        self.poison_reverse = poison_reverse
        self.trigger_delay = trigger_delay

    def _make_nodes(self, network: SimNetwork) -> None:
        for ad_id in self.graph.ad_ids():
            network.add_node(
                DVNode(
                    ad_id,
                    self.infinity,
                    self.split_horizon,
                    self.poison_reverse,
                    self.trigger_delay,
                )
            )

    def next_hop(
        self, ad_id: ADId, flow: FlowSpec, prev: Optional[ADId]
    ) -> Optional[ADId]:
        node = self.network.node(ad_id)
        assert isinstance(node, DVNode)
        nxt = node.route_to(flow.dst)
        return None if nxt == ad_id else nxt

    def rib_size(self, ad_id: ADId) -> int:
        node = self.network.node(ad_id)
        assert isinstance(node, DVNode)
        return node.reachable_count()
