"""Naive Bellman-Ford distance vector: the Section 4.3 baseline.

A textbook hop-count DV protocol with triggered (batched) updates.  Two
knobs matter for the convergence experiment (E4):

* ``split_horizon`` / ``poison_reverse`` — off by default, so the protocol
  exhibits the classic *count-to-infinity* the paper attributes to DV
  ("they can converge slowly", Section 4.3): after a failure, stale
  routes bounce between neighbours, inflating one hop per exchange until
  the ``infinity`` cap kills them.
* ``infinity`` — the metric cap (RIP's 16 by default).

The protocol is policy-blind: it computes shortest hop-count routes and
will happily forward through ADs whose policies forbid the traffic --
the availability evaluator counts those as illegal routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple

from repro.adgraph.ad import ADId, InterADLink
from repro.adgraph.graph import InterADGraph
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.protocols.base import ForwardingMode, RoutingProtocol
from repro.simul.messages import AD_ID_BYTES, METRIC_BYTES, Message
from repro.simul.network import SimNetwork
from repro.simul.node import ProtocolNode

#: Default metric cap ("infinity"), after RIP.
DEFAULT_INFINITY = 16

#: Default delay before a triggered update batch is flushed.  Larger
#: delays coalesce more changes per update (fewer messages) at the cost
#: of slower convergence -- ablation A6 sweeps this trade-off.
TRIGGER_DELAY = 1.0


@dataclass(frozen=True)
class DVUpdate(Message):
    """A distance-vector advertisement: (destination, hop metric) pairs.

    ``poisons`` carries poisoned-reverse destinations separately from
    genuine entries: they are authoritative but must not solicit a
    re-offer (see the re-offer rule in :meth:`DVNode.on_message`).
    """

    entries: Tuple[Tuple[ADId, int], ...]
    poisons: Tuple[ADId, ...] = ()

    def size_bytes(self) -> int:
        return (
            super().size_bytes()
            + len(self.entries) * (AD_ID_BYTES + METRIC_BYTES)
            + len(self.poisons) * AD_ID_BYTES
        )


@dataclass
class _TableEntry:
    metric: int
    next_hop: Optional[ADId]


class DVNode(ProtocolNode):
    """The per-AD Bellman-Ford process."""

    def __init__(
        self,
        ad_id: ADId,
        infinity: int = DEFAULT_INFINITY,
        split_horizon: bool = False,
        poison_reverse: bool = False,
        trigger_delay: float = TRIGGER_DELAY,
    ) -> None:
        super().__init__(ad_id)
        self.infinity = infinity
        self.split_horizon = split_horizon
        self.poison_reverse = poison_reverse
        self.trigger_delay = trigger_delay
        self.table: Dict[ADId, _TableEntry] = {ad_id: _TableEntry(0, ad_id)}
        self._flush_pending = False

    # --------------------------------------------------------------- control

    def start(self) -> None:
        self._schedule_flush()

    def on_message(self, sender: ADId, msg: Message) -> None:
        assert isinstance(msg, DVUpdate)
        changed = False
        have_better_news = False
        for dest in msg.poisons:
            entry = self.table.get(dest)
            if entry is not None and entry.next_hop == sender:
                if entry.metric != self.infinity:
                    entry.metric = self.infinity
                    changed = True
        for dest, metric in msg.entries:
            if dest == self.ad_id:
                continue
            candidate = min(metric + 1, self.infinity)
            entry = self.table.get(dest)
            # Purely triggered updates need this re-offer rule: if the
            # sender is worse off than what we could give it, flush our
            # table so it can recover (periodic updates would do this for
            # free, at the cost of never quiescing).
            if entry is not None and entry.next_hop != sender:
                if entry.metric + 1 < metric:
                    have_better_news = True
            if entry is None:
                if candidate < self.infinity:
                    self.table[dest] = _TableEntry(candidate, sender)
                    changed = True
            elif entry.next_hop == sender:
                # News from the current next hop is authoritative, better
                # or worse -- this is what enables count-to-infinity.
                if entry.metric != candidate:
                    entry.metric = candidate
                    changed = True
            elif candidate < entry.metric:
                entry.metric = candidate
                entry.next_hop = sender
                changed = True
        if changed:
            self.note_computation("dv_recompute")
        if changed or have_better_news:
            self._schedule_flush()

    def on_link_change(self, link: InterADLink, up: bool) -> None:
        nbr = link.other(self.ad_id)
        if up:
            # A new neighbour: share the full table immediately.
            self._schedule_flush()
            return
        changed = False
        for dest, entry in self.table.items():
            if entry.next_hop == nbr and dest != self.ad_id:
                if entry.metric != self.infinity:
                    entry.metric = self.infinity
                    changed = True
        if changed:
            self._schedule_flush()

    # ------------------------------------------------------------- advertise

    def _schedule_flush(self) -> None:
        if not self._flush_pending:
            self._flush_pending = True
            self.schedule(self.trigger_delay, self._flush)

    def _flush(self) -> None:
        self._flush_pending = False
        for nbr in self.neighbors():
            entries = []
            poisons = []
            for dest in sorted(self.table):
                entry = self.table[dest]
                if self.split_horizon and entry.next_hop == nbr and dest != self.ad_id:
                    if self.poison_reverse:
                        poisons.append(dest)
                    continue
                entries.append((dest, entry.metric))
            if entries or poisons:
                self.send(nbr, DVUpdate(tuple(entries), tuple(poisons)))

    # ------------------------------------------------------------ forwarding

    def route_to(self, dest: ADId) -> Optional[ADId]:
        """Next hop toward ``dest``, or ``None`` if unreachable."""
        entry = self.table.get(dest)
        if entry is None or entry.metric >= self.infinity:
            return None
        return entry.next_hop

    def reachable_count(self) -> int:
        return sum(1 for e in self.table.values() if e.metric < self.infinity)


class DistanceVectorProtocol(RoutingProtocol):
    """Driver for the naive DV baseline."""

    name: ClassVar[str] = "naive-dv"
    design_point = None
    mode = ForwardingMode.HOP_BY_HOP
    policy_aware: ClassVar[bool] = False

    def __init__(
        self,
        graph: InterADGraph,
        policies: PolicyDatabase,
        infinity: int = DEFAULT_INFINITY,
        split_horizon: bool = False,
        poison_reverse: bool = False,
        trigger_delay: float = TRIGGER_DELAY,
    ) -> None:
        super().__init__(graph, policies)
        if trigger_delay < 0:
            raise ValueError("trigger_delay must be non-negative")
        self.infinity = infinity
        self.split_horizon = split_horizon
        self.poison_reverse = poison_reverse
        self.trigger_delay = trigger_delay

    def _make_nodes(self, network: SimNetwork) -> None:
        for ad_id in self.graph.ad_ids():
            network.add_node(
                DVNode(
                    ad_id,
                    self.infinity,
                    self.split_horizon,
                    self.poison_reverse,
                    self.trigger_delay,
                )
            )

    def next_hop(
        self, ad_id: ADId, flow: FlowSpec, prev: Optional[ADId]
    ) -> Optional[ADId]:
        node = self.network.node(ad_id)
        assert isinstance(node, DVNode)
        nxt = node.route_to(flow.dst)
        return None if nxt == ad_id else nxt

    def rib_size(self, ad_id: ADId) -> int:
        node = self.network.node(ad_id)
        assert isinstance(node, DVNode)
        return node.reachable_count()
