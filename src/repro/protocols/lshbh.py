"""Link state + hop-by-hop + policy terms: Section 5.3's design point.

Link state updates carry Policy Terms, so "each AD [has] global knowledge
of all links and their associated policy restrictions" and "can compute
routes satisfying any set of policy restrictions to all other ADs" --
availability is as good as source routing.

The structural cost, which this implementation makes measurable: to
forward a packet, *every AD along the route* must compute (or cache) the
same source-rooted legal route for the packet's (source, destination,
class).  "Because we allow for the possibility of source specific
policies, an AD potentially must compute a separate spanning tree for
each potential source of traffic ... the replicated nature of this
computation may become an excessive burden for transit ADs."

Consistency (and hence loop freedom) relies on deterministic synthesis
over identical LSDBs; each node literally recomputes the *source's* best
route and forwards to its own successor on it.  Per-node computation
counts and cache sizes are experiment E5's hop-by-hop burden curve.
"""

from __future__ import annotations

from typing import ClassVar, Dict, Optional, Tuple

from repro.adgraph.ad import ADId
from repro.core.design_space import LS_HBH_TERMS
from repro.core.synthesis import synthesize_route
from repro.policy.flows import FlowSpec
from repro.protocols.base import ForwardingMode, RoutingProtocol
from repro.protocols.flooding import LSNode
from repro.simul.network import SimNetwork


class LSHbHNode(LSNode):
    """LS node that recomputes each flow's source-rooted policy route."""

    def __init__(self, ad_id, own_terms) -> None:
        super().__init__(ad_id, own_terms=own_terms, include_terms=True)
        # Version-keyed wholesale invalidation, mirroring the policy
        # database's decision-cache contract: one version check guards the
        # whole cache, and stale routes never linger past an LSDB change.
        self._route_cache: Dict[FlowSpec, Optional[Tuple[ADId, ...]]] = {}
        self._route_cache_version = -1
        #: Wholesale invalidations (each LSDB change under churn pays one).
        self.cache_rebuilds = 0

    def flow_route(self, flow: FlowSpec) -> Optional[Tuple[ADId, ...]]:
        """The canonical route for ``flow``, from this node's view.

        Cache misses run the shared constrained synthesis over the local
        view, whose per-edge legality queries are themselves memoized in
        that view's policy database -- the two cache layers together are
        what keeps the paper's "replicated nature of this computation"
        (Section 5.3) affordable enough to measure at scale.
        """
        if self._route_cache_version != self.db_version:
            if self._route_cache:
                self.cache_rebuilds += 1
            self._route_cache.clear()
            self._route_cache_version = self.db_version
        elif flow in self._route_cache:
            return self._route_cache[flow]
        graph, policies = self.local_view()
        if flow.src not in graph or flow.dst not in graph:
            path = None
        else:
            route = synthesize_route(graph, policies, flow)
            path = None if route is None else route.path
        self._route_cache[flow] = path
        self.note_computation("policy_route")
        return path

    def cache_entries(self) -> int:
        """Cached per-flow routes (the replicated-table burden metric)."""
        return len(self._route_cache)


class LinkStateHopByHopProtocol(RoutingProtocol):
    """Driver for the LS / hop-by-hop / policy-terms design point."""

    name: ClassVar[str] = "ls-hbh"
    design_point = LS_HBH_TERMS
    mode = ForwardingMode.HOP_BY_HOP

    def _make_nodes(self, network: SimNetwork) -> None:
        for ad in self.graph.ads():
            network.add_node(
                LSHbHNode(ad.ad_id, own_terms=self.policies.terms_of(ad.ad_id))
            )

    def next_hop(
        self, ad_id: ADId, flow: FlowSpec, prev: Optional[ADId]
    ) -> Optional[ADId]:
        node = self.network.node(ad_id)
        assert isinstance(node, LSHbHNode)
        path = node.flow_route(flow)
        if path is None or ad_id not in path:
            return None
        idx = path.index(ad_id)
        if idx == len(path) - 1:
            return None
        return path[idx + 1]

    def rib_size(self, ad_id: ADId) -> int:
        node = self.network.node(ad_id)
        assert isinstance(node, LSHbHNode)
        return len(node.lsdb) + node.cache_entries()

    def computation_burden(self, ad_id: ADId) -> int:
        """Route computations this AD has performed (E5 metric)."""
        return self.network.metrics.computations.get((ad_id, "policy_route"), 0)

    def cache_rebuilds(self) -> int:
        """Route-cache wholesale invalidations, network-wide (churn cost)."""
        network = self._require_network()
        return sum(
            node.cache_rebuilds
            for node in network.nodes.values()
            if isinstance(node, LSHbHNode)
        )
