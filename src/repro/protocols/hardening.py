"""Robustness features the protocols can enable, individually toggleable.

The base protocols assume a lossless control channel, as the paper's
qualitative design discussion does.  Under real impairments (see
:mod:`repro.faults`) they need the classic trio of hardening mechanisms,
each independently switchable so E11 can ablate what every one buys:

* ``dedup`` -- suppress duplicate control messages by sequence number
  (LS flooding already dedups by LSA sequence; this extends the idea to
  EGP reachability updates and ORWG setup packets);
* ``retransmit`` -- ack + bounded retransmission timers on the messages
  whose loss otherwise wedges the protocol (EGP updates, ORWG route
  setup, LS topology-exchange on link-up);
* ``refresh`` -- periodic re-origination of LSAs for a bounded burst
  after every change, so a lost flood heals instead of persisting as a
  stale LSDB entry.

A :class:`HardeningConfig` travels from the protocol driver to every
node at build time; nodes consult ``self.hardening`` at each decision
point and fall back to the exact legacy behaviour when a feature is off,
which is what keeps unhardened runs byte-identical to the pre-faults
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union

#: The individually toggleable feature names, in canonical order.
FEATURES: Tuple[str, ...] = ("dedup", "retransmit", "refresh")


@dataclass(frozen=True)
class HardeningConfig:
    """Which robustness features are on, and their timer parameters.

    Timer values are in simulated time units; link delays in generated
    internets are 3--30 units, so the defaults sit comfortably above one
    round trip without dragging out convergence.
    """

    dedup: bool = False
    retransmit: bool = False
    refresh: bool = False
    #: Ack wait before a retransmission (about two worst-case RTTs).
    retransmit_timeout: float = 60.0
    #: Retransmissions before giving a message up for lost.
    max_retries: int = 3
    #: Gap between periodic LSA re-originations.
    refresh_interval: float = 40.0
    #: Re-originations after each change (bounded, so runs quiesce).
    refresh_count: int = 2

    @property
    def any_enabled(self) -> bool:
        return self.dedup or self.retransmit or self.refresh

    @property
    def enabled(self) -> Tuple[str, ...]:
        """Enabled feature names, in canonical order."""
        return tuple(f for f in FEATURES if getattr(self, f))

    def __str__(self) -> str:
        return "+".join(self.enabled) if self.any_enabled else "none"


#: No hardening: the exact legacy protocol behaviour.
SOFT = HardeningConfig()

#: Every feature on, default timers.
HARDENED = HardeningConfig(dedup=True, retransmit=True, refresh=True)


def hardening_from(
    value: Union[None, str, Iterable[str], HardeningConfig],
) -> HardeningConfig:
    """Normalize a user-facing hardening spec into a config.

    Accepts a ready config, ``None``/``"none"`` (off), ``"all"`` (every
    feature), one feature name, or an iterable of feature names.
    """
    if isinstance(value, HardeningConfig):
        return value
    if value is None:
        return SOFT
    if isinstance(value, str):
        if value == "none" or value == "":
            return SOFT
        if value == "all":
            return HARDENED
        names: Tuple[str, ...] = tuple(value.replace("+", ",").split(","))
    else:
        names = tuple(value)
    names = tuple(n.strip() for n in names if n.strip())
    unknown = [n for n in names if n not in FEATURES]
    if unknown:
        raise ValueError(
            f"unknown hardening feature(s) {unknown}; choose from {FEATURES}"
        )
    return HardeningConfig(**{n: True for n in names})
