"""ORWG data-plane messages.

Section 5.4.1's packet taxonomy:

* the **setup packet** "carries the full policy route (list of ADs) and a
  Policy Term from each AD that the source AD believes will allow it to
  use this route" -- :class:`SetupPacket`;
* "successive data packets use that handle" -- :class:`DataPacket`, whose
  4-byte handle replaces the source route, the header-length saving E6
  measures;
* acks/naks close the setup loop so the source learns latency and
  failures; teardown reclaims gateway state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.adgraph.ad import ADId
from repro.policy.flows import FlowSpec
from repro.policy.terms import TermRef
from repro.simul.messages import AD_ID_BYTES, Message

#: Modelled size of an encoded flow spec (src, dst, qos, uci, hour).
FLOW_SPEC_BYTES = 2 * AD_ID_BYTES + 3

#: Modelled size of a handle on the wire.
HANDLE_BYTES = 4


@dataclass(frozen=True)
class Handle:
    """A policy-route handle: (source AD, source-local id)."""

    src: ADId
    local_id: int

    def size_bytes(self) -> int:
        return HANDLE_BYTES


@dataclass(frozen=True)
class SetupPacket(Message):
    """First packet of a policy route: full route + cited terms.

    ``hop`` is the index of the AD currently holding the packet within
    ``route``; ``term_refs[i]`` cites the Policy Term the source believes
    authorises transit AD ``route[i+1]`` (one ref per transit AD).
    """

    handle: Handle
    flow: FlowSpec
    route: Tuple[ADId, ...]
    term_refs: Tuple[TermRef, ...]
    hop: int

    def size_bytes(self) -> int:
        return (
            super().size_bytes()
            + self.handle.size_bytes()
            + FLOW_SPEC_BYTES
            + AD_ID_BYTES * len(self.route)
            + sum(ref.size_bytes() for ref in self.term_refs)
            + 1  # hop index
        )


@dataclass(frozen=True)
class SetupAck(Message):
    """Setup succeeded; travels the reverse route back to the source."""

    handle: Handle
    route: Tuple[ADId, ...]
    hop: int  # index within route, moving toward 0

    def size_bytes(self) -> int:
        return (
            super().size_bytes()
            + self.handle.size_bytes()
            + AD_ID_BYTES * len(self.route)
            + 1
        )


@dataclass(frozen=True)
class SetupNak(Message):
    """Setup (or a data packet) rejected at ``rejected_by``.

    Travels the reverse prefix back to the source, tearing down any
    cache entries installed for the handle on the way.
    """

    handle: Handle
    route: Tuple[ADId, ...]
    hop: int
    rejected_by: ADId
    reason: str

    def size_bytes(self) -> int:
        return (
            super().size_bytes()
            + self.handle.size_bytes()
            + AD_ID_BYTES * (len(self.route) + 1)
            + 1
            + len(self.reason.encode("ascii", "replace"))
        )


@dataclass(frozen=True)
class DataPacket(Message):
    """A data packet riding an established policy route.

    Normally it carries only the handle; with ``route`` set it is a
    *datagram-mode* packet carrying the full source route in its header
    (the alternative E6 compares against).  ``payload_bytes`` is modelled
    payload, counted so header overhead can be expressed as a fraction.
    """

    handle: Handle
    flow: FlowSpec
    route: Optional[Tuple[ADId, ...]] = None
    hop: int = 0
    payload_bytes: int = 512

    def header_bytes(self) -> int:
        route_bytes = 0 if self.route is None else AD_ID_BYTES * len(self.route) + 1
        return (
            Message.size_bytes(self)
            + self.handle.size_bytes()
            + FLOW_SPEC_BYTES
            + route_bytes
        )

    def size_bytes(self) -> int:
        return self.header_bytes() + self.payload_bytes


@dataclass(frozen=True)
class TeardownPacket(Message):
    """Explicit teardown of a policy route, reclaiming gateway state."""

    handle: Handle
    route: Tuple[ADId, ...]
    hop: int

    def size_bytes(self) -> int:
        return (
            super().size_bytes()
            + self.handle.size_bytes()
            + AD_ID_BYTES * len(self.route)
            + 1
        )
