"""The ORWG node and protocol driver.

Each AD runs one :class:`ORWGNode`, which combines three roles from
Section 5.4.1 on top of the link-state flooding substrate:

* **flooding participant** -- originates LSAs carrying its links *and*
  its Policy Terms;
* **Route Server** -- "computes Policy Routes based on the advertised
  policy and topology information", via a
  :class:`~repro.core.synthesis.RouteSynthesizer` over the node's local
  view;
* **Policy Gateway** -- validates setup packets against the AD's own
  (live) policy terms, caches handles, performs per-packet validation,
  and tears down on NAK.

The driver exposes the control plane (build/converge), the pure
source-routing data plane (:meth:`ORWGProtocol.source_route`), and the
full setup/data/teardown machinery used by experiment E6
(:meth:`ORWGProtocol.open_route`, :meth:`ORWGProtocol.send_data`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.core.design_space import LS_SRC_TERMS
from repro.core.routes import Route
from repro.core.synthesis import RouteSynthesizer
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.selection import OPEN_SELECTION, RouteSelectionPolicy
from repro.policy.terms import PolicyTerm, TermRef
from repro.protocols.base import ForwardingMode, RoutingProtocol
from repro.protocols.flooding import LSNode
from repro.protocols.orwg.gateway import PGCacheEntry, PolicyGatewayCache
from repro.protocols.orwg.messages import (
    DataPacket,
    Handle,
    SetupAck,
    SetupNak,
    SetupPacket,
    TeardownPacket,
)
from repro.simul.messages import Message
from repro.simul.network import SimNetwork


@dataclass
class SetupAttempt:
    """Source-side record of one policy-route setup."""

    handle: Handle
    flow: FlowSpec
    route: Optional[Tuple[ADId, ...]]
    state: str = "pending"  # pending | established | failed
    reason: str = ""
    start_time: float = 0.0
    end_time: float = 0.0
    data_sent: int = 0

    @property
    def established(self) -> bool:
        return self.state == "established"

    @property
    def latency(self) -> float:
        """Setup round-trip time in simulated time units."""
        if self.state != "established":
            raise ValueError(f"setup is {self.state}, not established")
        return self.end_time - self.start_time


class ORWGNode(LSNode):
    """Route Server + Policy Gateway on the flooding substrate."""

    def __init__(
        self,
        ad_id: ADId,
        live_policies: PolicyDatabase,
        flood_links=None,
        pg_cache_limit=None,
        route_ttl=None,
        level=None,
        synthesis: str = "flat",
    ) -> None:
        from repro.adgraph.ad import Level

        super().__init__(
            ad_id,
            own_terms=live_policies.terms_of(ad_id),
            include_terms=True,
            flood_links=flood_links,
            level=Level.CAMPUS if level is None else level,
        )
        #: Route-server strategy: "flat" runs the exact constrained
        #: search over the whole view; "hierarchical" prunes it to region
        #: corridors first (Section 6's heuristic), falling back to flat
        #: search when corridors miss.
        self.synthesis = synthesis
        #: The shared ground-truth database; a node only ever reads its
        #: *own* terms from it (its own policy is always fresh knowledge).
        self.live_policies = live_policies
        self.pg = PolicyGatewayCache(ad_id, limit=pg_cache_limit)
        #: Policy-route lifetime; None = routes never expire.
        self.route_ttl = route_ttl
        self.attempts: Dict[Handle, SetupAttempt] = {}
        self.delivered: Dict[Handle, int] = {}
        self._next_local_id = 0
        self._synth_cache: Optional[Tuple[int, RouteSynthesizer]] = None
        self._hier_cache: Optional[Tuple[int, object]] = None

    # ----------------------------------------------------------- route server

    def route_server(self) -> RouteSynthesizer:
        """The synthesiser over this node's current local view (cached)."""
        if self._synth_cache is None or self._synth_cache[0] != self.db_version:
            graph, policies = self.local_view()
            self._synth_cache = (self.db_version, RouteSynthesizer(graph, policies))
        return self._synth_cache[1]

    def hierarchical_server(self):
        """Corridor-pruned synthesiser over the local view (cached)."""
        from repro.core.hierarchical import HierarchicalSynthesizer

        if self._hier_cache is None or self._hier_cache[0] != self.db_version:
            graph, policies = self.local_view()
            self._hier_cache = (
                self.db_version,
                HierarchicalSynthesizer(graph, policies),
            )
        return self._hier_cache[1]

    def compute_route(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Route]:
        """Synthesise the preferred policy route from the local view."""
        server = self.route_server()
        if flow.src not in server.graph or flow.dst not in server.graph:
            return None
        self.note_computation("synthesis")
        if self.synthesis == "hierarchical":
            return self.hierarchical_server().route(flow, selection)
        return server.route(flow, selection)

    def compute_k_routes(
        self,
        flow: FlowSpec,
        k: int,
        selection: RouteSelectionPolicy = OPEN_SELECTION,
    ) -> List[Route]:
        server = self.route_server()
        if flow.src not in server.graph or flow.dst not in server.graph:
            return []
        self.note_computation("synthesis")
        return server.k_routes(flow, k, selection)

    # ----------------------------------------------------------------- setup

    def _expiry(self) -> float:
        return float("inf") if self.route_ttl is None else self.now + self.route_ttl

    def new_handle(self) -> Handle:
        self._next_local_id += 1
        return Handle(self.ad_id, self._next_local_id)

    def _own_term(self, ref: Optional[TermRef]) -> Optional[PolicyTerm]:
        """Resolve a citation against our own live terms."""
        if ref is None or ref.owner != self.ad_id:
            return None
        try:
            return self.live_policies.term(ref.owner, ref.term_id)
        except KeyError:
            return None

    def initiate_setup(
        self,
        attempt: SetupAttempt,
        selection: RouteSelectionPolicy = OPEN_SELECTION,
    ) -> None:
        """Compute the route and launch the setup packet (source side)."""
        attempt.start_time = self.now
        route = self.compute_route(attempt.flow, selection)
        if route is None:
            attempt.state = "failed"
            attempt.reason = "no legal route found"
            return
        attempt.route = route.path
        self.attempts[attempt.handle] = attempt
        if len(route.path) == 1:
            attempt.state = "established"
            attempt.end_time = self.now
            return
        # Cite, for every transit AD, the term our view says permits it.
        # Synthesis just answered these exact (owner, flow, prev, next)
        # questions, so each citation resolves from the view database's
        # decision cache rather than a fresh term scan.
        _, view_policies = self.local_view()
        refs: List[TermRef] = []
        for i in range(1, len(route.path) - 1):
            term = view_policies.permitting_term(
                route.path[i], attempt.flow, route.path[i - 1], route.path[i + 1]
            )
            if term is None:
                attempt.state = "failed"
                attempt.reason = f"view has no permitting term at AD {route.path[i]}"
                return
            refs.append(term.ref)
        # The source itself caches the handle (prev=None).
        self.pg.install(
            attempt.handle,
            PGCacheEntry(
                flow=attempt.flow,
                prev=None,
                next=route.path[1],
                term_ref=None,
                policy_version=self.live_policies.version,
                expires_at=self._expiry(),
            ),
        )
        packet = SetupPacket(
            handle=attempt.handle,
            flow=attempt.flow,
            route=route.path,
            term_refs=tuple(refs),
            hop=1,
        )
        self.send(route.path[1], packet)
        if self.hardening.retransmit:
            self.schedule(
                self.hardening.retransmit_timeout,
                self._retry_setup,
                attempt,
                packet,
                self.hardening.max_retries,
            )

    def _retry_setup(
        self, attempt: SetupAttempt, packet: SetupPacket, retries_left: int
    ) -> None:
        """Resend a setup packet whose ack never came (hardening only)."""
        if attempt.state != "pending":
            return
        if retries_left <= 0:
            attempt.state = "failed"
            attempt.reason = "setup timed out after retransmissions"
            attempt.end_time = self.now
            self.pg.remove(attempt.handle)
            return
        self.send(packet.route[1], packet)
        self.schedule(
            self.hardening.retransmit_timeout,
            self._retry_setup,
            attempt,
            packet,
            retries_left - 1,
        )

    # ------------------------------------------------------------- messaging

    def on_message(self, sender: ADId, msg: Message) -> None:
        if isinstance(msg, SetupPacket):
            self._handle_setup(sender, msg)
        elif isinstance(msg, SetupAck):
            self._handle_ack(msg)
        elif isinstance(msg, SetupNak):
            self._handle_nak(msg)
        elif isinstance(msg, DataPacket):
            self._handle_data(sender, msg)
        elif isinstance(msg, TeardownPacket):
            self._handle_teardown(msg)
        else:
            super().on_message(sender, msg)

    def _handle_setup(self, sender: ADId, msg: SetupPacket) -> None:
        i = msg.hop
        route = msg.route
        assert route[i] == self.ad_id
        if i == len(route) - 1:
            # Destination: accept, remember the reverse hop, ack back.
            self.pg.install(
                msg.handle,
                PGCacheEntry(
                    flow=msg.flow,
                    prev=route[i - 1],
                    next=None,
                    term_ref=None,
                    policy_version=self.live_policies.version,
                    expires_at=self._expiry(),
                ),
            )
            self.delivered.setdefault(msg.handle, 0)
            self.send(route[i - 1], SetupAck(msg.handle, route, hop=i - 1))
            return
        if self.hardening.dedup:
            # A retransmitted (or channel-duplicated) setup we already
            # validated: skip revalidation, just forward it along.
            existing = self.pg.lookup(msg.handle)
            if (
                existing is not None
                and existing.flow == msg.flow
                and existing.next == route[i + 1]
            ):
                self.duplicates_ignored += 1
                self.send(
                    route[i + 1],
                    SetupPacket(msg.handle, msg.flow, route, msg.term_refs, hop=i + 1),
                )
                return
        ref = msg.term_refs[i - 1]
        cited = self._own_term(ref)
        result = self.pg.validate_setup(msg.flow, route[i - 1], route[i + 1], cited)
        self.note_computation("pg_validation")
        if not result.ok:
            self.send(
                route[i - 1],
                SetupNak(msg.handle, route, hop=i - 1, rejected_by=self.ad_id,
                         reason=result.reason),
            )
            return
        self.pg.install(
            msg.handle,
            PGCacheEntry(
                flow=msg.flow,
                prev=route[i - 1],
                next=route[i + 1],
                term_ref=ref,
                policy_version=self.live_policies.version,
                expires_at=self._expiry(),
            ),
        )
        self.send(
            route[i + 1],
            SetupPacket(msg.handle, msg.flow, route, msg.term_refs, hop=i + 1),
        )

    def _handle_ack(self, msg: SetupAck) -> None:
        if msg.hop == 0:
            attempt = self.attempts.get(msg.handle)
            if attempt is not None and attempt.state == "pending":
                attempt.state = "established"
                attempt.end_time = self.now
            return
        self.send(msg.route[msg.hop - 1], SetupAck(msg.handle, msg.route, msg.hop - 1))

    def _handle_nak(self, msg: SetupNak) -> None:
        if not msg.route:
            # Data-time NAK: no route in the packet; walk cached prevs.
            entry = self.pg.lookup(msg.handle)
            self.pg.remove(msg.handle)
            attempt = self.attempts.get(msg.handle)
            if attempt is not None:
                attempt.state = "failed"
                attempt.reason = f"rejected by AD {msg.rejected_by}: {msg.reason}"
                return
            if entry is not None and entry.prev is not None:
                self.send(entry.prev, msg)
            return
        self.pg.remove(msg.handle)
        if msg.hop == 0:
            attempt = self.attempts.get(msg.handle)
            if attempt is not None:
                attempt.state = "failed"
                attempt.reason = f"rejected by AD {msg.rejected_by}: {msg.reason}"
            return
        self.send(
            msg.route[msg.hop - 1],
            SetupNak(msg.handle, msg.route, msg.hop - 1, msg.rejected_by, msg.reason),
        )

    def _nak_backward(self, handle: Handle, entry: PGCacheEntry, reason: str) -> None:
        """NAK toward the source using cached prev pointers (no route)."""
        if entry.prev is None:
            return
        self.send(
            entry.prev,
            SetupNak(handle, route=(), hop=-1, rejected_by=self.ad_id, reason=reason),
        )

    def _handle_data(self, sender: ADId, msg: DataPacket) -> None:
        if msg.route is not None:
            self._handle_datagram(sender, msg)
            return
        if msg.flow.dst == self.ad_id:
            entry = self.pg.lookup(msg.handle)
            if entry is not None and sender == entry.prev:
                self.delivered[msg.handle] = self.delivered.get(msg.handle, 0) + 1
            return
        # Single cache lookup; the cited term is only re-resolved when the
        # policy version moved since setup (the revalidation slow path).
        result, entry = self.pg.validate_data(
            msg.handle, sender, self.live_policies.version, self._own_term,
            now=self.now,
        )
        self.note_computation("pg_validation")
        if not result.ok:
            if entry is not None:
                self._nak_backward(msg.handle, entry, result.reason)
            return
        assert entry is not None and entry.next is not None
        graph = self.topology
        if not graph.has_link(self.ad_id, entry.next) or not graph.link(
            self.ad_id, entry.next
        ).up:
            # The route's physical next hop is gone: tear down toward the
            # source so it can re-synthesise over the surviving topology.
            self.pg.remove(msg.handle)
            self._nak_backward(
                msg.handle, entry, f"link {self.ad_id}-{entry.next} is down"
            )
            return
        self.send(entry.next, msg)

    def _handle_datagram(self, sender: ADId, msg: DataPacket) -> None:
        """Datagram mode: full source route in every packet, stateless PGs."""
        assert msg.route is not None
        i = msg.hop
        if msg.route[i] != self.ad_id:
            return
        if i == len(msg.route) - 1:
            self.delivered[msg.handle] = self.delivered.get(msg.handle, 0) + 1
            return
        if i > 0:
            permitted = self.live_policies.transit_permits(
                self.ad_id, msg.flow, msg.route[i - 1], msg.route[i + 1]
            )
            self.pg.validations += 1
            self.note_computation("pg_validation")
            if not permitted:
                self.pg.rejections += 1
                return
        self.send(
            msg.route[i + 1],
            DataPacket(msg.handle, msg.flow, msg.route, i + 1, msg.payload_bytes),
        )

    def _handle_teardown(self, msg: TeardownPacket) -> None:
        self.pg.remove(msg.handle)
        if msg.hop < len(msg.route) - 1:
            self.send(
                msg.route[msg.hop + 1],
                TeardownPacket(msg.handle, msg.route, msg.hop + 1),
            )

    # ------------------------------------------------------ policy dynamics

    def refresh_policy(self) -> None:
        """Re-read our own terms from the live database and re-flood."""
        self.own_terms = self.live_policies.terms_of(self.ad_id)
        self.originate()
        self.on_lsdb_change()

    def _tell_lie(self, lie, target=None) -> bool:
        if lie == "route-leak":
            # ORWG citations resolve against the live database, so the
            # leak plants its forged everything-permitted term there (the
            # liar *can* corrupt its own registry entry and will happily
            # confirm setups citing it); honest receivers validate the
            # flooded copy against the build-time trusted snapshot.
            from repro.policy.terms import PolicyTerm

            self._active_lies[lie] = None
            self.live_policies.add_term(PolicyTerm(owner=self.ad_id))
            self.refresh_policy()
            return True
        return super()._tell_lie(lie, target)

    def inherit_nonvolatile(self, previous) -> None:
        """Also keep the handle id counter, so post-restart setups never
        collide with handles still cached along pre-crash routes."""
        super().inherit_nonvolatile(previous)
        if isinstance(previous, ORWGNode):
            self._next_local_id = previous._next_local_id


class ORWGProtocol(RoutingProtocol):
    """Driver for the recommended design point (LS / source / terms).

    ``flooding`` selects the database-distribution strategy (Section 6,
    research issue 3): ``"full"`` floods every LSA over every link;
    ``"tree"`` restricts flooding to a spanning tree, eliminating
    duplicate deliveries at the cost of robustness when a tree link dies
    (measured by ablation A2).
    """

    name: ClassVar[str] = "orwg"
    design_point = LS_SRC_TERMS
    mode = ForwardingMode.SOURCE

    def __init__(
        self,
        graph: InterADGraph,
        policies: PolicyDatabase,
        flooding: str = "full",
        pg_cache_limit: Optional[int] = None,
        route_ttl: Optional[float] = None,
        synthesis: str = "flat",
    ) -> None:
        super().__init__(graph, policies)
        if flooding not in ("full", "tree"):
            raise ValueError(f"unknown flooding strategy {flooding!r}")
        if route_ttl is not None and route_ttl <= 0:
            raise ValueError("route_ttl must be positive (or None)")
        if synthesis not in ("flat", "hierarchical"):
            raise ValueError(f"unknown synthesis strategy {synthesis!r}")
        self.flooding = flooding
        self.pg_cache_limit = pg_cache_limit
        self.route_ttl = route_ttl
        self.synthesis = synthesis

    def _make_nodes(self, network: SimNetwork) -> None:
        flood_links = None
        if self.flooding == "tree":
            from repro.adgraph.trees import spanning_tree_links

            flood_links = spanning_tree_links(self.graph)
        for ad_id in self.graph.ad_ids():
            network.add_node(
                ORWGNode(
                    ad_id,
                    live_policies=self.policies,
                    flood_links=flood_links,
                    pg_cache_limit=self.pg_cache_limit,
                    route_ttl=self.route_ttl,
                    level=self.graph.ad(ad_id).level,
                    synthesis=self.synthesis,
                )
            )

    def _node(self, ad_id: ADId) -> ORWGNode:
        node = self.network.node(ad_id)
        assert isinstance(node, ORWGNode)
        return node

    # ------------------------------------------------------------ data plane

    def source_route(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Tuple[ADId, ...]]:
        route = self._node(flow.src).compute_route(flow, selection)
        return None if route is None else route.path

    def k_routes(
        self,
        flow: FlowSpec,
        k: int = 3,
        selection: RouteSelectionPolicy = OPEN_SELECTION,
    ) -> List[Route]:
        """The source's alternative routes (feasible under source routing)."""
        return self._node(flow.src).compute_k_routes(flow, k, selection)

    # --------------------------------------------------------- setup machinery

    def open_route(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> SetupAttempt:
        """Launch a policy-route setup; run the network to completion."""
        node = self._node(flow.src)
        attempt = SetupAttempt(handle=node.new_handle(), flow=flow, route=None)
        self.network.clock.call_later(0.0, node.initiate_setup, attempt, selection)
        return attempt

    def send_data(
        self,
        attempt: SetupAttempt,
        packets: int = 1,
        carry_route: bool = False,
        payload_bytes: int = 512,
        spacing: float = 1.0,
    ) -> None:
        """Schedule data packets on an (expected-established) route."""
        if attempt.route is None:
            raise ValueError("setup has no route")
        node = self._node(attempt.flow.src)

        def _send_one() -> None:
            if attempt.flow.dst == attempt.flow.src:
                return
            first_hop = attempt.route[1]
            graph = self.network.graph
            if not graph.link(attempt.flow.src, first_hop).up:
                # The source sees its own dead access link immediately.
                attempt.state = "failed"
                attempt.reason = f"link {attempt.flow.src}-{first_hop} is down"
                node.pg.remove(attempt.handle)
                return
            route = attempt.route if carry_route else None
            hop = 1 if carry_route else 0
            pkt = DataPacket(attempt.handle, attempt.flow, route, hop, payload_bytes)
            node.send(first_hop, pkt)
            attempt.data_sent += 1

        for i in range(packets):
            self.network.clock.call_later(i * spacing, _send_one)

    def teardown(self, attempt: SetupAttempt) -> None:
        """Schedule an explicit teardown of an established route."""
        if attempt.route is None or len(attempt.route) < 2:
            return
        node = self._node(attempt.flow.src)

        def _send() -> None:
            node.pg.remove(attempt.handle)
            node.send(
                attempt.route[1],
                TeardownPacket(attempt.handle, attempt.route, hop=1),
            )

        self.network.clock.call_later(0.0, _send)

    def delivered(self, attempt: SetupAttempt) -> int:
        """Data packets that reached the destination on this route."""
        return self._node(attempt.flow.dst).delivered.get(attempt.handle, 0)

    def notify_policy_change(self, owner: ADId) -> None:
        """After mutating ``policies`` for ``owner``, re-flood its terms."""
        self._node(owner).refresh_policy()

    # --------------------------------------------------------------- metrics

    def rib_size(self, ad_id: ADId) -> int:
        node = self._node(ad_id)
        return len(node.lsdb) + node.pg.size

    def pg_cache_size(self, ad_id: ADId) -> int:
        return self._node(ad_id).pg.size

    def synthesis_stats(self, ad_id: ADId):
        """The Route Server's accumulated synthesis work at an AD."""
        return self._node(ad_id).route_server().stats
