"""ORWG / IDPR: link state + source routing + explicit Policy Terms.

The paper's recommended architecture (Section 5.4), implemented with all
the moving parts of Section 5.4.1:

* :mod:`~repro.protocols.orwg.messages` — setup packets (full policy
  route + cited Policy Terms), acks/naks, handle-bearing data packets;
* :mod:`~repro.protocols.orwg.gateway` — the Policy Gateway function:
  setup validation against the AD's *own* terms, the handle cache, and
  per-packet validation with staleness revalidation;
* :mod:`~repro.protocols.orwg.protocol` — the node (Route Server +
  Policy Gateway on the flooding substrate) and the protocol driver.
"""

from repro.protocols.orwg.gateway import PGCacheEntry, PolicyGatewayCache
from repro.protocols.orwg.messages import (
    DataPacket,
    Handle,
    SetupAck,
    SetupNak,
    SetupPacket,
    TeardownPacket,
)
from repro.protocols.orwg.protocol import ORWGNode, ORWGProtocol, SetupAttempt

__all__ = [
    "DataPacket",
    "Handle",
    "ORWGNode",
    "ORWGProtocol",
    "PGCacheEntry",
    "PolicyGatewayCache",
    "SetupAck",
    "SetupAttempt",
    "SetupNak",
    "SetupPacket",
    "TeardownPacket",
]
