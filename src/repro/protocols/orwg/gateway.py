"""The Policy Gateway function: validation and the handle cache.

Section 5.4.1: "The AD's border gateways, referred to as policy gateways
(PGs), execute the validation for the AD.  In effect, one can view the
PGs as containing routing tables that are filled on demand."  And for
data packets: "PGs use the handle ID as a key into the cache to allow
for some per-packet validation (e.g., is it coming from the AD specified
in the cached PT setup information)."

The cache entry records the policy-database version current at setup;
when the AD's policies change, the next data packet triggers
*revalidation* against the AD's own (fresh) terms rather than blind
forwarding -- the mechanism by which "policy and topology change much
more slowly than the time required for route setup" is kept safe.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.adgraph.ad import ADId
from repro.policy.flows import FlowSpec
from repro.policy.terms import PolicyTerm, TermRef
from repro.protocols.orwg.messages import Handle


@dataclass
class PGCacheEntry:
    """One established policy route, as seen by one transit AD's PG.

    ``expires_at`` implements the policy route's finite lifetime ("PRs
    may have a long lifetime", Section 5.4.1 -- long, not infinite): an
    expired entry fails validation exactly like an evicted one, forcing
    the source to refresh with a new setup.  ``inf`` means no expiry.
    """

    flow: FlowSpec
    prev: Optional[ADId]
    next: Optional[ADId]
    term_ref: Optional[TermRef]
    policy_version: int
    packets_forwarded: int = 0
    expires_at: float = float("inf")


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of a PG check."""

    ok: bool
    reason: str = ""


class PolicyGatewayCache:
    """Handle-keyed forwarding/validation state of one AD's PG.

    ``limit`` bounds the number of cached policy routes ("policy gateway
    state management and limitations", Section 6): when full, the least
    recently *used* handle is evicted.  Data packets riding an evicted
    handle fail validation ("unknown handle") and force a re-setup --
    ablation A3 measures the delivery cost of undersized PG caches.
    """

    def __init__(self, ad_id: ADId, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError("cache limit must be positive (or None)")
        self.ad_id = ad_id
        self.limit = limit
        self._entries: "OrderedDict[Handle, PGCacheEntry]" = OrderedDict()
        self.validations = 0
        self.revalidations = 0
        self.rejections = 0
        self.evictions = 0

    # ----------------------------------------------------------------- setup

    def validate_setup(
        self,
        flow: FlowSpec,
        prev: Optional[ADId],
        nxt: Optional[ADId],
        cited: Optional[PolicyTerm],
    ) -> ValidationResult:
        """Check a setup traversal against the AD's own policy.

        ``cited`` is the term the source cited, already resolved against
        the AD's current terms (``None`` if the citation is dangling).
        Endpoint ADs (prev or next missing) always accept: their own
        traffic needs no transit permission.
        """
        self.validations += 1
        if prev is None or nxt is None:
            return ValidationResult(True)
        if cited is None:
            self.rejections += 1
            return ValidationResult(False, "cited term does not exist")
        if not cited.permits(flow, prev, nxt):
            self.rejections += 1
            return ValidationResult(False, "cited term does not permit flow")
        return ValidationResult(True)

    def install(self, handle: Handle, entry: PGCacheEntry) -> None:
        """Cache an accepted setup under its handle (evicting if full)."""
        self._entries[handle] = entry
        self._entries.move_to_end(handle)
        if self.limit is not None:
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                self.evictions += 1

    def remove(self, handle: Handle) -> bool:
        """Tear down a handle (idempotent)."""
        return self._entries.pop(handle, None) is not None

    # ------------------------------------------------------------------ data

    def lookup(self, handle: Handle) -> Optional[PGCacheEntry]:
        entry = self._entries.get(handle)
        if entry is not None:
            self._entries.move_to_end(handle)
        return entry

    def validate_data(
        self,
        handle: Handle,
        sender: Optional[ADId],
        current_version: int,
        resolve_term: Callable[[Optional[TermRef]], Optional[PolicyTerm]],
        now: float = 0.0,
    ) -> Tuple[ValidationResult, Optional[PGCacheEntry]]:
        """Per-packet validation of a data packet riding ``handle``.

        Checks the packet arrives from the cached previous AD, that the
        route's lifetime has not expired, and -- if the AD's policy
        database has changed since setup -- revalidates the cached term
        against the fresh database.  ``resolve_term`` maps the cached
        citation to the AD's *current* term; it is called only on the
        version-changed path, so the per-packet fast path (the common case
        Section 5.4.1 designs for) costs one cache lookup and one version
        compare, with no term resolution at all.

        Returns the result together with the cache entry it acted on
        (``None`` for an unknown handle), so callers can forward or NAK
        without a second lookup.
        """
        entry = self._entries.get(handle)
        if entry is None:
            self.rejections += 1
            return ValidationResult(False, "unknown handle"), None
        if now > entry.expires_at:
            self.rejections += 1
            self._entries.pop(handle, None)
            return ValidationResult(False, "policy route lifetime expired"), entry
        if entry.prev is not None and sender != entry.prev:
            self.rejections += 1
            return ValidationResult(False, "packet arrived from unexpected AD"), entry
        if entry.policy_version != current_version and entry.prev is not None:
            self.revalidations += 1
            current_term = resolve_term(entry.term_ref)
            if current_term is None or not current_term.permits(
                entry.flow, entry.prev, entry.next
            ):
                self.rejections += 1
                self._entries.pop(handle, None)
                return (
                    ValidationResult(False, "policy changed; route no longer legal"),
                    entry,
                )
            entry.policy_version = current_version
        entry.packets_forwarded += 1
        self._entries.move_to_end(handle)
        return ValidationResult(True), entry

    # --------------------------------------------------------------- metrics

    @property
    def size(self) -> int:
        """Number of cached policy routes (PG state, Section 6 issue 3)."""
        return len(self._entries)

    def total_forwarded(self) -> int:
        return sum(e.packets_forwarded for e in self._entries.values())
