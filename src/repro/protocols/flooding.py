"""Link-state flooding substrate.

Shared by every link-state protocol here (plain SPF, LS-hop-by-hop,
ORWG, and the Section 5.5 variants): each AD originates a Link State
Advertisement describing its incident inter-AD links (with metrics and
status) and -- when the protocol expresses policy in terms -- its Policy
Terms (Section 5.3: "link state updates can be augmented to include
policy related attributes of the resources they advertise").

LSAs carry sequence numbers; nodes flood newer LSAs to all neighbours
except the sender, so after quiescence every node's LSDB is identical
(tested as an invariant).  On a link status change both endpoints
re-originate.  On link *up*, each endpoint additionally sends its whole
LSDB across the new adjacency (database exchange), so partitioned
knowledge heals.

:meth:`LSNode.local_view` reconstructs an
:class:`~repro.adgraph.graph.InterADGraph` + policy database from the
LSDB -- the node's *believed* internet, on which all its route
computations run.  A link is believed up only if **both** endpoint LSAs
report it up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.adgraph.ad import (
    AD,
    ADId,
    ADKind,
    InterADLink,
    Level,
    LinkKind,
    canonical_link_key,
)
from repro.adgraph.graph import InterADGraph
from repro.policy.database import PolicyDatabase
from repro.policy.terms import PolicyTerm
from repro.protocols.hardening import SOFT, HardeningConfig
from repro.protocols.pacing import OverloadDefenseMixin
from repro.protocols.perf import FAST, PerfConfig
from repro.protocols.validation import OFF, NeighborGuard, ValidationConfig
from repro.simul.messages import AD_ID_BYTES, METRIC_BYTES, Message
from repro.simul.node import ProtocolNode

#: Term id used by a lying LS node for terms it fabricates; far above any
#: id the policy generators assign, so forgeries never shadow real terms.
FORGED_TERM_ID = 9_999

#: Per-LSA deltas buffered between local-view refreshes; past this the
#: delta path gives up and the next view is a full rebuild, bounding the
#: buffer under churn storms that never query a route.
MAX_PENDING_DELTAS = 4096

#: Edge-change batches retained for incremental-SPF consumers; an SPF
#: state older than the retained window falls back to a full recompute.
MAX_EDGE_BATCHES = 512


@dataclass(frozen=True, slots=True)
class LinkRecord:
    """One incident link as described in an LSA."""

    neighbor: ADId
    delay: float
    cost: float
    up: bool
    bandwidth: float = 1.0

    def size_bytes(self) -> int:
        return AD_ID_BYTES + 3 * METRIC_BYTES + 1


@dataclass(frozen=True, slots=True)
class LinkStateAd(Message):
    """A link state advertisement, optionally carrying Policy Terms.

    ``origin_level`` carries the originating AD's hierarchy level so that
    receivers can partition their view into regions (the hierarchical
    route server of :mod:`repro.core.hierarchical`); one byte on the wire.
    """

    origin: ADId
    seq: int
    links: Tuple[LinkRecord, ...]
    terms: Tuple[PolicyTerm, ...] = ()
    origin_level: Level = Level.CAMPUS
    #: Lazily memoized wire size -- every field is frozen, but the
    #: accounting layer re-asks per *delivery* and a flooded LSA is
    #: delivered once per adjacency it crosses.
    _size: int = field(default=0, init=False, repr=False, compare=False)

    def size_bytes(self) -> int:
        size = self._size
        if size == 0:
            # Explicit base call: slots=True re-creates the class, so the
            # zero-arg super() closure would point at the discarded
            # original.
            size = (
                Message.size_bytes(self)
                + AD_ID_BYTES  # origin
                + 4  # sequence number
                + 1  # origin level
                + sum(rec.size_bytes() for rec in self.links)
                + sum(t.size_bytes() for t in self.terms)
            )
            object.__setattr__(self, "_size", size)
        return size


@dataclass(frozen=True, slots=True)
class LSDBExchange(Message):
    """Full-database exchange sent across a newly-up adjacency.

    ``token`` (nonzero only under retransmit hardening) identifies the
    exchange for acknowledgement; the extra four bytes are only charged
    when it is carried, so unhardened runs keep legacy byte counts.
    """

    ads: Tuple[LinkStateAd, ...]
    token: int = 0
    _size: int = field(default=0, init=False, repr=False, compare=False)

    def size_bytes(self) -> int:
        from repro.simul.messages import HEADER_BYTES

        size = self._size
        if size == 0:
            size = (
                HEADER_BYTES
                + sum(a.size_bytes() - HEADER_BYTES for a in self.ads)
                + (4 if self.token else 0)
            )
            object.__setattr__(self, "_size", size)
        return size


@dataclass(frozen=True, slots=True)
class ExchangeAck(Message):
    """Acknowledges a tokened :class:`LSDBExchange` (hardening only)."""

    token: int

    def size_bytes(self) -> int:
        return Message.size_bytes(self) + 4


class LSNode(OverloadDefenseMixin, ProtocolNode):
    """A flooding participant with a link-state database."""

    #: Whether a pacing-deferred origination timer is already in flight.
    _originate_deferred = False

    #: Robustness features; the protocol driver stamps its own config at
    #: build time, so directly-constructed nodes default to legacy mode.
    hardening: HardeningConfig = SOFT
    #: Receiver-side validation; the driver stamps config, guard, and the
    #: trusted registries at build time (defaults keep legacy behaviour).
    validation: ValidationConfig = OFF
    guard: Optional[NeighborGuard] = None
    trusted_graph: Optional[InterADGraph] = None
    trusted_policies: Optional[PolicyDatabase] = None
    #: Delta-recompute fast paths; the driver stamps its config at build
    #: time (directly-constructed nodes default to everything on).
    perf: PerfConfig = FAST

    def __init__(
        self,
        ad_id: ADId,
        own_terms: Tuple[PolicyTerm, ...] = (),
        include_terms: bool = True,
        flood_links: Optional[frozenset] = None,
        level: Level = Level.CAMPUS,
    ) -> None:
        super().__init__(ad_id)
        self.own_terms = own_terms if include_terms else ()
        self.include_terms = include_terms
        #: Our hierarchy level, advertised in our LSA so receivers can
        #: region-partition their views.
        self.level = level
        #: Database-distribution scope (Section 6, research issue 3):
        #: ``None`` floods over every live link; a set of canonical link
        #: keys restricts flooding to those links (e.g. a spanning tree),
        #: which minimises duplicate deliveries but loses robustness when
        #: a scoped link fails -- ablation A2 measures both sides.
        self.flood_links = flood_links
        self.lsdb: Dict[ADId, LinkStateAd] = {}
        #: Bumped whenever the LSDB changes; caches key off it.
        self.db_version = 0
        self._seq = 0
        self._view_cache: Optional[Tuple[int, InterADGraph, PolicyDatabase]] = None
        #: Stale/duplicate LSAs suppressed (the flooding dedup at work).
        self.duplicates_ignored = 0
        # Delta local-view state: per-LSA deltas recorded by _install since
        # the cached view was last refreshed, as (origin, previous LSA or
        # None).  Replaying them against the cached view is what makes
        # local_view() incremental; any structural surprise falls back to
        # a full rebuild (and resets all of this).
        self._pending_deltas: List[Tuple[ADId, Optional[LinkStateAd]]] = []
        self._pending_overflow = False
        #: Sticky: some installed LSA carried a term owned by another AD
        #: (term forgery); per-owner policy deltas are then unsound, so
        #: views rebuild from scratch for the rest of this node's life.
        self._cross_owner_terms = False
        #: (version_from, version_to, sorted changed link keys) per delta
        #: view refresh; lets SPF consumers repair instead of recompute.
        self._edge_batches: List[Tuple[int, int, List[Tuple[ADId, ADId]]]] = []
        #: Full view rebuilds vs delta refreshes (observability).
        self.view_rebuilds = 0
        self.view_delta_refreshes = 0
        # Refresh hardening: re-originations left in the current burst,
        # and whether a tick is already scheduled (at most one in flight).
        self._refresh_left = 0
        self._refresh_pending = False
        # Retransmit hardening: token generator and unacked DB exchanges.
        self._exchange_seq = 0
        self._pending_exchanges: Dict[int, Tuple[ADId, LSDBExchange]] = {}
        # Misbehavior state: active lie -> victim (None when honest, which
        # keeps every honest-path branch below a single falsy check).
        self._active_lies: Dict[str, Optional[ADId]] = {}
        self._forged_terms: Tuple[PolicyTerm, ...] = ()
        self._lie_ticks_left = 0
        self._lie_tick_pending = False

    def _flood(self, msg: Message, exclude: Optional[ADId] = None) -> None:
        """Send to flooding-scope neighbours (all, or scoped links only)."""
        for nbr in self.neighbors():
            if nbr == exclude:
                continue
            if self.flood_links is not None:
                key = (min(self.ad_id, nbr), max(self.ad_id, nbr))
                if key not in self.flood_links:
                    continue
            self.send(nbr, msg)

    # ---------------------------------------------------------------- origin

    def _build_own_lsa(self) -> LinkStateAd:
        self._seq += 1
        records = []
        for link in self.topology.links_of(self.ad_id, include_down=True):
            nbr = link.other(self.ad_id)
            up = link.up
            if up and self.pacing.damp and self._damper is not None:
                if self._damp_suppressed((min(self.ad_id, nbr), max(self.ad_id, nbr))):
                    # A damped link is advertised down until its penalty
                    # decays, so its flapping stops rippling outward.
                    up = False
            records.append(
                LinkRecord(
                    neighbor=nbr,
                    delay=link.metric("delay"),
                    cost=link.metric("cost"),
                    up=up,
                    bandwidth=link.metric("bandwidth"),
                )
            )
        lsa = LinkStateAd(
            origin=self.ad_id,
            seq=self._seq,
            links=tuple(records),
            terms=self.own_terms,
            origin_level=self.level,
        )
        if self._active_lies:
            lsa = self._apply_lies(lsa)
        return lsa

    def _apply_lies(self, lsa: LinkStateAd) -> LinkStateAd:
        """Rewrite our own LSA according to the active lies."""
        links = lsa.links
        terms = lsa.terms
        level = lsa.origin_level
        if "metric-lie" in self._active_lies:
            links = tuple(
                LinkRecord(r.neighbor, 0.0, 0.0, r.up, r.bandwidth)
                for r in links
            )
        victim = self._active_lies.get("bogus-origin")
        if victim is not None:
            # The reciprocal half of the fabricated adjacency: the local
            # view believes a link only if both endpoints advertise it.
            links = links + (LinkRecord(victim, 1.0, 1.0, True),)
        if self._forged_terms:
            terms = terms + self._forged_terms
        return LinkStateAd(
            origin=lsa.origin,
            seq=lsa.seq,
            links=links,
            terms=terms,
            origin_level=level,
        )

    def _originate(self) -> None:
        """(Re)build our own LSA and flood it (no refresh re-arming)."""
        lsa = self._build_own_lsa()
        self._install(lsa)
        self._flood(lsa)

    def originate(self) -> None:
        """(Re)build our own LSA and flood it.

        Under refresh hardening every change-driven origination also arms
        a bounded burst of periodic re-originations, so a flood lost to
        channel impairment heals at the next tick.

        Under pacing, originations closer together than the minimum
        advertisement interval (or inside a hold-down window) coalesce
        into one deferred origination that advertises the state current
        at fire time.
        """
        if self.pacing.any_enabled:
            wait = self._pacing_defers_flush()
            if wait is not None:
                if not self._originate_deferred:
                    self._originate_deferred = True
                    self.schedule(wait, self._deferred_originate)
                return
        self._originate()
        if self.hardening.refresh:
            self._refresh_left = self.hardening.refresh_count
            if not self._refresh_pending:
                self._refresh_pending = True
                self.schedule(self.hardening.refresh_interval, self._refresh_tick)

    def _deferred_originate(self) -> None:
        self._originate_deferred = False
        self.originate()  # re-checks the gate (hold-down may have grown)

    def _on_reuse(self, key) -> None:
        # A damped link's penalty decayed under the reuse threshold:
        # advertise its true current state again.
        self.originate()

    def _refresh_tick(self) -> None:
        self._refresh_pending = False
        if self._refresh_left <= 0:
            return
        self._refresh_left -= 1
        self._originate()
        if self._refresh_left > 0:
            self._refresh_pending = True
            self.schedule(self.hardening.refresh_interval, self._refresh_tick)

    # --------------------------------------------------------------- control

    def start(self) -> None:
        self.originate()

    def _install(self, lsa: LinkStateAd) -> bool:
        """Store an LSA if newer; returns whether the LSDB changed."""
        current = self.lsdb.get(lsa.origin)
        if current is not None and current.seq >= lsa.seq:
            self.duplicates_ignored += 1
            return False
        if lsa.terms and not self._cross_owner_terms:
            origin = lsa.origin
            if any(t.owner != origin for t in lsa.terms):
                self._cross_owner_terms = True
        if self._view_cache is not None and self.perf.delta_view:
            if len(self._pending_deltas) >= MAX_PENDING_DELTAS:
                self._pending_overflow = True
                self._pending_deltas.clear()
            elif not self._pending_overflow:
                self._pending_deltas.append((lsa.origin, current))
        self.lsdb[lsa.origin] = lsa
        self.db_version += 1
        return True

    def on_message(self, sender: ADId, msg: Message) -> None:
        if isinstance(msg, (LinkStateAd, LSDBExchange)):
            profiler = self.profiler
            if profiler is None:
                self._on_flood_message(sender, msg)
            else:
                with profiler.phase("proto.flood"):
                    self._on_flood_message(sender, msg)
        elif isinstance(msg, ExchangeAck):
            self._pending_exchanges.pop(msg.token, None)
        else:
            super().on_message(sender, msg)

    def _on_flood_message(self, sender: ADId, msg: Message) -> None:
        """Handle the flooding-substrate messages (LSA / DB exchange)."""
        if self.guard is not None and self.guard.suppresses(sender):
            return
        if isinstance(msg, LinkStateAd):
            if self._rejects(sender, msg):
                return
            if self._install(msg):
                self._flood(msg, exclude=sender)
                self.on_lsdb_change()
        else:
            assert isinstance(msg, LSDBExchange)
            if msg.token:
                self.send(sender, ExchangeAck(msg.token))
            changed = False
            for lsa in msg.ads:
                if self._rejects(sender, lsa):
                    continue
                if self._install(lsa):
                    self._flood(lsa, exclude=sender)
                    changed = True
            if changed:
                self.on_lsdb_change()

    # ------------------------------------------------------------ validation

    def _rejects(self, sender: ADId, lsa: LinkStateAd) -> bool:
        """Validate an LSA against the trusted registries; charge failures.

        Rejection happens *before* install-and-reflood, so a validating
        receiver never propagates a lie and every violation is charged
        to the AD that actually injected it.
        """
        if not self.validation.checks_enabled:
            return False
        reason = self._check_lsa(lsa)
        if reason is None:
            return False
        if self.guard is not None:
            self.guard.violation(sender, reason)
        return True

    def _check_lsa(self, lsa: LinkStateAd) -> Optional[str]:
        v = self.validation
        graph = self.trusted_graph
        if v.origin_check and graph is not None:
            if not graph.has_ad(lsa.origin):
                return f"unknown origin AD {lsa.origin}"
            for rec in lsa.links:
                if not graph.has_link(lsa.origin, rec.neighbor):
                    return (
                        f"unregistered adjacency "
                        f"{lsa.origin}-{rec.neighbor}"
                    )
        if v.metric_guard and graph is not None:
            for rec in lsa.links:
                if not graph.has_link(lsa.origin, rec.neighbor):
                    continue  # origin_check's department
                link = graph.link(lsa.origin, rec.neighbor)
                if (
                    rec.delay < link.metric("delay")
                    or rec.cost < link.metric("cost")
                ):
                    return (
                        f"metric below registered cost on "
                        f"{lsa.origin}-{rec.neighbor}"
                    )
        if v.seq_guard:
            current = self.lsdb.get(lsa.origin)
            if (
                current is not None
                and lsa.seq > current.seq + v.max_seq_jump
            ):
                return f"implausible sequence jump from AD {lsa.origin}"
        if v.term_guard and self.trusted_policies is not None:
            for term in lsa.terms:
                if term.owner != lsa.origin:
                    return (
                        f"AD {lsa.origin} advertises a term owned by "
                        f"AD {term.owner}"
                    )
                if term not in self.trusted_policies.terms_of(term.owner):
                    return f"unregistered policy term from AD {lsa.origin}"
        return None

    # ----------------------------------------------------------- misbehavior

    #: A liar re-asserts its lies periodically (a leaking AD keeps
    #: leaking); the burst is bounded so runs still quiesce.
    LIE_REASSERT_INTERVAL = 60.0
    LIE_REASSERT_COUNT = 6

    def misbehave(self, lie: str, target: Optional[ADId] = None) -> bool:
        applied = self._tell_lie(lie, target)
        if applied:
            self._lie_ticks_left = self.LIE_REASSERT_COUNT
            if not self._lie_tick_pending:
                self._lie_tick_pending = True
                self.schedule(self.LIE_REASSERT_INTERVAL, self._lie_tick)
        return applied

    def _tell_lie(self, lie: str, target: Optional[ADId]) -> bool:
        if lie == "route-leak":
            if not self.include_terms:
                # Term-free LS variants never advertise transit
                # willingness at all (policy lives in the static
                # hierarchy ordering), so there is nothing to leak.
                return False
            # Advertise transit the registry never authorized: one
            # forged own-owned term permitting everything for free.
            self._active_lies[lie] = None
            self._forged_terms = self._forged_terms + (
                PolicyTerm(owner=self.ad_id, term_id=FORGED_TERM_ID),
            )
            self.originate()
            return True
        if lie == "metric-lie":
            self._active_lies[lie] = None
            self.originate()
            return True
        if lie == "bogus-origin":
            if target is None:
                return False
            self._active_lies[lie] = target
            self.originate()  # our half of the fabricated adjacency
            self._flood_bogus_origin(target)
            return True
        if lie == "stale-replay":
            self._active_lies[lie] = None
            self._flood_replays()
            return True
        if lie == "term-forgery":
            victim = target
            if not self.include_terms:
                return False
            if victim is None:
                nbrs = self.neighbors()
                if not nbrs:
                    return False
                victim = min(nbrs)
            self._active_lies[lie] = victim
            self._forged_terms = self._forged_terms + (
                PolicyTerm(owner=victim, term_id=FORGED_TERM_ID),
            )
            self.originate()
            return True
        return False

    def _flood_bogus_origin(self, victim: ADId) -> None:
        """Forge the victim's LSA: it now connects only to us."""
        stored = self.lsdb.get(victim)
        fake = LinkStateAd(
            origin=victim,
            seq=(stored.seq if stored is not None else 0) + 1,
            links=(LinkRecord(self.ad_id, 1.0, 1.0, True),),
            terms=stored.terms if stored is not None else (),
            origin_level=(
                stored.origin_level if stored is not None else Level.CAMPUS
            ),
        )
        self._install(fake)
        self._flood(fake)
        self.on_lsdb_change()

    def _flood_replays(self) -> None:
        """Re-flood "old" LSAs under sequence numbers outranking fresh ones."""
        for origin in sorted(self.lsdb):
            if origin == self.ad_id:
                continue
            old = self.lsdb[origin]
            # An LSA from before the origin's links came up: the stale
            # snapshot the inflated sequence number lets win.
            self._flood(
                LinkStateAd(
                    origin=origin,
                    seq=old.seq + 1_000,
                    links=(),
                    terms=old.terms,
                    origin_level=old.origin_level,
                )
            )

    def _lie_tick(self) -> None:
        self._lie_tick_pending = False
        if self._lie_ticks_left <= 0 or not self._active_lies:
            return
        self._lie_ticks_left -= 1
        if any(
            lie in self._active_lies
            for lie in ("route-leak", "metric-lie", "term-forgery")
        ):
            self.originate()
        victim = self._active_lies.get("bogus-origin")
        if victim is not None:
            self._flood_bogus_origin(victim)
        if "stale-replay" in self._active_lies:
            self._flood_replays()
        if self._lie_ticks_left > 0:
            self._lie_tick_pending = True
            self.schedule(self.LIE_REASSERT_INTERVAL, self._lie_tick)

    def behave(self) -> None:
        self._active_lies.clear()
        self._forged_terms = ()
        self._lie_ticks_left = 0

    def on_link_change(self, link: InterADLink, up: bool) -> None:
        originate = True
        if self.pacing.any_enabled:
            nbr = link.other(self.ad_id)
            key = (min(self.ad_id, nbr), max(self.ad_id, nbr))
            newly_suppressed = False
            if not up:
                self._enter_holddown()
                newly_suppressed = self._damp_loss(key)
            if (
                self.pacing.damp
                and not newly_suppressed
                and self._damp_suppressed(key)
            ):
                # A suppressed link's flaps no longer drive originations;
                # our LSA keeps advertising it down until reuse.  (The
                # origination when suppression *starts* is what flips the
                # advertisement to down.)
                self.suppressed_announcements += 1
                originate = False
        if originate:
            self.originate()
        if up:
            # Database exchange across the new adjacency.
            nbr = link.other(self.ad_id)
            ads = tuple(self.lsdb[o] for o in sorted(self.lsdb))
            if self.hardening.retransmit:
                self._exchange_seq += 1
                token = self._exchange_seq
                exchange = LSDBExchange(ads, token=token)
                self._pending_exchanges[token] = (nbr, exchange)
                self.send(nbr, exchange)
                self.schedule(
                    self.hardening.retransmit_timeout,
                    self._retry_exchange,
                    token,
                    self.hardening.max_retries,
                )
            else:
                self.send(nbr, LSDBExchange(ads))
        self.on_lsdb_change()

    def _retry_exchange(self, token: int, retries_left: int) -> None:
        pending = self._pending_exchanges.get(token)
        if pending is None:
            return
        if retries_left <= 0:
            del self._pending_exchanges[token]
            return
        nbr, exchange = pending
        self.send(nbr, exchange)
        self.schedule(
            self.hardening.retransmit_timeout,
            self._retry_exchange,
            token,
            retries_left - 1,
        )

    def inherit_nonvolatile(self, previous: ProtocolNode) -> None:
        """Keep the LSA sequence counter across a state-losing restart.

        Without this (the NVRAM register real routers keep for exactly
        this reason) the reborn node's seq-1 LSA would be rejected as
        stale by every neighbour still holding its pre-crash LSA.
        """
        if isinstance(previous, LSNode):
            self._seq = previous._seq

    def on_lsdb_change(self) -> None:
        """Hook for subclasses (cache invalidation etc.).  Default: none."""

    # ------------------------------------------------------------ local view

    def local_view(self) -> Tuple[InterADGraph, PolicyDatabase]:
        """The believed internet reconstructed from the LSDB (cached).

        With the ``delta_view`` fast path on, a stale cached view is
        brought up to date by replaying the per-LSA deltas recorded since
        it was built -- same graph and policy objects, mutated in place
        (consumers re-key their own caches off ``db_version``, never off
        object identity).  Any structural surprise -- cross-owner terms,
        an origin changing hierarchy level, delta-buffer overflow --
        falls back to the full rebuild, which is also the oracle the
        equivalence suite checks the delta path against.
        """
        cache = self._view_cache
        if cache is not None and cache[0] == self.db_version:
            return cache[1], cache[2]
        if (
            cache is not None
            and self.perf.delta_view
            and not self._pending_overflow
            and not self._cross_owner_terms
            and self._apply_view_deltas(cache[0], cache[1], cache[2])
        ):
            self._pending_deltas.clear()
            self._view_cache = (self.db_version, cache[1], cache[2])
            self.view_delta_refreshes += 1
            return cache[1], cache[2]
        return self._rebuild_view()

    def _rebuild_view(self) -> Tuple[InterADGraph, PolicyDatabase]:
        """Full from-scratch view rebuild (the delta path's oracle)."""
        self._pending_deltas.clear()
        self._pending_overflow = False
        self._edge_batches.clear()
        self.view_rebuilds += 1
        graph = InterADGraph()
        for origin in sorted(self.lsdb):
            # Kind is irrelevant to term-based computation (policy is in
            # the terms); level comes from the LSA so views can be
            # region-partitioned.
            graph.add_ad(
                AD(
                    origin,
                    f"ad{origin}",
                    self.lsdb[origin].origin_level,
                    ADKind.HYBRID,
                )
            )
        for origin in sorted(self.lsdb):
            for rec in self.lsdb[origin].links:
                if rec.neighbor not in graph:
                    continue
                if graph.has_link(origin, rec.neighbor):
                    continue
                # Believe a link only if both endpoints advertise it up.
                other = self.lsdb.get(rec.neighbor)
                other_rec = None
                if other is not None:
                    for r in other.links:
                        if r.neighbor == origin:
                            other_rec = r
                            break
                if other_rec is None:
                    continue
                up = rec.up and other_rec.up
                graph.add_link(
                    InterADLink(
                        origin,
                        rec.neighbor,
                        LinkKind.HIERARCHICAL,
                        {
                            "delay": rec.delay,
                            "cost": rec.cost,
                            "bandwidth": rec.bandwidth,
                        },
                        up=up,
                    )
                )
        policies = PolicyDatabase()
        for origin in sorted(self.lsdb):
            for term in self.lsdb[origin].terms:
                policies.add_term(term)
        self._view_cache = (self.db_version, graph, policies)
        return graph, policies

    def _apply_view_deltas(
        self,
        from_version: int,
        graph: InterADGraph,
        policies: PolicyDatabase,
    ) -> bool:
        """Replay pending per-LSA deltas onto the cached view, in place.

        Returns ``False`` on a structural surprise *before* touching the
        cache is guaranteed only for surprises detected in the pre-scan;
        the caller falls back to :meth:`_rebuild_view`, which builds
        fresh objects, so a partially-mutated cache is never observable.
        """
        lsdb = self.lsdb
        # Coalesce: the first pending entry per origin holds the LSA the
        # cached view was built from; the current LSDB holds the final
        # state.  Intermediate LSAs never materialized in the view.
        coalesced: Dict[ADId, Optional[LinkStateAd]] = {}
        for origin, old in self._pending_deltas:
            if origin not in coalesced:
                coalesced[origin] = old
        # Pre-scan for surprises the in-place path cannot express.
        for origin, old in coalesced.items():
            new = lsdb[origin]
            if old is not None and old.origin_level != new.origin_level:
                return False  # AD objects are frozen; rebuild
            if any(t.owner != origin for t in new.terms) or (
                old is not None and any(t.owner != origin for t in old.terms)
            ):
                return False  # cross-owner terms (also caught sticky)
        # All new ADs first (mirroring the full rebuild's two passes):
        # an edge between two origins that *both* appeared since the last
        # refresh needs both endpoints present before reconciliation.
        for origin in sorted(coalesced):
            if coalesced[origin] is None:
                # New origin since the view was built: it cannot already
                # be in the graph (graph ADs mirror LSDB origins).
                graph.add_ad(
                    AD(
                        origin,
                        f"ad{origin}",
                        lsdb[origin].origin_level,
                        ADKind.HYBRID,
                    )
                )
        changed_keys: Set[Tuple[ADId, ADId]] = set()
        seen_pairs: Set[Tuple[ADId, ADId]] = set()
        for origin in sorted(coalesced):
            old = coalesced[origin]
            new = lsdb[origin]
            neighbors = {rec.neighbor for rec in new.links}
            if old is not None:
                neighbors.update(rec.neighbor for rec in old.links)
            for nbr in sorted(neighbors):
                key = canonical_link_key(origin, nbr)
                if key not in seen_pairs:
                    seen_pairs.add(key)
                    if self._reconcile_edge(graph, key):
                        changed_keys.add(key)
            old_terms: Tuple[PolicyTerm, ...] = () if old is None else old.terms
            if old_terms != new.terms:
                # Per-owner replace reproduces the full rebuild's term-id
                # restamping exactly: add_term stamps position-in-owner's
                # list, and owners are independent (cross-owner terms
                # were excluded above).
                policies.remove_terms(origin)
                for term in new.terms:
                    policies.add_term(term)
        batches = self._edge_batches
        batches.append((from_version, self.db_version, sorted(changed_keys)))
        if len(batches) > MAX_EDGE_BATCHES:
            del batches[: len(batches) - MAX_EDGE_BATCHES]
        return True

    def _reconcile_edge(
        self, graph: InterADGraph, key: Tuple[ADId, ADId]
    ) -> bool:
        """Drive one believed link to the state the LSDB implies.

        Semantics mirror the full rebuild exactly: the edge exists iff
        both endpoints' LSAs carry a record naming each other (first
        record wins), metrics come from the smaller endpoint's record,
        and the link is up only if both records say up.  Returns whether
        anything changed.
        """
        a, b = key
        lsa_a = self.lsdb.get(a)
        lsa_b = self.lsdb.get(b)
        rec_a = rec_b = None
        if lsa_a is not None and lsa_b is not None:
            for rec in lsa_a.links:
                if rec.neighbor == b:
                    rec_a = rec
                    break
            for rec in lsa_b.links:
                if rec.neighbor == a:
                    rec_b = rec
                    break
        existing = graph.link_if_exists(a, b)
        if rec_a is None or rec_b is None:
            if existing is None:
                return False
            graph.remove_link(a, b)
            return True
        up = rec_a.up and rec_b.up
        if existing is None:
            graph.add_link(
                InterADLink(
                    a,
                    b,
                    LinkKind.HIERARCHICAL,
                    {
                        "delay": rec_a.delay,
                        "cost": rec_a.cost,
                        "bandwidth": rec_a.bandwidth,
                    },
                    up=up,
                )
            )
            return True
        metrics = existing.metrics
        if (
            existing.up == up
            and metrics["delay"] == rec_a.delay
            and metrics["cost"] == rec_a.cost
            and metrics["bandwidth"] == rec_a.bandwidth
        ):
            return False
        existing.up = up
        metrics["delay"] = rec_a.delay
        metrics["cost"] = rec_a.cost
        metrics["bandwidth"] = rec_a.bandwidth
        return True

    def view_edge_changes(
        self, since_version: int
    ) -> Optional[List[Tuple[ADId, ADId]]]:
        """Link keys whose believed state changed between two versions.

        ``None`` when the delta log cannot answer -- the window fell out
        of the retained batches, a full rebuild intervened, or the view
        is not current -- in which case the consumer must recompute from
        scratch.  Keys may repeat across batches; consumers dedup.
        """
        if self._view_cache is None or self._view_cache[0] != self.db_version:
            return None
        if since_version == self.db_version:
            return []
        out: List[Tuple[ADId, ADId]] = []
        cursor = since_version
        for v_from, v_to, keys in self._edge_batches:
            if v_to <= since_version:
                continue
            if v_from != cursor:
                return None  # gap: since_version predates the log
            out.extend(keys)
            cursor = v_to
        if cursor != self.db_version:
            return None
        return out

    def lsdb_bytes(self) -> int:
        """Total size of the stored LSDB (state-size experiments)."""
        return sum(lsa.size_bytes() for lsa in self.lsdb.values())
