"""Inter-AD routing protocol implementations.

One module per protocol the paper discusses (Sections 3 and 5), all built
on the :mod:`repro.simul` message-passing substrate and sharing the
:class:`~repro.protocols.base.RoutingProtocol` interface:

* baselines (Section 3): :mod:`~repro.protocols.dv` (naive Bellman-Ford),
  :mod:`~repro.protocols.spf` (plain link-state), :mod:`~repro.protocols.egp`
  (tree-restricted reachability);
* the four design points of Section 5: :mod:`~repro.protocols.ecma`,
  :mod:`~repro.protocols.idrp`, :mod:`~repro.protocols.lshbh`,
  :mod:`~repro.protocols.orwg`;
* the four dismissed points of Section 5.5: :mod:`~repro.protocols.variants`.

:mod:`~repro.protocols.registry` maps every
:class:`~repro.core.design_space.DesignPoint` *and* every registered
name to its implementation; :func:`~repro.protocols.registry.make_protocol`
is the single construction path the rest of the system uses.
"""

from repro.protocols.base import ForwardingMode, RoutingProtocol
from repro.protocols.dv import DistanceVectorProtocol
from repro.protocols.ecma import ECMAProtocol
from repro.protocols.egp import EGPProtocol, TopologyViolationError
from repro.protocols.idrp import BGP2Protocol, IDRPProtocol
from repro.protocols.lshbh import LinkStateHopByHopProtocol
from repro.protocols.orwg import ORWGProtocol
from repro.protocols.registry import (
    available_protocols,
    design_point_of,
    make_protocol,
    protocol_for,
)
from repro.protocols.spf import PlainLinkStateProtocol

__all__ = [
    "BGP2Protocol",
    "DistanceVectorProtocol",
    "ECMAProtocol",
    "EGPProtocol",
    "ForwardingMode",
    "IDRPProtocol",
    "LinkStateHopByHopProtocol",
    "ORWGProtocol",
    "PlainLinkStateProtocol",
    "RoutingProtocol",
    "TopologyViolationError",
    "available_protocols",
    "design_point_of",
    "make_protocol",
    "protocol_for",
]
