"""Wire-version negotiation: the HELLO handshake and its config.

The paper's inter-AD setting is defined by administrative heterogeneity:
no single operator can upgrade every AD at once, so the wire protocol
must stay correct while the node population runs mixed versions.  The
codec side of that story lives in :mod:`repro.simul.wire` (versioned
frames, read shims, down-emit); this module is the control-plane side:

* :class:`WireConfig` -- the per-node knob distributed through
  ``NodeRuntimeConfig``: which versions a node speaks and whether it
  runs the negotiation handshake (off by default; byte-identical when
  disabled, like every other runtime mechanism).
* :class:`Hello` -- the version/capability announcement each
  negotiating node sends its neighbors at start (and again after a live
  version flip).  A neighbor pair settles on the *highest mutually
  supported* version; a peer whose advertised range does not overlap
  ours is version-blocked and, when a :class:`~repro.protocols
  .validation.NeighborGuard` is stamped, loudly quarantined.
* :func:`wire_from` -- the string/int/config normalizer used by the
  registry (``wire="v1+negotiate"``) and the harness CLI overrides.

Until a pair has negotiated, a negotiating node transmits at its
*minimum* version -- the only revision it can prove the peer decodes --
so a v1 peer never sees a v2 frame before the handshake completes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple, Union

from repro.simul.messages import HEADER_BYTES, Message
from repro.simul.wire import MIN_WIRE_VERSION, WIRE_VERSION

#: Capabilities the current build advertises in its HELLOs.  Purely
#: informational for now (the negotiated outcome is the version); the
#: census is surfaced per neighbor so operators can see what a mixed
#: population actually supports.
WIRE_CAPABILITIES: Tuple[str, ...] = ("graceful-restart", "resync", "damping")


@dataclass(frozen=True, slots=True)
class Hello(Message):
    """Version/capability announcement (schema revision 2).

    ``reply=False`` announcements are answered with a ``reply=True``
    Hello so both sides learn each other's range even when only one was
    restarted; replies are never answered (no Hello storms).  The
    ``capabilities`` field was added at wire version 2 -- a v1 down-emit
    omits it and the receiver defaults it to empty.
    """

    version: int
    min_version: int
    reply: bool = False
    capabilities: Tuple[str, ...] = ()

    def size_bytes(self) -> int:
        return HEADER_BYTES + 4 + 2 * len(self.capabilities)


@dataclass(frozen=True)
class WireConfig:
    """Which wire versions a node speaks, and whether it negotiates.

    The default -- current version, no negotiation -- is byte-identical
    to the pre-versioning substrate on every committed output: no Hello
    is ever scheduled, no frame gains fields, the simulator's event
    count is untouched.
    """

    #: Highest version this node emits once a peer is known to speak it.
    version: int = WIRE_VERSION
    #: Oldest version this node still accepts and can down-emit.
    min_version: int = MIN_WIRE_VERSION
    #: Run the HELLO handshake (off by default).
    negotiate: bool = False
    #: Capability strings advertised in this node's HELLOs.
    capabilities: Tuple[str, ...] = WIRE_CAPABILITIES

    def __post_init__(self) -> None:
        if not MIN_WIRE_VERSION <= self.version <= WIRE_VERSION:
            raise ValueError(
                f"wire version {self.version} outside supported range "
                f"[{MIN_WIRE_VERSION}, {WIRE_VERSION}]"
            )
        if not MIN_WIRE_VERSION <= self.min_version <= self.version:
            raise ValueError(
                f"wire min_version {self.min_version} outside "
                f"[{MIN_WIRE_VERSION}, {self.version}]"
            )

    @property
    def any_enabled(self) -> bool:
        """True when this config changes anything versus the default."""
        return self.negotiate or self.version != WIRE_VERSION

    def at_version(self, version: int) -> "WireConfig":
        """This config pinned to ``version`` (the live upgrade knob)."""
        return replace(
            self, version=version, min_version=min(self.min_version, version)
        )

    def describe(self) -> str:
        parts = [f"v{self.version}"]
        if self.negotiate:
            parts.append("negotiate")
        return "+".join(parts)


#: Default config: current version, negotiation off.
DEFAULT_WIRE = WireConfig()

WireLike = Union[WireConfig, str, int, None]


def wire_from(value: WireLike = None) -> WireConfig:
    """Normalize a wire-config spelling.

    Accepts ``None`` (default), a :class:`WireConfig`, a bare version
    int, or a string of ``+``-joined parts: ``"v1"``, ``"v2"``,
    ``"negotiate"``, ``"v1+negotiate"``, ``"current"``.
    """
    if value is None:
        return DEFAULT_WIRE
    if isinstance(value, WireConfig):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return WireConfig(version=value, min_version=min(MIN_WIRE_VERSION, value))
    if isinstance(value, str):
        version = WIRE_VERSION
        negotiate = False
        for part in value.split("+"):
            part = part.strip().lower()
            if not part or part == "current":
                continue
            if part == "negotiate":
                negotiate = True
            elif part.startswith("v") and part[1:].isdigit():
                version = int(part[1:])
            else:
                raise ValueError(f"unknown wire spec part {part!r} in {value!r}")
        return WireConfig(
            version=version,
            min_version=min(MIN_WIRE_VERSION, version),
            negotiate=negotiate,
        )
    raise TypeError(f"cannot build WireConfig from {value!r}")
