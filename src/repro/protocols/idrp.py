"""IDRP / BGP-2: path-vector + hop-by-hop + explicit policy attributes.

Section 5.2's design point.  Routing updates carry:

* the **full AD path** to the destination, so "routes that contain AD
  loops can be avoided" without a partial ordering;
* an **allowed-sources scope** (IDRP): the set of source ADs the
  downstream path's policies admit, narrowed at every hop by the
  advertiser's own Policy Terms.  BGP version 2 "does not allow for the
  expression of such source specific policies" (paper footnote 6), so
  :class:`BGP2Protocol` propagates no scopes.

The architecture's structural limit, which the availability experiment
(E3) and the granularity experiment (E5) quantify: **one route per
(destination, QOS) is advertised**, so as policies become source-specific
the single chosen route serves ever fewer sources, and "source ADs may be
unable to use the routes they prefer" even when legal routes exist.

Scope computation uses the finite/cofinite :class:`~repro.policy.sets.ADSet`
algebra, with a representative (default-UCI, midday) flow template for
the non-source policy dimensions; UCI- and time-restricted terms
therefore export conservatively, mirroring how coarsely a real
path-vector attribute set captures fine-grained policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.adgraph.ad import ADId, InterADLink
from repro.adgraph.graph import InterADGraph
from repro.core.design_space import DV_HBH_TERMS
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.policy.sets import ADSet
from repro.policy.terms import PolicyTerm
from repro.policy.uci import UCI
from repro.protocols.base import ForwardingMode, RoutingProtocol
from repro.protocols.pacing import OverloadDefenseMixin
from repro.protocols.validation import OFF, NeighborGuard, ValidationConfig
from repro.simul.messages import AD_ID_BYTES, METRIC_BYTES, Message
from repro.simul.network import SimNetwork
from repro.simul.node import ProtocolNode

#: Delay before a triggered update batch is flushed.
TRIGGER_DELAY = 1.0

#: Representative user class / hour used when evaluating PTs in the
#: control plane (updates are not replicated per UCI or per hour).
TEMPLATE_UCI = UCI.DEFAULT
TEMPLATE_HOUR = 12

#: Sentinel term id for terms a misbehaving AD forged locally (never
#: produced by the policy generators, so ``behave`` can strip them).
FORGED_TERM_ID = 9_999


@dataclass(frozen=True)
class RouteAd:
    """One advertised route: destination, class, path, metric, scope.

    ``path`` starts at the advertising AD and ends at ``dest``.  An empty
    path is a withdrawal.  ``allowed`` is the source scope (IDRP's policy
    attribute); BGP-2 always sends the universal set.

    ``cls`` is the route's *policy-class tag*: Section 5.2 observes that
    "it is possible to advertise multiple routes, and still avoid
    looping, so long as each route and each packet can be identified with
    a unique set of policy attributes".  With a single class (tag 0) the
    protocol is classic IDRP; with more, one route is selected and
    advertised per (destination, QOS, class) -- availability recovers at
    the cost of a class-fold routing-table replication (ablation A4).
    """

    dest: ADId
    qos: QOS
    path: Tuple[ADId, ...]
    metric: float
    allowed: ADSet
    cls: int = 0

    @property
    def is_withdrawal(self) -> bool:
        return not self.path

    def size_bytes(self) -> int:
        return (
            AD_ID_BYTES  # dest
            + 1  # qos tag
            + 1  # class tag
            + METRIC_BYTES
            + AD_ID_BYTES * len(self.path)
            + self.allowed.size_bytes()
        )


@dataclass(frozen=True)
class IDRPUpdate(Message):
    """A batch of route advertisements/withdrawals."""

    routes: Tuple[RouteAd, ...]

    def size_bytes(self) -> int:
        return super().size_bytes() + sum(r.size_bytes() for r in self.routes)


@dataclass
class _LocEntry:
    """The selected route at an AD: the neighbour it came from, the full
    path from this AD, the metric at this AD, and the source scope."""

    via: ADId
    path: Tuple[ADId, ...]
    metric: float
    allowed: ADSet


#: Loc-RIB / Adj-RIB key: (destination, QOS class, policy-class tag).
_Key = Tuple[ADId, QOS, int]


class IDRPNode(OverloadDefenseMixin, ProtocolNode):
    """Per-AD path-vector process."""

    #: Receiver-side validation; the driver stamps config, guard, and the
    #: trusted registries at build time (defaults keep legacy behaviour).
    validation: ValidationConfig = OFF
    guard: Optional[NeighborGuard] = None
    trusted_graph: Optional[InterADGraph] = None
    trusted_policies: Optional[PolicyDatabase] = None

    #: A liar re-advertises periodically (bounded, so runs quiesce).
    LIE_REASSERT_INTERVAL = 60.0
    LIE_REASSERT_COUNT = 6

    def __init__(
        self,
        ad_id: ADId,
        own_terms: Tuple[PolicyTerm, ...],
        qos_classes: Tuple[QOS, ...],
        source_scope: bool = True,
        class_sets: Tuple[ADSet, ...] = (ADSet.everyone(),),
    ) -> None:
        super().__init__(ad_id)
        self.own_terms = own_terms
        self.qos_classes = qos_classes
        self.source_scope = source_scope
        #: Source-class partition for multi-route advertisement; one
        #: route is selected per (dest, qos, class).  The default single
        #: universal class is classic IDRP.
        self.class_sets = class_sets
        # Adj-RIB-In: per (dest, qos), the latest usable ad per neighbour.
        self.rib_in: Dict[_Key, Dict[ADId, RouteAd]] = {}
        # Loc-RIB: the single selected route per (dest, qos).
        self.loc: Dict[_Key, _LocEntry] = {}
        # What we last advertised to each neighbour (withdrawals are only
        # sent for keys actually advertised there).
        self._advertised: Dict[ADId, set] = {}
        self._pending: set = set()
        self._flush_scheduled = False
        # Active misbehaviors: lie name -> optional target AD.
        self._active_lies: Dict[str, Optional[ADId]] = {}
        self._lie_ticks_left = 0
        self._lie_tick_pending = False

    # --------------------------------------------------------------- control

    def start(self) -> None:
        for qos in self.qos_classes:
            for cls in range(len(self.class_sets)):
                self.loc[(self.ad_id, qos, cls)] = _LocEntry(
                    via=self.ad_id,
                    path=(self.ad_id,),
                    metric=0.0,
                    allowed=ADSet.everyone(),
                )
                self._pending.add((self.ad_id, qos, cls))
        self._schedule_flush()

    def on_message(self, sender: ADId, msg: Message) -> None:
        assert isinstance(msg, IDRPUpdate)
        if not self.topology.has_link(self.ad_id, sender):
            return
        if self.guard is not None and self.guard.suppresses(sender):
            return
        changed_keys = []
        for ad in msg.routes:
            if not 0 <= ad.cls < len(self.class_sets):
                continue
            if not ad.is_withdrawal and self._rejects(sender, ad):
                continue
            key = (ad.dest, ad.qos, ad.cls)
            per_nbr = self.rib_in.setdefault(key, {})
            if ad.is_withdrawal:
                if sender in per_nbr:
                    del per_nbr[sender]
                else:
                    continue
            else:
                per_nbr[sender] = ad
            if self._reselect(key):
                changed_keys.append(key)
        if changed_keys:
            self.note_computation("route_selection", len(changed_keys))
            self._pending.update(changed_keys)
            self._schedule_flush()

    def on_link_change(self, link: InterADLink, up: bool) -> None:
        nbr = link.other(self.ad_id)
        if up:
            # Session restart: everything we select is news to them, and
            # theirs to us arrives when they do the same.
            self._pending.update(self.loc)
            self._schedule_flush()
            return
        changed = []
        for key, per_nbr in self.rib_in.items():
            if nbr in per_nbr:
                del per_nbr[nbr]
                if self._reselect(key):
                    changed.append(key)
        # Even unselected candidate loss is fine; only selection changes
        # need advertising.
        if changed:
            self._enter_holddown()
            self._pending.update(changed)
            self._schedule_flush()

    # ------------------------------------------------------------ validation

    def _rejects(self, sender: ADId, ad: RouteAd) -> bool:
        """Receiver-side plausibility screen for one advertisement."""
        if not self.validation.checks_enabled:
            return False
        reason = self._check_ad(sender, ad)
        if reason is None:
            return False
        if self.guard is not None:
            self.guard.violation(sender, reason)
        return True

    def _check_ad(self, sender: ADId, ad: RouteAd) -> Optional[str]:
        cfg = self.validation
        path = ad.path
        if cfg.origin_check and self.trusted_graph is not None:
            if path[0] != sender:
                return "path does not start at the advertiser"
            if len(set(path)) != len(path):
                return "looping path"
            for hop in path:
                if not self.trusted_graph.has_ad(hop):
                    return "unregistered AD on path"
            for a, b in zip(path, path[1:]):
                if not self.trusted_graph.has_link(a, b):
                    return "unregistered adjacency on path"
        if cfg.path_check:
            reason = self._path_implausible(ad)
            if reason is not None:
                return reason
        if cfg.metric_guard and self.trusted_graph is not None:
            floor = 0.0
            for a, b in zip(path, path[1:]):
                if self.trusted_graph.has_link(a, b):
                    floor += self.trusted_graph.link(a, b).metric(ad.qos.metric)
            if ad.metric < floor - 1e-9:
                return "metric below registered path cost"
        return None

    def _path_implausible(self, ad: RouteAd) -> Optional[str]:
        """Check every transit hop against the *registered* policy terms.

        Mirrors the advertiser-side :meth:`_export_scope` template exactly
        (hop ``path[i]`` exported this route to ``path[i-1]`` -- or to us,
        for ``i == 0`` -- with next hop ``path[i+1]``), so an honest ad
        can never trip it: each hop's own terms are a subset of the
        registry, and its exported source scope is the intersection of
        their source sets with the downstream scope.  A leaked route
        rests on a term the registry lacks -- either wholesale (no
        registered term matches the traversal) or on the source axis
        alone (the advertised scope admits sources no registered term
        of some hop does).
        """
        if self.trusted_policies is None:
            return None
        scope_bound = ADSet.everyone()
        for i in range(len(ad.path) - 1):
            hop = ad.path[i]
            prev = self.ad_id if i == 0 else ad.path[i - 1]
            nxt = ad.path[i + 1]
            admitted = ADSet.none()
            for term in self.trusted_policies.terms_of(hop):
                if term.matches_except_source(
                    ad.dest, prev, nxt, ad.qos, TEMPLATE_UCI, TEMPLATE_HOUR
                ):
                    admitted = admitted.union(term.sources)
            if admitted.is_empty:
                return "transit hop has no registered policy term"
            scope_bound = scope_bound.intersect(admitted)
        if self.source_scope and not ad.allowed.is_subset_of(scope_bound):
            return "advertised source scope exceeds registered policy"
        return None

    # -------------------------------------------------------------- decision

    def _candidate_rank(self, ad: RouteAd, link_metric: float):
        metric = ad.metric + link_metric
        return (metric, len(ad.path), -ad.allowed.plausible_size(), ad.path)

    def _candidate_usable(self, ad: RouteAd) -> bool:
        """Extra per-candidate acceptance hook (variants override)."""
        return True

    def _reselect(self, key: _Key) -> bool:
        """Recompute the Loc-RIB entry for a key; True if it changed."""
        if key[0] == self.ad_id:
            return False
        cls_set = self.class_sets[key[2]]
        best: Optional[_LocEntry] = None
        best_rank = None
        graph = self.topology
        for nbr, ad in sorted(self.rib_in.get(key, {}).items()):
            if self.ad_id in ad.path:
                continue  # loop suppression via full AD path
            if ad.allowed.intersect(cls_set).is_empty:
                continue  # serves no source of this route's class
            if not self._candidate_usable(ad):
                continue
            if not graph.has_link(self.ad_id, nbr) or not graph.link(self.ad_id, nbr).up:
                continue
            link_metric = graph.link(self.ad_id, nbr).metric(key[1].metric)
            rank = self._candidate_rank(ad, link_metric)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = _LocEntry(
                    via=nbr,
                    path=(self.ad_id,) + ad.path,
                    metric=ad.metric + link_metric,
                    allowed=ad.allowed,
                )
        old = self.loc.get(key)
        if best is None:
            if old is not None:
                del self.loc[key]
                self._damp_loss(key)
                return True
            return False
        if old is None or (old.via, old.path, old.metric) != (
            best.via,
            best.path,
            best.metric,
        ) or old.allowed != best.allowed:
            self.loc[key] = best
            return True
        return False

    # --------------------------------------------------------------- export

    def _export_scope(
        self, entry: _LocEntry, dest: ADId, qos: QOS, to_nbr: ADId, cls: int = 0
    ) -> ADSet:
        """Narrow the source scope by our own transit policy toward ``to_nbr``.

        We are offering ``to_nbr`` transit through us: traffic would
        arrive from ``to_nbr`` (prev) and leave toward ``entry.via``
        (next).  The admitted sources are the union over our PTs matching
        that traversal of their source sets, intersected with the
        downstream scope and the route's class partition.
        """
        if dest == self.ad_id:
            return self.class_sets[cls]
        if not self.source_scope:
            # BGP-2: scopes are not expressible; export is all-or-nothing
            # on whether *any* matching term exists.
            for term in self.own_terms:
                if term.matches_except_source(
                    dest, to_nbr, entry.via, qos, TEMPLATE_UCI, TEMPLATE_HOUR
                ):
                    return ADSet.everyone()
            return ADSet.none()
        permitted = ADSet.none()
        for term in self.own_terms:
            if term.matches_except_source(
                dest, to_nbr, entry.via, qos, TEMPLATE_UCI, TEMPLATE_HOUR
            ):
                permitted = permitted.union(term.sources)
        return entry.allowed.intersect(permitted).intersect(self.class_sets[cls])

    def _schedule_flush(self) -> None:
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.schedule(TRIGGER_DELAY, self._flush)

    def _flush(self) -> None:
        wait = self._pacing_defers_flush()
        if wait is not None:
            self.schedule(wait, self._flush)
            return
        self._flush_scheduled = False
        keys = sorted(self._pending, key=lambda k: (k[0], k[1].value, k[2]))
        self._pending.clear()
        if not keys:
            return
        # A suppressed key exports nowhere: the ``_advertised`` machinery
        # below then emits the withdrawal exactly once per neighbour and
        # stays silent until the penalty decays (``_on_reuse`` re-pends).
        suppressed: set = set()
        if self.pacing.damp and self._damper is not None:
            for key in keys:
                if key[0] != self.ad_id and self._damp_suppressed(key):
                    suppressed.add(key)
                    self.suppressed_announcements += 1
        for nbr in self.neighbors():
            advertised = self._advertised.setdefault(nbr, set())
            routes: List[RouteAd] = []
            for key in keys:
                dest, qos, cls = key
                entry = self.loc.get(key)
                exportable = (
                    key not in suppressed
                    and entry is not None
                    and entry.via != nbr  # split horizon on the path-vector
                    and nbr not in entry.path  # receiver would reject anyway
                )
                scope = (
                    self._export_scope(entry, dest, qos, nbr, cls)
                    if exportable
                    else None
                )
                if scope is None or scope.is_empty:
                    if key in advertised:
                        advertised.discard(key)
                        routes.append(
                            RouteAd(dest, qos, (), 0.0, ADSet.none(), cls)
                        )
                    continue
                advertised.add(key)
                metric = entry.metric
                if "metric-lie" in self._active_lies and dest != self.ad_id:
                    metric = 0.0
                routes.append(
                    RouteAd(dest, qos, entry.path, metric, scope, cls)
                )
            if routes:
                self.send(nbr, IDRPUpdate(tuple(routes)))

    def _on_reuse(self, key) -> None:
        # Damping lifted: re-advertise whatever the Loc-RIB holds now.
        self._pending.add(key)
        self._schedule_flush()

    # ----------------------------------------------------------- misbehavior

    def misbehave(self, lie: str, target: Optional[ADId] = None) -> bool:
        applied = self._tell_lie(lie, target)
        if applied and self._lie_ticks_left == 0:
            self._lie_ticks_left = self.LIE_REASSERT_COUNT
            self._arm_lie_tick()
        return applied

    def _tell_lie(self, lie: str, target: Optional[ADId] = None) -> bool:
        if lie == "route-leak":
            # Forge a maximally permissive own term: export scope widens
            # to everything AND our own forwarding-time transit check now
            # passes, so we are complicit in carrying the leaked traffic.
            self._active_lies[lie] = None
            self.own_terms = self.own_terms + (
                PolicyTerm(owner=self.ad_id, term_id=FORGED_TERM_ID),
            )
            self._pending.update(self.loc)
            self._schedule_flush()
            return True
        if lie == "metric-lie":
            self._active_lies[lie] = None
            self._pending.update(self.loc)
            self._schedule_flush()
            return True
        if lie == "bogus-origin":
            if target is None:
                return False
            self._active_lies[lie] = target
            self._advertise_bogus_origin(target)
            return True
        # stale-replay and term-forgery need sequenced / term-carrying
        # updates; a path-vector update has neither.
        return False

    def behave(self) -> None:
        self._active_lies.clear()
        self._lie_ticks_left = 0
        self.own_terms = tuple(
            t for t in self.own_terms if t.term_id != FORGED_TERM_ID
        )

    def _advertise_bogus_origin(self, victim: ADId) -> None:
        """Claim a zero-cost direct route to a non-adjacent victim AD."""
        routes = tuple(
            RouteAd(victim, qos, (self.ad_id, victim), 0.0, ADSet.everyone(), cls)
            for qos in self.qos_classes
            for cls in range(len(self.class_sets))
        )
        self.broadcast(IDRPUpdate(routes))

    def _arm_lie_tick(self) -> None:
        if not self._lie_tick_pending:
            self._lie_tick_pending = True
            self.schedule(self.LIE_REASSERT_INTERVAL, self._lie_tick)

    def _lie_tick(self) -> None:
        self._lie_tick_pending = False
        if not self._active_lies or self._lie_ticks_left <= 0:
            return
        self._lie_ticks_left -= 1
        if "route-leak" in self._active_lies or "metric-lie" in self._active_lies:
            self._pending.update(self.loc)
            self._schedule_flush()
        victim = self._active_lies.get("bogus-origin")
        if victim is not None:
            self._advertise_bogus_origin(victim)
        if self._lie_ticks_left > 0:
            self._arm_lie_tick()

    # ------------------------------------------------------------ forwarding

    def class_of(self, src: ADId) -> int:
        """The policy-class tag a packet from ``src`` carries."""
        for cls, members in enumerate(self.class_sets):
            if members.matches(src):
                return cls
        return 0

    def entry_for(
        self, dest: ADId, qos: QOS, cls: int = 0
    ) -> Optional[_LocEntry]:
        return self.loc.get((dest, qos, cls))


class IDRPProtocol(RoutingProtocol):
    """Driver for the IDRP design point (DV / hop-by-hop / policy terms).

    ``route_classes`` enables Section 5.2's multiple-routes extension:
    sources are partitioned into that many classes (by AD id, matching
    :func:`repro.policy.generators.source_class_of`) and one route is
    advertised per (destination, QOS, class).  The default 1 is classic
    IDRP -- a single route per destination per QOS.
    """

    name: ClassVar[str] = "idrp"
    design_point = DV_HBH_TERMS
    mode = ForwardingMode.HOP_BY_HOP
    source_scope: ClassVar[bool] = True

    def __init__(
        self,
        graph: InterADGraph,
        policies: PolicyDatabase,
        qos_classes: Tuple[QOS, ...] = (QOS.DEFAULT,),
        route_classes: int = 1,
    ) -> None:
        super().__init__(graph, policies)
        if route_classes < 1:
            raise ValueError("route_classes must be positive")
        self.qos_classes = qos_classes
        self.route_classes = route_classes

    def _class_sets(self) -> Tuple[ADSet, ...]:
        if self.route_classes == 1:
            return (ADSet.everyone(),)
        from repro.policy.generators import source_class_members

        return tuple(
            ADSet.of(source_class_members(self.graph, self.route_classes, cls))
            for cls in range(self.route_classes)
        )

    def _make_nodes(self, network: SimNetwork) -> None:
        class_sets = self._class_sets()
        for ad in self.graph.ads():
            network.add_node(
                IDRPNode(
                    ad.ad_id,
                    own_terms=self.policies.terms_of(ad.ad_id),
                    qos_classes=self.qos_classes,
                    source_scope=self.source_scope,
                    class_sets=class_sets,
                )
            )

    def _qos_for(self, flow: FlowSpec) -> QOS:
        """The routing class used for a flow (fall back to first table)."""
        return flow.qos if flow.qos in self.qos_classes else self.qos_classes[0]

    def next_hop(
        self, ad_id: ADId, flow: FlowSpec, prev: Optional[ADId]
    ) -> Optional[ADId]:
        node = self.network.node(ad_id)
        assert isinstance(node, IDRPNode)
        entry = node.entry_for(
            flow.dst, self._qos_for(flow), node.class_of(flow.src)
        )
        if entry is None:
            return None
        if prev is None and not entry.allowed.matches(flow.src):
            # The single advertised route does not admit this source --
            # the Section 5.2 starvation case.
            return None
        if prev is not None:
            # Transit ADs enforce their own policy on the actual hops.
            permitted = any(
                t.permits(flow, prev, entry.via) for t in node.own_terms
            )
            if not permitted:
                return None
        return entry.via

    def rib_size(self, ad_id: ADId) -> int:
        node = self.network.node(ad_id)
        assert isinstance(node, IDRPNode)
        return len(node.loc)

    def adj_rib_size(self, ad_id: ADId) -> int:
        """Adj-RIB-In entries (candidate routes held, all neighbours)."""
        node = self.network.node(ad_id)
        assert isinstance(node, IDRPNode)
        return sum(len(per) for per in node.rib_in.values())


class BGP2Protocol(IDRPProtocol):
    """BGP version 2: IDRP without source-specific policy attributes."""

    name: ClassVar[str] = "bgp2"
    source_scope: ClassVar[bool] = False
