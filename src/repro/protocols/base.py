"""The common protocol interface.

Every protocol exposes the same two planes:

* a **control plane** -- :meth:`RoutingProtocol.build` constructs the
  per-AD nodes on a :class:`~repro.simul.network.SimNetwork`;
  :meth:`RoutingProtocol.converge` runs it to quiescence;
* a **data plane** -- :meth:`RoutingProtocol.find_route` answers "what
  route would traffic for this flow actually take?".  Source-routing
  protocols answer from the source's computation; hop-by-hop protocols
  answer by *walking* the per-hop :meth:`RoutingProtocol.next_hop`
  decisions (with a loop guard), which is exactly how a packet would
  experience the converged tables.

This uniformity is what lets the scorecard (E1) and the availability
experiment (E3) compare all eight design points on equal footing.
"""

from __future__ import annotations

import enum
from typing import ClassVar, List, Optional, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.core.design_space import DesignPoint
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.selection import OPEN_SELECTION, RouteSelectionPolicy
from repro.simul.network import SimNetwork
from repro.simul.runner import ConvergenceResult, converge


class ForwardingMode(enum.Enum):
    """Where the forwarding decision lives (Table 1's middle axis)."""

    SOURCE = "source"
    HOP_BY_HOP = "hop-by-hop"


class RoutingProtocol:
    """Base class for all inter-AD routing protocol drivers.

    Subclasses set the class attributes and implement
    :meth:`_make_nodes`, plus either :meth:`source_route` (source mode) or
    :meth:`next_hop` (hop-by-hop mode).
    """

    #: Human-readable protocol name.
    name: ClassVar[str] = "abstract"
    #: The Table 1 cell this protocol occupies (None for baselines).
    design_point: ClassVar[Optional[DesignPoint]] = None
    #: Forwarding mode.
    mode: ClassVar[ForwardingMode] = ForwardingMode.HOP_BY_HOP
    #: Whether the protocol can take Policy Terms into account at all.
    policy_aware: ClassVar[bool] = True

    def __init__(self, graph: InterADGraph, policies: PolicyDatabase) -> None:
        self.graph = graph
        self.policies = policies
        self.network: Optional[SimNetwork] = None
        #: Forwarding loops observed while walking hop-by-hop decisions.
        self.forwarding_loops = 0

    # --------------------------------------------------------- control plane

    def _make_nodes(self, network: SimNetwork) -> None:
        """Create and register one protocol node per AD."""
        raise NotImplementedError

    def build(self) -> SimNetwork:
        """Construct the simulation network (idempotent)."""
        if self.network is None:
            self.network = SimNetwork(self.graph)
            self._make_nodes(self.network)
        return self.network

    def converge(self, max_events: int = 5_000_000) -> ConvergenceResult:
        """Build if needed and run the control plane to quiescence."""
        return converge(self.build(), max_events=max_events)

    def _require_network(self) -> SimNetwork:
        """The built network, or a clear error if build() never ran."""
        if self.network is None:
            raise RuntimeError(
                f"{self.name}: no simulation network -- call build() or "
                "converge() before applying link status changes"
            )
        return self.network

    def apply_link_status(self, a: ADId, b: ADId, up: bool) -> None:
        """Change a physical link's status and notify the protocol.

        Protocols whose control plane runs on a derived topology (EGP's
        spanning tree) override this to keep both views consistent.
        """
        self._require_network().set_link_status(a, b, up)

    # ------------------------------------------------------------ data plane

    def source_route(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Tuple[ADId, ...]]:
        """The full route the source AD would place in packet headers.

        Only meaningful for source-routing protocols.
        """
        raise NotImplementedError(f"{self.name} is not a source-routing protocol")

    def next_hop(
        self, ad_id: ADId, flow: FlowSpec, prev: Optional[ADId]
    ) -> Optional[ADId]:
        """The forwarding decision AD ``ad_id`` makes for ``flow``.

        Only meaningful for hop-by-hop protocols.  ``prev`` is the AD the
        packet arrived from (``None`` at the source).
        """
        raise NotImplementedError(f"{self.name} is not a hop-by-hop protocol")

    def find_route(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Tuple[ADId, ...]]:
        """The route traffic for ``flow`` would actually take, or ``None``.

        Source mode: the source's computed route.  Hop-by-hop mode: the
        walk of per-hop decisions; a forwarding loop or a hop with no
        decision yields ``None`` (the packet would be dropped).
        """
        if flow.src == flow.dst:
            return (flow.src,)
        if self.mode is ForwardingMode.SOURCE:
            return self.source_route(flow, selection)
        return self._walk_next_hops(flow)

    def _walk_next_hops(self, flow: FlowSpec) -> Optional[Tuple[ADId, ...]]:
        path: List[ADId] = [flow.src]
        seen = {flow.src}
        prev: Optional[ADId] = None
        current = flow.src
        # Generous guard: no simple AD path is longer than the AD count.
        for _ in range(self.graph.num_ads):
            nxt = self.next_hop(current, flow, prev)
            if nxt is None:
                return None
            if nxt in seen:
                self.forwarding_loops += 1
                return None  # forwarding loop
            path.append(nxt)
            seen.add(nxt)
            if nxt == flow.dst:
                return tuple(path)
            prev, current = current, nxt
        return None

    # --------------------------------------------------------------- metrics

    def rib_size(self, ad_id: ADId) -> int:
        """Routing-information entries held at an AD (protocol-defined)."""
        raise NotImplementedError

    def total_rib_size(self) -> int:
        """Sum of RIB entries across all ADs."""
        return sum(self.rib_size(a) for a in self.graph.ad_ids())

    def max_rib_size(self) -> int:
        """Largest per-AD RIB (the hot-spot the scaling claims concern)."""
        return max(self.rib_size(a) for a in self.graph.ad_ids())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(ads={self.graph.num_ads})"
