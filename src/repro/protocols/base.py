"""The common protocol interface.

Every protocol exposes the same two planes:

* a **control plane** -- :meth:`RoutingProtocol.build` constructs the
  per-AD nodes on a :class:`~repro.simul.network.SimNetwork`;
  :meth:`RoutingProtocol.converge` runs it to quiescence;
* a **data plane** -- :meth:`RoutingProtocol.find_route` answers "what
  route would traffic for this flow actually take?".  Source-routing
  protocols answer from the source's computation; hop-by-hop protocols
  answer by *walking* the per-hop :meth:`RoutingProtocol.next_hop`
  decisions (with a loop guard), which is exactly how a packet would
  experience the converged tables.

This uniformity is what lets the scorecard (E1) and the availability
experiment (E3) compare all eight design points on equal footing.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, ClassVar, Dict, List, Optional, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.core.design_space import DesignPoint
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.selection import OPEN_SELECTION, RouteSelectionPolicy
from repro.protocols.graceful import GracefulRestartConfig
from repro.protocols.hardening import HardeningConfig
from repro.protocols.pacing import PacingConfig
from repro.protocols.perf import PerfConfig
from repro.protocols.runtime import NodeRuntimeConfig
from repro.protocols.validation import NeighborGuard, ValidationConfig
from repro.protocols.versioning import WireConfig
from repro.simul.network import SimNetwork
from repro.simul.node import ProtocolNode
from repro.simul.runner import ConvergenceResult, converge
from repro.simul.transport import Transport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan


class ForwardingMode(enum.Enum):
    """Where the forwarding decision lives (Table 1's middle axis)."""

    SOURCE = "source"
    HOP_BY_HOP = "hop-by-hop"


class RoutingProtocol:
    """Base class for all inter-AD routing protocol drivers.

    Subclasses set the class attributes and implement
    :meth:`_make_nodes`, plus either :meth:`source_route` (source mode) or
    :meth:`next_hop` (hop-by-hop mode).
    """

    #: Human-readable protocol name.
    name: ClassVar[str] = "abstract"
    #: The Table 1 cell this protocol occupies (None for baselines).
    design_point: ClassVar[Optional[DesignPoint]] = None
    #: Forwarding mode.
    mode: ClassVar[ForwardingMode] = ForwardingMode.HOP_BY_HOP
    #: Whether the protocol can take Policy Terms into account at all.
    policy_aware: ClassVar[bool] = True
    #: FIB export hook: the FlowSpec fields this protocol's forwarding
    #: decision actually reads.  The FIB compiler
    #: (:mod:`repro.traffic.fib`) collapses flow classes that agree on
    #: these fields into one compiled entry; the conservative default is
    #: the full flow.  ``src`` is always implied (a walk starts there).
    fib_key_fields: ClassVar[Tuple[str, ...]] = (
        "src",
        "dst",
        "qos",
        "uci",
        "hour",
    )

    def __init__(self, graph: InterADGraph, policies: PolicyDatabase) -> None:
        self.graph = graph
        self.policies = policies
        self.network: Optional[Transport] = None
        #: Which substrate :meth:`build` runs on; ``"live"`` networks are
        #: constructed by :mod:`repro.live` and passed in.
        self.substrate: str = "sim"
        #: Forwarding loops observed while walking hop-by-hop decisions.
        self.forwarding_loops = 0
        #: The full per-node runtime (hardening/validation/pacing/perf/
        #: ingress), distributed to every node by one hook at build time
        #: and restamped on state-losing restarts.  The component
        #: properties below keep the historical spelling working.
        self.runtime = NodeRuntimeConfig()
        #: ADs that have (ever) been turned into liars: ad -> lie kind.
        #: Never pruned -- already-flooded lies outlive the liar's change
        #: of heart, and blast-radius attribution must outlive it too.
        self.liars: Dict[ADId, str] = {}
        #: Chronological record of misbehavior start/stop applications.
        self.misbehavior_log: List[Dict[str, Any]] = []
        self._trusted_policies: Optional[PolicyDatabase] = None
        self._crashed_links: Dict[ADId, Tuple[Tuple[ADId, ADId], ...]] = {}
        self._crash_retain: Dict[ADId, bool] = {}
        #: ADs currently down under graceful-restart helper semantics:
        #: their incident links stay up (neighbours hold routes stale)
        #: until restore or hold-timer expiry.
        self._graceful_down: Dict[ADId, bool] = {}
        #: Armed hold timers, cancelled by a restore within the window.
        self._graceful_holds: Dict[ADId, Any] = {}
        #: Observability: expired holds and resync rounds driven.
        self.grace_expirations = 0
        self.grace_resyncs = 0
        #: Per-AD wire-version pins (the live upgrade/rollback knob):
        #: an entry overrides the runtime config's version for that AD.
        self._wire_overrides: Dict[ADId, int] = {}

    # --------------------------------------------------- runtime components

    @property
    def hardening(self) -> HardeningConfig:
        """Robustness features distributed to every node at build time."""
        return self.runtime.hardening

    @hardening.setter
    def hardening(self, value: HardeningConfig) -> None:
        self.runtime = self.runtime.replace(hardening=value)

    @property
    def validation(self) -> ValidationConfig:
        """Receiver-side validation checks, distributed the same way."""
        return self.runtime.validation

    @validation.setter
    def validation(self, value: ValidationConfig) -> None:
        self.runtime = self.runtime.replace(validation=value)

    @property
    def pacing(self) -> PacingConfig:
        """Overload defenses (pacing/hold-down/damping), distributed too."""
        return self.runtime.pacing

    @pacing.setter
    def pacing(self, value: PacingConfig) -> None:
        self.runtime = self.runtime.replace(pacing=value)

    @property
    def perf(self) -> PerfConfig:
        """Delta-recompute fast paths (defaults on), distributed too."""
        return self.runtime.perf

    @perf.setter
    def perf(self, value: PerfConfig) -> None:
        self.runtime = self.runtime.replace(perf=value)

    @property
    def graceful(self) -> GracefulRestartConfig:
        """Graceful-restart helper/resync behaviour, distributed too."""
        return self.runtime.graceful

    @graceful.setter
    def graceful(self, value: GracefulRestartConfig) -> None:
        self.runtime = self.runtime.replace(graceful=value)

    @property
    def wire(self) -> WireConfig:
        """Wire-version/negotiation runtime config, distributed too."""
        return self.runtime.wire

    @wire.setter
    def wire(self, value: WireConfig) -> None:
        self.runtime = self.runtime.replace(wire=value)

    # --------------------------------------------------------- control plane

    def _make_nodes(self, network: Transport) -> None:
        """Create and register one protocol node per AD."""
        raise NotImplementedError

    def build(self, network: Optional[Transport] = None) -> Transport:
        """Construct the protocol's network substrate (idempotent).

        With no argument, builds on the substrate named by
        :attr:`substrate`: a fresh :class:`SimNetwork` for ``"sim"``
        (``"live"`` networks need a running event loop, so
        :mod:`repro.live` constructs one and passes it here).  An
        explicitly-passed transport is adopted as-is.
        """
        if self.network is None:
            if network is None:
                if self.substrate != "sim":
                    raise RuntimeError(
                        f"{self.name}: substrate {self.substrate!r} networks "
                        "are built by repro.live; pass one to build(network=...)"
                    )
                network = SimNetwork(self.graph)
            self.network = network
            self._make_nodes(network)
            self._distribute_runtime(network)
        return self.network

    def _distribute_runtime(self, network: Transport) -> None:
        """Stamp the full runtime container onto every node (single hook).

        Also attaches the runtime's ingress queue, when one is configured
        and the substrate models one (the sim's delivery stage).
        """
        for node in network.nodes.values():
            self._stamp_runtime(node)
        if self.runtime.ingress is not None and hasattr(network, "set_ingress"):
            network.set_ingress(self.runtime.ingress)

    def _stamp_runtime(self, node: ProtocolNode) -> None:
        """Configure one node with every runtime component.

        The single restamping path shared by build and state-losing
        restarts.  The trusted policy registry is snapshotted the first
        time a validating node is stamped -- at build time, before any
        scheduled misbehavior can pollute the live database (ORWG's liar
        plants its forged term in the shared ``live_policies``) -- so
        validators always judge claims against registered ground truth.
        """
        runtime = self.runtime
        node.hardening = runtime.hardening
        node.pacing = runtime.pacing
        node.perf = runtime.perf
        node.graceful = runtime.graceful
        node.wire = self._effective_wire(node.ad_id)
        node.validation = runtime.validation
        if runtime.validation.any_enabled and self._trusted_policies is None:
            self._trusted_policies = self.policies.copy()
        node.trusted_policies = self._trusted_policies
        node.trusted_graph = self.graph
        if runtime.validation.any_enabled:
            node.guard = NeighborGuard(runtime.validation, lambda: node.now)
        else:
            node.guard = None

    def _effective_wire(self, ad_id: ADId) -> WireConfig:
        """The runtime wire config with any per-AD version pin applied."""
        wire = self.runtime.wire
        override = self._wire_overrides.get(ad_id)
        if override is not None:
            wire = wire.at_version(override)
        return wire

    def set_wire_version(self, ad_id: ADId, version: int) -> None:
        """Flip one AD's wire version live (the upgrade/rollback knob).

        The pin survives state-losing restarts (restamping reapplies
        it).  With negotiation on, the node recomputes every neighbour
        pair from its stored Hellos and re-announces, so the population
        reconverges on the new highest-mutually-supported versions.
        """
        network = self._require_network()
        self._wire_overrides[ad_id] = version
        node = network.nodes[ad_id]
        node.wire = self._effective_wire(ad_id)
        node.renegotiate()

    def negotiation_summary(self) -> Dict[str, Any]:
        """Network-wide version-negotiation state for the run record."""
        network = self._require_network()
        node_census: Dict[str, int] = {}
        pair_census: Dict[str, int] = {}
        blocked = 0
        drops = 0
        for node in network.nodes.values():
            key = f"v{node.wire.version}"
            node_census[key] = node_census.get(key, 0) + 1
            for version in node.negotiated.values():
                pkey = f"v{version}"
                pair_census[pkey] = pair_census.get(pkey, 0) + 1
            blocked += len(node.version_blocked)
            drops += node.version_drops
        return {
            "nodes": dict(sorted(node_census.items())),
            "pairs": dict(sorted(pair_census.items())),
            "blocked_pairs": blocked,
            "version_drops": drops,
        }

    def converge(self, max_events: int = 5_000_000) -> ConvergenceResult:
        """Build if needed and run the control plane to quiescence.

        Sim substrate only: quiescence is an event-queue property.  Live
        runs converge in wall-clock time under
        :func:`repro.live.run_live`.
        """
        network = self.build()
        if not isinstance(network, SimNetwork):
            raise RuntimeError(
                f"{self.name}: converge() drives the discrete-event engine; "
                "use repro.live.run_live for the live substrate"
            )
        return converge(network, max_events=max_events)

    def _require_network(self) -> Transport:
        """The built network, or a clear error if build() never ran."""
        if self.network is None:
            raise RuntimeError(
                f"{self.name}: no simulation network -- call build() or "
                "converge() before applying link status changes"
            )
        return self.network

    def apply_link_status(self, a: ADId, b: ADId, up: bool) -> None:
        """Change a physical link's status and notify the protocol.

        Protocols whose control plane runs on a derived topology (EGP's
        spanning tree) override this to keep both views consistent.
        """
        self._require_network().set_link_status(a, b, up)

    # -------------------------------------------------------------- crashes

    def crash_node(
        self,
        ad_id: ADId,
        retain_state: bool = True,
        graceful: Optional[bool] = None,
    ) -> None:
        """Crash an AD's routing process: the node goes silent and
        in-flight messages to it are lost.

        ``retain_state`` decides what :meth:`restore_node` later brings
        back: the same process (tables intact) or a fresh one that must
        relearn the internet from its neighbours.

        ``graceful`` selects graceful-restart helper semantics: instead
        of dropping the AD's incident links (the disruptive path),
        surviving neighbours are told to hold its routes as stale for
        the configured hold time, so the data plane keeps forwarding
        through the restart.  ``None`` defers to the distributed
        :class:`~repro.protocols.graceful.GracefulRestartConfig`
        (``helper`` flag); with that off, the legacy disruptive path
        runs byte-identically.
        """
        network = self._require_network()
        if ad_id in self._crashed_links:
            raise ValueError(f"AD {ad_id} is already crashed")
        gr = self.runtime.graceful
        if graceful is None:
            graceful = gr.helper
        live = tuple(
            link.key for link in self.graph.links_of(ad_id)
        )
        # Silence the node first so the teardown notifications below reach
        # only the surviving neighbours, never the crashed process itself.
        network.crash_node(ad_id)
        if not retain_state:
            # The process is gone, not merely isolated: retransmit/refresh
            # timers it armed die with it.  Retiring here (not at restore)
            # is what guarantees no pre-crash timer ever fires, during the
            # outage or after the fresh process takes over.
            network.nodes[ad_id].retire()
        if not retain_state:
            # No NVRAM: messages sitting in the dead process's input
            # queue are lost with the rest of its state.
            network.flush_ingress(ad_id)
        if graceful:
            # Helper mode: the links stay up in ground truth, so nobody
            # withdraws and the compiled FIB keeps forwarding.  Survivors
            # are notified out of band (the restarting process cannot
            # announce anything) and a hold timer bounds their patience.
            for a, b in live:
                survivor = b if a == ad_id else a
                if survivor not in network.nodes:
                    continue
                if not self.is_crashed(survivor):
                    network.nodes[survivor].on_neighbor_grace(
                        ad_id, gr.hold_time
                    )
            self._graceful_down[ad_id] = True
            self._graceful_holds[ad_id] = network.clock.call_later(
                gr.hold_time, self._grace_expired, ad_id
            )
        else:
            for a, b in live:
                self.apply_link_status(a, b, False)
        self._crashed_links[ad_id] = live
        self._crash_retain[ad_id] = retain_state

    def _grace_expired(self, ad_id: ADId) -> None:
        """Hold timer fired before the restarter came back: give up.

        Helpers stop holding stale routes and the normal withdrawal
        machinery runs -- the restart turns disruptive after all.
        """
        if ad_id not in self._graceful_down:  # pragma: no cover - defensive
            return
        del self._graceful_down[ad_id]
        self._graceful_holds.pop(ad_id, None)
        self.grace_expirations += 1
        for a, b in self._crashed_links.get(ad_id, ()):
            link = self.graph.link_if_exists(a, b)
            if link is not None and link.up:
                self.apply_link_status(a, b, False)

    def restore_node(self, ad_id: ADId) -> None:
        """Restart a crashed AD and bring its links back up.

        State retention was fixed at crash time.  A state-losing restart
        swaps in a freshly-constructed node (the old one is retired so its
        stale timers never fire); either way the links come up *after* the
        process is live, so up-notifications drive relearning.
        """
        network = self._require_network()
        if ad_id not in self._crashed_links:
            raise ValueError(f"AD {ad_id} is not crashed")
        links = self._crashed_links.pop(ad_id)
        retain = self._crash_retain.pop(ad_id)
        graceful = ad_id in self._graceful_down
        if graceful:
            # Back inside the hold window: cancel the helpers' give-up
            # timer.  The links never went down, so the legacy
            # up-notification storm below is replaced by an explicit
            # resynchronisation round (when configured).
            del self._graceful_down[ad_id]
            handle = self._graceful_holds.pop(ad_id, None)
            if handle is not None:
                handle.cancel()
        fresh: Optional[ProtocolNode] = None
        if not retain:
            old = network.nodes[ad_id]
            fresh = self._fresh_node(ad_id)
            self._stamp_runtime(fresh)
            fresh.inherit_nonvolatile(old)
            old.retire()  # idempotent; the node was retired at crash time
        network.restore_node(ad_id, fresh)
        if fresh is not None:
            fresh.start()
            # A fresh process lost its negotiation state; re-announce
            # (no-op unless the runtime negotiates).
            fresh.announce_wire()
        if graceful:
            if self.runtime.graceful.resync:
                self.grace_resyncs += 1
                restarter = network.nodes[ad_id]
                for a, b in links:
                    link = self.graph.link_if_exists(a, b)
                    if link is None or not link.up:
                        continue
                    survivor = b if a == ad_id else a
                    if survivor in network.nodes and not self.is_crashed(
                        survivor
                    ):
                        network.nodes[survivor].on_neighbor_resync(ad_id)
                    restarter.on_neighbor_resync(survivor)
            return
        for a, b in links:
            self.apply_link_status(a, b, True)

    def _fresh_node(self, ad_id: ADId) -> ProtocolNode:
        """A newly-constructed node for one AD, detached from any network.

        Built by running :meth:`_make_nodes` against a scratch network --
        node constructors are pure (no events scheduled until ``start``),
        so the siblings built alongside are garbage-collected harmlessly.
        """
        scratch = SimNetwork(self.graph)
        self._make_nodes(scratch)
        node = scratch.nodes[ad_id]
        node.detach()
        return node

    def is_crashed(self, ad_id: ADId) -> bool:
        return ad_id in self._crashed_links

    # ----------------------------------------------------------- fault plans

    def schedule_fault_plan(self, plan: "FaultPlan") -> None:
        """Schedule a fault plan's events, relative to the current time."""
        network = self._require_network()
        for ev in plan:
            network.clock.call_later(ev.time, self._apply_fault_event, ev)

    def _apply_fault_event(self, ev: object) -> None:
        from repro.faults.misbehavior import MisbehaviorStart, MisbehaviorStop
        from repro.faults.plan import ImpairmentChange, LinkFault, NodeFault

        network = self._require_network()
        if isinstance(ev, LinkFault):
            self.apply_link_status(ev.a, ev.b, ev.up)
        elif isinstance(ev, NodeFault):
            if ev.up:
                self.restore_node(ev.ad)
            else:
                self.crash_node(ev.ad, retain_state=ev.retain_state)
        elif isinstance(ev, ImpairmentChange):
            network.set_impairment(ev.link, ev.spec)
        elif isinstance(ev, MisbehaviorStart):
            self.start_misbehavior(ev.ad, ev.lie, ev.target)
        elif isinstance(ev, MisbehaviorStop):
            self.stop_misbehavior(ev.ad)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown fault event {ev!r}")

    # ------------------------------------------------------------ misbehavior

    def start_misbehavior(
        self, ad_id: ADId, lie: str, target: Optional[ADId] = None
    ) -> bool:
        """Turn an AD into a liar now; returns whether the lie applied.

        A lie the protocol family cannot express (``term-forgery`` on a
        DV speaker) is logged as not applied rather than failing the
        run: "this design cannot even tell this lie" is itself a result.
        """
        network = self._require_network()
        node = network.nodes[ad_id]
        applied = bool(node.misbehave(lie, target))
        if applied:
            self.liars[ad_id] = lie
        self.misbehavior_log.append(
            {
                "time": network.clock.now,
                "ad": ad_id,
                "lie": lie,
                "target": target,
                "applied": applied,
            }
        )
        return applied

    def stop_misbehavior(self, ad_id: ADId) -> None:
        """The liar reverts to honesty (flooded residue stays out there)."""
        network = self._require_network()
        network.nodes[ad_id].behave()
        self.misbehavior_log.append(
            {"time": network.clock.now, "ad": ad_id, "lie": None,
             "target": None, "applied": True}
        )

    def poison_suspects(self) -> "set":
        """ADs whose routing claims may be tainted: every liar, plus the
        victims its applied lies impersonated (a bogus-origin victim's
        address is the thing being hijacked)."""
        suspects = set(self.liars)
        for entry in self.misbehavior_log:
            if entry["applied"] and entry["target"] is not None:
                suspects.add(entry["target"])
        return suspects

    def validation_summary(self) -> Dict[str, Any]:
        """Network-wide validation counters for the run record.

        ``false_quarantines`` counts penalty-timer activations against
        ADs that never lied -- the collateral-damage metric E12's
        lie-free baseline pins at zero.
        """
        network = self._require_network()
        guards = [
            node.guard
            for node in network.nodes.values()
            if getattr(node, "guard", None) is not None
        ]
        events = [ev for g in guards for ev in g.quarantine_events]
        return {
            "violations": sum(g.total_violations for g in guards),
            "quarantines": len(events),
            "false_quarantines": sum(
                1 for ev in events if ev.neighbor not in self.liars
            ),
            "suppressed": sum(g.suppressed for g in guards),
            "quarantined_ads": sorted({ev.neighbor for ev in events}),
        }

    def pacing_summary(self) -> Dict[str, int]:
        """Network-wide overload-defense counters for the run record."""
        network = self._require_network()
        flaps = suppressions = suppressed_ann = deferrals = 0
        for node in network.nodes.values():
            damper = getattr(node, "_damper", None)
            if damper is not None:
                flaps += damper.flaps
                suppressions += damper.suppressions
            suppressed_ann += getattr(node, "suppressed_announcements", 0)
            deferrals += getattr(node, "paced_deferrals", 0)
        return {
            "flaps": flaps,
            "suppressions": suppressions,
            "suppressed_announcements": suppressed_ann,
            "paced_deferrals": deferrals,
        }

    def duplicates_ignored(self) -> int:
        """Control-plane duplicates suppressed by hardening, network-wide."""
        network = self._require_network()
        return sum(
            getattr(node, "duplicates_ignored", 0)
            for node in network.nodes.values()
        )

    def graceful_summary(self) -> Dict[str, int]:
        """Network-wide graceful-restart counters for the run record."""
        network = self._require_network()
        return {
            "holds": sum(
                getattr(node, "grace_holds", 0)
                for node in network.nodes.values()
            ),
            "expirations": self.grace_expirations,
            "resyncs": self.grace_resyncs,
        }

    # ------------------------------------------------------------ data plane

    def source_route(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Tuple[ADId, ...]]:
        """The full route the source AD would place in packet headers.

        Only meaningful for source-routing protocols.
        """
        raise NotImplementedError(f"{self.name} is not a source-routing protocol")

    def next_hop(
        self, ad_id: ADId, flow: FlowSpec, prev: Optional[ADId]
    ) -> Optional[ADId]:
        """The forwarding decision AD ``ad_id`` makes for ``flow``.

        Only meaningful for hop-by-hop protocols.  ``prev`` is the AD the
        packet arrived from (``None`` at the source).
        """
        raise NotImplementedError(f"{self.name} is not a hop-by-hop protocol")

    def find_route(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Tuple[ADId, ...]]:
        """The route traffic for ``flow`` would actually take, or ``None``.

        Source mode: the source's computed route.  Hop-by-hop mode: the
        walk of per-hop decisions; a forwarding loop or a hop with no
        decision yields ``None`` (the packet would be dropped).
        """
        if flow.src == flow.dst:
            return (flow.src,)
        if self.mode is ForwardingMode.SOURCE:
            return self.source_route(flow, selection)
        return self._walk_next_hops(flow)

    def _walk_next_hops(self, flow: FlowSpec) -> Optional[Tuple[ADId, ...]]:
        path: List[ADId] = [flow.src]
        seen = {flow.src}
        prev: Optional[ADId] = None
        current = flow.src
        # Generous guard: no simple AD path is longer than the AD count.
        for _ in range(self.graph.num_ads):
            nxt = self.next_hop(current, flow, prev)
            if nxt is None:
                return None
            if nxt in seen:
                self.forwarding_loops += 1
                return None  # forwarding loop
            path.append(nxt)
            seen.add(nxt)
            if nxt == flow.dst:
                return tuple(path)
            prev, current = current, nxt
        return None

    # ------------------------------------------------------------ FIB export

    def flow_fib_key(self, flow: "FlowSpec") -> Tuple:
        """Project ``flow`` onto the fields the data plane discriminates.

        Two flows with equal keys are guaranteed the same forwarding
        decisions at every hop, so a compiled FIB stores one entry for
        both.  Subclasses narrow :attr:`fib_key_fields` instead of
        overriding this.
        """
        return tuple(getattr(flow, f) for f in self.fib_key_fields)

    # --------------------------------------------------------------- metrics

    def rib_size(self, ad_id: ADId) -> int:
        """Routing-information entries held at an AD (protocol-defined)."""
        raise NotImplementedError

    def total_rib_size(self) -> int:
        """Sum of RIB entries across all ADs."""
        return sum(self.rib_size(a) for a in self.graph.ad_ids())

    def max_rib_size(self) -> int:
        """Largest per-AD RIB (the hot-spot the scaling claims concern)."""
        return max(self.rib_size(a) for a in self.graph.ad_ids())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(ads={self.graph.num_ads})"
