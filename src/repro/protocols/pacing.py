"""Update pacing, hold-down, and flap damping: overload defenses.

Bounded ingress queues (:mod:`repro.simul.ingress`) make control-plane
overload *possible*; this module gives every protocol the classic
defenses against causing it.  Three individually toggleable features,
expressed in each family's native currency — per-destination
announcements for the DV family (DV/ECMA/EGP/IDRP and its variants),
per-LSA origination for the LS family (SPF/LS-HbH/ORWG and the topology
variants):

* ``pace`` — a minimum interval between successive update batches to
  the same neighbours (BGP's MinRouteAdvertisementInterval): triggered
  flushes and LSA originations are deferred until the interval since
  the previous one has elapsed, so a burst of topology events coalesces
  into one announcement carrying the final state.
* ``holddown`` — a timer armed by *bad news* (a link or route going
  down) that delays the reaction; a flap whose up-leg arrives within
  the window produces one announcement of the settled state instead of
  two of transient states.
* ``damp`` — per-route (DV) or per-link (LS) flap damping in the
  BGP-style penalty model: every loss adds ``penalty``; the accumulated
  figure-of-merit decays exponentially with ``half_life``; crossing
  ``suppress_threshold`` suppresses the route/link (advertised as
  withdrawn/down) until decay brings it under ``reuse_threshold``.
  Decay is strictly monotone and suppression is always eventually
  lifted once flapping stops.

A :class:`PacingConfig` travels from the protocol driver to every node
at build time, exactly like
:class:`~repro.protocols.hardening.HardeningConfig`; nodes fall back to
the exact legacy code path when a feature is off, which keeps unpaced
runs byte-identical to the pre-pacing simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Tuple, Union

#: The individually toggleable feature names, in canonical order.
FEATURES: Tuple[str, ...] = ("pace", "holddown", "damp")


@dataclass(frozen=True)
class PacingConfig:
    """Which overload defenses are on, and their timer parameters.

    Times are in simulated units (link delays run 3--30); the defaults
    are deliberately a few triggered-update delays wide so pacing
    visibly batches without stalling honest convergence.
    """

    pace: bool = False
    holddown: bool = False
    damp: bool = False
    #: Minimum gap between successive update batches to the neighbours.
    min_advert_interval: float = 8.0
    #: How long bad news is held before the reaction is announced.
    holddown_time: float = 20.0
    #: Penalty added per flap (route loss / link down).
    penalty: float = 1.0
    #: Figure-of-merit at which a route/link is suppressed.
    suppress_threshold: float = 3.0
    #: Figure-of-merit below which a suppressed route/link is reusable.
    reuse_threshold: float = 1.0
    #: Exponential decay half-life of the accumulated penalty.
    half_life: float = 120.0

    def __post_init__(self) -> None:
        if self.min_advert_interval <= 0:
            raise ValueError("min advertisement interval must be > 0")
        if self.holddown_time <= 0:
            raise ValueError("hold-down time must be > 0")
        if self.penalty <= 0 or self.half_life <= 0:
            raise ValueError("damping penalty and half-life must be > 0")
        if not 0 < self.reuse_threshold < self.suppress_threshold:
            raise ValueError(
                "need 0 < reuse_threshold < suppress_threshold "
                f"(got {self.reuse_threshold} / {self.suppress_threshold})"
            )

    @property
    def any_enabled(self) -> bool:
        return self.pace or self.holddown or self.damp

    @property
    def enabled(self) -> Tuple[str, ...]:
        """Enabled feature names, in canonical order."""
        return tuple(f for f in FEATURES if getattr(self, f))

    def __str__(self) -> str:
        return "+".join(self.enabled) if self.any_enabled else "none"


#: No pacing: the exact legacy protocol behaviour.
UNPACED = PacingConfig()

#: Every defense on, default timers.
FULL = PacingConfig(pace=True, holddown=True, damp=True)


def pacing_from(
    value: Union[None, str, Iterable[str], PacingConfig],
) -> PacingConfig:
    """Normalize a user-facing pacing spec into a config.

    Accepts a ready config, ``None``/``"none"``/``"off"`` (off),
    ``"all"``/``"full"`` (every feature), one feature name, or an
    iterable of feature names.
    """
    if isinstance(value, PacingConfig):
        return value
    if value is None:
        return UNPACED
    if isinstance(value, str):
        if value in ("none", "off", ""):
            return UNPACED
        if value in ("all", "full"):
            return FULL
        names: Tuple[str, ...] = tuple(value.replace("+", ",").split(","))
    else:
        names = tuple(value)
    names = tuple(n.strip() for n in names if n.strip())
    unknown = [n for n in names if n not in FEATURES]
    if unknown:
        raise ValueError(
            f"unknown pacing feature(s) {unknown}; choose from {FEATURES}"
        )
    return PacingConfig(**{n: True for n in names})


class _DampState:
    """Penalty accounting for one damped key."""

    __slots__ = ("penalty", "stamp", "suppressed")

    def __init__(self) -> None:
        self.penalty = 0.0
        self.stamp = 0.0
        self.suppressed = False


class FlapDamper:
    """BGP-style exponential-decay flap damping over arbitrary keys.

    The decayed penalty is computed lazily from ``(value, timestamp)``
    pairs, so no timers are needed to model decay; callers that want to
    react the moment a suppression lifts schedule a check at
    :meth:`reuse_delay`.
    """

    def __init__(self, config: PacingConfig) -> None:
        self.config = config
        self._states: Dict[Hashable, _DampState] = {}
        #: Flaps recorded (route losses / link downs seen by this damper).
        self.flaps = 0
        #: Transitions into the suppressed state.
        self.suppressions = 0

    def _decayed(self, state: _DampState, now: float) -> float:
        dt = now - state.stamp
        if dt <= 0:
            return state.penalty
        return state.penalty * 0.5 ** (dt / self.config.half_life)

    def penalty_of(self, key: Hashable, now: float) -> float:
        """Current (decayed) figure-of-merit for ``key``."""
        state = self._states.get(key)
        return 0.0 if state is None else self._decayed(state, now)

    def record_flap(self, key: Hashable, now: float) -> bool:
        """Charge one flap to ``key``; returns True if it newly suppresses."""
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _DampState()
        state.penalty = self._decayed(state, now) + self.config.penalty
        state.stamp = now
        self.flaps += 1
        if not state.suppressed and state.penalty >= self.config.suppress_threshold:
            state.suppressed = True
            self.suppressions += 1
            return True
        return False

    def is_suppressed(self, key: Hashable, now: float) -> bool:
        """Whether ``key`` is currently suppressed (lifting it if decayed)."""
        state = self._states.get(key)
        if state is None or not state.suppressed:
            return False
        if self._decayed(state, now) <= self.config.reuse_threshold:
            state.suppressed = False
            return False
        return True

    def reuse_delay(self, key: Hashable, now: float) -> float:
        """Time until ``key``'s penalty decays to the reuse threshold."""
        current = self.penalty_of(key, now)
        if current <= self.config.reuse_threshold:
            return 0.0
        return self.config.half_life * math.log2(
            current / self.config.reuse_threshold
        )

    def suppressed_keys(self, now: float) -> Tuple[Hashable, ...]:
        return tuple(
            k for k in self._states if self.is_suppressed(k, now)
        )


#: Floor on re-advertisement check spacing, so a key that keeps being
#: re-penalized while suppressed cannot busy-loop the scheduler.
REUSE_TICK_MIN = 1.0


class OverloadDefenseMixin:
    """Pacing/hold-down/damping hooks shared by the protocol node classes.

    Mixed into each family's node base; every method is a no-op straight
    line back to the legacy code path when the corresponding feature is
    off, which is what keeps all-off runs byte-identical.  State is
    created lazily (class-attribute defaults, instance attributes on
    first use), so node constructors stay untouched.
    """

    #: Stamped by the driver at build time (like ``hardening``).
    pacing: PacingConfig = UNPACED
    _damper = None
    _last_flush = None
    _holddown_until = 0.0
    _suppression_announced = None
    #: Announcements replaced by withdrawals because of suppression.
    suppressed_announcements = 0
    #: Flushes/originations deferred by pace or hold-down.
    paced_deferrals = 0

    # ---- update pacing + hold-down -----------------------------------

    def _pacing_defers_flush(self) -> "float | None":
        """Seconds to defer this update batch, or ``None`` to send now.

        Called at the top of a flush/origination.  Proceeding (``None``)
        also timestamps the batch for the next MRAI computation.
        """
        if not self.pacing.any_enabled:
            return None
        earliest = self.now
        if self.pacing.pace and self._last_flush is not None:
            earliest = max(
                earliest, self._last_flush + self.pacing.min_advert_interval
            )
        if self.pacing.holddown:
            earliest = max(earliest, self._holddown_until)
        if earliest > self.now:
            self.paced_deferrals += 1
            return earliest - self.now
        if self.pacing.pace:
            self._last_flush = self.now
        return None

    def _enter_holddown(self) -> None:
        """Bad news arrived: delay the reaction to coalesce a flap.

        An already-armed timer is *not* extended: under sustained
        flapping an extending hold-down would starve announcements for
        the whole storm, leaving every neighbour stale.  Bad news is
        thus delayed at most one ``holddown_time`` from the first loss.
        """
        if self.pacing.holddown and self.now >= self._holddown_until:
            self._holddown_until = self.now + self.pacing.holddown_time

    # ---- flap damping -------------------------------------------------

    def _damp_loss(self, key: Hashable) -> bool:
        """Charge one flap for a lost route/link.

        Returns True when the key newly crosses the suppress threshold;
        a re-advertisement check is armed for when decay lifts it.
        """
        if not self.pacing.damp:
            return False
        if self._damper is None:
            self._damper = FlapDamper(self.pacing)
        if self._damper.record_flap(key, self.now):
            self._arm_reuse_check(key)
            return True
        return False

    def _damp_suppressed(self, key: Hashable) -> bool:
        if self._damper is None:
            return False
        return self._damper.is_suppressed(key, self.now)

    def _suppress_withdraw_once(self, key: Hashable) -> bool:
        """Whether a suppressed key's withdrawal is still unannounced.

        DV-family flushes withdraw a suppressed route exactly once and
        then fall *silent* about it: repeating the withdrawal every
        flush would trip the neighbours' re-offer rule each time and
        ping-pong forever.  Call once per flush decision, before the
        per-neighbour loop.
        """
        if self._suppression_announced is None:
            self._suppression_announced = set()
        if key in self._suppression_announced:
            return False
        self._suppression_announced.add(key)
        return True

    def _arm_reuse_check(self, key: Hashable) -> None:
        delay = max(self._damper.reuse_delay(key, self.now), REUSE_TICK_MIN)
        self.schedule(delay, self._reuse_check, key)

    def _reuse_check(self, key: Hashable) -> None:
        if self._damper is None:
            return
        if self._damper.is_suppressed(key, self.now):
            # Re-penalized while suppressed; wait out the fresh decay.
            self._arm_reuse_check(key)
            return
        if self._suppression_announced is not None:
            self._suppression_announced.discard(key)
        self._on_reuse(key)

    def _on_reuse(self, key: Hashable) -> None:
        """Suppression lifted: re-advertise.  Overridden per family."""
