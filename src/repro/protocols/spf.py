"""Plain link-state shortest path first: the policy-blind LS baseline.

The "new generation IGP" of Section 3 (OSPF/IS-IS style) lifted to the
AD level: flood link state, compute shortest paths, forward hop by hop
along each node's own SPF tree.  Loop freedom relies on all nodes
computing over identical LSDBs with identical tie-breaking.

Like the DV baseline it ignores policy entirely; under restrictive
scenarios its routes are fast, consistent -- and illegal.
"""

from __future__ import annotations

import heapq
from typing import ClassVar, Dict, List, Optional, Set, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.protocols.base import ForwardingMode, RoutingProtocol
from repro.protocols.flooding import LSNode
from repro.simul.network import SimNetwork

#: A link key: the canonical (smaller, larger) endpoint pair.
LinkKey = Tuple[ADId, ADId]


def spf_next_hops(
    graph: InterADGraph, root: ADId, metric: str
) -> Dict[ADId, ADId]:
    """Dijkstra from ``root``: destination -> first hop, deterministic.

    Ties break toward the lexicographically smaller (cost, dest, parent)
    labels, so every node with the same view produces the same trees.
    """
    dist: Dict[ADId, float] = {root: 0.0}
    first: Dict[ADId, ADId] = {}
    heap = [(0.0, root, root)]
    done = set()
    inf = float("inf")
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        d, u, via = pop(heap)
        if u in done:
            continue
        done.add(u)
        if u != root:
            first[u] = via
        for link in graph.links_of(u):
            v = link.b if link.a == u else link.a
            if v in done:
                continue
            nd = d + link.metrics.get(metric, 1.0)
            if nd < dist.get(v, inf):
                dist[v] = nd
                nxt_via = v if u == root else via
                push(heap, (nd, v, nxt_via))
    return first


class IncrementalSPFState:
    """One root's SPF tree, repairable under edge deltas.

    Maintains ``dist`` and a *canonical parent* per reachable node; the
    first-hop table :func:`spf_next_hops` would produce is derived from
    the parents.  For strictly positive edge weights the operational
    oracle's tie-break is exactly canonical: every settled node's parent
    is the optimal predecessor minimising ``(dist[parent], parent)``
    (optimal parents settle strictly earlier, in lexicographic
    ``(dist, id)`` pop order, and the first to relax wins the strict
    ``<`` test).  That characterisation is what makes local repair
    possible -- parents can be recomputed from final distances alone.

    :meth:`apply` takes the changed link keys between two view versions
    (from :meth:`~repro.protocols.flooding.LSNode.view_edge_changes`)
    and repairs just the affected region:

    * removed / worsened **tree** edges dirty the subtree hanging below
      them (non-tree removals and increases are provably no-ops);
    * dirty nodes are re-seeded with their best offer from clean
      neighbours; added / improved edges seed strict improvements;
    * a bounded Dijkstra settles the region, recomputing canonical
      parents from final distances, with equal-cost offers to *clean*
      nodes handled as pure parent swaps.

    Any situation outside the proof -- a zero-weight edge (metric-lie
    misbehavior advertises zeroed metrics), a change batch touching a
    large fraction of the graph -- falls back to a full recompute.
    """

    __slots__ = ("graph", "root", "metric", "dist", "parent", "_weights", "_zero",
                 "full_recomputes", "repairs")

    def __init__(self, graph: InterADGraph, root: ADId, metric: str) -> None:
        self.graph = graph
        self.root = root
        self.metric = metric
        self.full_recomputes = 0
        self.repairs = 0
        self.full_recompute()

    def full_recompute(self) -> None:
        """Rebuild distances, parents, and the weight snapshot from scratch."""
        graph, root, metric = self.graph, self.root, self.metric
        weights: Dict[LinkKey, float] = {}
        zero = False
        for link in graph.links(include_down=False):
            w = link.metrics.get(metric, 1.0)
            weights[link.key] = w
            if w <= 0.0:
                zero = True
        self._weights = weights
        self._zero = zero
        dist: Dict[ADId, float] = {root: 0.0}
        parent: Dict[ADId, ADId] = {}
        heap: List[Tuple[float, ADId, ADId]] = [(0.0, root, root)]
        done: Set[ADId] = set()
        inf = float("inf")
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            d, u, p = pop(heap)
            if u in done:
                continue
            done.add(u)
            if u != root:
                parent[u] = p
            for link in graph.links_of(u):
                v = link.b if link.a == u else link.a
                if v in done:
                    continue
                nd = d + link.metrics.get(metric, 1.0)
                if nd < dist.get(v, inf):
                    dist[v] = nd
                    push(heap, (nd, v, u))
        self.dist = dist
        self.parent = parent
        self.full_recomputes += 1

    def apply(self, keys: List[LinkKey]) -> None:
        """Bring the tree up to date with the given (possibly) changed links.

        Each key's old weight comes from the internal snapshot and its new
        weight from the graph's current state (absent or down -> gone), so
        over-reporting unchanged keys is harmless.
        """
        graph, metric, weights = self.graph, self.metric, self._weights
        changes: List[Tuple[LinkKey, Optional[float], Optional[float]]] = []
        seen: Set[LinkKey] = set()
        for key in keys:
            if key in seen:
                continue
            seen.add(key)
            old_w = weights.get(key)
            link = graph.link_if_exists(key[0], key[1])
            new_w: Optional[float] = None
            if link is not None and link.up:
                new_w = link.metrics.get(metric, 1.0)
            if new_w == old_w:
                continue
            changes.append((key, old_w, new_w))
            if new_w is None:
                del weights[key]
            else:
                weights[key] = new_w
                if new_w <= 0.0:
                    self._zero = True
        if not changes:
            return
        if self._zero:
            # Outside the strictly-positive-weights proof: stay exact by
            # running the oracle until the zero-weight edges heal.
            self.full_recompute()
            return
        if len(changes) * 4 > max(32, len(weights)):
            self.full_recompute()
            return
        self._repair(changes)

    def _repair(
        self,
        changes: List[Tuple[LinkKey, Optional[float], Optional[float]]],
    ) -> None:
        dist, parent, root = self.dist, self.parent, self.root
        graph, metric = self.graph, self.metric
        # Phase A: dirty the subtrees below worsened/removed tree edges.
        # (A worsened or removed non-tree edge changes nothing: clean
        # distances ride intact tree paths, and since the edge was not
        # optimal before it cannot have become optimal by worsening.)
        children: Dict[ADId, List[ADId]] = {}
        for v, p in parent.items():
            children.setdefault(p, []).append(v)
        dirty: Set[ADId] = set()
        stack: List[ADId] = []
        for (a, b), old_w, new_w in changes:
            if new_w is not None and (old_w is None or new_w < old_w):
                continue  # improvement: handled by seeding below
            if parent.get(b) == a:
                stack.append(b)
            elif parent.get(a) == b:
                stack.append(a)
        while stack:
            v = stack.pop()
            if v in dirty:
                continue
            dirty.add(v)
            stack.extend(children.get(v, ()))
        for v in dirty:
            del dist[v]
            del parent[v]
        heap: List[Tuple[float, ADId]] = []
        push, pop = heapq.heappush, heapq.heappop
        # Phase B seeds: each dirty node's best offer from a clean
        # neighbour (a valid path length; possibly not yet final -- the
        # neighbour re-relaxes at its own settle if it improves) ...
        for v in dirty:
            best: Optional[float] = None
            for link in graph.links_of(v):
                u = link.b if link.a == v else link.a
                if u in dirty:
                    continue
                du = dist.get(u)
                if du is None:
                    continue
                cand = du + link.metrics.get(metric, 1.0)
                if best is None or cand < best:
                    best = cand
            if best is not None:
                dist[v] = best
                push(heap, (best, v))
        # ... plus strict improvements through added/improved edges, and
        # equal-cost parent swaps for clean nodes.
        for (a, b), old_w, new_w in changes:
            if new_w is None or (old_w is not None and new_w >= old_w):
                continue
            for u, v in ((a, b), (b, a)):
                if u in dirty:
                    continue
                du = dist.get(u)
                if du is None:
                    continue
                nd = du + new_w
                dv = dist.get(v)
                if dv is None or nd < dv:
                    dist[v] = nd
                    push(heap, (nd, v))
                elif nd == dv and v != root and v not in dirty:
                    pv = parent.get(v)
                    if pv is not None and (du, u) < (dist[pv], pv):
                        parent[v] = u
        # Bounded Dijkstra over the affected region.  Invariant: when a
        # non-stale (nd, v) pops, every node with a smaller distance is
        # final, so canonical parents are computable from dist alone.
        settled: Set[ADId] = set()
        while heap:
            nd, v = pop(heap)
            if v in settled:
                continue
            dv = dist.get(v)
            if dv is None or nd > dv:
                continue  # stale entry
            settled.add(v)
            if v != root:
                best_u: Optional[Tuple[float, ADId]] = None
                for link in graph.links_of(v):
                    u = link.b if link.a == v else link.a
                    du = dist.get(u)
                    if du is None:
                        continue
                    if du + link.metrics.get(metric, 1.0) == nd:
                        if best_u is None or (du, u) < best_u:
                            best_u = (du, u)
                if best_u is None:  # pragma: no cover - escape hatch
                    self.full_recompute()
                    return
                parent[v] = best_u[1]
            for link in graph.links_of(v):
                u = link.b if link.a == v else link.a
                if u in settled:
                    continue
                nu = nd + link.metrics.get(metric, 1.0)
                du = dist.get(u)
                if du is None or nu < du:
                    dist[u] = nu
                    push(heap, (nu, u))
                elif nu == du and u != root and u not in dirty:
                    pu = parent.get(u)
                    if pu is not None and (nd, v) < (dist[pu], pu):
                        parent[u] = v
        self.repairs += 1

    def first_hops(self) -> Dict[ADId, ADId]:
        """Derive the destination -> first hop table from the parents.

        Identical to what :func:`spf_next_hops` returns for the same
        graph: the ``via`` labels it propagates satisfy exactly
        ``via(v) = v if parent(v) == root else via(parent(v))``.
        """
        parent, root = self.parent, self.root
        first: Dict[ADId, ADId] = {}
        for v in parent:
            x = v
            chain: List[ADId] = []
            while x not in first:
                p = parent[x]
                if p == root:
                    first[x] = x
                    break
                chain.append(x)
                x = p
            for y in reversed(chain):
                first[y] = first[parent[y]]
        return first


class SPFNode(LSNode):
    """LS node with per-QOS SPF next-hop tables."""

    def __init__(self, ad_id: ADId) -> None:
        super().__init__(ad_id, own_terms=(), include_terms=False)
        self._tables: Dict[QOS, Tuple[int, Dict[ADId, ADId]]] = {}
        #: metric -> (view version the state is synced to, repairable tree).
        self._spf_states: Dict[str, Tuple[int, IncrementalSPFState]] = {}

    def next_hop_to(self, dest: ADId, qos: QOS) -> Optional[ADId]:
        if qos.is_bottleneck:
            # The 1990 LS baseline repeats additive SPF per metric; it has
            # no widest-path mode, so bandwidth traffic rides the default
            # table (honest era behaviour).
            qos = QOS.DEFAULT
        cached = self._tables.get(qos)
        if cached is None or cached[0] != self.db_version:
            profiler = self.profiler
            if profiler is None:
                table = self._compute_table(qos)
            else:
                with profiler.phase("proto.spf"):
                    table = self._compute_table(qos)
            self._tables[qos] = (self.db_version, table)
            self.note_computation("spf")
        else:
            table = cached[1]
        return self._tables[qos][1].get(dest)

    def _compute_table(self, qos: QOS) -> Dict[ADId, ADId]:
        graph, _ = self.local_view()
        metric = qos.metric
        if not self.perf.incremental_spf:
            return spf_next_hops(graph, self.ad_id, metric)
        entry = self._spf_states.get(metric)
        state: Optional[IncrementalSPFState] = None
        if entry is not None:
            version, state = entry
            changes = None
            if state.graph is graph:
                # Same live view object; a full view rebuild swaps the
                # graph (and clears the delta log), so identity implies
                # the recorded batches describe this exact object.
                changes = self.view_edge_changes(version)
            if changes is None:
                state = None
            else:
                state.apply(changes)
        if state is None:
            state = IncrementalSPFState(graph, self.ad_id, metric)
        self._spf_states[metric] = (self.db_version, state)
        return state.first_hops()

    def table_size(self) -> int:
        return sum(len(t[1]) for t in self._tables.values())


class PlainLinkStateProtocol(RoutingProtocol):
    """Driver for the plain LS baseline."""

    name: ClassVar[str] = "plain-ls"
    design_point = None
    mode = ForwardingMode.HOP_BY_HOP
    policy_aware: ClassVar[bool] = False
    #: Plain SPF forwards on destination and QOS metric choice.
    fib_key_fields: ClassVar[Tuple[str, ...]] = ("src", "dst", "qos")

    def _make_nodes(self, network: SimNetwork) -> None:
        for ad_id in self.graph.ad_ids():
            network.add_node(SPFNode(ad_id))

    def next_hop(
        self, ad_id: ADId, flow: FlowSpec, prev: Optional[ADId]
    ) -> Optional[ADId]:
        node = self.network.node(ad_id)
        assert isinstance(node, SPFNode)
        return node.next_hop_to(flow.dst, flow.qos)

    def rib_size(self, ad_id: ADId) -> int:
        node = self.network.node(ad_id)
        assert isinstance(node, SPFNode)
        # LSDB entries are the protocol's routing information state.
        return len(node.lsdb)
