"""Plain link-state shortest path first: the policy-blind LS baseline.

The "new generation IGP" of Section 3 (OSPF/IS-IS style) lifted to the
AD level: flood link state, compute shortest paths, forward hop by hop
along each node's own SPF tree.  Loop freedom relies on all nodes
computing over identical LSDBs with identical tie-breaking.

Like the DV baseline it ignores policy entirely; under restrictive
scenarios its routes are fast, consistent -- and illegal.
"""

from __future__ import annotations

import heapq
from typing import ClassVar, Dict, Optional, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.protocols.base import ForwardingMode, RoutingProtocol
from repro.protocols.flooding import LSNode
from repro.simul.network import SimNetwork


def spf_next_hops(
    graph: InterADGraph, root: ADId, metric: str
) -> Dict[ADId, ADId]:
    """Dijkstra from ``root``: destination -> first hop, deterministic.

    Ties break toward the lexicographically smaller (cost, dest, parent)
    labels, so every node with the same view produces the same trees.
    """
    dist: Dict[ADId, float] = {root: 0.0}
    first: Dict[ADId, ADId] = {}
    heap = [(0.0, root, root)]
    done = set()
    while heap:
        d, u, via = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if u != root:
            first[u] = via
        for link in graph.links_of(u):
            v = link.other(u)
            if v in done:
                continue
            nd = d + link.metric(metric)
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                nxt_via = v if u == root else via
                heapq.heappush(heap, (nd, v, nxt_via))
    return first


class SPFNode(LSNode):
    """LS node with per-QOS SPF next-hop tables."""

    def __init__(self, ad_id: ADId) -> None:
        super().__init__(ad_id, own_terms=(), include_terms=False)
        self._tables: Dict[QOS, Tuple[int, Dict[ADId, ADId]]] = {}

    def next_hop_to(self, dest: ADId, qos: QOS) -> Optional[ADId]:
        if qos.is_bottleneck:
            # The 1990 LS baseline repeats additive SPF per metric; it has
            # no widest-path mode, so bandwidth traffic rides the default
            # table (honest era behaviour).
            qos = QOS.DEFAULT
        cached = self._tables.get(qos)
        if cached is None or cached[0] != self.db_version:
            graph, _ = self.local_view()
            table = spf_next_hops(graph, self.ad_id, qos.metric)
            self._tables[qos] = (self.db_version, table)
            self.note_computation("spf")
        else:
            table = cached[1]
        return self._tables[qos][1].get(dest)

    def table_size(self) -> int:
        return sum(len(t[1]) for t in self._tables.values())


class PlainLinkStateProtocol(RoutingProtocol):
    """Driver for the plain LS baseline."""

    name: ClassVar[str] = "plain-ls"
    design_point = None
    mode = ForwardingMode.HOP_BY_HOP
    policy_aware: ClassVar[bool] = False

    def _make_nodes(self, network: SimNetwork) -> None:
        for ad_id in self.graph.ad_ids():
            network.add_node(SPFNode(ad_id))

    def next_hop(
        self, ad_id: ADId, flow: FlowSpec, prev: Optional[ADId]
    ) -> Optional[ADId]:
        node = self.network.node(ad_id)
        assert isinstance(node, SPFNode)
        return node.next_hop_to(flow.dst, flow.qos)

    def rib_size(self, ad_id: ADId) -> int:
        node = self.network.node(ad_id)
        assert isinstance(node, SPFNode)
        # LSDB entries are the protocol's routing information state.
        return len(node.lsdb)
