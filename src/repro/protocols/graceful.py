"""Graceful restart: keep forwarding through a planned control-plane restart.

The paper's administrative-autonomy premise means ADs restart their
routing processes on their own schedules -- software upgrades, config
reloads, crash recovery -- and the rest of the internet should not treat
every planned restart as a topology change.  Without help, a restarting
AD's neighbours withdraw its routes immediately, the withdrawal floods
the internet, and traffic through the AD blackholes until the restarted
process re-converges: a *disruptive* restart.  Graceful restart (the
BGP/OSPF mechanism family, RFC 4724 / RFC 3623 in spirit) makes the
restart *hitless*:

* ``helper`` -- neighbours of a gracefully restarting AD keep its routes
  installed as **stale** for a bounded hold period instead of
  withdrawing them.  The data plane (the compiled FIB of
  :mod:`repro.traffic`) keeps forwarding through the restarting AD, so
  a restart that completes within the hold window never perturbs the
  rest of the internet.  If the hold timer expires first, the helpers
  give up and the normal withdrawal/reconvergence machinery runs.
* ``resync`` -- when the restarted process comes back inside the hold
  window, each surviving neighbour replays its adjacency bring-up with
  the restarter (the protocol family's own link-up machinery: LS
  database exchange, DV full-table flush, path-vector Loc-RIB
  re-advertisement), which both refills the restarter's tables and
  refreshes the helpers' stale entries.

A :class:`GracefulRestartConfig` travels to every node inside
:class:`~repro.protocols.runtime.NodeRuntimeConfig`, exactly like
hardening/validation/pacing.  With every feature off (the default) the
crash/restore machinery behaves byte-identically to the legacy
disruptive path, which is what keeps the committed experiment tables
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union

#: The individually toggleable feature names, in canonical order.
FEATURES: Tuple[str, ...] = ("helper", "resync")


@dataclass(frozen=True)
class GracefulRestartConfig:
    """Which graceful-restart features are on, plus the hold timer.

    ``hold_time`` is in simulated time units (wall-clock seconds times
    ``time_scale`` on the live substrate); generated-internet link
    delays are 3--30 units, so the default comfortably covers a restart
    plus a few round trips of resynchronisation.
    """

    #: Neighbours retain a restarting AD's routes as stale for
    #: ``hold_time`` instead of withdrawing them.
    helper: bool = False
    #: On restore within the hold window, surviving neighbours replay
    #: adjacency bring-up with the restarter.
    resync: bool = False
    #: How long helpers hold stale routes before giving up.
    hold_time: float = 300.0

    @property
    def any_enabled(self) -> bool:
        return self.helper or self.resync

    @property
    def enabled(self) -> Tuple[str, ...]:
        """Enabled feature names, in canonical order."""
        return tuple(f for f in FEATURES if getattr(self, f))

    def __str__(self) -> str:
        return "+".join(self.enabled) if self.any_enabled else "none"


#: No graceful restart: every crash is a disruptive topology change.
GR_OFF = GracefulRestartConfig()

#: Every feature on, default hold timer.
GR_FULL = GracefulRestartConfig(helper=True, resync=True)


def graceful_from(
    value: Union[None, str, Iterable[str], GracefulRestartConfig],
) -> GracefulRestartConfig:
    """Normalize a user-facing graceful-restart spec into a config.

    Accepts a ready config, ``None``/``"none"`` (off), ``"all"`` (every
    feature), one feature name, or an iterable of feature names.
    """
    if isinstance(value, GracefulRestartConfig):
        return value
    if value is None:
        return GR_OFF
    if isinstance(value, str):
        if value == "none" or value == "":
            return GR_OFF
        if value == "all":
            return GR_FULL
        names: Tuple[str, ...] = tuple(value.replace("+", ",").split(","))
    else:
        names = tuple(value)
    names = tuple(n.strip() for n in names if n.strip())
    unknown = [n for n in names if n not in FEATURES]
    if unknown:
        raise ValueError(
            f"unknown graceful-restart feature(s) {unknown}; "
            f"choose from {FEATURES}"
        )
    return GracefulRestartConfig(**{n: True for n in names})
