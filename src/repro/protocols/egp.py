"""EGP-style reachability exchange: the Section 3 exterior baseline.

EGP (RFC 827) exchanges *reachability*, not metrics, and "places a severe
topology restriction on interconnected regions -- there can be no cycles
in the EGP graph" (Section 3).  The paper calls this unreasonable for a
global internet whose ADs want multiple inter-AD connections.

This implementation makes that restriction concrete:

* in ``strict`` mode, building the protocol on a cyclic topology raises
  :class:`TopologyViolationError`;
* otherwise the topology is pruned to a spanning tree (hierarchical links
  preferred) and the protocol runs on the tree -- every lateral and
  bypass link is simply unusable, which is exactly the cost the paper
  ascribes to EGP.  The pruned links are counted in
  :attr:`EGPProtocol.excluded_links`.

EGP has no QOS and no policy expression beyond "what I choose to
advertise", so its routes are frequently illegal under restrictive policy
scenarios; the availability evaluator quantifies this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Set, Tuple

from repro.adgraph.ad import ADId, InterADLink
from repro.adgraph.graph import InterADGraph
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.protocols.base import ForwardingMode, RoutingProtocol
from repro.protocols.hardening import SOFT, HardeningConfig
from repro.protocols.pacing import OverloadDefenseMixin
from repro.protocols.validation import OFF, NeighborGuard, ValidationConfig
from repro.simul.messages import AD_ID_BYTES, Message
from repro.simul.network import SimNetwork
from repro.simul.node import ProtocolNode

#: Delay before a triggered reachability batch is flushed.
TRIGGER_DELAY = 1.0


class TopologyViolationError(ValueError):
    """The topology contains a cycle, which strict EGP cannot tolerate."""


@dataclass(frozen=True)
class NRUpdate(Message):
    """A network-reachability advertisement: destinations only, no metric.

    ``seq`` (nonzero only under hardening) lets the receiver suppress
    duplicates and acknowledge receipt; its four bytes are only charged
    when carried, so unhardened runs keep legacy byte counts.
    """

    dests: Tuple[ADId, ...]
    seq: int = 0

    def size_bytes(self) -> int:
        return (
            super().size_bytes()
            + len(self.dests) * AD_ID_BYTES
            + (4 if self.seq else 0)
        )


@dataclass(frozen=True)
class NRAck(Message):
    """Acknowledges a sequenced :class:`NRUpdate` (hardening only)."""

    seq: int

    def size_bytes(self) -> int:
        return super().size_bytes() + 4


class EGPNode(OverloadDefenseMixin, ProtocolNode):
    """Per-AD reachability process over the (tree) topology."""

    hardening: HardeningConfig = SOFT
    validation: ValidationConfig = OFF
    guard: Optional[NeighborGuard] = None
    trusted_graph: Optional[InterADGraph] = None

    LIE_REASSERT_INTERVAL = 60.0
    LIE_REASSERT_COUNT = 6

    def __init__(self, ad_id: ADId) -> None:
        super().__init__(ad_id)
        self.table: Dict[ADId, ADId] = {ad_id: ad_id}
        self._pending: Set[ADId] = set()
        self._flush_scheduled = False
        #: Updates suppressed as already-seen (dedup hardening).
        self.duplicates_ignored = 0
        self._update_seq = 0
        # Sequence numbers already processed, per sender.  Sets rather
        # than a high-water mark: jitter reorders, and a reordered update
        # is new content, not a duplicate.
        self._seen: Dict[ADId, Set[int]] = {}
        self._unacked: Dict[Tuple[ADId, int], NRUpdate] = {}
        # Highest sequence number observed per sender (seq-guard state;
        # independent of the dedup hardening's seen-sets).
        self._last_seq: Dict[ADId, int] = {}
        self._active_lies: Dict[str, Optional[ADId]] = {}
        self._replay_seq = 0
        self._lie_ticks_left = 0
        self._lie_tick_pending = False

    def start(self) -> None:
        self._pending.add(self.ad_id)
        self._schedule_flush()

    def on_message(self, sender: ADId, msg: Message) -> None:
        if self.guard is not None and self.guard.suppresses(sender):
            return
        if isinstance(msg, NRAck):
            self._unacked.pop((sender, msg.seq), None)
            return
        assert isinstance(msg, NRUpdate)
        if self._rejects(sender, msg):
            return
        if msg.seq:
            # Always re-ack: the retransmission we are answering may be
            # there because our previous ack was itself lost.
            self.send(sender, NRAck(msg.seq))
            if self.hardening.dedup:
                seen = self._seen.setdefault(sender, set())
                if msg.seq in seen:
                    self.duplicates_ignored += 1
                    return
                seen.add(msg.seq)
        for dest in msg.dests:
            if dest not in self.table:
                self.table[dest] = sender
                self._pending.add(dest)
        if self._pending:
            self._schedule_flush()

    def on_link_change(self, link: InterADLink, up: bool) -> None:
        nbr = link.other(self.ad_id)
        if up:
            # Re-advertise everything we know over the restored adjacency.
            self._pending.update(self.table)
            self._schedule_flush()
            return
        lost = [d for d, nh in self.table.items() if nh == nbr]
        for dest in lost:
            del self.table[dest]
            self._damp_loss(dest)
        if lost:
            self._enter_holddown()
        # EGP has no unreachability propagation worth the name; downstream
        # ADs learn of losses only through timeouts in the real protocol.
        # We model the loss locally and let the tree remain silently stale,
        # matching the paper's dim view of EGP adaptivity.

    # ------------------------------------------------------------ validation

    def _rejects(self, sender: ADId, msg: NRUpdate) -> bool:
        if not self.validation.checks_enabled:
            return False
        reason = self._check_update(sender, msg)
        if reason is None:
            return False
        if self.guard is not None:
            self.guard.violation(sender, reason)
        return True

    def _check_update(self, sender: ADId, msg: NRUpdate) -> Optional[str]:
        """EGP's only checkable claims: destinations must be registered
        ADs, and sequence numbers must advance plausibly.  Which *paths*
        reachability flows over is invisible -- the protocol's structural
        blindness, which the threat-model table records."""
        cfg = self.validation
        if cfg.origin_check and self.trusted_graph is not None:
            for dest in msg.dests:
                if not self.trusted_graph.has_ad(dest):
                    return "unregistered destination"
        if cfg.seq_guard and msg.seq:
            last = self._last_seq.get(sender, 0)
            if last and msg.seq > last + self.validation.max_seq_jump:
                return "implausible sequence jump"
            self._last_seq[sender] = max(last, msg.seq)
        return None

    # ----------------------------------------------------------- misbehavior

    def misbehave(self, lie: str, target: Optional[ADId] = None) -> bool:
        applied = self._tell_lie(lie, target)
        if applied and self._lie_ticks_left == 0:
            self._lie_ticks_left = self.LIE_REASSERT_COUNT
            self._arm_lie_tick()
        return applied

    def _tell_lie(self, lie: str, target: Optional[ADId] = None) -> bool:
        if lie == "bogus-origin":
            if target is None:
                return False
            self._active_lies[lie] = target
            self._advertise_bogus_origin(target)
            return True
        if lie == "stale-replay":
            self._active_lies[lie] = None
            self._flood_replay()
            return True
        # No metrics to lie about, no paths or terms to forge, and every
        # destination is exported to every neighbour already.
        return False

    def behave(self) -> None:
        self._active_lies.clear()
        self._lie_ticks_left = 0

    def _advertise_bogus_origin(self, victim: ADId) -> None:
        """Claim direct reachability of the victim (no provenance exists
        to contradict us -- but first-heard-wins limits the audience)."""
        self.broadcast(NRUpdate((victim,)))

    def _flood_replay(self) -> None:
        """Re-send our full reachability snapshot far above the honest
        sequence range (inert when unsequenced; a seq-guard trips it)."""
        self._replay_seq += 1_000
        dests = tuple(sorted(self.table))
        if dests:
            self.broadcast(NRUpdate(dests, seq=self._update_seq + self._replay_seq))

    def _arm_lie_tick(self) -> None:
        if not self._lie_tick_pending:
            self._lie_tick_pending = True
            self.schedule(self.LIE_REASSERT_INTERVAL, self._lie_tick)

    def _lie_tick(self) -> None:
        self._lie_tick_pending = False
        if not self._active_lies or self._lie_ticks_left <= 0:
            return
        self._lie_ticks_left -= 1
        victim = self._active_lies.get("bogus-origin")
        if victim is not None:
            self._advertise_bogus_origin(victim)
        if "stale-replay" in self._active_lies:
            self._flood_replay()
        if self._lie_ticks_left > 0:
            self._arm_lie_tick()

    # ------------------------------------------------------------- advertise

    def _schedule_flush(self) -> None:
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.schedule(TRIGGER_DELAY, self._flush)

    def _flush(self) -> None:
        wait = self._pacing_defers_flush()
        if wait is not None:
            self.schedule(wait, self._flush)
            return
        self._flush_scheduled = False
        dests = tuple(sorted(self._pending))
        self._pending.clear()
        if not dests:
            return
        if self.pacing.damp and self._damper is not None:
            # EGP has no withdrawal currency at all, so a suppressed
            # destination is simply left out of the advertisement.
            kept = tuple(d for d in dests if not self._damp_suppressed(d))
            self.suppressed_announcements += len(dests) - len(kept)
            dests = kept
            if not dests:
                return
        sequenced = self.hardening.dedup or self.hardening.retransmit
        for nbr in self.neighbors():
            advertise = tuple(d for d in dests if self.table.get(d) != nbr)
            if not advertise:
                continue
            if sequenced:
                self._update_seq += 1
                update = NRUpdate(advertise, seq=self._update_seq)
                if self.hardening.retransmit:
                    self._unacked[(nbr, update.seq)] = update
                    self.schedule(
                        self.hardening.retransmit_timeout,
                        self._retry_update,
                        nbr,
                        update.seq,
                        self.hardening.max_retries,
                    )
            else:
                update = NRUpdate(advertise)
            self.send(nbr, update)

    def _retry_update(self, nbr: ADId, seq: int, retries_left: int) -> None:
        update = self._unacked.get((nbr, seq))
        if update is None:
            return
        if retries_left <= 0:
            del self._unacked[(nbr, seq)]
            return
        self.send(nbr, update)
        self.schedule(
            self.hardening.retransmit_timeout,
            self._retry_update,
            nbr,
            seq,
            retries_left - 1,
        )

    def _on_reuse(self, key) -> None:
        # A damped destination became reusable: re-advertise if we still
        # (or again) know a route to it.
        if key in self.table:
            self._pending.add(key)
            self._schedule_flush()

    def route_to(self, dest: ADId) -> Optional[ADId]:
        nxt = self.table.get(dest)
        return None if nxt == self.ad_id and dest != self.ad_id else nxt


def _spanning_tree(graph: InterADGraph) -> Tuple[InterADGraph, int]:
    """Prune to a spanning tree preferring hierarchical links.

    Returns the pruned graph and the number of excluded links; see
    :func:`repro.adgraph.trees.spanning_tree_links` for the tree choice.
    """
    from repro.adgraph.trees import spanning_tree_links

    kept = spanning_tree_links(graph)
    pruned = InterADGraph()
    for ad in graph.ads():
        pruned.add_ad(ad)
    excluded = 0
    for link in graph.links():
        if link.key in kept:
            pruned.add_link(
                InterADLink(link.a, link.b, link.kind, dict(link.metrics), link.up)
            )
        else:
            excluded += 1
    return pruned, excluded


class EGPProtocol(RoutingProtocol):
    """Driver for the EGP baseline."""

    name: ClassVar[str] = "egp"
    design_point = None
    mode = ForwardingMode.HOP_BY_HOP
    policy_aware: ClassVar[bool] = False
    #: EGP's pruned-tree tables are destination-only.
    fib_key_fields: ClassVar[Tuple[str, ...]] = ("src", "dst")

    def __init__(
        self,
        graph: InterADGraph,
        policies: PolicyDatabase,
        strict: bool = False,
    ) -> None:
        super().__init__(graph, policies)
        self.strict = strict
        self.excluded_links = 0
        self.tree_graph: Optional[InterADGraph] = None

    def build(self, network=None) -> SimNetwork:
        if self.network is not None:
            return self.network
        if network is not None:
            raise RuntimeError(
                "egp builds its own spanning-tree network; a pre-built "
                "substrate cannot be adopted"
            )
        import networkx as nx

        cyclic = bool(nx.cycle_basis(self.graph.nx_graph(live_only=True)))
        if cyclic and self.strict:
            raise TopologyViolationError(
                "EGP requires a cycle-free inter-AD topology"
            )
        self.tree_graph, self.excluded_links = _spanning_tree(self.graph)
        self.network = SimNetwork(self.tree_graph)
        self._make_nodes(self.network)
        self._distribute_runtime(self.network)
        return self.network

    def _make_nodes(self, network: SimNetwork) -> None:
        for ad_id in self.graph.ad_ids():
            network.add_node(EGPNode(ad_id))

    def apply_link_status(self, a: ADId, b: ADId, up: bool) -> None:
        """Physical failures affect the real graph always, the EGP tree
        only when the failed link survived pruning."""
        network = self._require_network()
        self.graph.set_link_status(a, b, up)
        if network.graph.has_link(a, b):
            network.set_link_status(a, b, up)

    def next_hop(
        self, ad_id: ADId, flow: FlowSpec, prev: Optional[ADId]
    ) -> Optional[ADId]:
        node = self.network.node(ad_id)
        assert isinstance(node, EGPNode)
        return node.route_to(flow.dst)

    def rib_size(self, ad_id: ADId) -> int:
        node = self.network.node(ad_id)
        assert isinstance(node, EGPNode)
        return len(node.table)
