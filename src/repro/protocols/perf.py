"""Simulator-core performance feature toggles.

The speed program (ROADMAP item 2) replaces two from-scratch recompute
paths with delta-aware ones:

* ``incremental_spf`` — :class:`repro.protocols.spf.IncrementalSPFState`
  repairs the SPF tree from the edge deltas between two LSDB versions
  instead of re-running Dijkstra, falling back to the full run whenever
  the repair cannot be proven exact (zero-weight edges, unavailable
  delta logs, changes touching a large fraction of the graph).
* ``delta_view`` — :meth:`repro.protocols.flooding.LSNode.local_view`
  applies per-LSA deltas to the cached believed-internet graph and
  policy database instead of rebuilding both, invalidating to a full
  rebuild on any structural surprise (cross-owner terms, origin level
  changes, pending-delta overflow).

Both are **pure optimisations**: equivalence to the retained full
recompute oracles is enforced by hypothesis suites, and all committed
experiment outputs stay byte-identical either way (the determinism gate
is the referee).  A :class:`PerfConfig` travels from the protocol driver
to every node at build time, exactly like
:class:`~repro.protocols.hardening.HardeningConfig` — but unlike the
robustness configs it defaults **on**: the fast paths are the production
code, and ``perf="none"`` is the A/B lever that recovers the legacy
recompute for benchmarking and differential testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union

#: The individually toggleable feature names, in canonical order.
FEATURES: Tuple[str, ...] = ("incremental_spf", "delta_view")


@dataclass(frozen=True)
class PerfConfig:
    """Which delta-recompute fast paths are enabled."""

    incremental_spf: bool = True
    delta_view: bool = True

    @property
    def any_enabled(self) -> bool:
        return self.incremental_spf or self.delta_view

    @property
    def enabled(self) -> Tuple[str, ...]:
        """Enabled feature names, in canonical order."""
        return tuple(f for f in FEATURES if getattr(self, f))

    def __str__(self) -> str:
        return "+".join(self.enabled) if self.any_enabled else "none"


#: Every fast path on: the default production configuration.
FAST = PerfConfig()

#: Every fast path off: the legacy from-scratch recompute baseline.
LEGACY = PerfConfig(incremental_spf=False, delta_view=False)


def perf_from(
    value: Union[None, str, Iterable[str], PerfConfig],
) -> PerfConfig:
    """Normalize a user-facing perf spec into a config.

    Accepts a ready config, ``None``/``"all"``/``"full"``/``"fast"``
    (every fast path: the default), ``"none"``/``"off"``/``"legacy"``
    (from-scratch recompute), one feature name, or an iterable of
    feature names.  Dashes in names are accepted for CLI friendliness.
    """
    if isinstance(value, PerfConfig):
        return value
    if value is None:
        return FAST
    if isinstance(value, str):
        if value in ("all", "full", "fast", ""):
            return FAST
        if value in ("none", "off", "legacy"):
            return LEGACY
        value = [value]
    features = {}
    for name in value:
        name = name.replace("-", "_")
        if name not in FEATURES:
            raise ValueError(
                f"unknown perf feature {name!r}; expected one of {FEATURES}"
            )
        features[name] = True
    return PerfConfig(
        incremental_spf=features.get("incremental_spf", False),
        delta_view=features.get("delta_view", False),
    )
