"""The ECMA/NIST architecture: DV + hop-by-hop + policy in the topology.

Section 5.1.1's proposal, mechanised:

* a **partial ordering** over ADs labels every link traversal up or down;
* routes advertise whether their data path **contains an up link**;
  accepting a route over a down first-hop is forbidden if it does ("once
  a packet traverses a down link, it cannot traverse another up link");
* the rule bounds how far stale routes can inflate, so withdrawal storms
  die out quickly (no count-to-infinity) -- measured against naive DV in
  experiment E4;
* **per-QOS routing databases** (FIBs): each AD keeps one table per QOS
  class it supports; an AD that does not support a QOS neither computes
  nor advertises routes for it (the "infinite metric" of the proposal);
* **policy-in-topology transit control**: stub/multi-homed ADs advertise
  only themselves; hybrid ADs re-advertise other routes only over *down*
  links (serving their customers below, never providing transit upward);
  transit ADs re-advertise freely, subject to the up/down rule.

What ECMA *cannot* express -- source-, UCI-, and time-specific policies
-- it silently ignores; the availability evaluator then counts its
illegal routes, quantifying Section 5.1.1's expressiveness complaint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.adgraph.ad import ADId, ADKind, InterADLink
from repro.adgraph.graph import InterADGraph
from repro.adgraph.partial_order import Direction, PartialOrder
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.protocols.base import ForwardingMode, RoutingProtocol
from repro.protocols.pacing import OverloadDefenseMixin
from repro.protocols.validation import OFF, NeighborGuard, ValidationConfig
from repro.simul.messages import AD_ID_BYTES, METRIC_BYTES, Message
from repro.simul.network import SimNetwork
from repro.simul.node import ProtocolNode
from repro.core.design_space import DV_HBH_TOPOLOGY

#: Delay before a triggered update batch is flushed.
TRIGGER_DELAY = 1.0

#: Advertised metric meaning "withdrawn / unreachable".
INFINITE_METRIC = math.inf


@dataclass(frozen=True)
class ECMAUpdate(Message):
    """One batch of ECMA route advertisements.

    Each entry is ``(dest, qos, metric, hops, contains_up)``; an infinite
    metric withdraws the route.  ``poisons`` carries split-horizon
    poisoned-reverse keys separately: they are authoritative ("do not
    route this through me") but, unlike a genuine withdrawal, must not
    solicit a re-offer from the receiver -- conflating the two makes the
    triggered-update scheme oscillate forever.
    """

    entries: Tuple[Tuple[ADId, QOS, float, int, bool], ...]
    poisons: Tuple[Tuple[ADId, QOS], ...] = ()

    def size_bytes(self) -> int:
        # dest + qos tag + metric + hop count + flag byte
        per_entry = AD_ID_BYTES + 1 + METRIC_BYTES + 1 + 1
        per_poison = AD_ID_BYTES + 1
        return (
            super().size_bytes()
            + len(self.entries) * per_entry
            + len(self.poisons) * per_poison
        )


@dataclass
class _Entry:
    metric: float
    hops: int
    contains_up: bool
    next_hop: ADId


def supported_qos_classes(policies: PolicyDatabase, ad_id: ADId) -> FrozenSet[QOS]:
    """QOS classes an AD's policy terms will carry (topology-expressible).

    An AD with no terms supports every QOS for its *own* traffic; as it
    never offers transit, the distinction is moot and we return all.

    Bottleneck-composed classes (bandwidth) are excluded throughout:
    distance-vector updates compose metrics additively, so a 1990 DV
    protocol cannot route on a max-min metric -- part of the Section 3
    critique of the era's QOS support.
    """
    additive = frozenset(QOS.additive_classes())
    terms = policies.terms_of(ad_id)
    if not terms:
        return additive
    supported: Set[QOS] = set()
    for term in terms:
        if term.qos_classes is None:
            return additive
        supported |= term.qos_classes
    return frozenset(supported) & additive


class ECMANode(OverloadDefenseMixin, ProtocolNode):
    """Per-AD ECMA process."""

    validation: ValidationConfig = OFF
    guard: Optional[NeighborGuard] = None
    trusted_graph: Optional[InterADGraph] = None

    LIE_REASSERT_INTERVAL = 60.0
    LIE_REASSERT_COUNT = 6

    def __init__(
        self,
        ad_id: ADId,
        order: PartialOrder,
        may_transit: bool,
        down_only_transit: bool,
        supported_qos: FrozenSet[QOS],
        max_hops: int,
        cone: FrozenSet[ADId] = frozenset(),
    ) -> None:
        super().__init__(ad_id)
        self.order = order
        self.may_transit = may_transit
        self.down_only_transit = down_only_transit
        self.supported_qos = supported_qos
        self.max_hops = max_hops
        self.cone = cone
        self.table: Dict[Tuple[ADId, QOS], _Entry] = {}
        for q in supported_qos:
            self.table[(ad_id, q)] = _Entry(0.0, 0, False, ad_id)
        self._pending: Set[Tuple[ADId, QOS]] = set()
        self._flush_scheduled = False
        self._active_lies: Dict[str, Optional[ADId]] = {}
        self._honest_transit = (may_transit, down_only_transit)
        self._lie_ticks_left = 0
        self._lie_tick_pending = False
        self._trusted_cones: Dict[ADId, FrozenSet[ADId]] = {}

    # --------------------------------------------------------------- control

    def start(self) -> None:
        self._pending.update(self.table)
        self._schedule_flush()

    def on_message(self, sender: ADId, msg: Message) -> None:
        assert isinstance(msg, ECMAUpdate)
        if not self.topology.has_link(self.ad_id, sender):
            return
        link = self.topology.link(self.ad_id, sender)
        if not link.up:
            return
        if self.guard is not None and self.guard.suppresses(sender):
            return
        # Direction the *data* would travel: from us toward the sender.
        data_dir = self.order.direction(self.ad_id, sender)
        changed = False
        have_better_news = False
        for key in msg.poisons:
            entry = self.table.get(key)
            if entry is not None and entry.next_hop == sender:
                del self.table[key]
                self._pending.add(key)
                changed = True
                self._damp_loss(key)
        for dest, qos, metric, hops, contains_up in msg.entries:
            if dest == self.ad_id or qos not in self.supported_qos:
                continue
            if not math.isinf(metric) and self._rejects(sender, dest, metric):
                continue
            key = (dest, qos)
            entry = self.table.get(key)
            if entry is not None and entry.next_hop != sender:
                my_offer = entry.metric + link.metric(qos.metric)
                if my_offer < metric:
                    have_better_news = True
            if math.isinf(metric):
                # Withdrawal: only authoritative from our next hop.
                if entry is not None and entry.next_hop == sender:
                    del self.table[key]
                    self._pending.add(key)
                    changed = True
                    self._damp_loss(key)
                continue
            valid = data_dir is Direction.UP or not contains_up
            if not valid or hops + 1 > self.max_hops:
                # The up/down rule rejects this route outright; if it came
                # from our next hop, our old route is gone too.
                if entry is not None and entry.next_hop == sender:
                    del self.table[key]
                    self._pending.add(key)
                    changed = True
                    self._damp_loss(key)
                continue
            new_metric = metric + link.metric(qos.metric)
            new_up = contains_up or data_dir is Direction.UP
            if entry is not None and entry.next_hop == sender:
                if (entry.metric, entry.hops, entry.contains_up) != (
                    new_metric,
                    hops + 1,
                    new_up,
                ):
                    entry.metric = new_metric
                    entry.hops = hops + 1
                    entry.contains_up = new_up
                    self._pending.add(key)
                    changed = True
            elif entry is None or new_metric < entry.metric:
                self.table[key] = _Entry(new_metric, hops + 1, new_up, sender)
                self._pending.add(key)
                changed = True
        if changed:
            self.note_computation("dv_recompute")
        if changed or have_better_news:
            if have_better_news:
                self._pending.update(
                    k for k, e in self.table.items() if e.next_hop != sender
                )
            self._schedule_flush()

    def on_link_change(self, link: InterADLink, up: bool) -> None:
        nbr = link.other(self.ad_id)
        if up:
            self._pending.update(self.table)
            self._schedule_flush()
            return
        lost = [k for k, e in self.table.items() if e.next_hop == nbr]
        for key in lost:
            del self.table[key]
            self._pending.add(key)
            self._damp_loss(key)
        if lost:
            self._enter_holddown()
            self._schedule_flush()

    # ------------------------------------------------------------ validation

    def _rejects(self, sender: ADId, dest: ADId, metric: float) -> bool:
        if not self.validation.checks_enabled:
            return False
        reason = self._check_entry(sender, dest, metric)
        if reason is None:
            return False
        if self.guard is not None:
            self.guard.violation(sender, reason)
        return True

    def _check_entry(self, sender: ADId, dest: ADId, metric: float) -> Optional[str]:
        """Policy-in-topology is registry-checkable: the sender's transit
        offer must be consistent with its *registered* role (stubs never
        transit; hybrids only toward their down-side for destinations
        outside their registered customer cone)."""
        cfg = self.validation
        if cfg.origin_check and self.trusted_graph is not None:
            if not self.trusted_graph.has_ad(dest):
                return "unregistered destination"
        if cfg.metric_guard and metric == 0.0 and dest != sender:
            return "zero metric for foreign destination"
        if cfg.path_check and self.trusted_graph is not None and dest != sender:
            kind = self.trusted_graph.ad(sender).kind
            if not kind.may_transit:
                return "registered stub AD offers transit"
            if kind is ADKind.HYBRID and dest not in self._trusted_cone(sender):
                if self.order.direction(sender, self.ad_id) is not Direction.DOWN:
                    return "registered hybrid AD transits upward"
        return None

    def _trusted_cone(self, sender: ADId) -> FrozenSet[ADId]:
        cone = self._trusted_cones.get(sender)
        if cone is None:
            from repro.policy.generators import customer_cone

            cone = customer_cone(self.trusted_graph, sender)
            self._trusted_cones[sender] = cone
        return cone

    # ----------------------------------------------------------- misbehavior

    def misbehave(self, lie: str, target: Optional[ADId] = None) -> bool:
        applied = self._tell_lie(lie, target)
        if applied and self._lie_ticks_left == 0:
            self._lie_ticks_left = self.LIE_REASSERT_COUNT
            self._arm_lie_tick()
        return applied

    def _tell_lie(self, lie: str, target: Optional[ADId] = None) -> bool:
        if lie == "route-leak":
            if self.may_transit and not self.down_only_transit:
                # Already a full-transit AD in the topology regime.
                return False
            self._active_lies[lie] = None
            self.may_transit = True
            self.down_only_transit = False
            self._pending.update(self.table)
            self._schedule_flush()
            return True
        if lie == "metric-lie":
            self._active_lies[lie] = None
            self._pending.update(self.table)
            self._schedule_flush()
            return True
        if lie == "bogus-origin":
            if target is None:
                return False
            self._active_lies[lie] = target
            self._advertise_bogus_origin(target)
            return True
        return False

    def behave(self) -> None:
        self._active_lies.clear()
        self._lie_ticks_left = 0
        self.may_transit, self.down_only_transit = self._honest_transit

    def _advertise_bogus_origin(self, victim: ADId) -> None:
        entries = tuple(
            (victim, q, 0.0, 0, False)
            for q in sorted(self.supported_qos, key=lambda q: q.value)
        )
        if entries:
            self.broadcast(ECMAUpdate(entries))

    def _arm_lie_tick(self) -> None:
        if not self._lie_tick_pending:
            self._lie_tick_pending = True
            self.schedule(self.LIE_REASSERT_INTERVAL, self._lie_tick)

    def _lie_tick(self) -> None:
        self._lie_tick_pending = False
        if not self._active_lies or self._lie_ticks_left <= 0:
            return
        self._lie_ticks_left -= 1
        if "route-leak" in self._active_lies or "metric-lie" in self._active_lies:
            self._pending.update(self.table)
            self._schedule_flush()
        victim = self._active_lies.get("bogus-origin")
        if victim is not None:
            self._advertise_bogus_origin(victim)
        if self._lie_ticks_left > 0:
            self._arm_lie_tick()

    # ------------------------------------------------------------- advertise

    def _schedule_flush(self) -> None:
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.schedule(TRIGGER_DELAY, self._flush)

    def _exportable(self, key: Tuple[ADId, QOS], nbr: ADId) -> bool:
        """Transit policy in topology: may we offer this route to ``nbr``?

        Hybrid ADs apply the customer/provider export rule: destinations
        inside their customer cone are advertised to everyone (anyone may
        send *to* our customers through us), destinations outside the
        cone only downward (only our customers may send *through* us to
        the rest of the world).  That is "limited transit" expressed
        purely in topology.
        """
        dest, _qos = key
        if dest == self.ad_id:
            return True
        if not self.may_transit:
            return False
        if self.down_only_transit and dest not in self.cone:
            return self.order.direction(self.ad_id, nbr) is Direction.DOWN
        return True

    def _flush(self) -> None:
        wait = self._pacing_defers_flush()
        if wait is not None:
            self.schedule(wait, self._flush)
            return
        self._flush_scheduled = False
        keys = sorted(self._pending, key=lambda k: (k[0], k[1].value))
        self._pending.clear()
        if not keys:
            return
        # Suppressed keys are withdrawn once, then silenced until reuse.
        withdraw: Set[Tuple[ADId, QOS]] = set()
        silent: Set[Tuple[ADId, QOS]] = set()
        if self.pacing.damp and self._damper is not None:
            for key in keys:
                if key[0] != self.ad_id and self._damp_suppressed(key):
                    (withdraw if self._suppress_withdraw_once(key) else silent).add(key)
                    self.suppressed_announcements += 1
        for nbr in self.neighbors():
            entries: List[Tuple[ADId, QOS, float, int, bool]] = []
            poisons: List[Tuple[ADId, QOS]] = []
            for key in keys:
                if key in withdraw:
                    entries.append((key[0], key[1], INFINITE_METRIC, 0, False))
                    continue
                if key in silent:
                    continue
                entry = self.table.get(key)
                if entry is None:
                    # Withdrawals are not transit offers; they always go
                    # out (and solicit re-offers from neighbours that
                    # still hold a route).
                    entries.append((key[0], key[1], INFINITE_METRIC, 0, False))
                    continue
                if not self._exportable(key, nbr):
                    continue
                if entry.next_hop != nbr:  # split horizon
                    metric = (
                        0.0
                        if "metric-lie" in self._active_lies
                        else entry.metric
                    )
                    entries.append(
                        (key[0], key[1], metric, entry.hops, entry.contains_up)
                    )
                else:
                    poisons.append(key)
            if entries or poisons:
                self.send(nbr, ECMAUpdate(tuple(entries), tuple(poisons)))

    def _on_reuse(self, key) -> None:
        # A damped (dest, qos) became reusable: re-advertise it.
        self._pending.add(key)
        self._schedule_flush()

    # ------------------------------------------------------------ forwarding

    def route_to(self, dest: ADId, qos: QOS) -> Optional[ADId]:
        entry = self.table.get((dest, qos))
        if entry is None:
            return None
        return None if entry.next_hop == self.ad_id and dest != self.ad_id else entry.next_hop


class ECMAProtocol(RoutingProtocol):
    """Driver for the ECMA design point (DV / hop-by-hop / topology)."""

    name: ClassVar[str] = "ecma"
    design_point = DV_HBH_TOPOLOGY
    mode = ForwardingMode.HOP_BY_HOP
    #: ECMA tables discriminate destination and QOS class only.
    fib_key_fields: ClassVar[Tuple[str, ...]] = ("src", "dst", "qos")

    def __init__(
        self,
        graph: InterADGraph,
        policies: PolicyDatabase,
        order: Optional[PartialOrder] = None,
        qos_classes: Optional[FrozenSet[QOS]] = None,
    ) -> None:
        super().__init__(graph, policies)
        self.order = order or PartialOrder.from_hierarchy(graph)
        #: Restrict the per-QOS FIB replication to these classes (None =
        #: whatever each AD's policy terms support).  Restricting to one
        #: class gives convergence comparisons a per-table-equal footing.
        self.qos_classes = qos_classes

    def _make_nodes(self, network: SimNetwork) -> None:
        from repro.policy.generators import customer_cone

        max_hops = min(self.order.max_valid_path_len(), 2 * self.graph.num_ads)
        for ad in self.graph.ads():
            hybrid = ad.kind is ADKind.HYBRID
            supported = supported_qos_classes(self.policies, ad.ad_id)
            if self.qos_classes is not None:
                supported = supported & self.qos_classes
            network.add_node(
                ECMANode(
                    ad.ad_id,
                    self.order,
                    may_transit=ad.kind.may_transit,
                    down_only_transit=hybrid,
                    supported_qos=supported,
                    max_hops=max_hops,
                    cone=customer_cone(self.graph, ad.ad_id) if hybrid else frozenset(),
                )
            )

    def next_hop(
        self, ad_id: ADId, flow: FlowSpec, prev: Optional[ADId]
    ) -> Optional[ADId]:
        node = self.network.node(ad_id)
        assert isinstance(node, ECMANode)
        return node.route_to(flow.dst, flow.qos)

    def rib_size(self, ad_id: ADId) -> int:
        node = self.network.node(ad_id)
        assert isinstance(node, ECMANode)
        return len(node.table)
