"""Protocol registry: the single construction path for every protocol.

Everything outside :mod:`repro.protocols` builds protocol instances
through :func:`make_protocol`, which accepts either a Table 1
:class:`~repro.core.design_space.DesignPoint` or a registered name.  The
registry covers the eight design-point implementations *and* the
baselines the paper measures them against (EGP, naive distance vector,
plain SPF link-state flooding, BGP-2), so the scorecard (E1), the
benches, the CLI, and the experiment harness all construct protocols the
same way -- and a new protocol becomes visible everywhere by registering
here once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type, Union

from repro.adgraph.graph import InterADGraph
from repro.core.design_space import (
    DV_HBH_TERMS,
    DV_HBH_TOPOLOGY,
    DV_SRC_TERMS,
    DV_SRC_TOPOLOGY,
    DesignPoint,
    LS_HBH_TERMS,
    LS_HBH_TOPOLOGY,
    LS_SRC_TERMS,
    LS_SRC_TOPOLOGY,
)
from repro.policy.database import PolicyDatabase
from repro.policy.qos import QOS
from repro.protocols.base import RoutingProtocol
from repro.protocols.dv import DistanceVectorProtocol
from repro.protocols.ecma import ECMAProtocol
from repro.protocols.egp import EGPProtocol
from repro.protocols.idrp import BGP2Protocol, IDRPProtocol
from repro.protocols.lshbh import LinkStateHopByHopProtocol
from repro.protocols.orwg import ORWGProtocol
from repro.protocols.runtime import NodeRuntimeConfig, runtime_from
from repro.protocols.spf import PlainLinkStateProtocol
from repro.protocols.variants import (
    DVSourceTermsProtocol,
    DVSourceTopologyProtocol,
    LSHbHTopologyProtocol,
    LSSourceTopologyProtocol,
)

ProtocolFactory = Callable[[InterADGraph, PolicyDatabase], RoutingProtocol]

PROTOCOL_FOR_POINT: Dict[DesignPoint, ProtocolFactory] = {
    DV_HBH_TOPOLOGY: ECMAProtocol,
    DV_HBH_TERMS: IDRPProtocol,
    LS_HBH_TERMS: LinkStateHopByHopProtocol,
    LS_SRC_TERMS: ORWGProtocol,
    LS_HBH_TOPOLOGY: LSHbHTopologyProtocol,
    LS_SRC_TOPOLOGY: LSSourceTopologyProtocol,
    DV_SRC_TOPOLOGY: DVSourceTopologyProtocol,
    DV_SRC_TERMS: DVSourceTermsProtocol,
}

#: Baselines (Section 3) and proposal variants outside the eight cells.
BASELINE_PROTOCOLS: Dict[str, Type[RoutingProtocol]] = {
    EGPProtocol.name: EGPProtocol,
    DistanceVectorProtocol.name: DistanceVectorProtocol,
    PlainLinkStateProtocol.name: PlainLinkStateProtocol,
    BGP2Protocol.name: BGP2Protocol,
}

PROTOCOL_BY_NAME: Dict[str, Type[RoutingProtocol]] = {
    **{cls.name: cls for cls in PROTOCOL_FOR_POINT.values()},  # type: ignore[misc]
    **BASELINE_PROTOCOLS,
}


def _normalize_options(options: dict) -> dict:
    """Coerce JSON/CLI-friendly option values to constructor types.

    Declarative specs carry options as primitives (so they pickle and
    serialize); the one non-primitive constructor argument in the fleet
    is ECMA's ``qos_classes`` set of :class:`~repro.policy.qos.QOS`.
    """
    out = dict(options)
    qos = out.get("qos_classes")
    if qos is not None:
        out["qos_classes"] = frozenset(
            q if isinstance(q, QOS) else QOS(q) for q in qos
        )
    return out


def make_protocol(
    point_or_name: Union[DesignPoint, str],
    graph: InterADGraph,
    policies: PolicyDatabase,
    **options: object,
) -> RoutingProtocol:
    """Instantiate a protocol by Table 1 cell or by registered name.

    ``options`` are forwarded to the implementation's constructor (e.g.
    ``infinity=16`` for ``"naive-dv"``, ``qos_classes=("default",)`` for
    ``"ecma"``, ``flooding="tree"`` for ``"orwg"``); values may be given
    as serializable primitives and are normalized here.

    The pseudo-options ``hardening``, ``validation``, ``pacing``,
    ``perf``, ``graceful``, ``wire``, and ``ingress`` are handled here
    for every protocol (they
    are protocol-independent): ``"all"``, a feature name, a
    ``+``/``,``-joined list, or the respective config object; they are
    folded into one :class:`~repro.protocols.runtime.NodeRuntimeConfig`
    on the driver and distributed to nodes by a single hook at build
    time.  A ready-made container may also be passed whole as
    ``runtime=...`` (mutually exclusive with the per-component options).
    ``perf`` defaults on (``"none"`` recovers the legacy from-scratch
    recompute paths for A/B benchmarking).

    ``substrate`` selects the execution substrate: ``"sim"`` (default,
    the discrete-event engine) or ``"live"`` (asyncio/UDP nodes driven
    by :mod:`repro.live`).
    """
    if isinstance(point_or_name, DesignPoint):
        factory = PROTOCOL_FOR_POINT[point_or_name]
    else:
        try:
            factory = PROTOCOL_BY_NAME[point_or_name]
        except KeyError:
            raise ValueError(
                f"unknown protocol {point_or_name!r}; "
                f"available: {', '.join(available_protocols())}"
            ) from None
    opts = _normalize_options(dict(options))
    runtime = opts.pop("runtime", None)
    components = {
        key: opts.pop(key, None)
        for key in ("hardening", "validation", "pacing", "perf",
                    "graceful", "wire", "ingress")
    }
    substrate = opts.pop("substrate", "sim")
    if substrate not in ("sim", "live"):
        raise ValueError(f"unknown substrate {substrate!r}; use 'sim' or 'live'")
    protocol = factory(graph, policies, **opts)
    if runtime is not None:
        if any(v is not None for v in components.values()):
            raise ValueError(
                "pass either runtime=... or per-component options, not both"
            )
        if not isinstance(runtime, NodeRuntimeConfig):
            raise TypeError(f"runtime must be a NodeRuntimeConfig, got {runtime!r}")
        protocol.runtime = runtime
    elif any(v is not None for v in components.values()):
        protocol.runtime = runtime_from(**components)
    protocol.substrate = substrate
    return protocol


def available_protocols() -> List[str]:
    """All registered construction names, sorted."""
    return sorted(PROTOCOL_BY_NAME)


def design_point_of(name: str) -> Optional[DesignPoint]:
    """The Table 1 cell a name is the canonical implementation of.

    ``None`` for baselines -- including ones that *occupy* a cell
    another implementation canonically fills (BGP-2 subclasses IDRP and
    inherits its ``design_point``, but ``"idrp"`` is the DV/HbH/PT
    entry).
    """
    cls = PROTOCOL_BY_NAME[name]
    for point, factory in PROTOCOL_FOR_POINT.items():
        if factory is cls:
            return point
    return None


def protocol_for(
    point: DesignPoint, graph: InterADGraph, policies: PolicyDatabase
) -> RoutingProtocol:
    """Instantiate the implementation for a Table 1 cell."""
    return make_protocol(point, graph, policies)


def all_protocol_names() -> List[str]:
    """Names of the eight design-point implementations."""
    return [factory.name for factory in PROTOCOL_FOR_POINT.values()]  # type: ignore[attr-defined]
