"""Design-point registry: Table 1 cell -> protocol implementation.

The scorecard (E1) and the design-space examples iterate the eight
points of :func:`repro.core.design_space.enumerate_design_space` and
instantiate each implementation through this registry, so every cell of
the paper's Table 1 is backed by running code.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.adgraph.graph import InterADGraph
from repro.core.design_space import (
    DV_HBH_TERMS,
    DV_HBH_TOPOLOGY,
    DV_SRC_TERMS,
    DV_SRC_TOPOLOGY,
    DesignPoint,
    LS_HBH_TERMS,
    LS_HBH_TOPOLOGY,
    LS_SRC_TERMS,
    LS_SRC_TOPOLOGY,
)
from repro.policy.database import PolicyDatabase
from repro.protocols.base import RoutingProtocol
from repro.protocols.ecma import ECMAProtocol
from repro.protocols.idrp import IDRPProtocol
from repro.protocols.lshbh import LinkStateHopByHopProtocol
from repro.protocols.orwg import ORWGProtocol
from repro.protocols.variants import (
    DVSourceTermsProtocol,
    DVSourceTopologyProtocol,
    LSHbHTopologyProtocol,
    LSSourceTopologyProtocol,
)

ProtocolFactory = Callable[[InterADGraph, PolicyDatabase], RoutingProtocol]

PROTOCOL_FOR_POINT: Dict[DesignPoint, ProtocolFactory] = {
    DV_HBH_TOPOLOGY: ECMAProtocol,
    DV_HBH_TERMS: IDRPProtocol,
    LS_HBH_TERMS: LinkStateHopByHopProtocol,
    LS_SRC_TERMS: ORWGProtocol,
    LS_HBH_TOPOLOGY: LSHbHTopologyProtocol,
    LS_SRC_TOPOLOGY: LSSourceTopologyProtocol,
    DV_SRC_TOPOLOGY: DVSourceTopologyProtocol,
    DV_SRC_TERMS: DVSourceTermsProtocol,
}


def protocol_for(
    point: DesignPoint, graph: InterADGraph, policies: PolicyDatabase
) -> RoutingProtocol:
    """Instantiate the implementation for a Table 1 cell."""
    return PROTOCOL_FOR_POINT[point](graph, policies)


def all_protocol_names() -> List[str]:
    """Names of the eight design-point implementations."""
    return [factory.name for factory in PROTOCOL_FOR_POINT.values()]  # type: ignore[attr-defined]
