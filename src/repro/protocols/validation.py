"""Receiver-side validation of control traffic, individually toggleable.

The paper's Sections 4--6 argue that inter-AD routing happens among
*mutually distrustful* administrations: expressing a policy is not
enough, each AD must be able to *police* the others' adherence to it.
:mod:`repro.faults.misbehavior` turns a chosen AD into a liar; this
module is the defence.  A :class:`ValidationConfig` travels from the
protocol driver to every node at build time (exactly like
:class:`~repro.protocols.hardening.HardeningConfig`), and each receive
path consults it before installing anything:

* ``path_check``   -- advertised paths must be plausible against the
  trusted policy registry: every transit hop must hold a term that would
  have let it export the route (mirrors the advertiser-side export
  scope, so honest advertisements never trip it);
* ``origin_check`` -- advertised adjacencies and origins must exist in
  the trusted AD graph (the registered topology, an IRR analogue);
* ``seq_guard``    -- sequence numbers may not jump implausibly far
  ahead of the receiver's view, which is what a stale-replay attack
  needs to displace fresh state;
* ``metric_guard`` -- advertised metrics must be consistent with the
  registered link costs (no free zero-cost transit);
* ``term_guard``   -- policy terms carried in advertisements must match
  the trusted registry entry for their owner (no forged terms);
* ``quarantine``   -- a neighbour caught violating ``threshold`` times
  is suppressed for ``quarantine_period``, then put on probation where a
  single further violation re-quarantines it.

Checks validate *claims against registered ground truth* (the configured
AD graph and policy database -- what RPKI/IRR databases provide in the
real internet), never against the liar's own assertions.  A node with
every feature off behaves byte-identically to the pre-validation code.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, Iterable, List, Tuple, Union

from repro.adgraph.ad import ADId

#: The individually toggleable check names, in canonical order.
FEATURES: Tuple[str, ...] = (
    "path_check",
    "origin_check",
    "seq_guard",
    "metric_guard",
    "term_guard",
    "quarantine",
)


@dataclass(frozen=True)
class ValidationConfig:
    """Which receiver-side checks are on, and their parameters.

    ``max_seq_jump`` is generous (honest floods advance sequence numbers
    by one per origination; bounded refresh bursts add a handful) while
    stale-replay attacks need jumps of hundreds to durably displace
    fresh state, so the guard separates the two cleanly.
    """

    path_check: bool = False
    origin_check: bool = False
    seq_guard: bool = False
    metric_guard: bool = False
    term_guard: bool = False
    quarantine: bool = False
    #: Violations from one neighbour before it is quarantined.
    threshold: int = 3
    #: How long a quarantined neighbour's updates are suppressed.
    quarantine_period: float = 300.0
    #: Window after release in which one violation re-quarantines.
    probation_period: float = 300.0
    #: Largest honest sequence-number advance the guard tolerates.
    max_seq_jump: int = 64

    @cached_property
    def any_enabled(self) -> bool:
        return any(getattr(self, f) for f in FEATURES)

    @cached_property
    def checks_enabled(self) -> bool:
        """Whether any *check* (everything but quarantine) is on.

        ``cached_property`` (fields are frozen, so the answer cannot
        change): the receive path asks this once per delivered message.
        """
        return any(getattr(self, f) for f in FEATURES if f != "quarantine")

    @property
    def enabled(self) -> Tuple[str, ...]:
        """Enabled feature names, in canonical order."""
        return tuple(f for f in FEATURES if getattr(self, f))

    def __str__(self) -> str:
        return "+".join(self.enabled) if self.any_enabled else "none"


#: No validation: the exact legacy receive-path behaviour.
OFF = ValidationConfig()

#: Every check on, default parameters.
FULL = ValidationConfig(
    path_check=True,
    origin_check=True,
    seq_guard=True,
    metric_guard=True,
    term_guard=True,
    quarantine=True,
)


def validation_from(
    value: Union[None, str, Iterable[str], ValidationConfig],
) -> ValidationConfig:
    """Normalize a user-facing validation spec into a config.

    Accepts a ready config, ``None``/``"none"`` (off), ``"all"`` (every
    check), one check name, or an iterable of check names.
    """
    if isinstance(value, ValidationConfig):
        return value
    if value is None:
        return OFF
    if isinstance(value, str):
        if value == "none" or value == "":
            return OFF
        if value == "all":
            return FULL
        names: Tuple[str, ...] = tuple(value.replace("+", ",").split(","))
    else:
        names = tuple(value)
    names = tuple(n.strip() for n in names if n.strip())
    unknown = [n for n in names if n not in FEATURES]
    if unknown:
        raise ValueError(
            f"unknown validation feature(s) {unknown}; choose from {FEATURES}"
        )
    return ValidationConfig(**{n: True for n in names})


@dataclass
class QuarantineEvent:
    """One neighbour suppression, for the false-quarantine audit."""

    time: float
    neighbor: ADId
    reason: str


class NeighborGuard:
    """Per-receiver violation ledger and penalty-timer state machine.

    Every validation failure is charged to the *sender* of the offending
    message.  After ``threshold`` violations the sender is quarantined
    (its updates dropped) for ``quarantine_period``, after which it is
    on probation for ``probation_period``: one more violation during
    probation re-quarantines it immediately.  All state is plain data
    driven by the caller-supplied clock, so a crashed-and-replaced node
    simply starts a fresh ledger.
    """

    def __init__(
        self, config: ValidationConfig, clock: Callable[[], float]
    ) -> None:
        self.config = config
        self._clock = clock
        #: Violation count per neighbour since the last quarantine.
        self.strikes: Dict[ADId, int] = {}
        #: Total violations per neighbour, never reset.
        self.violations: Dict[ADId, int] = {}
        #: Quarantine expiry time per currently quarantined neighbour.
        self._quarantined_until: Dict[ADId, float] = {}
        #: Probation expiry time per recently released neighbour.
        self._probation_until: Dict[ADId, float] = {}
        #: Every quarantine entered, in order.
        self.quarantine_events: List[QuarantineEvent] = []
        #: Messages dropped because their sender was quarantined.
        self.suppressed: int = 0

    @property
    def total_violations(self) -> int:
        return sum(self.violations.values())

    def violation(self, neighbor: ADId, reason: str) -> bool:
        """Charge one violation to ``neighbor``; True if it quarantines."""
        self.violations[neighbor] = self.violations.get(neighbor, 0) + 1
        if not self.config.quarantine:
            return False
        now = self._clock()
        on_probation = now < self._probation_until.get(neighbor, -1.0)
        self.strikes[neighbor] = self.strikes.get(neighbor, 0) + 1
        if self.strikes[neighbor] < self.config.threshold and not on_probation:
            return False
        self._quarantined_until[neighbor] = now + self.config.quarantine_period
        self._probation_until.pop(neighbor, None)
        self.strikes[neighbor] = 0
        self.quarantine_events.append(QuarantineEvent(now, neighbor, reason))
        return True

    def quarantine_now(self, neighbor: ADId, reason: str) -> None:
        """Quarantine ``neighbor`` immediately, bypassing the threshold.

        The hard-failure path for wire-version mismatches: a peer whose
        advertised version range does not overlap ours cannot become
        trustworthy by sending fewer bad messages, so it is penalised at
        once -- regardless of whether the graduated ``quarantine``
        feature is enabled.  Re-quarantining an already-quarantined
        neighbour just extends the penalty timer (no duplicate event).
        """
        now = self._clock()
        self.violations[neighbor] = self.violations.get(neighbor, 0) + 1
        already = now < self._quarantined_until.get(neighbor, -1.0)
        self._quarantined_until[neighbor] = now + self.config.quarantine_period
        self._probation_until.pop(neighbor, None)
        self.strikes[neighbor] = 0
        if not already:
            self.quarantine_events.append(
                QuarantineEvent(now, neighbor, reason)
            )

    def suppresses(self, neighbor: ADId) -> bool:
        """Whether updates from ``neighbor`` are currently dropped.

        Also advances the state machine: an expired quarantine moves the
        neighbour to probation the first time it is consulted after the
        penalty timer runs out.
        """
        until = self._quarantined_until.get(neighbor)
        if until is None:
            return False
        now = self._clock()
        if now < until:
            self.suppressed += 1
            return True
        del self._quarantined_until[neighbor]
        self._probation_until[neighbor] = now + self.config.probation_period
        return False

    def summary(self) -> Dict[str, object]:
        """Counters for the run record's misbehavior block."""
        return {
            "violations": self.total_violations,
            "quarantines": len(self.quarantine_events),
            "suppressed": self.suppressed,
            "quarantined_ads": sorted(
                {ev.neighbor for ev in self.quarantine_events}
            ),
        }
