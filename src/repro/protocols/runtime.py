"""The unified per-node runtime configuration.

Five build-time config objects grew up independently — hardening,
validation, pacing, perf, and the network-level ingress queue — each
with its own distribution path in the driver and its own restamping code
on crash/restart.  :class:`NodeRuntimeConfig` packages them into one
immutable container with a single distribution hook
(:meth:`~repro.protocols.base.RoutingProtocol._stamp_runtime`), so a
node always receives a complete, consistent runtime in one place:
at build time, and again when a state-losing restart swaps in a fresh
process.

Every component keeps its off-by-default semantics (``perf`` defaults to
the fast paths, as before), so a default container is byte-identical to
the pre-unification behaviour.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.protocols.graceful import GracefulRestartConfig, graceful_from
from repro.protocols.hardening import HardeningConfig, hardening_from
from repro.protocols.pacing import PacingConfig, pacing_from
from repro.protocols.perf import PerfConfig, perf_from
from repro.protocols.validation import ValidationConfig, validation_from
from repro.protocols.versioning import WireConfig, wire_from
from repro.simul.ingress import IngressConfig

#: What the user-facing normalizers accept for each component.
_Spec = Union[None, str, Iterable[str]]


@dataclass(frozen=True)
class NodeRuntimeConfig:
    """Everything a protocol node is configured with at build time.

    * ``hardening`` — dedup/retransmit/refresh robustness features.
    * ``validation`` — receiver-side claim checks and quarantine.
    * ``pacing`` — overload defenses (pacing/hold-down/flap damping).
    * ``perf`` — delta-recompute fast paths (on by default).
    * ``graceful`` — graceful-restart helper/resync behaviour around
      planned control-plane restarts.
    * ``wire`` — the wire-protocol version the node speaks and whether
      it runs HELLO-time version negotiation (off by default).
    * ``ingress`` — the bounded control-plane input queue, or ``None``
      for instant delivery.  Unlike the other four, this attaches to the
      *network* (the queue models the substrate's delivery stage), but it
      is distributed by the same hook so one container describes the
      whole runtime.
    """

    hardening: HardeningConfig = field(default_factory=HardeningConfig)
    validation: ValidationConfig = field(default_factory=ValidationConfig)
    pacing: PacingConfig = field(default_factory=PacingConfig)
    perf: PerfConfig = field(default_factory=PerfConfig)
    graceful: GracefulRestartConfig = field(
        default_factory=GracefulRestartConfig
    )
    wire: WireConfig = field(default_factory=WireConfig)
    ingress: Optional[IngressConfig] = None

    def replace(self, **changes: object) -> "NodeRuntimeConfig":
        """A copy with the given components swapped out."""
        return dataclasses.replace(self, **changes)


def runtime_from(
    hardening: Union[_Spec, HardeningConfig] = None,
    validation: Union[_Spec, ValidationConfig] = None,
    pacing: Union[_Spec, PacingConfig] = None,
    perf: Union[_Spec, PerfConfig] = None,
    graceful: Union[_Spec, GracefulRestartConfig] = None,
    wire: Union[None, str, int, WireConfig] = None,
    ingress: Optional[IngressConfig] = None,
) -> NodeRuntimeConfig:
    """Build a runtime container from user-facing component specs.

    Each component accepts whatever its standalone normalizer accepts
    (``"all"``, a feature name, a ``+``-joined list, a ready config, or
    ``None``).  ``None`` means "that component's default": off for
    hardening/validation/pacing/ingress, the fast paths for perf, the
    current wire version without negotiation for wire.
    """
    return NodeRuntimeConfig(
        hardening=hardening_from(hardening),
        validation=validation_from(validation),
        pacing=pacing_from(pacing),
        perf=perf_from(perf),
        graceful=graceful_from(graceful),
        wire=wire_from(wire),
        ingress=ingress,
    )
