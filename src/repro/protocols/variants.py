"""The four design points Section 5.5 dismisses, implemented anyway.

The paper excludes these "from more detailed coverage" with brief
arguments; implementing them lets the scorecard (E1) *measure* the
dismissals instead of taking them on faith:

* **LS + topology** (hop-by-hop and source): link-state flooding with the
  partial-ordering/up-down rule as the only policy expression.  Section
  5.5.1: "we see these two design choices as presenting no particular
  advantages over those schemes already described."
* **DV + source routing** (topology and terms): path-vector protocols in
  which "the source uses the full AD path information it receives in
  routing updates to create a source route."  Section 5.5.2: "there is
  little advantage in using source routing without also using a link
  state scheme" -- the source gets loop-free source routes but still only
  ever sees the single route its neighbours chose to advertise.
"""

from __future__ import annotations

import heapq
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.adgraph.ad import ADId, ADKind
from repro.adgraph.graph import InterADGraph
from repro.adgraph.partial_order import Direction, PartialOrder
from repro.core.design_space import (
    DV_SRC_TERMS,
    DV_SRC_TOPOLOGY,
    LS_HBH_TOPOLOGY,
    LS_SRC_TOPOLOGY,
)
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.selection import OPEN_SELECTION, RouteSelectionPolicy
from repro.policy.sets import ADSet
from repro.protocols.base import ForwardingMode, RoutingProtocol
from repro.protocols.flooding import LSNode
from repro.protocols.idrp import IDRPNode, IDRPProtocol, RouteAd
from repro.simul.network import SimNetwork


def valley_free_shortest_path(
    graph: InterADGraph,
    order: PartialOrder,
    src: ADId,
    dst: ADId,
    metric: str = "delay",
) -> Optional[Tuple[ADId, ...]]:
    """Cheapest path satisfying the up/down rule, or ``None``.

    Dijkstra over ``(AD, has-gone-down)`` states: once the path takes a
    down traversal the ``gone_down`` flag is set and up traversals are
    pruned.  Within each phase the total-order key is strictly monotone,
    so paths are simple and the search is polynomial.  Deterministic
    tie-breaking makes every node with the same view compute the same
    path (required for hop-by-hop consistency).
    """
    if src == dst:
        return (src,)
    start = (src, False)
    dist: Dict[Tuple[ADId, bool], float] = {start: 0.0}
    parent: Dict[Tuple[ADId, bool], Optional[Tuple[ADId, bool]]] = {start: None}
    heap: List[Tuple[float, ADId, bool]] = [(0.0, src, False)]
    goal: Optional[Tuple[ADId, bool]] = None
    while heap:
        d, u, gone_down = heapq.heappop(heap)
        state = (u, gone_down)
        if d > dist.get(state, float("inf")):
            continue
        if u == dst:
            goal = state
            break
        for link in graph.links_of(u):
            v = link.other(u)
            direction = order.direction(u, v)
            if direction is Direction.UP and gone_down:
                continue
            nstate = (v, gone_down or direction is Direction.DOWN)
            nd = d + link.metric(metric)
            if nd < dist.get(nstate, float("inf")):
                dist[nstate] = nd
                parent[nstate] = state
                heapq.heappush(heap, (nd, v, nstate[1]))
    if goal is None:
        return None
    path: List[ADId] = []
    cursor: Optional[Tuple[ADId, bool]] = goal
    while cursor is not None:
        path.append(cursor[0])
        cursor = parent[cursor]
    path.reverse()
    return tuple(path)


class _ValleyFreeLSNode(LSNode):
    """LS node computing valley-free routes for whole flows."""

    def __init__(self, ad_id: ADId, order: PartialOrder) -> None:
        super().__init__(ad_id, own_terms=(), include_terms=False)
        self.order = order
        self._cache: Dict[Tuple[ADId, ADId, str], Tuple[int, Optional[Tuple[ADId, ...]]]] = {}

    def flow_route(self, flow: FlowSpec) -> Optional[Tuple[ADId, ...]]:
        if flow.qos.is_bottleneck:
            # Valley-free SPF is additive; bandwidth traffic rides the
            # default-metric table (honest era behaviour).
            from dataclasses import replace
            from repro.policy.qos import QOS

            flow = replace(flow, qos=QOS.DEFAULT)
        key = (flow.src, flow.dst, flow.qos.metric)
        cached = self._cache.get(key)
        if cached is not None and cached[0] == self.db_version:
            return cached[1]
        profiler = self.profiler
        if profiler is None:
            path = self._compute_route(flow)
        else:
            with profiler.phase("proto.spf"):
                path = self._compute_route(flow)
        self._cache[key] = (self.db_version, path)
        self.note_computation("valley_free_spf")
        return path

    def _compute_route(self, flow: FlowSpec) -> Optional[Tuple[ADId, ...]]:
        graph, _ = self.local_view()
        if flow.src in graph and flow.dst in graph:
            return valley_free_shortest_path(
                graph, self.order, flow.src, flow.dst, flow.qos.metric
            )
        return None


class _LSTopologyProtocolBase(RoutingProtocol):
    """Shared driver for the two LS+topology variants."""

    def __init__(
        self,
        graph: InterADGraph,
        policies: PolicyDatabase,
        order: Optional[PartialOrder] = None,
    ) -> None:
        super().__init__(graph, policies)
        self.order = order or PartialOrder.from_hierarchy(graph)

    def _make_nodes(self, network: SimNetwork) -> None:
        for ad_id in self.graph.ad_ids():
            network.add_node(_ValleyFreeLSNode(ad_id, self.order))

    def rib_size(self, ad_id: ADId) -> int:
        node = self.network.node(ad_id)
        assert isinstance(node, _ValleyFreeLSNode)
        return len(node.lsdb) + len(node._cache)


class LSHbHTopologyProtocol(_LSTopologyProtocolBase):
    """LS / hop-by-hop / policy-in-topology (Section 5.5.1)."""

    name: ClassVar[str] = "ls-hbh-topo"
    design_point = LS_HBH_TOPOLOGY
    mode = ForwardingMode.HOP_BY_HOP

    def next_hop(
        self, ad_id: ADId, flow: FlowSpec, prev: Optional[ADId]
    ) -> Optional[ADId]:
        node = self.network.node(ad_id)
        assert isinstance(node, _ValleyFreeLSNode)
        path = node.flow_route(flow)
        if path is None or ad_id not in path:
            return None
        idx = path.index(ad_id)
        return None if idx == len(path) - 1 else path[idx + 1]


class LSSourceTopologyProtocol(_LSTopologyProtocolBase):
    """LS / source / policy-in-topology (Section 5.5.1)."""

    name: ClassVar[str] = "ls-src-topo"
    design_point = LS_SRC_TOPOLOGY
    mode = ForwardingMode.SOURCE

    def source_route(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Tuple[ADId, ...]]:
        node = self.network.node(flow.src)
        assert isinstance(node, _ValleyFreeLSNode)
        path = node.flow_route(flow)
        if path is not None and not selection.acceptable(path):
            return None
        return path


class DVSourceTermsProtocol(IDRPProtocol):
    """DV / source / policy terms: IDRP with source-built source routes.

    The source turns the single advertised AD path into a source route.
    Availability is inherited from path-vector advertisement (one route
    per destination/class); what source routing adds is that the source
    can at least *reject* a route violating its own selection criteria
    instead of forwarding blind.
    """

    name: ClassVar[str] = "pv-src"
    design_point = DV_SRC_TERMS
    mode = ForwardingMode.SOURCE

    def source_route(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Tuple[ADId, ...]]:
        node = self.network.node(flow.src)
        assert isinstance(node, IDRPNode)
        entry = node.entry_for(
            flow.dst, self._qos_for(flow), node.class_of(flow.src)
        )
        if entry is None or not entry.allowed.matches(flow.src):
            return None
        if not selection.acceptable(entry.path):
            return None
        return entry.path


class _TopoVectorNode(IDRPNode):
    """Path-vector node whose only policy is the partial ordering.

    Candidates must satisfy the up/down rule end to end (recomputed from
    the full advertised path); export is constrained by AD role: stubs
    advertise only themselves, hybrids only serve their down-side.
    """

    def __init__(
        self,
        ad_id: ADId,
        qos_classes,
        order: PartialOrder,
        may_transit: bool,
        down_only_transit: bool,
    ) -> None:
        super().__init__(ad_id, own_terms=(), qos_classes=qos_classes)
        self.order = order
        self.may_transit = may_transit
        self.down_only_transit = down_only_transit
        self._honest_transit = (may_transit, down_only_transit)

    def _candidate_usable(self, ad: RouteAd) -> bool:
        return self.order.path_is_valid((self.ad_id,) + ad.path)

    def _path_implausible(self, ad: RouteAd) -> Optional[str]:
        # No terms in this regime: validate each transit hop against the
        # *registered* AD roles instead (stubs may not transit; hybrids
        # only toward their down-side), mirroring honest export exactly.
        if self.trusted_graph is None:
            return None
        for i in range(len(ad.path) - 1):
            hop = ad.path[i]
            prev = self.ad_id if i == 0 else ad.path[i - 1]
            if not self.trusted_graph.has_ad(hop):
                return "unregistered AD on path"
            kind = self.trusted_graph.ad(hop).kind
            if not kind.may_transit:
                return "registered stub AD transits"
            if (
                kind is ADKind.HYBRID
                and self.order.direction(hop, prev) is not Direction.DOWN
            ):
                return "registered hybrid AD transits upward"
        return None

    def _tell_lie(self, lie: str, target: Optional[ADId] = None) -> bool:
        if lie == "route-leak":
            if self.may_transit and not self.down_only_transit:
                # Already permitted full transit by the topology regime;
                # there is nothing to leak.
                return False
            self._active_lies[lie] = None
            self.may_transit = True
            self.down_only_transit = False
            self._pending.update(self.loc)
            self._schedule_flush()
            return True
        return super()._tell_lie(lie, target)

    def behave(self) -> None:
        super().behave()
        self.may_transit, self.down_only_transit = self._honest_transit

    def _export_scope(
        self, entry, dest: ADId, qos, to_nbr: ADId, cls: int = 0
    ) -> ADSet:
        if dest == self.ad_id:
            return ADSet.everyone()
        if not self.may_transit:
            return ADSet.none()
        if self.down_only_transit:
            if self.order.direction(self.ad_id, to_nbr) is not Direction.DOWN:
                return ADSet.none()
        # The receiver revalidates the up/down rule itself; no term scopes.
        return ADSet.everyone()


class DVSourceTopologyProtocol(RoutingProtocol):
    """DV / source / policy-in-topology (Section 5.5.2).

    A path-vector under the partial-ordering regime; the source builds a
    source route from the advertised path.
    """

    name: ClassVar[str] = "topo-vector-src"
    design_point = DV_SRC_TOPOLOGY
    mode = ForwardingMode.SOURCE
    #: Path-vector under partial ordering: the advertised path depends
    #: on destination and the QOS class of the request only.
    fib_key_fields: ClassVar[Tuple[str, ...]] = ("src", "dst", "qos")

    def __init__(
        self,
        graph: InterADGraph,
        policies: PolicyDatabase,
        order: Optional[PartialOrder] = None,
    ) -> None:
        super().__init__(graph, policies)
        self.order = order or PartialOrder.from_hierarchy(graph)
        from repro.policy.qos import QOS

        self.qos_classes = (QOS.DEFAULT,)

    def _make_nodes(self, network: SimNetwork) -> None:
        for ad in self.graph.ads():
            network.add_node(
                _TopoVectorNode(
                    ad.ad_id,
                    qos_classes=self.qos_classes,
                    order=self.order,
                    may_transit=ad.kind.may_transit,
                    down_only_transit=ad.kind is ADKind.HYBRID,
                )
            )

    def source_route(
        self, flow: FlowSpec, selection: RouteSelectionPolicy = OPEN_SELECTION
    ) -> Optional[Tuple[ADId, ...]]:
        node = self.network.node(flow.src)
        assert isinstance(node, _TopoVectorNode)
        entry = node.entry_for(flow.dst, self.qos_classes[0])
        if entry is None or not selection.acceptable(entry.path):
            return None
        return entry.path

    def rib_size(self, ad_id: ADId) -> int:
        node = self.network.node(ad_id)
        assert isinstance(node, _TopoVectorNode)
        return len(node.loc)
