"""Source route-selection criteria.

The paper distinguishes *transit policies* (the carrier's) from *route
selection criteria* (the source's) -- Section 2.3.  A source may insist on
avoiding certain ADs, require particular ADs to be on the path, bound the
hop count, and rank surviving routes by the metric of its QOS class plus
advertised charges.

Under source routing these criteria are applied privately by the source's
route server; under hop-by-hop routing they *cannot* be fully honoured,
which is one of the paper's central claims (measured in E3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.policy.qos import QOS


@dataclass(frozen=True)
class RouteSelectionPolicy:
    """A source AD's private preferences over candidate routes.

    Attributes:
        avoid_ads: ADs the route must not traverse (e.g. an untrusted
            carrier).
        require_ads: ADs the route must traverse (e.g. a mandated
            accounting point).
        max_hops: Inclusive bound on the number of inter-AD hops, or
            ``None`` for unbounded.
        charge_weight: Weight of advertised PT charges added to the link
            metric when ranking routes (0 ignores charging).
    """

    avoid_ads: FrozenSet[ADId] = frozenset()
    require_ads: FrozenSet[ADId] = frozenset()
    max_hops: Optional[int] = None
    charge_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.max_hops is not None and self.max_hops < 1:
            raise ValueError("max_hops must be at least 1")
        if self.charge_weight < 0:
            raise ValueError("charge_weight must be non-negative")
        overlap = self.avoid_ads & self.require_ads
        if overlap:
            raise ValueError(f"ADs both avoided and required: {sorted(overlap)}")

    def permits_node(self, ad_id: ADId) -> bool:
        """Whether the route may pass through ``ad_id`` at all."""
        return ad_id not in self.avoid_ads

    def acceptable(self, path: Sequence[ADId]) -> bool:
        """Whether a complete candidate path satisfies the hard criteria."""
        if self.max_hops is not None and len(path) - 1 > self.max_hops:
            return False
        path_set = set(path)
        if self.avoid_ads & path_set:
            return False
        return self.require_ads <= path_set

    def rank_key(
        self,
        graph: InterADGraph,
        path: Sequence[ADId],
        qos: QOS = QOS.DEFAULT,
        charges: float = 0.0,
    ) -> Tuple[float, int, Tuple[ADId, ...]]:
        """Sort key ranking acceptable paths (lower is better).

        Primary: the QOS metric under its own composition (negated for
        bottleneck classes, where wider is better) plus weighted charges;
        then hop count; then the path itself for a deterministic total
        order.
        """
        from repro.policy.legality import path_metric

        value = path_metric(graph, path, qos)
        if qos.is_bottleneck:
            value = -value
        cost = value + self.charge_weight * charges
        return (cost, len(path), tuple(path))


#: The empty criteria: accept any route, rank by QOS metric alone.
OPEN_SELECTION = RouteSelectionPolicy()
