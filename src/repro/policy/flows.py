"""Flow specifications.

A :class:`FlowSpec` carries the per-packet attributes that policies
discriminate on (paper Section 2.3): source AD, destination AD, QOS class,
User Class, and hour of day.  Routes are computed per flow spec, not per
transport session -- matching ORWG's long-lived policy routes that "can
support multiple pairs of hosts in the source and destination ADs".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.adgraph.ad import ADId
from repro.policy.qos import QOS
from repro.policy.uci import UCI


@dataclass(frozen=True)
class FlowSpec:
    """The policy-relevant identity of a traffic flow.

    Attributes:
        src: Source AD id.
        dst: Destination AD id.
        qos: Requested Quality of Service.
        uci: User class of the originator.
        hour: Hour of day (0-23) the flow is active; policies with
            time windows match against this.
    """

    src: ADId
    dst: ADId
    qos: QOS = QOS.DEFAULT
    uci: UCI = UCI.DEFAULT
    hour: int = 12

    def __post_init__(self) -> None:
        if not 0 <= self.hour < 24:
            raise ValueError(f"hour {self.hour} out of range [0, 24)")
        # A flow spec is the key of every memoized policy decision, so its
        # hash is precomputed once rather than re-derived per lookup.
        object.__setattr__(
            self, "_hash", hash((self.src, self.dst, self.qos, self.uci, self.hour))
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def endpoints(self) -> Tuple[ADId, ADId]:
        return (self.src, self.dst)

    def reversed(self) -> "FlowSpec":
        """The same flow in the opposite direction."""
        return replace(self, src=self.dst, dst=self.src)

    @property
    def traffic_class(self) -> Tuple[QOS, UCI]:
        """The (QOS, UCI) pair -- the packet classification axis whose
        growth the paper warns about for hop-by-hop schemes."""
        return (self.qos, self.uci)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.src}->{self.dst}/{self.qos.value}/{self.uci.value}@{self.hour:02d}h"
