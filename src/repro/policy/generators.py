"""Policy scenario generators.

The paper has no single concrete policy workload; it reasons about how
architectures behave as policies become more *restrictive* and more
*fine-grained*.  These generators expose exactly those axes:

* :func:`open_policies` — every transit-capable AD carries anything
  (the permissive baseline; all protocols should agree here).
* :func:`hierarchical_policies` — pure transit ADs carry anything, hybrid
  ADs carry only traffic sourced by or destined to their customer cone
  ("limited transit", Section 2.1).
* :func:`restricted_policies` — hierarchical plus per-AD random
  restrictions (source blacklists, QOS/UCI subsets, time windows, next-hop
  constraints) controlled by a restrictiveness knob (experiment E3).
* :func:`source_class_policies` — transit policies that discriminate among
  *source classes*, the granularity axis of experiments E5: each transit AD
  advertises one PT per source class it serves and refuses some classes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

from repro.adgraph.ad import ADId, ADKind, Level, LinkKind
from repro.adgraph.graph import InterADGraph
from repro.policy.database import PolicyDatabase
from repro.policy.qos import QOS
from repro.policy.sets import ADSet, TimeWindow
from repro.policy.terms import PolicyTerm
from repro.policy.uci import UCI


@dataclass(frozen=True, eq=False)
class PolicyScenario:
    """A named policy workload: the database plus provenance metadata."""

    name: str
    policies: PolicyDatabase
    description: str = ""
    params: Dict[str, object] = field(default_factory=dict)


def customer_cone(graph: InterADGraph, ad_id: ADId) -> FrozenSet[ADId]:
    """The AD and everything below it via hierarchical links.

    "Below" means the neighbour is at a strictly lower hierarchy level
    (larger :class:`Level` value).  This is the set of customers a hybrid
    AD provides limited transit for.
    """
    cone: Set[ADId] = {ad_id}
    frontier = [ad_id]
    while frontier:
        node = frontier.pop()
        for link in graph.links_of(node, include_down=True):
            if link.kind is not LinkKind.HIERARCHICAL:
                continue
            nbr = link.other(node)
            if graph.ad(nbr).level > graph.ad(node).level and nbr not in cone:
                cone.add(nbr)
                frontier.append(nbr)
    return frozenset(cone)


def open_policies(graph: InterADGraph) -> PolicyScenario:
    """Every transit-capable AD advertises a single fully-open term."""
    db = PolicyDatabase()
    for ad in graph.transit_ads():
        db.add_term(PolicyTerm(owner=ad.ad_id))
    return PolicyScenario(
        name="open",
        policies=db,
        description="all transit-capable ADs carry anything",
    )


def hierarchical_policies(graph: InterADGraph) -> PolicyScenario:
    """Provider/customer policies matching the Section 2.1 AD roles.

    Pure transit ADs (backbones, regionals, metros of kind TRANSIT) carry
    anything.  Hybrid ADs provide *limited* transit: only flows whose
    source or destination lies in their customer cone.  Stub and
    multi-homed ADs advertise nothing (no transit).
    """
    db = PolicyDatabase()
    for ad in graph.ads():
        if ad.kind is ADKind.TRANSIT:
            db.add_term(PolicyTerm(owner=ad.ad_id))
        elif ad.kind is ADKind.HYBRID:
            cone = customer_cone(graph, ad.ad_id)
            db.add_term(PolicyTerm(owner=ad.ad_id, sources=ADSet.of(cone)))
            db.add_term(PolicyTerm(owner=ad.ad_id, dests=ADSet.of(cone)))
    return PolicyScenario(
        name="hierarchical",
        policies=db,
        description="transit ADs open; hybrid ADs limited to their customer cone",
    )


def _narrowed(
    term: PolicyTerm, rng: random.Random, graph: InterADGraph
) -> PolicyTerm:
    """Apply one random restriction dimension to a term."""
    from dataclasses import replace

    choice = rng.randrange(5)
    if choice == 0:
        # Source blacklist: refuse a random sample of stub/multi-homed ADs.
        stubs = [a.ad_id for a in graph.stub_ads() if a.ad_id != term.owner]
        if stubs:
            k = max(1, len(stubs) // 4)
            banned = frozenset(rng.sample(stubs, min(k, len(stubs))))
            return replace(term, sources=ADSet.excluding(banned))
    elif choice == 1:
        # Serve only a strict subset of QOS classes.
        classes = list(QOS.all_classes())
        kept = frozenset(rng.sample(classes, rng.randrange(1, len(classes))))
        return replace(term, qos_classes=kept)
    elif choice == 2:
        # Serve only a strict subset of user classes.
        classes = list(UCI.all_classes())
        kept = frozenset(rng.sample(classes, rng.randrange(1, len(classes))))
        return replace(term, ucis=kept)
    elif choice == 3:
        # Off-hours only: a time-of-day policy.
        start = rng.randrange(24)
        length = rng.randrange(6, 18)
        return replace(term, window=TimeWindow(start, (start + length) % 24))
    else:
        # Exit constraint: only hand packets to a subset of neighbours.
        nbrs = graph.neighbors(term.owner, include_down=True)
        if len(nbrs) > 1:
            k = rng.randrange(1, len(nbrs))
            kept = frozenset(rng.sample(nbrs, k))
            return replace(term, next_ads=ADSet.of(kept))
    return term


def restricted_policies(
    graph: InterADGraph,
    restrictiveness: float = 0.3,
    seed: int = 0,
) -> PolicyScenario:
    """Hierarchical policies with random per-AD restrictions.

    Each transit-capable AD's terms are independently narrowed with
    probability ``restrictiveness``.  At 0 this equals
    :func:`hierarchical_policies`; climbing toward 1 shrinks the set of
    legal routes, which is the availability axis of experiment E3.
    """
    if not 0.0 <= restrictiveness <= 1.0:
        raise ValueError(f"restrictiveness must be in [0,1], got {restrictiveness}")
    rng = random.Random(seed)
    base = hierarchical_policies(graph)
    db = PolicyDatabase()
    for term in base.policies.all_terms():
        if rng.random() < restrictiveness:
            term = _narrowed(term, rng, graph)
        db.add_term(term)
    return PolicyScenario(
        name=f"restricted({restrictiveness:.2f})",
        policies=db,
        description="hierarchical policies with random per-AD restrictions",
        params={"restrictiveness": restrictiveness, "seed": seed},
    )


def source_class_of(ad_id: ADId, num_classes: int) -> int:
    """Deterministic class assignment for a source AD."""
    if num_classes < 1:
        raise ValueError("num_classes must be positive")
    return ad_id % num_classes


def source_class_members(
    graph: InterADGraph, num_classes: int, cls: int
) -> FrozenSet[ADId]:
    """All ADs whose source class is ``cls``."""
    return frozenset(
        a for a in graph.ad_ids() if source_class_of(a, num_classes) == cls
    )


def source_class_policies(
    graph: InterADGraph,
    num_classes: int,
    refusal_prob: float = 0.2,
    seed: int = 0,
) -> PolicyScenario:
    """Source-specific transit policies at a controllable granularity.

    ADs are partitioned into ``num_classes`` source classes.  Every
    transit-capable AD advertises one PT per class it serves, and refuses
    each class independently with probability ``refusal_prob`` (backbones
    always serve everyone, so the internet stays usable).  Increasing
    ``num_classes`` makes policies more source-specific without changing
    the total fraction of refused traffic -- isolating the granularity
    axis the paper's scaling arguments turn on (E5).
    """
    if num_classes < 1:
        raise ValueError("num_classes must be positive")
    if not 0.0 <= refusal_prob <= 1.0:
        raise ValueError(f"refusal_prob must be in [0,1], got {refusal_prob}")
    rng = random.Random(seed)
    db = PolicyDatabase()
    for ad in graph.transit_ads():
        always_serve = ad.level is Level.BACKBONE
        served = [
            cls
            for cls in range(num_classes)
            if always_serve or rng.random() >= refusal_prob
        ]
        if not served:
            # A transit AD exists to serve someone: guarantee one class,
            # else its single-homed customers fall off the internet.
            served = [source_class_of(ad.ad_id, num_classes)]
        for cls in served:
            members = source_class_members(graph, num_classes, cls)
            db.add_term(PolicyTerm(owner=ad.ad_id, sources=ADSet.of(members)))
    return PolicyScenario(
        name=f"source_classes({num_classes})",
        policies=db,
        description="per-source-class transit policies",
        params={
            "num_classes": num_classes,
            "refusal_prob": refusal_prob,
            "seed": seed,
        },
    )
