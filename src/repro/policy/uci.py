"""User Class Identifiers.

Section 2.3 lists the "User Class Identifier" (UCI) among the attributes
policies may discriminate on -- e.g. a regional network that carries
research traffic for anyone but commercial traffic only for its own
members.  UCIs tag flows; Policy Terms may restrict the UCIs they admit.
"""

from __future__ import annotations

import enum
from typing import Tuple


class UCI(enum.Enum):
    """User class of a traffic flow."""

    DEFAULT = "default"
    RESEARCH = "research"
    COMMERCIAL = "commercial"
    GOVERNMENT = "government"

    @classmethod
    def all_classes(cls) -> Tuple["UCI", ...]:
        return tuple(cls)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
