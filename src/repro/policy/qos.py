"""Quality of Service classes.

The paper's IGP discussion (Section 3) and the ECMA proposal both support
multiple Qualities of Service, each effectively selecting a different link
metric for the shortest-path computation; IGRP's composite metric also
covers *bandwidth*, whose composition along a path is not additive but
**bottleneck** (a path is as fast as its narrowest link).

We model a small fixed set of QOS classes, each bound to the link metric
it optimises and to that metric's composition rule.  Protocols build one
routing table (or run one computation) per QOS class in use; the
link-state route servers support both compositions, while the DV-era
protocols honestly do not support bottleneck metrics (their updates
compose additively), which is part of the Section 3 critique.
"""

from __future__ import annotations

import enum
from typing import Tuple


class MetricComposition(enum.Enum):
    """How a link metric accumulates along a path."""

    #: Path value = sum of link values; smaller is better (delay, cost).
    ADDITIVE = "additive"
    #: Path value = min of link values; larger is better (bandwidth).
    BOTTLENECK = "bottleneck"


class QOS(enum.Enum):
    """A Quality of Service class and the link metric it optimises."""

    #: Best-effort: minimise hop-weighted delay.
    DEFAULT = "default"
    #: Interactive traffic: minimise delay (same metric as DEFAULT but
    #: tracked as a distinct class so per-QOS table replication is visible).
    LOW_DELAY = "low_delay"
    #: Bulk traffic: minimise monetary cost.
    LOW_COST = "low_cost"
    #: Throughput-hungry traffic: maximise the bottleneck bandwidth.
    HIGH_BANDWIDTH = "high_bandwidth"

    @property
    def metric(self) -> str:
        """Name of the link metric this QOS class optimises."""
        if self is QOS.LOW_COST:
            return "cost"
        if self is QOS.HIGH_BANDWIDTH:
            return "bandwidth"
        return "delay"

    @property
    def composition(self) -> MetricComposition:
        """How this class's metric accumulates along a path."""
        if self is QOS.HIGH_BANDWIDTH:
            return MetricComposition.BOTTLENECK
        return MetricComposition.ADDITIVE

    @property
    def is_bottleneck(self) -> bool:
        return self.composition is MetricComposition.BOTTLENECK

    @classmethod
    def all_classes(cls) -> Tuple["QOS", ...]:
        """All QOS classes in definition order."""
        return tuple(cls)

    @classmethod
    def additive_classes(cls) -> Tuple["QOS", ...]:
        """Classes whose metric composes additively (DV-expressible)."""
        return tuple(q for q in cls if not q.is_bottleneck)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
