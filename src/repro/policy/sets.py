"""Set predicates used inside Policy Terms.

Policy Terms name *sets* of ADs (permitted sources, destinations,
previous/next hops).  :class:`ADSet` is a small immutable predicate type
supporting "everyone", explicit inclusion, and explicit exclusion, plus a
wire-size estimate for the message byte accounting.

:class:`TimeWindow` models the paper's time-of-day policies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from repro.adgraph.ad import ADId


class _SetMode(enum.Enum):
    ALL = "all"
    INCLUDE = "include"
    EXCLUDE = "exclude"


@dataclass(frozen=True)
class ADSet:
    """An immutable predicate over AD ids.

    Construct via :meth:`everyone`, :meth:`of`, or :meth:`excluding`.
    """

    mode: _SetMode
    members: FrozenSet[ADId] = field(default_factory=frozenset)

    @classmethod
    def everyone(cls) -> "ADSet":
        """The universal set (matches any AD)."""
        return cls(_SetMode.ALL)

    @classmethod
    def of(cls, ads: Iterable[ADId]) -> "ADSet":
        """Exactly the given ADs."""
        return cls(_SetMode.INCLUDE, frozenset(ads))

    @classmethod
    def excluding(cls, ads: Iterable[ADId]) -> "ADSet":
        """Every AD except the given ones."""
        return cls(_SetMode.EXCLUDE, frozenset(ads))

    def matches(self, ad_id: ADId) -> bool:
        """Whether ``ad_id`` is in the set."""
        if self.mode is _SetMode.ALL:
            return True
        if self.mode is _SetMode.INCLUDE:
            return ad_id in self.members
        return ad_id not in self.members

    @property
    def is_universal(self) -> bool:
        return self.mode is _SetMode.ALL or (
            self.mode is _SetMode.EXCLUDE and not self.members
        )

    @property
    def is_finite(self) -> bool:
        """Whether the set enumerates exactly the ADs it admits.

        Finite (INCLUDE) sets can back an exact-match index: a traversal
        can only match the set via one of its listed members.  ALL and
        EXCLUDE sets are cofinite -- they admit every AD not listed -- so
        they can never be bucketed by member.
        """
        return self.mode is _SetMode.INCLUDE

    def size_bytes(self) -> int:
        """Estimated encoded size: 1 tag byte + 2 bytes per listed AD."""
        return 1 + 2 * len(self.members)

    # ------------------------------------------------------------ algebra
    #
    # ADSets are finite (INCLUDE) or cofinite (ALL/EXCLUDE) sets, which are
    # closed under intersection and union.  IDRP uses this to propagate
    # allowed-source scopes through path-vector advertisements without
    # enumerating the whole internet.

    def _as_exclude(self) -> "ADSet":
        """Normalise ALL to EXCLUDE(empty) for the algebra."""
        if self.mode is _SetMode.ALL:
            return ADSet(_SetMode.EXCLUDE, frozenset())
        return self

    def intersect(self, other: "ADSet") -> "ADSet":
        """Set intersection (stays finite/cofinite)."""
        a, b = self._as_exclude(), other._as_exclude()
        if a.mode is _SetMode.INCLUDE and b.mode is _SetMode.INCLUDE:
            return ADSet.of(a.members & b.members)
        if a.mode is _SetMode.INCLUDE:
            return ADSet.of(a.members - b.members)
        if b.mode is _SetMode.INCLUDE:
            return ADSet.of(b.members - a.members)
        return ADSet.excluding(a.members | b.members)

    def union(self, other: "ADSet") -> "ADSet":
        """Set union (stays finite/cofinite)."""
        a, b = self._as_exclude(), other._as_exclude()
        if a.mode is _SetMode.INCLUDE and b.mode is _SetMode.INCLUDE:
            return ADSet.of(a.members | b.members)
        if a.mode is _SetMode.INCLUDE:
            return ADSet.excluding(b.members - a.members)
        if b.mode is _SetMode.INCLUDE:
            return ADSet.excluding(a.members - b.members)
        return ADSet.excluding(a.members & b.members)

    def is_subset_of(self, other: "ADSet") -> bool:
        """Whether every AD this set admits is admitted by ``other``."""
        a, b = self._as_exclude(), other._as_exclude()
        if a.mode is _SetMode.INCLUDE:
            if b.mode is _SetMode.INCLUDE:
                return a.members <= b.members
            return not (a.members & b.members)
        if b.mode is _SetMode.INCLUDE:
            return False  # a cofinite set never fits in a finite one
        return b.members <= a.members

    @classmethod
    def none(cls) -> "ADSet":
        """The empty set."""
        return cls(_SetMode.INCLUDE, frozenset())

    @property
    def is_empty(self) -> bool:
        """Whether the set is certainly empty (cofinite sets never are)."""
        return self.mode is _SetMode.INCLUDE and not self.members

    def plausible_size(self) -> float:
        """Cardinality: exact for finite sets, ``inf`` for cofinite ones."""
        if self.mode is _SetMode.INCLUDE:
            return float(len(self.members))
        return float("inf")

    def __contains__(self, ad_id: ADId) -> bool:
        return self.matches(ad_id)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.mode is _SetMode.ALL:
            return "*"
        sign = "" if self.mode is _SetMode.INCLUDE else "!"
        return sign + "{" + ",".join(str(m) for m in sorted(self.members)) + "}"


@dataclass(frozen=True)
class TimeWindow:
    """A daily time window ``[start_hour, end_hour)`` with wraparound.

    ``TimeWindow(22, 6)`` matches hours 22,23,0..5.  Equal endpoints make
    the window universal (always matches), which is the default.
    """

    start_hour: int = 0
    end_hour: int = 0

    def __post_init__(self) -> None:
        for h in (self.start_hour, self.end_hour):
            if not 0 <= h < 24:
                raise ValueError(f"hour {h} out of range [0, 24)")

    @classmethod
    def always(cls) -> "TimeWindow":
        return cls(0, 0)

    @property
    def is_universal(self) -> bool:
        return self.start_hour == self.end_hour

    def matches(self, hour: int) -> bool:
        """Whether the given hour of day falls inside the window."""
        if not 0 <= hour < 24:
            raise ValueError(f"hour {hour} out of range [0, 24)")
        if self.is_universal:
            return True
        if self.start_hour < self.end_hour:
            return self.start_hour <= hour < self.end_hour
        return hour >= self.start_hour or hour < self.end_hour

    def size_bytes(self) -> int:
        """Encoded size: two hour bytes."""
        return 2
