"""Policy Terms.

A Policy Term (PT) is the unit of transit policy advertisement in the
paper's recommended architecture (Sections 4.2 and 5.4.1, after Clark's
RFC 1102): it "can associate path constraints, QOS, User Class,
authentication requirements, and other global conditions with a path
across an AD", where path constraints "restrict access to the path based
on source AD, destination AD, previous AD, or next AD in the path".

A PT *permits* a given traversal of its owner when every one of its
conditions matches the flow and the local hops.  An AD with no PTs offers
no transit at all (the stub default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.adgraph.ad import ADId
from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.policy.sets import ADSet, TimeWindow
from repro.policy.uci import UCI


@dataclass(frozen=True)
class PolicyTerm:
    """One transit policy advertisement of an AD.

    Attributes:
        owner: The AD whose resources this term governs.
        sources: ADs whose traffic may use the term.
        dests: Destinations the term carries traffic toward.
        prev_ads: Permitted previous hops (entry constraint).
        next_ads: Permitted next hops (exit constraint).
        qos_classes: QOS classes served (``None`` = all).
        ucis: User classes served (``None`` = all).
        window: Time-of-day window during which the term is active.
        charge: Advertised charge for using the term (a charging/accounting
            policy attribute; source selection criteria may minimise it).
        term_id: Index of this term within its owner's advertisement;
            assigned by :class:`~repro.policy.database.PolicyDatabase` and
            cited by ORWG setup packets.
    """

    owner: ADId
    sources: ADSet = field(default_factory=ADSet.everyone)
    dests: ADSet = field(default_factory=ADSet.everyone)
    prev_ads: ADSet = field(default_factory=ADSet.everyone)
    next_ads: ADSet = field(default_factory=ADSet.everyone)
    qos_classes: Optional[FrozenSet[QOS]] = None
    ucis: Optional[FrozenSet[UCI]] = None
    window: TimeWindow = field(default_factory=TimeWindow.always)
    charge: float = 0.0
    term_id: int = -1

    def __post_init__(self) -> None:
        if self.charge < 0:
            raise ValueError(f"negative charge {self.charge}")

    def permits(self, flow: FlowSpec, prev: ADId, nxt: ADId) -> bool:
        """Whether this term allows ``flow`` to cross the owner.

        Args:
            flow: The flow attempting the traversal.
            prev: The AD the packet arrives from.
            nxt: The AD the packet will be handed to.
        """
        if not self.sources.matches(flow.src):
            return False
        if not self.dests.matches(flow.dst):
            return False
        if not self.prev_ads.matches(prev):
            return False
        if not self.next_ads.matches(nxt):
            return False
        if self.qos_classes is not None and flow.qos not in self.qos_classes:
            return False
        if self.ucis is not None and flow.uci not in self.ucis:
            return False
        return self.window.matches(flow.hour)

    def matches_except_source(
        self,
        dst: ADId,
        prev: ADId,
        nxt: ADId,
        qos: QOS,
        uci: UCI,
        hour: int,
    ) -> bool:
        """Whether the term matches everything but the source dimension.

        Used by path-vector protocols to compute the *set* of sources a
        term would admit for a given (destination, prev, next, class)
        traversal: if this returns ``True``, exactly ``self.sources`` is
        admitted; otherwise no source is.
        """
        if not self.dests.matches(dst):
            return False
        if not self.prev_ads.matches(prev):
            return False
        if not self.next_ads.matches(nxt):
            return False
        if self.qos_classes is not None and qos not in self.qos_classes:
            return False
        if self.ucis is not None and uci not in self.ucis:
            return False
        return self.window.matches(hour)

    def finite_axes(self) -> Tuple[Tuple[str, FrozenSet], ...]:
        """The term's exact-match axes, as ``(axis, admissible keys)`` pairs.

        An axis is *finite* when the term enumerates exactly the values it
        admits there: an INCLUDE AD set for ``src``/``dst``/``prev``/``next``,
        or an explicit QOS/UCI class set.  Any finite axis is a sound index
        key -- a traversal the term permits necessarily carries one of the
        listed keys on that axis -- so an index may file the term under
        whichever finite axis has the fewest keys.  An empty key set means
        the term can never match anything.  Cofinite AD sets and the time
        window are never finite; terms with no finite axis must stay on the
        ordered scan path.
        """
        axes = []
        if self.sources.is_finite:
            axes.append(("src", self.sources.members))
        if self.dests.is_finite:
            axes.append(("dst", self.dests.members))
        if self.prev_ads.is_finite:
            axes.append(("prev", self.prev_ads.members))
        if self.next_ads.is_finite:
            axes.append(("next", self.next_ads.members))
        if self.qos_classes is not None:
            axes.append(("qos", self.qos_classes))
        if self.ucis is not None:
            axes.append(("uci", self.ucis))
        return tuple(axes)

    @property
    def is_open(self) -> bool:
        """Whether the term is fully unconstrained (permits everything)."""
        return (
            self.sources.is_universal
            and self.dests.is_universal
            and self.prev_ads.is_universal
            and self.next_ads.is_universal
            and self.qos_classes is None
            and self.ucis is None
            and self.window.is_universal
        )

    def size_bytes(self) -> int:
        """Estimated wire size of the term in a link-state advertisement.

        2 bytes owner + 2 bytes term id + the four AD sets + 1 byte per
        enumerated QOS/UCI class (plus a tag byte each) + the time window
        + 4 bytes charge.
        """
        size = 2 + 2
        for adset in (self.sources, self.dests, self.prev_ads, self.next_ads):
            size += adset.size_bytes()
        size += 1 + (len(self.qos_classes) if self.qos_classes is not None else 0)
        size += 1 + (len(self.ucis) if self.ucis is not None else 0)
        size += self.window.size_bytes()
        size += 4
        return size

    @property
    def ref(self) -> "TermRef":
        """Citable reference to this term (owner, term id)."""
        return TermRef(self.owner, self.term_id)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PT(owner={self.owner}, src={self.sources}, dst={self.dests}, "
            f"prev={self.prev_ads}, next={self.next_ads})"
        )


@dataclass(frozen=True)
class TermRef:
    """A compact (owner AD, term id) citation, carried in setup packets."""

    owner: ADId
    term_id: int

    def size_bytes(self) -> int:
        """Encoded size: 2 bytes owner + 2 bytes term id."""
        return 4
