"""The policy database: every AD's advertised Policy Terms.

The database is the ground-truth policy state of the internet.  Protocols
access it in ways that respect their information model: link-state
protocols flood each AD's terms to everyone; distance-vector protocols
only ever see terms reflected in their neighbours' advertisements; the
legality checker (and the ground-truth evaluator) reads it directly.

The database is versioned: any mutation bumps ``version``, which ORWG
policy gateways use to invalidate cached route setups (Section 5.4.1:
"It is essential ... that policy and topology change much more slowly
than the time required for route setup").

Because :meth:`PolicyDatabase.permitting_term` is the legality predicate
behind every edge relaxation of the constrained search -- the computation
the paper calls "probably the most difficult aspect" of the recommended
architecture (Section 6) -- the database carries an indexed term engine:

* a per-owner :class:`_TermIndex` buckets terms by one of their finite
  exact-match axes (enumerated sources/dests/prev/next ADs, QOS or UCI
  class sets), so a lookup consults only candidate terms plus the ordered
  scan list of wildcard/cofinite terms;
* a version-keyed decision cache memoizes whole ``(owner, flow-key,
  prev, next) -> cited term`` verdicts, so the replicated recomputation that
  synthesis, ground-truth evaluation, LS-hop-by-hop SPF, and data-plane
  enforcement all perform resolves to a dictionary hit.

Both structures are derived state, rebuilt lazily and discarded wholesale
whenever ``version`` moves -- the same invalidation contract the ORWG
gateway caches rely on.  Citation semantics are preserved exactly: the
indexed lookup returns the *first permitting term in term-id order*, the
same term a linear scan would cite (``scan_permitting_term`` keeps the
reference implementation alive for tests and for A/B benchmarking via
``use_index``).
"""

from __future__ import annotations

from dataclasses import replace
from operator import attrgetter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.adgraph.ad import ADId
from repro.policy.flows import FlowSpec
from repro.policy.terms import PolicyTerm

#: Wholesale-clear threshold for the decision cache.  The cache is keyed
#: by (owner, flow key, prev, next); a long-running evaluation over many
#: sampled flows grows it without bound, so past this size it is dropped
#: and rebuilt -- deterministic, and far cheaper than per-entry eviction.
DECISION_CACHE_LIMIT = 1 << 20

#: Sentinel distinguishing "no cached decision" from a cached ``None``
#: ("no term permits this traversal" is itself a memoizable verdict).
_MISS = object()

_TERM_ID = attrgetter("term_id")


class _TermIndex:
    """Candidate index over one owner's terms, valid for one version.

    Each term is filed under exactly one of its finite axes (the one with
    the fewest keys, to keep posting lists short); terms with no finite
    axis go on the ordered ``scan`` list.  A lookup unions the posting
    lists selected by the query's key on every axis with the scan list --
    a superset of the terms that could possibly permit the traversal --
    and the caller evaluates them in term-id order, so the first match is
    identical to the linear scan's.
    """

    __slots__ = ("active", "scan")

    #: Query-argument position for each axis name (the order of
    #: :meth:`candidates`'s parameters).
    _AXES = {"src": 0, "dst": 1, "prev": 2, "next": 3, "qos": 4, "uci": 5}

    #: Owners with at most this many terms are scanned directly: probing
    #: posting lists costs more than just evaluating every term.
    SMALL_OWNER = 4

    def __init__(self, owned: List[PolicyTerm]) -> None:
        self.scan: List[PolicyTerm] = []
        #: ``(arg position, bucket)`` for each axis that indexes at least
        #: one term -- sparse policies populate one or two of the six.
        self.active: List[Tuple[int, Dict[object, List[PolicyTerm]]]] = []
        if len(owned) <= self.SMALL_OWNER:
            self.scan = list(owned)
            return
        buckets: Dict[str, Dict[object, List[PolicyTerm]]] = {}
        for term in owned:
            axes = term.finite_axes()
            if not axes:
                self.scan.append(term)
                continue
            axis, keys = min(axes, key=lambda ak: len(ak[1]))
            if not keys:
                # An empty finite axis matches nothing: the term is dead
                # and no query needs to see it.
                continue
            bucket = buckets.setdefault(axis, {})
            for key in keys:
                bucket.setdefault(key, []).append(term)
        self.active = [
            (self._AXES[axis], bucket) for axis, bucket in buckets.items()
        ]

    def candidates(
        self, src: ADId, dst: ADId, prev: ADId, nxt: ADId, qos, uci
    ) -> List[PolicyTerm]:
        """Terms possibly permitting the traversal, in term-id order.

        May return the internal scan list itself -- callers iterate, never
        mutate.
        """
        scan = self.scan
        if not self.active:
            return scan
        args = (src, dst, prev, nxt, qos, uci)
        terms: Optional[List[PolicyTerm]] = None
        for pos, bucket in self.active:
            hit = bucket.get(args[pos])
            if hit:
                if terms is None:
                    terms = list(scan)
                terms.extend(hit)
        if terms is None:
            return scan
        terms.sort(key=_TERM_ID)
        return terms


class PolicyDatabase:
    """Mapping from AD id to its advertised Policy Terms."""

    def __init__(self, terms: Iterable[PolicyTerm] = ()) -> None:
        self._terms: Dict[ADId, List[PolicyTerm]] = {}
        self.version = 0
        #: A/B switch for the indexed engine; ``False`` restores the pure
        #: linear scan (the perf benchmark measures both sides).
        self.use_index = True
        # Running totals, maintained by add_term/remove_terms so the
        # per-round metrics collectors pay O(1) instead of re-summing.
        self._num_terms = 0
        self._size_bytes = 0
        # Derived lookup state, valid only while _engine_version matches
        # version; rebuilt lazily, discarded wholesale on any mutation.
        self._engine_version = -1
        self._indexes: Dict[ADId, _TermIndex] = {}
        self._decisions: Dict[tuple, Optional[PolicyTerm]] = {}
        #: Lookup counters (the perf benchmark's observability).
        self.lookups = 0
        self.cache_hits = 0
        for term in terms:
            self.add_term(term)

    def add_term(self, term: PolicyTerm) -> PolicyTerm:
        """Register a term, assigning its per-owner ``term_id``.

        Returns the stored (id-stamped) term.
        """
        owned = self._terms.setdefault(term.owner, [])
        stamped = replace(term, term_id=len(owned))
        owned.append(stamped)
        self._num_terms += 1
        self._size_bytes += stamped.size_bytes()
        self.version += 1
        return stamped

    def remove_terms(self, owner: ADId) -> int:
        """Withdraw all terms of an AD; returns how many were removed."""
        removed = self._terms.pop(owner, [])
        if removed:
            self._num_terms -= len(removed)
            self._size_bytes -= sum(t.size_bytes() for t in removed)
            self.version += 1
        return len(removed)

    def terms_of(self, owner: ADId) -> Tuple[PolicyTerm, ...]:
        """All terms advertised by an AD (possibly empty)."""
        return tuple(self._terms.get(owner, ()))

    def term(self, owner: ADId, term_id: int) -> PolicyTerm:
        """Look up a term by citation; raises ``KeyError`` if absent."""
        owned = self._terms.get(owner, [])
        if not 0 <= term_id < len(owned):
            raise KeyError(f"AD {owner} has no term {term_id}")
        return owned[term_id]

    def owners(self) -> List[ADId]:
        """ADs that advertise at least one term, sorted."""
        return sorted(self._terms)

    def all_terms(self) -> List[PolicyTerm]:
        """Every term in the database, in (owner, term_id) order."""
        return [t for owner in self.owners() for t in self._terms[owner]]

    @property
    def num_terms(self) -> int:
        return self._num_terms

    def transit_permits(
        self, ad_id: ADId, flow: FlowSpec, prev: ADId, nxt: ADId
    ) -> bool:
        """Whether ``ad_id`` permits carrying ``flow`` from ``prev`` to ``nxt``.

        An AD with no terms refuses all transit (the stub default).
        """
        return self.permitting_term(ad_id, flow, prev, nxt) is not None

    def transit_charge(
        self, ad_id: ADId, flow: FlowSpec, prev: ADId, nxt: ADId
    ) -> Optional[float]:
        """Advertised charge for the traversal, or ``None`` if refused.

        The per-relaxation query of the constrained search: one memoized
        decision answers both legality and cost.
        """
        term = self.permitting_term(ad_id, flow, prev, nxt)
        return None if term is None else term.charge

    def permitting_term(
        self, ad_id: ADId, flow: FlowSpec, prev: ADId, nxt: ADId
    ) -> Optional[PolicyTerm]:
        """The first term of ``ad_id`` permitting the traversal, if any.

        "First" is in term-id order, which makes citation deterministic;
        the indexed engine preserves that order exactly (property-tested
        against :meth:`scan_permitting_term`).
        """
        owned = self._terms.get(ad_id)
        if not owned:
            return None
        if not self.use_index:
            return self.scan_permitting_term(ad_id, flow, prev, nxt)
        if self._engine_version != self.version:
            self._reset_engine()
        self.lookups += 1
        # FlowSpec is frozen with a precomputed hash, so the flow itself is
        # the flow-key; terms are immutable and the cache is dropped on any
        # version bump, so the term object can be memoized directly.
        key = (ad_id, prev, nxt, flow)
        decisions = self._decisions
        found = decisions.get(key, _MISS)
        if found is not _MISS:
            self.cache_hits += 1
            return found
        index = self._indexes.get(ad_id)
        if index is None:
            index = self._indexes[ad_id] = _TermIndex(owned)
        if index.active:
            cands = index.candidates(
                flow.src, flow.dst, prev, nxt, flow.qos, flow.uci
            )
        else:
            cands = index.scan
        found = None
        for term in cands:
            if term.permits(flow, prev, nxt):
                found = term
                break
        if len(decisions) >= DECISION_CACHE_LIMIT:
            decisions.clear()
        decisions[key] = found
        return found

    def scan_permitting_term(
        self, ad_id: ADId, flow: FlowSpec, prev: ADId, nxt: ADId
    ) -> Optional[PolicyTerm]:
        """Reference linear scan (the seed semantics, kept verbatim).

        The indexed engine must agree with this on every query -- it is
        the oracle of the index/scan equivalence property test and the
        baseline side of the perf benchmark.
        """
        for term in self._terms.get(ad_id, ()):
            if term.permits(flow, prev, nxt):
                return term
        return None

    def _reset_engine(self) -> None:
        """Drop all derived lookup state; next queries rebuild lazily."""
        self._indexes.clear()
        self._decisions.clear()
        self._engine_version = self.version

    def size_bytes(self) -> int:
        """Total advertised policy volume (for state-size experiments)."""
        return self._size_bytes

    def copy(self) -> "PolicyDatabase":
        """Independent copy (same version counter value)."""
        out = PolicyDatabase()
        out._terms = {owner: list(terms) for owner, terms in self._terms.items()}
        out.version = self.version
        out.use_index = self.use_index
        out._num_terms = self._num_terms
        out._size_bytes = self._size_bytes
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PolicyDatabase(owners={len(self._terms)}, "
            f"terms={self.num_terms}, v{self.version})"
        )
