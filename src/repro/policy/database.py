"""The policy database: every AD's advertised Policy Terms.

The database is the ground-truth policy state of the internet.  Protocols
access it in ways that respect their information model: link-state
protocols flood each AD's terms to everyone; distance-vector protocols
only ever see terms reflected in their neighbours' advertisements; the
legality checker (and the ground-truth evaluator) reads it directly.

The database is versioned: any mutation bumps ``version``, which ORWG
policy gateways use to invalidate cached route setups (Section 5.4.1:
"It is essential ... that policy and topology change much more slowly
than the time required for route setup").
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.adgraph.ad import ADId
from repro.policy.flows import FlowSpec
from repro.policy.terms import PolicyTerm


class PolicyDatabase:
    """Mapping from AD id to its advertised Policy Terms."""

    def __init__(self, terms: Iterable[PolicyTerm] = ()) -> None:
        self._terms: Dict[ADId, List[PolicyTerm]] = {}
        self.version = 0
        for term in terms:
            self.add_term(term)

    def add_term(self, term: PolicyTerm) -> PolicyTerm:
        """Register a term, assigning its per-owner ``term_id``.

        Returns the stored (id-stamped) term.
        """
        owned = self._terms.setdefault(term.owner, [])
        stamped = replace(term, term_id=len(owned))
        owned.append(stamped)
        self.version += 1
        return stamped

    def remove_terms(self, owner: ADId) -> int:
        """Withdraw all terms of an AD; returns how many were removed."""
        removed = len(self._terms.pop(owner, []))
        if removed:
            self.version += 1
        return removed

    def terms_of(self, owner: ADId) -> Tuple[PolicyTerm, ...]:
        """All terms advertised by an AD (possibly empty)."""
        return tuple(self._terms.get(owner, ()))

    def term(self, owner: ADId, term_id: int) -> PolicyTerm:
        """Look up a term by citation; raises ``KeyError`` if absent."""
        owned = self._terms.get(owner, [])
        if not 0 <= term_id < len(owned):
            raise KeyError(f"AD {owner} has no term {term_id}")
        return owned[term_id]

    def owners(self) -> List[ADId]:
        """ADs that advertise at least one term, sorted."""
        return sorted(self._terms)

    def all_terms(self) -> List[PolicyTerm]:
        """Every term in the database, in (owner, term_id) order."""
        return [t for owner in self.owners() for t in self._terms[owner]]

    @property
    def num_terms(self) -> int:
        return sum(len(ts) for ts in self._terms.values())

    def transit_permits(
        self, ad_id: ADId, flow: FlowSpec, prev: ADId, nxt: ADId
    ) -> bool:
        """Whether ``ad_id`` permits carrying ``flow`` from ``prev`` to ``nxt``.

        An AD with no terms refuses all transit (the stub default).
        """
        return self.permitting_term(ad_id, flow, prev, nxt) is not None

    def permitting_term(
        self, ad_id: ADId, flow: FlowSpec, prev: ADId, nxt: ADId
    ) -> Optional[PolicyTerm]:
        """The first term of ``ad_id`` permitting the traversal, if any.

        "First" is in term-id order, which makes citation deterministic.
        """
        for term in self._terms.get(ad_id, ()):
            if term.permits(flow, prev, nxt):
                return term
        return None

    def size_bytes(self) -> int:
        """Total advertised policy volume (for state-size experiments)."""
        return sum(t.size_bytes() for t in self.all_terms())

    def copy(self) -> "PolicyDatabase":
        """Independent copy (same version counter value)."""
        out = PolicyDatabase()
        out._terms = {owner: list(terms) for owner, terms in self._terms.items()}
        out.version = self.version
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PolicyDatabase(owners={len(self._terms)}, "
            f"terms={self.num_terms}, v{self.version})"
        )
