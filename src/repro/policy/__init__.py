"""Policy substrate: Policy Terms, flows, legality, and policy scenarios.

Section 2.3 of the paper defines the policy model this package implements:

* *Transit policies* — constraints a carrier AD places on who may use its
  resources, expressed as **Policy Terms** (PTs, after Clark RFC 1102):
  source/destination AD sets, previous/next AD constraints, QOS classes,
  User Class Identifiers, a time-of-day window, and a cost.
* *Route selection criteria* — the packet source's own preferences over
  routes (ADs to avoid, QOS to optimise, hop budget).

A path is **legal** for a flow iff every transit AD on it advertises at
least one PT matching the flow and the path's local (previous, next) hops
-- see :func:`~repro.policy.legality.is_legal_path`.
"""

from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.generators import (
    PolicyScenario,
    hierarchical_policies,
    open_policies,
    restricted_policies,
    source_class_policies,
)
from repro.policy.legality import is_legal_path, path_cost
from repro.policy.qos import QOS
from repro.policy.selection import RouteSelectionPolicy
from repro.policy.sets import ADSet, TimeWindow
from repro.policy.terms import PolicyTerm
from repro.policy.uci import UCI

__all__ = [
    "ADSet",
    "FlowSpec",
    "PolicyDatabase",
    "PolicyScenario",
    "PolicyTerm",
    "QOS",
    "RouteSelectionPolicy",
    "TimeWindow",
    "UCI",
    "hierarchical_policies",
    "is_legal_path",
    "open_policies",
    "path_cost",
    "restricted_policies",
    "source_class_policies",
]
