"""Path legality: the central predicate of policy routing.

The paper defines a *legal* route as "a route that is permitted by the
policies of all transit ADs involved" (Section 5.1).  This module checks
that predicate directly against the topology and the policy database.

Endpoints need no transit permission for their own traffic: the source
originates and the destination consumes; only intermediate ADs are
transits.  Transit permission is checked per traversal with the local
(previous, next) hops, matching the PT path-constraint model.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec


def links_exist(graph: InterADGraph, path: Sequence[ADId]) -> bool:
    """Whether every consecutive pair on the path is a live link."""
    for a, b in zip(path, path[1:]):
        if not graph.has_link(a, b) or not graph.link(a, b).up:
            return False
    return True


def is_loop_free(path: Sequence[ADId]) -> bool:
    """Whether the path visits each AD at most once."""
    return len(set(path)) == len(path)


def is_legal_path(
    graph: InterADGraph,
    policies: PolicyDatabase,
    path: Sequence[ADId],
    flow: FlowSpec,
) -> bool:
    """Full legality check for a candidate AD path.

    The path must: start at ``flow.src`` and end at ``flow.dst``; be
    loop-free; use only live links; and every intermediate AD must have a
    Policy Term permitting the flow with the path's local previous/next
    hops.

    A single-AD path (src == dst) is legal by definition.
    """
    if not path or path[0] != flow.src or path[-1] != flow.dst:
        return False
    if len(path) == 1:
        return flow.src == flow.dst
    if not is_loop_free(path):
        return False
    if not links_exist(graph, path):
        return False
    permits = policies.transit_permits
    for i in range(1, len(path) - 1):
        # Each traversal decision is memoized in the database keyed by
        # (owner, flow key, prev, next) and the policy version, so
        # re-checking a route that synthesis just produced is cache hits.
        if not permits(path[i], flow, path[i - 1], path[i + 1]):
            return False
    return True


def first_violation(
    graph: InterADGraph,
    policies: PolicyDatabase,
    path: Sequence[ADId],
    flow: FlowSpec,
) -> Optional[str]:
    """Human-readable reason the path is illegal, or ``None`` if legal.

    Used by ORWG policy gateways to report why a setup was rejected, and
    by tests to pinpoint failures.
    """
    if not path:
        return "empty path"
    if path[0] != flow.src:
        return f"path starts at AD {path[0]}, flow source is AD {flow.src}"
    if path[-1] != flow.dst:
        return f"path ends at AD {path[-1]}, flow destination is AD {flow.dst}"
    if not is_loop_free(path):
        return "path contains a loop"
    for a, b in zip(path, path[1:]):
        if not graph.has_link(a, b):
            return f"no link between AD {a} and AD {b}"
        if not graph.link(a, b).up:
            return f"link {a}-{b} is down"
    for i in range(1, len(path) - 1):
        ad, prev, nxt = path[i], path[i - 1], path[i + 1]
        if not policies.transit_permits(ad, flow, prev, nxt):
            return f"AD {ad} has no policy term permitting {flow} ({prev}->{nxt})"
    return None


def path_cost(
    graph: InterADGraph, path: Sequence[ADId], metric: str = "delay"
) -> float:
    """Sum of the given link metric along the path.

    A one-AD path costs zero.  Raises ``KeyError`` if a link is missing.
    """
    total = 0.0
    for a, b in zip(path, path[1:]):
        if not graph.has_link(a, b):
            raise KeyError(f"no link between AD {a} and AD {b}")
        total += graph.link(a, b).metric(metric)
    return total


def path_metric(graph: InterADGraph, path: Sequence[ADId], qos) -> float:
    """Path value under a QOS class's own composition rule.

    Additive classes (delay, cost): the sum over links.  Bottleneck
    classes (bandwidth): the minimum over links -- a path is as fast as
    its narrowest link; a trivial one-AD path has infinite bandwidth.
    """
    if not qos.is_bottleneck:
        return path_cost(graph, path, qos.metric)
    if len(path) < 2:
        return float("inf")
    width = float("inf")
    for a, b in zip(path, path[1:]):
        if not graph.has_link(a, b):
            raise KeyError(f"no link between AD {a} and AD {b}")
        width = min(width, graph.link(a, b).metric(qos.metric))
    return width
