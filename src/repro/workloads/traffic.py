"""Traffic matrix and request-sequence generators.

The paper contains no traffic traces; its data-plane arguments are about
*locality* (route setup amortises when flows are reused -- Section 5.4.1's
long-lived policy routes) and *popularity* (precomputing "commonly used
routes" -- Section 6).  These generators expose both axes:

* :func:`uniform_traffic` / :func:`gravity_traffic` — weighted flow
  populations over edge ADs;
* :func:`request_sequence` — a Zipf-popularity stream of route requests
  drawn from a flow population, the workload for the setup-cache (E6)
  and synthesis-strategy (E10) experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.policy.uci import UCI


@dataclass(frozen=True)
class TrafficMatrix:
    """A weighted population of flows."""

    entries: Tuple[Tuple[FlowSpec, float], ...]

    def __post_init__(self) -> None:
        for _flow, weight in self.entries:
            if weight <= 0:
                raise ValueError(f"non-positive weight {weight}")

    @property
    def flows(self) -> List[FlowSpec]:
        return [f for f, _ in self.entries]

    @property
    def total_weight(self) -> float:
        return sum(w for _, w in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def _edge_ads(graph: InterADGraph) -> List[ADId]:
    """ADs where traffic originates/terminates (leaf level)."""
    leaves = [a.ad_id for a in graph.ads() if a.level.rank == 0]
    return leaves if len(leaves) >= 2 else graph.ad_ids()


def uniform_traffic(
    graph: InterADGraph,
    n_flows: int,
    seed: int = 0,
    qos_choices: Sequence[QOS] = (QOS.DEFAULT,),
    uci_choices: Sequence[UCI] = (UCI.DEFAULT,),
    fixed_hour: int = None,
) -> TrafficMatrix:
    """Uniformly random edge-to-edge flows with unit weights.

    ``fixed_hour`` pins every flow to one hour of day; by default each
    flow gets a random hour (time-of-day policies then fragment the flow
    population, which is realistic but makes cross-strategy comparisons
    of identical flow universes harder).
    """
    rng = random.Random(seed)
    pool = _edge_ads(graph)
    entries = []
    for _ in range(n_flows):
        src, dst = rng.sample(pool, 2)
        flow = FlowSpec(
            src,
            dst,
            qos=rng.choice(list(qos_choices)),
            uci=rng.choice(list(uci_choices)),
            hour=rng.randrange(24) if fixed_hour is None else fixed_hour,
        )
        entries.append((flow, 1.0))
    return TrafficMatrix(tuple(entries))


def gravity_traffic(
    graph: InterADGraph,
    n_flows: int,
    seed: int = 0,
) -> TrafficMatrix:
    """Gravity-model flows: endpoint choice and weight scale with degree.

    Better-connected ADs attract proportionally more traffic, which
    concentrates load on popular routes (the amortisation-friendly case).
    """
    rng = random.Random(seed)
    pool = _edge_ads(graph)
    masses = [max(1, graph.degree(a)) for a in pool]
    entries = []
    for _ in range(n_flows):
        src = rng.choices(pool, weights=masses, k=1)[0]
        dst = src
        while dst == src:
            dst = rng.choices(pool, weights=masses, k=1)[0]
        weight = float(
            max(1, graph.degree(src)) * max(1, graph.degree(dst))
        )
        entries.append((FlowSpec(src, dst), weight))
    return TrafficMatrix(tuple(entries))


def request_sequence(
    matrix: TrafficMatrix,
    n_requests: int,
    zipf_s: float = 1.0,
    seed: int = 0,
) -> List[FlowSpec]:
    """A stream of route requests with Zipf-ranked flow popularity.

    Flows are ranked by their matrix weight (heaviest first) and then
    drawn with probability proportional to ``1 / rank**zipf_s``; ``s=0``
    is uniform, larger ``s`` concentrates requests on few flows (high
    locality, high cache hit rates).
    """
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    if zipf_s < 0:
        raise ValueError("zipf_s must be non-negative")
    ranked = [f for f, _ in sorted(matrix.entries, key=lambda e: -e[1])]
    if not ranked:
        return []
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(ranked))]
    return rng.choices(ranked, weights=weights, k=n_requests)
