"""Bundled experiment scenarios: topology + policies + flows.

Benchmarks and examples share these so that "the reference internet" is
one definition, not ten slightly different ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.adgraph.generator import TopologyConfig, generate_internet, scaled_config
from repro.adgraph.graph import InterADGraph
from repro.core.evaluation import sample_flows
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.generators import (
    PolicyScenario,
    hierarchical_policies,
    restricted_policies,
)


@dataclass(frozen=True, eq=False)
class Scenario:
    """A ready-to-run experiment setting."""

    name: str
    graph: InterADGraph
    policy_scenario: PolicyScenario
    flows: List[FlowSpec]

    @property
    def policies(self) -> PolicyDatabase:
        return self.policy_scenario.policies


def reference_scenario(
    seed: int = 0,
    num_flows: int = 60,
    restrictiveness: float = 0.3,
) -> Scenario:
    """The default mid-size internet (~60 ADs) with mixed policies.

    Shape: 3 backbones, 4 regionals each, 4 campuses per regional, the
    default lateral/bypass/multi-homing densities of Figure 1, and
    hierarchical policies with moderate random restrictions.
    """
    config = TopologyConfig(
        num_backbones=3,
        regionals_per_backbone=4,
        campuses_per_parent=4,
        seed=seed,
    )
    graph = generate_internet(config)
    policy = restricted_policies(graph, restrictiveness, seed=seed)
    flows = sample_flows(graph, num_flows, seed=seed + 1)
    return Scenario(
        name=f"reference(seed={seed})",
        graph=graph,
        policy_scenario=policy,
        flows=flows,
    )


def small_scenario(seed: int = 0, num_flows: int = 30) -> Scenario:
    """A ~25-AD internet for fast tests and examples."""
    graph = generate_internet(TopologyConfig(seed=seed))
    policy = hierarchical_policies(graph)
    flows = sample_flows(graph, num_flows, seed=seed + 1)
    return Scenario(
        name=f"small(seed={seed})",
        graph=graph,
        policy_scenario=policy,
        flows=flows,
    )


def ring_scenario(num_ads: int = 8, seed: int = 0, num_flows: int = 16) -> Scenario:
    """A lateral ring of ``num_ads`` transit ADs -- the chaos-smoke shape.

    Every AD has exactly two neighbours and every pair keeps an alternate
    path, so one rolling restart plus one partition window exercises both
    chaos mechanisms in seconds without disconnecting the control plane.
    """
    from repro.adgraph.ad import AD, ADKind, InterADLink, Level, LinkKind

    graph = InterADGraph()
    for i in range(num_ads):
        graph.add_ad(AD(i, f"ring{i}", Level.REGIONAL, ADKind.TRANSIT))
    for i in range(num_ads):
        graph.add_link(
            InterADLink(
                i,
                (i + 1) % num_ads,
                LinkKind.LATERAL,
                {"delay": 1.0, "cost": 1.0},
            )
        )
    policy = hierarchical_policies(graph)
    flows = sample_flows(graph, num_flows, seed=seed + 1)
    return Scenario(
        name=f"ring({num_ads}, seed={seed})",
        graph=graph,
        policy_scenario=policy,
        flows=flows,
    )


def scaled_scenario(
    target_ads: int,
    seed: int = 0,
    num_flows: int = 40,
    restrictiveness: float = 0.2,
) -> Scenario:
    """A shape-preserving internet of roughly ``target_ads`` ADs (E7)."""
    graph = generate_internet(scaled_config(target_ads, seed=seed))
    policy = restricted_policies(graph, restrictiveness, seed=seed)
    flows = sample_flows(graph, num_flows, seed=seed + 1)
    return Scenario(
        name=f"scaled({target_ads}, seed={seed})",
        graph=graph,
        policy_scenario=policy,
        flows=flows,
    )
