"""Workload generators: traffic matrices and bundled scenarios."""

from repro.workloads.scenarios import (
    Scenario,
    reference_scenario,
    ring_scenario,
    scaled_scenario,
    small_scenario,
)
from repro.workloads.traffic import (
    TrafficMatrix,
    gravity_traffic,
    request_sequence,
    uniform_traffic,
)

__all__ = [
    "Scenario",
    "TrafficMatrix",
    "gravity_traffic",
    "reference_scenario",
    "request_sequence",
    "ring_scenario",
    "scaled_scenario",
    "small_scenario",
    "uniform_traffic",
]
