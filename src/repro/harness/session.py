"""The experiment session: cells in, telemetry records out.

:class:`ExperimentSession` executes an
:class:`~repro.harness.spec.ExperimentSpec`'s cell grid and returns one
:class:`~repro.harness.record.RunRecord` per cell.  Because cells are
self-contained recipes (each worker rebuilds its scenario, protocol and
failure plan from seeds), independent cells can fan out across a
``multiprocessing`` pool; records are merged deterministically by cell
key, so the merged result -- and any table rendered from it -- is
byte-identical whether the sweep ran serial or parallel.

Per-cell measurement protocol (the one loop every bench used to
hand-roll):

1. build the scenario, instantiate the protocol via the registry;
2. attach profiling hooks (and, opt-in, the tracer);
3. run to initial convergence; then one isolated episode per failure
   event;
4. optionally evaluate route quality against ground truth;
5. snapshot histograms, counters, RIB state, timings into a RunRecord.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Sequence

from repro.core.evaluation import evaluate_availability
from repro.faults.channel import ImpairedChannel
from repro.faults.prober import RoutePulse
from repro.harness.record import (
    SCHEMA_VERSION,
    EpisodeRecord,
    RunRecord,
    write_jsonl,
)
from repro.harness.spec import Cell, ExperimentSpec
from repro.protocols.base import ForwardingMode
from repro.simul.ingress import IngressConfig
from repro.simul.profiling import PhaseProfiler
from repro.simul.runner import ConvergenceResult, converge
from repro.simul.trace import Tracer
from repro.traffic.fib import compile_fib
from repro.traffic.replay import TailSeries, TrafficReplay

#: Most trace lines kept per run (timeline tails beyond this are elided).
TRACE_LINE_LIMIT = 500


def _misbehavior_block(cell, protocol, pulse, scenario, reference_routes, lie_start):
    """The RunRecord ``misbehavior`` mapping: blast radius + containment."""
    suspects = protocol.poison_suspects()
    liar = None
    for entry in protocol.misbehavior_log:
        if entry["lie"] is not None:
            liar = entry["ad"]
            break
    applied = any(
        e["applied"] for e in protocol.misbehavior_log if e["lie"] is not None
    )
    series = pulse.blast_series(lie_start)
    blasts = [b for _, b in series]
    peak = max(blasts, default=0)
    steady = blasts[-1] if blasts else 0
    # Containment latency: time from the lie's start until the blast
    # radius reaches zero *and stays there*; None if it never does.
    containment = None
    if blasts:
        trailing_zeros = 0
        for _, blast in reversed(series):
            if blast > 0:
                break
            trailing_zeros += 1
        if peak == 0:
            containment = 0.0
        elif trailing_zeros:
            containment = series[len(series) - trailing_zeros][0] - lie_start
    # Poisoned ADs: sources left holding a route through a suspect their
    # pre-lie route (the protocol's own converged answer) did not use.
    poisoned = set()
    for flow in scenario.flows:
        path = protocol.find_route(flow)
        if path is None:
            continue
        reference = reference_routes.get(flow)
        tainted = set(reference[1:-1]) if reference else set()
        if any(h in suspects and h not in tainted for h in path[1:-1]):
            poisoned.add(flow.src)
    return {
        "liar": liar,
        "lie": cell.misbehavior.lie,
        "applied": applied,
        "suspects": sorted(suspects),
        "ads_poisoned": len(poisoned),
        "peak_blast": peak,
        "steady_blast": steady,
        "containment_latency": containment,
        "blast_series": [[t, b] for t, b in series],
        "validation": str(protocol.validation),
        "counters": protocol.validation_summary(),
    }


def _parse_trace(trace: Optional[str]) -> Optional[Dict[str, Optional[int]]]:
    """Parse a ``--trace`` flag: ``"all"`` or ``"ad=<id>"``."""
    if trace is None:
        return None
    if trace == "all":
        return {"ad": None}
    if trace.startswith("ad="):
        try:
            return {"ad": int(trace[3:])}
        except ValueError:
            pass
    raise ValueError(f"bad trace filter {trace!r} (expected 'all' or 'ad=<id>')")


def execute_cell(cell: Cell) -> RunRecord:
    """Run one cell end to end and measure it (worker entry point)."""
    if cell.fault.versioned:
        # Versioned cells (mixed-version upgrade waves) take the E16
        # driver on EITHER substrate, like chaotic cells below.
        from repro.harness.chaos import execute_version_cell

        return execute_version_cell(cell)
    if cell.fault.chaotic:
        # Chaotic cells (rolling restarts / partitions) take the
        # episodic chaos driver on EITHER substrate; the legacy paths
        # below stay byte-identical for everything else.
        from repro.harness.chaos import execute_chaos_cell

        return execute_chaos_cell(cell)
    if cell.substrate == "live":
        return _execute_live_cell(cell)
    if cell.substrate != "sim":
        raise ValueError(
            f"unknown substrate {cell.substrate!r}; use 'sim' or 'live'"
        )
    trace_filter = _parse_trace(cell.trace)
    profiler = PhaseProfiler()
    with profiler.phase("scenario"):
        scenario = cell.scenario.build()
    with profiler.phase("build"):
        protocol = cell.protocol.instantiate(
            scenario.graph.copy(), scenario.policies.copy()
        )
        network = protocol.build()
    if cell.fault.impaired:
        # In force from t=0: initial convergence happens over the lossy
        # channel too, which is the regime hardening is measured against.
        network.set_channel(
            ImpairedChannel(default=cell.fault.impairment(), seed=cell.fault.seed)
        )
    network.set_profiler(profiler)
    tracer = Tracer.attach(network) if trace_filter is not None else None

    with profiler.phase("converge"):
        initial = converge(network, max_events=cell.max_events)
    episodes: List[EpisodeRecord] = [EpisodeRecord.from_result("initial", initial)]

    # Data-plane axis (E14): generate the workload once, snapshot a
    # compiled FIB now (the converged epoch) and at every probe round of
    # the fault timeline, replaying the full workload against each.
    tail = None
    snapshot_epoch = None
    fib_stats: Dict[str, object] = {}
    if cell.traffic.active:
        with profiler.phase("traffic.workload"):
            workload = cell.traffic.build(protocol.graph)
            replay = TrafficReplay(workload, protocol.graph)
            tail = TailSeries(workload)

        def snapshot_epoch(now: float, label: str = "epoch") -> None:
            with profiler.phase("traffic.fib"):
                fib = compile_fib(
                    protocol,
                    workload.classes,
                    enforce_policy=cell.traffic.enforce_policy,
                )
            with profiler.phase("traffic.replay"):
                tail.record(now, label, fib, replay)
            if not fib_stats:
                fib_stats.update(fib.stats.as_dict())

        snapshot_epoch(network.sim.now, "initial")

    ingress_start = network.sim.now
    if cell.fault.queued:
        # The bounded queue arms *after* initial convergence, so E13
        # measures the overload response to churn, not a cold start
        # through a saturated queue.
        network.set_ingress(
            IngressConfig(
                capacity=cell.fault.queue_capacity,
                service_time=cell.fault.queue_service,
                policy=cell.fault.queue_policy,
            )
        )

    plan = cell.failure.build(scenario.graph)
    if plan is not None:
        with profiler.phase("failures"):
            for ev in plan:
                before = network.metrics.snapshot(network.sim.now)
                network.set_link_status(ev.a, ev.b, ev.up)
                events = network.run(
                    max_events=cell.max_events, raise_on_limit=False
                )
                after = network.metrics.snapshot(network.sim.now)
                result = ConvergenceResult.from_delta(
                    before,
                    after,
                    events,
                    quiesced=not network.sim.hit_event_limit,
                )
                episodes.append(
                    EpisodeRecord.from_result(
                        "repair" if ev.up else "failure", result, link=(ev.a, ev.b)
                    )
                )
                if snapshot_epoch is not None:
                    snapshot_epoch(
                        network.sim.now, "repair" if ev.up else "failure"
                    )

    robustness = None
    misbehavior = None
    if cell.fault.active or cell.misbehavior.active:
        with profiler.phase("faults"):
            fault_plan = cell.fault.build_plan(protocol.graph)
            if len(fault_plan):
                protocol.schedule_fault_plan(fault_plan)
            reference_routes = None
            lie_start = network.sim.now + cell.misbehavior.start_time
            if cell.misbehavior.active:
                # Capture the converged pre-lie routes first: they are
                # the hijack verdict's per-flow reference.
                reference_routes = {
                    flow: protocol.find_route(flow) for flow in scenario.flows
                }
                mis_plan = cell.misbehavior.build_plan(scenario.graph)
                if len(mis_plan):
                    protocol.schedule_fault_plan(mis_plan)
            # Probe only flows the converged protocol can route at all:
            # flows with no legal route ever would read as permanent
            # blackholes and drown the churn signal.  Misbehavior cells
            # probe *everything* instead: a route leak's blast radius is
            # exactly the flows that gain a route they should not have,
            # which the routability filter would hide.
            if cell.misbehavior.active:
                probe_flows = list(scenario.flows)
            else:
                probe_flows = [
                    flow
                    for flow in scenario.flows
                    if protocol.find_route(flow) is not None
                ][: cell.fault.probe_flows]
            pulse = RoutePulse(
                protocol,
                probe_flows,
                interval=cell.fault.probe_interval,
                reference_routes=reference_routes,
                on_sample=snapshot_epoch,
            )
            before = network.metrics.snapshot(network.sim.now)
            horizons = []
            if cell.fault.active:
                horizons.append(cell.fault.horizon)
            if cell.misbehavior.active:
                horizons.append(cell.misbehavior.horizon)
            horizon = network.sim.now + max(horizons)
            probed_ok = pulse.run(horizon, max_events=cell.max_events)
            # Settle whatever the last fault left in flight.
            drained = network.run(
                max_events=cell.max_events, raise_on_limit=False
            )
            after = network.metrics.snapshot(network.sim.now)
            result = ConvergenceResult.from_delta(
                before,
                after,
                pulse.events_processed + drained,
                quiesced=probed_ok and not network.sim.hit_event_limit,
            )
            episodes.append(EpisodeRecord.from_result("timeline", result))
            robustness = pulse.summary()
            if snapshot_epoch is not None:
                # The settled post-storm state: the series' last word.
                snapshot_epoch(network.sim.now, "final")
            if cell.misbehavior.active:
                misbehavior = _misbehavior_block(
                    cell, protocol, pulse, scenario, reference_routes, lie_start
                )
    if misbehavior is None and protocol.validation.any_enabled:
        # Lie-free cell of a validating protocol: record the counters
        # anyway, so the false-quarantine-at-baseline claim is checkable.
        misbehavior = {
            "liar": None,
            "lie": "",
            "applied": False,
            "suspects": [],
            "ads_poisoned": 0,
            "peak_blast": 0,
            "steady_blast": 0,
            "containment_latency": None,
            "blast_series": [],
            "validation": str(protocol.validation),
            "counters": protocol.validation_summary(),
        }

    route_quality = None
    if cell.evaluate:
        with profiler.phase("evaluate"):
            report = evaluate_availability(
                protocol.graph,
                protocol.policies,
                scenario.flows,
                protocol.find_route,
            )
        route_quality = {
            "availability": report.availability,
            "n_flows": report.n_flows,
            "n_existing": report.n_existing,
            "n_found": report.n_found,
            "n_found_legal": report.n_found_legal,
            "n_illegal": report.n_illegal,
            "n_undecided": report.n_undecided,
            "mean_stretch": report.mean_stretch,
            "forwarding_loops": protocol.forwarding_loops,
            "source_control": protocol.mode is ForwardingMode.SOURCE,
        }

    dataplane = None
    if tail is not None:
        dataplane = {
            "workload": {
                "flows": len(workload),
                "classes": workload.num_classes,
                "zipf_s": cell.traffic.zipf_s,
                "pairs": cell.traffic.pairs,
                "seed": cell.traffic.seed,
                "head_share": workload.head_share(),
                "total_bytes": workload.total_bytes,
            },
            "fib": fib_stats,
            "series": tail.as_dict(),
        }

    overload = None
    if network.ingress is not None or protocol.pacing.any_enabled:
        overload = {"pacing": str(protocol.pacing)}
        overload.update(protocol.pacing_summary())
        if network.ingress is not None:
            elapsed = max(network.sim.now - ingress_start, 0.0)
            overload.update(
                network.ingress.counters(elapsed, scenario.graph.num_ads)
            )

    snapshot = network.metrics.snapshot(network.sim.now)
    by_kind: Dict[str, int] = {}
    by_ad: Dict[str, int] = {}
    for (ad_id, kind), count in sorted(snapshot.computations.items()):
        by_kind[kind] = by_kind.get(kind, 0) + count
        by_ad[f"{ad_id}:{kind}"] = count

    trace_lines = None
    if tracer is not None:
        records = tracer.filtered(ad=trace_filter["ad"])
        trace_lines = tuple(r.render() for r in records[-TRACE_LINE_LIMIT:])

    return RunRecord(
        schema_version=SCHEMA_VERSION,
        experiment=cell.experiment,
        cell=cell.key(),
        scenario={
            "name": scenario.name,
            "num_ads": scenario.graph.num_ads,
            "num_links": scenario.graph.num_links,
            "num_terms": scenario.policies.num_terms,
            "num_flows": len(scenario.flows),
        },
        episodes=tuple(episodes),
        messages=dict(snapshot.messages),
        message_bytes=dict(snapshot.bytes),
        dropped=snapshot.dropped,
        computations=by_kind,
        computations_by_ad=by_ad,
        state={
            "max_rib": protocol.max_rib_size(),
            "total_rib": protocol.total_rib_size(),
        },
        route_quality=route_quality,
        channel=network.channel.counters() if network.channel else None,
        robustness=robustness,
        misbehavior=misbehavior,
        overload=overload,
        dataplane=dataplane,
        timings=profiler.as_dict(),
        trace=trace_lines,
    )


def _execute_live_cell(cell: Cell) -> RunRecord:
    """Run one cell on the live asyncio/UDP substrate.

    Live cells cover the scenario x protocol x failure axes (plus the
    availability evaluation); the sim-only axes -- channel impairments,
    bounded-ingress models, misbehavior timelines, tracing -- are
    rejected loudly rather than silently skipped.  Episode times are
    honest wall-clock (in protocol units), so live records vary run to
    run the way ``timings`` do; never feed them to a determinism gate.
    """
    from repro.faults.plan import FaultPlan
    from repro.live.runner import run_live

    unsupported = []
    if cell.fault.active:
        unsupported.append("fault (impairment/churn/queue)")
    if cell.misbehavior.active:
        unsupported.append("misbehavior")
    if cell.traffic.active:
        unsupported.append("traffic (compiled-FIB replay)")
    if cell.trace:
        unsupported.append("trace")
    if unsupported:
        raise ValueError(
            f"live cells do not support the {', '.join(unsupported)} axis; "
            "run these cells on the sim substrate (or give the cell a "
            "chaos program -- chaotic cells run faults and traffic live)"
        )

    profiler = PhaseProfiler()
    with profiler.phase("scenario"):
        scenario = cell.scenario.build()
    with profiler.phase("build"):
        protocol = cell.protocol.instantiate(
            scenario.graph.copy(), scenario.policies.copy()
        )
        protocol.substrate = "live"
    failure_plan = cell.failure.build(scenario.graph)
    plan = (
        FaultPlan.from_failure_plan(failure_plan)
        if failure_plan is not None
        else None
    )
    with profiler.phase("converge"):
        result = run_live(protocol, plan)
    network = protocol.network
    network.set_profiler(profiler)

    episodes: List[EpisodeRecord] = [
        EpisodeRecord.from_result("initial", result.initial)
    ]
    for episode, ev in zip(result.episodes, plan or ()):
        episodes.append(
            EpisodeRecord.from_result(
                "repair" if ev.up else "failure",
                episode.result,
                link=(ev.a, ev.b),
            )
        )

    route_quality = None
    if cell.evaluate:
        with profiler.phase("evaluate"):
            report = evaluate_availability(
                protocol.graph,
                protocol.policies,
                scenario.flows,
                protocol.find_route,
            )
        route_quality = {
            "availability": report.availability,
            "n_flows": report.n_flows,
            "n_existing": report.n_existing,
            "n_found": report.n_found,
            "n_found_legal": report.n_found_legal,
            "n_illegal": report.n_illegal,
            "n_undecided": report.n_undecided,
            "mean_stretch": report.mean_stretch,
            "forwarding_loops": protocol.forwarding_loops,
            "source_control": protocol.mode is ForwardingMode.SOURCE,
        }

    snapshot = network.metrics.snapshot(network.clock.now)
    by_kind: Dict[str, int] = {}
    by_ad: Dict[str, int] = {}
    for (ad_id, kind), count in sorted(snapshot.computations.items()):
        by_kind[kind] = by_kind.get(kind, 0) + count
        by_ad[f"{ad_id}:{kind}"] = count

    timings = profiler.as_dict()
    timings["live.wall"] = result.wall_seconds

    return RunRecord(
        schema_version=SCHEMA_VERSION,
        experiment=cell.experiment,
        cell=cell.key(),
        scenario={
            "name": scenario.name,
            "num_ads": scenario.graph.num_ads,
            "num_links": scenario.graph.num_links,
            "num_terms": scenario.policies.num_terms,
            "num_flows": len(scenario.flows),
        },
        episodes=tuple(episodes),
        messages=dict(snapshot.messages),
        message_bytes=dict(snapshot.bytes),
        dropped=snapshot.dropped,
        computations=by_kind,
        computations_by_ad=by_ad,
        state={
            "max_rib": protocol.max_rib_size(),
            "total_rib": protocol.total_rib_size(),
        },
        route_quality=route_quality,
        timings=timings,
        substrate="live",
    )


class ExperimentSession:
    """Executes an experiment spec, serially or fanned out over workers.

    Args:
        spec: The declarative experiment.
        out_dir: Where to persist ``<experiment>.jsonl`` (created on
            demand); ``None`` skips persistence.
    """

    def __init__(self, spec: ExperimentSpec, out_dir: Optional[str] = None) -> None:
        self.spec = spec
        self.out_dir = out_dir

    @property
    def jsonl_path(self) -> Optional[str]:
        if self.out_dir is None:
            return None
        return os.path.join(self.out_dir, f"{self.spec.name}.jsonl")

    def run(self, jobs: int = 1) -> List[RunRecord]:
        """Execute every cell and return records in deterministic order.

        ``jobs > 1`` fans independent cells out over a process pool.
        The merge sorts by cell key, so the returned list (and the
        persisted JSONL) is identical to a serial run -- only the
        wall-clock ``timings`` fields differ.
        """
        cells = self.spec.cells()
        if jobs <= 1 or len(cells) <= 1:
            records = [execute_cell(cell) for cell in cells]
        else:
            with multiprocessing.Pool(processes=min(jobs, len(cells))) as pool:
                records = pool.map(execute_cell, cells, chunksize=1)
        records.sort(key=lambda r: r.sort_key())
        if self.out_dir is not None:
            os.makedirs(self.out_dir, exist_ok=True)
            write_jsonl(self.jsonl_path, records)
        return records


def run_spec(
    spec: ExperimentSpec, jobs: int = 1, out_dir: Optional[str] = None
) -> Sequence[RunRecord]:
    """One-shot convenience: session + run."""
    return ExperimentSession(spec, out_dir=out_dir).run(jobs=jobs)
