"""One experiment harness: declarative specs in, telemetry records out.

The harness is the single way experiments run in this repo:

* :mod:`repro.harness.spec` -- declarative experiment specifications
  (scenario × protocol × seed × failure-plan grids);
* :mod:`repro.harness.record` -- schema-versioned :class:`RunRecord`
  telemetry, persisted as JSON lines;
* :mod:`repro.harness.session` -- the executor (serial or
  multiprocessing fan-out with a deterministic merge);
* :mod:`repro.harness.experiments` -- the named experiments (E1, E3,
  E4, E7, E11, E12) the benches and the ``python -m repro experiments``
  CLI share.
"""

from repro.harness.experiments import EXPERIMENTS, Experiment, run_experiment
from repro.harness.record import (
    SCHEMA_VERSION,
    EpisodeRecord,
    RunRecord,
    read_jsonl,
    write_jsonl,
)
from repro.harness.session import ExperimentSession, execute_cell, run_spec
from repro.harness.spec import (
    Cell,
    ExperimentSpec,
    FailureSpec,
    FaultSpec,
    MisbehaviorSpec,
    ProtocolSpec,
    ScenarioSpec,
    TrafficSpec,
)

__all__ = [
    "Cell",
    "EXPERIMENTS",
    "EpisodeRecord",
    "Experiment",
    "ExperimentSession",
    "ExperimentSpec",
    "FailureSpec",
    "FaultSpec",
    "MisbehaviorSpec",
    "ProtocolSpec",
    "RunRecord",
    "SCHEMA_VERSION",
    "ScenarioSpec",
    "TrafficSpec",
    "execute_cell",
    "read_jsonl",
    "run_experiment",
    "run_spec",
    "write_jsonl",
]
