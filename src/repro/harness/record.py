"""Schema-versioned run telemetry records.

A :class:`RunRecord` is the unit of experiment output: one protocol, on
one scenario, with one failure plan, measured end to end.  It carries
everything the benches used to reduce to a single table row -- per-type
message/byte histograms, per-AD computation counters, every convergence
episode (with the :attr:`~EpisodeRecord.quiesced` verdict), route-quality
summaries, and wall-clock phase timings from the profiling hooks -- so a
sweep's raw data survives next to its rendered table.

Records serialize to JSON lines (``benchmarks/out/runs/<experiment>.jsonl``).
``schema_version`` is bumped whenever a field changes meaning, so
downstream analysis can refuse data it does not understand.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

#: Bump on any incompatible change to RunRecord's shape.
#: v2: added ``channel`` (impairment counters) and ``robustness``
#: (RoutePulse summary) optional fields, plus ``fault`` in the cell key
#: and ``"timeline"`` as an episode kind.
#: v3: added the optional ``misbehavior`` block (liar identity, blast
#: radius, containment latency, validation counters) and ``misbehavior``
#: in the cell key; v2 lines load with both defaulted.
#: v4: added the optional ``overload`` block (bounded-ingress queue
#: counters and pacing/damping totals); v3 lines load with it defaulted.
#: v5: added ``substrate`` (``"sim"`` or ``"live"``) as a top-level
#: field and a cell-key entry; v4 lines load with both defaulted to
#: ``"sim"`` (every pre-v5 run was a simulator run).
#: v6: added the optional ``dataplane`` block (compiled-FIB epoch series:
#: per-epoch reachability gap / latency / stretch tails, across-epoch
#: flow outage percentiles, FIB state sizes) and ``traffic`` in the cell
#: key; v5 lines load with the block ``None`` and the axis ``"none"``.
#: v7: added the optional ``chaos`` block (E15 episodic chaos driver:
#: per-event-group settle cost, control-plane availability samples,
#: graceful-restart counters, supervisor events, post-chaos routes
#: digest); v6 lines load with it ``None``.
#: v8: added the optional ``versioning`` block (E16 mixed-version
#: rolling-upgrade sweep: per-wave labels and settle costs, negotiated
#: wire-version census after each wave, version-rejected counters, and
#: the digest-stability verdict against the pre-upgrade baseline); v7
#: lines load with it ``None``.
SCHEMA_VERSION = 8


@dataclass(frozen=True)
class EpisodeRecord:
    """One convergence episode: initial convergence or one status change.

    Attributes:
        kind: ``"initial"``, ``"failure"``, ``"repair"``, or
            ``"timeline"`` (the whole probed fault-plan window of a
            robustness cell, measured as one delta).
        link: The link whose status changed (None for initial).
        messages / bytes / time / events: Episode cost (see
            :class:`~repro.simul.runner.ConvergenceResult`).
        quiesced: Whether the event queue drained within budget.
    """

    kind: str
    messages: int
    bytes: int
    time: float
    events: int
    quiesced: bool
    link: Optional[Tuple[int, int]] = None

    @classmethod
    def from_result(
        cls, kind: str, result: Any, link: Optional[Tuple[int, int]] = None
    ) -> "EpisodeRecord":
        """Build from a :class:`~repro.simul.runner.ConvergenceResult`."""
        return cls(
            kind=kind,
            messages=result.messages,
            bytes=result.bytes,
            time=result.time,
            events=result.events,
            quiesced=result.quiesced,
            link=link,
        )


@dataclass(frozen=True)
class RunRecord:
    """Full telemetry of one (scenario, protocol, failure-plan) run.

    Attributes:
        schema_version: :data:`SCHEMA_VERSION` at write time.
        experiment: Experiment name the run belongs to.
        cell: The declarative cell key -- scenario/protocol/failure
            parameters plus the cell's position in the spec's expansion
            order (``index``).  Sorting records by this key reproduces
            the serial execution order regardless of worker scheduling.
        scenario: Measured scenario facts (ADs, links, policy terms,
            flows sampled).
        episodes: Initial convergence first, then one entry per failure
            event, in plan order.
        messages / message_bytes: Final per-message-type histograms.
        dropped: Messages lost to dead links.
        computations: Per-kind computation totals across all ADs.
        computations_by_ad: ``"<ad>:<kind>"`` -> count (JSON object keys
            must be strings).
        state: RIB occupancy summary (``max_rib``, ``total_rib``).
        route_quality: Availability evaluation summary, when the spec
            asked for one (``availability``, ``n_illegal``, ...).
        channel: Impairment-channel counters (transmissions, dropped,
            burst_dropped, duplicated), when a channel was attached.
        robustness: RoutePulse summary (sample counts, availability,
            outage/time-to-repair stats), when the cell had a fault axis.
        misbehavior: Misbehaving-AD block (liar, lie, whether the lie was
            expressible, blast-radius series stats, containment latency,
            validation counters), when the cell had a misbehavior axis.
        overload: Control-plane overload block (ingress-queue peak depth,
            drops, deferred deliveries, service duty cycle, plus pacing
            deferrals and damping suppression totals), when the cell had
            a bounded ingress queue or any pacing feature enabled.
        dataplane: Compiled-FIB replay block (E14), when the cell had a
            traffic axis: workload shape, per-epoch replay series (time,
            reachability gap, latency/stretch percentiles, FIB bytes),
            across-epoch flow outage percentiles, and FIB compile stats.
        chaos: Episodic chaos block (E15), when the cell had a chaotic
            fault axis: per-event-group labels and settle costs,
            control-plane availability during and after each disruption,
            graceful-restart counters, live supervisor activity, and the
            post-chaos routes digest (the sim-vs-live fidelity anchor).
        versioning: Mixed-version upgrade block (E16), when the cell had
            an ``upgrade_waves`` fault axis: per-wave upgrade epochs with
            negotiated-version census, version-rejected counters, the
            mixed-population measurement leg, optional rollback leg, and
            whether the post-upgrade routes digest matched the all-v1
            baseline (``digest_stable``).
        timings: Wall-clock phase seconds (``build``, ``converge``,
            ``engine.run``, ``failures``, ``evaluate``).  Never compare
            these for determinism -- they are honest wall-clock.
        trace: Rendered tracer timeline lines, when tracing was on.
        substrate: Which substrate executed the cell: ``"sim"`` (the
            discrete-event engine; deterministic and comparable) or
            ``"live"`` (asyncio/UDP; times are measured wall-clock in
            protocol units and vary run to run like ``timings``).
    """

    schema_version: int
    experiment: str
    cell: Mapping[str, Any]
    scenario: Mapping[str, Any]
    episodes: Tuple[EpisodeRecord, ...]
    messages: Mapping[str, int]
    message_bytes: Mapping[str, int]
    dropped: int
    computations: Mapping[str, int]
    computations_by_ad: Mapping[str, int]
    state: Mapping[str, int]
    route_quality: Optional[Mapping[str, Any]] = None
    channel: Optional[Mapping[str, int]] = None
    robustness: Optional[Mapping[str, Any]] = None
    misbehavior: Optional[Mapping[str, Any]] = None
    overload: Optional[Mapping[str, Any]] = None
    dataplane: Optional[Mapping[str, Any]] = None
    chaos: Optional[Mapping[str, Any]] = None
    versioning: Optional[Mapping[str, Any]] = None
    timings: Mapping[str, float] = field(default_factory=dict)
    trace: Optional[Tuple[str, ...]] = None
    substrate: str = "sim"

    @property
    def initial(self) -> EpisodeRecord:
        """The initial-convergence episode."""
        return self.episodes[0]

    @property
    def failure_episodes(self) -> Tuple[EpisodeRecord, ...]:
        """Episodes after the initial convergence, in plan order."""
        return self.episodes[1:]

    @property
    def quiesced(self) -> bool:
        """Whether every episode of the run quiesced."""
        return all(ep.quiesced for ep in self.episodes)

    def sort_key(self) -> Tuple:
        """Deterministic merge key: position in the spec's cell grid."""
        return (self.cell.get("index", 0),)

    # ------------------------------------------------------------- serde

    def to_json(self) -> str:
        """One JSON line (stable key order)."""
        payload = asdict(self)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        data = json.loads(line)
        version = data.get("schema_version")
        if version == 2:
            # v2 -> v3: the misbehavior axis did not exist; default it.
            data.setdefault("misbehavior", None)
            data.setdefault("cell", {}).setdefault("misbehavior", "none")
            version = 3
        if version == 3:
            # v3 -> v4: the overload block did not exist; default it.
            data.setdefault("overload", None)
            version = 4
        if version == 4:
            # v4 -> v5: every earlier run was a simulator run.
            data.setdefault("substrate", "sim")
            data.setdefault("cell", {}).setdefault("substrate", "sim")
            version = 5
        if version == 5:
            # v5 -> v6: the traffic axis did not exist; default it.
            data.setdefault("dataplane", None)
            data.setdefault("cell", {}).setdefault("traffic", "none")
            version = 6
        if version == 6:
            # v6 -> v7: the chaos block did not exist; default it.
            data.setdefault("chaos", None)
            version = 7
        if version == 7:
            # v7 -> v8: the versioning block did not exist; default it.
            data.setdefault("versioning", None)
            version = SCHEMA_VERSION
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"RunRecord schema {version!r} unsupported "
                f"(this build reads {SCHEMA_VERSION})"
            )
        episodes = tuple(
            EpisodeRecord(
                kind=ep["kind"],
                messages=ep["messages"],
                bytes=ep["bytes"],
                time=ep["time"],
                events=ep["events"],
                quiesced=ep["quiesced"],
                link=tuple(ep["link"]) if ep.get("link") else None,
            )
            for ep in data["episodes"]
        )
        trace = data.get("trace")
        return cls(
            schema_version=version,
            experiment=data["experiment"],
            cell=data["cell"],
            scenario=data["scenario"],
            episodes=episodes,
            messages=data["messages"],
            message_bytes=data["message_bytes"],
            dropped=data["dropped"],
            computations=data["computations"],
            computations_by_ad=data["computations_by_ad"],
            state=data["state"],
            route_quality=data.get("route_quality"),
            channel=data.get("channel"),
            robustness=data.get("robustness"),
            misbehavior=data.get("misbehavior"),
            overload=data.get("overload"),
            dataplane=data.get("dataplane"),
            chaos=data.get("chaos"),
            versioning=data.get("versioning"),
            timings=data.get("timings", {}),
            trace=tuple(trace) if trace is not None else None,
            substrate=data.get("substrate", "sim"),
        )

    def comparable(self) -> Dict[str, Any]:
        """The record minus wall-clock noise, for equivalence checks.

        Two runs of the same cell -- serial or parallel, any worker --
        must produce identical ``comparable()`` dicts; only the
        ``timings`` differ run to run.
        """
        payload = asdict(self)
        payload.pop("timings")
        return payload


def write_jsonl(path: str, records: Sequence[RunRecord]) -> None:
    """Persist records as JSON lines (one record per line)."""
    with open(path, "w") as fh:
        for record in records:
            fh.write(record.to_json() + "\n")


def read_jsonl(path: str) -> list:
    """Load records written by :func:`write_jsonl`."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(RunRecord.from_json(line))
    return out
