"""The episodic chaos driver: rolling restarts and partitions, measured.

Chaotic cells (``FaultSpec.restarts``/``partitions``) do not fit the
legacy measurement loops: a rolling restart is interesting *during* the
outage, not just after it, and E15 needs the same program executed on
both substrates so the sim's answer can be checked against real sockets.
This driver runs the chaos plan episodically on either substrate:

1. converge (the ``initial`` epoch seeds the data-plane baseline);
2. per event group (simultaneous events -- every cut link of a
   partition -- are ONE chaos event): compile the pre-event FIB, apply
   the group, immediately replay the workload through the *stale* FIB
   under post-event liveness (the disruption epoch: exactly what a
   converged-then-surprised data plane forwards into), sample
   control-plane availability, settle, then record the healed epoch;
3. on the live substrate only, finish with a supervised rolling restart
   of every serve task (the maintenance sweep; hitless by construction
   because the socket and the node's state survive);
4. settle, take the post-chaos routes digest -- the sim-vs-live
   fidelity anchor -- and assemble the record's ``chaos`` block.

Graceful restart is honoured wherever the plan crashes an AD: the
protocol's distributed :class:`~repro.protocols.graceful.GracefulRestartConfig`
decides whether neighbours hold the restarting AD's routes (links stay
up; the compiled FIB keeps forwarding -- a hitless restart) or tear
them down immediately (the disruptive legacy behaviour).

This module also hosts the E16 **version-skew** driver
(:func:`execute_version_cell`): the same episodic skeleton, but the
"events" are rolling wire-version upgrade waves.  Every AD starts at
the cell's configured wire version (normally v1 with negotiation on),
converges, and is then upgraded to the current version in
``FaultSpec.upgrade_waves`` contiguous waves -- on the live substrate
each flip also bounces the AD's serve task, modelling a binary
upgrade.  Routes are digested after every wave: a wire upgrade must be
invisible to routing, so every digest has to match the pre-upgrade
baseline (``digest_stable``).  ``FaultSpec.rollback`` adds a
downgrade/re-upgrade leg for the last wave (the aborted-deploy drill).
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import replace as dc_replace
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.channel import ImpairedChannel
from repro.faults.plan import (
    FaultEvent,
    ImpairmentChange,
    LinkFault,
    NodeFault,
)
from repro.harness.record import SCHEMA_VERSION, EpisodeRecord, RunRecord
from repro.harness.spec import Cell
from repro.policy.flows import FlowSpec
from repro.simul.profiling import PhaseProfiler
from repro.simul.runner import ConvergenceResult, converge
from repro.traffic.fib import compile_fib
from repro.traffic.replay import TailSeries, TrafficReplay

#: Wall seconds per protocol time unit for live chaos cells.
CHAOS_TIME_SCALE = 0.005
#: Live settle parameters (idle window and per-episode budget, wall s).
CHAOS_IDLE_WINDOW_S = 0.05
CHAOS_SETTLE_TIMEOUT_S = 60.0
#: Wall-clock pause between serve-task restarts of the closing sweep.
CHAOS_ROLLING_DWELL_S = 0.02

__all__ = ["execute_chaos_cell", "execute_version_cell", "routes_digest"]


def routes_digest(protocol) -> str:
    """Digest of every ordered-pair route the protocol would answer now.

    The fidelity anchor: two substrates that converged to the same
    control state produce the same digest.  Hashes the full
    ``find_route`` answer (path or None) for every ordered (src, dst)
    pair of the topology.
    """
    ads = sorted(protocol.graph.ad_ids())
    h = hashlib.sha256()
    for src in ads:
        for dst in ads:
            if src == dst:
                continue
            route = protocol.find_route(FlowSpec(src=src, dst=dst))
            h.update(
                f"{src}>{dst}:{route if route is None else tuple(route)};".encode()
            )
    return h.hexdigest()[:16]


def _group_events(plan) -> List[Tuple[float, List[FaultEvent]]]:
    """Events bucketed by identical fire time (one chaos event each)."""
    from repro.live.chaos import grouped_events

    return grouped_events(plan)


def _group_label(events: List[FaultEvent]) -> str:
    """Human label for one event group (partitions collapse to one)."""
    links_down = sum(
        1 for ev in events if isinstance(ev, LinkFault) and not ev.up
    )
    links_up = sum(1 for ev in events if isinstance(ev, LinkFault) and ev.up)
    if links_down > 1 and links_down == len(events):
        return f"partition ({links_down} links down)"
    if links_up > 1 and links_up == len(events):
        return f"heal ({links_up} links up)"
    parts = []
    for ev in events:
        if isinstance(ev, LinkFault):
            parts.append(f"link {ev.a}-{ev.b} {'up' if ev.up else 'down'}")
        elif isinstance(ev, NodeFault):
            parts.append(f"AD {ev.ad} {'restart' if ev.up else 'crash'}")
        elif isinstance(ev, ImpairmentChange):
            parts.append(f"loss {ev.spec.drop_prob:g}")
    return "; ".join(parts)


def _apply_sim_event(protocol, cell: Cell, ev: FaultEvent) -> None:
    """Apply one fault event to a sim-built protocol, now."""
    if isinstance(ev, LinkFault):
        protocol.apply_link_status(ev.a, ev.b, ev.up)
    elif isinstance(ev, NodeFault):
        if ev.up:
            protocol.restore_node(ev.ad)
        else:
            protocol.crash_node(ev.ad, retain_state=ev.retain_state)
    elif isinstance(ev, ImpairmentChange):
        network = protocol.network
        if ev.link is not None:
            network.set_impairment(ev.link, ev.spec)
        else:
            network.set_channel(
                ImpairedChannel(default=ev.spec, seed=cell.fault.seed)
            )
    else:  # pragma: no cover - plan DSL is closed
        raise TypeError(f"unknown fault event {ev!r}")


class _ChaosMeter:
    """Shared measurement state: traffic series + availability samples."""

    def __init__(self, cell: Cell, protocol, scenario) -> None:
        self.cell = cell
        self.protocol = protocol
        self.flows = scenario.flows
        self.tail: Optional[TailSeries] = None
        self.replay: Optional[TrafficReplay] = None
        self.workload = None
        self.fib_stats: Dict[str, Any] = {}
        if cell.traffic.active:
            self.workload = cell.traffic.build(protocol.graph)
            self.replay = TrafficReplay(self.workload, protocol.graph)
            self.tail = TailSeries(self.workload)
        self.baseline_routable = self.routable()
        self.groups: List[Dict[str, Any]] = []

    def routable(self) -> int:
        return sum(
            1 for f in self.flows if self.protocol.find_route(f) is not None
        )

    def compile(self):
        if self.tail is None:
            return None
        fib = compile_fib(
            self.protocol,
            self.workload.classes,
            enforce_policy=self.cell.traffic.enforce_policy,
        )
        if not self.fib_stats:
            self.fib_stats.update(fib.stats.as_dict())
        return fib

    def record_epoch(self, now: float, label: str, fib=None) -> None:
        if self.tail is None:
            return
        if fib is None:
            fib = self.compile()
        self.tail.record(now, label, fib, self.replay)

    def dataplane_block(self) -> Optional[Dict[str, Any]]:
        if self.tail is None:
            return None
        wl = self.workload
        return {
            "workload": {
                "flows": len(wl),
                "classes": wl.num_classes,
                "zipf_s": self.cell.traffic.zipf_s,
                "pairs": self.cell.traffic.pairs,
                "seed": self.cell.traffic.seed,
                "head_share": wl.head_share(),
                "total_bytes": wl.total_bytes,
            },
            "fib": self.fib_stats,
            "series": self.tail.as_dict(),
        }

    def chaos_block(
        self,
        plan,
        digest: str,
        *,
        serve_restarts: int = 0,
        supervisor: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        base = self.baseline_routable
        during = [g["routable_during"] for g in self.groups]
        availability = (
            sum(during) / (len(during) * base) if during and base else 1.0
        )
        return {
            "plan_events": len(plan),
            "groups": self.groups,
            "restarts": self.cell.fault.restarts,
            "partitions": self.cell.fault.partitions,
            "graceful": str(self.protocol.graceful),
            "graceful_summary": self.protocol.graceful_summary(),
            "baseline_routable": base,
            "availability": availability,
            "routes_digest": digest,
            "serve_restarts": serve_restarts,
            "supervisor": supervisor,
        }


def _finish_record(
    cell: Cell,
    scenario,
    protocol,
    network,
    episodes,
    meter: _ChaosMeter,
    chaos: Optional[Dict[str, Any]],
    profiler: PhaseProfiler,
    now: float,
    substrate: str,
    versioning: Optional[Dict[str, Any]] = None,
) -> RunRecord:
    snapshot = network.metrics.snapshot(now)
    by_kind: Dict[str, int] = {}
    by_ad: Dict[str, int] = {}
    for (ad_id, kind), count in sorted(snapshot.computations.items()):
        by_kind[kind] = by_kind.get(kind, 0) + count
        by_ad[f"{ad_id}:{kind}"] = count
    return RunRecord(
        schema_version=SCHEMA_VERSION,
        experiment=cell.experiment,
        cell=cell.key(),
        scenario={
            "name": scenario.name,
            "num_ads": scenario.graph.num_ads,
            "num_links": scenario.graph.num_links,
            "num_terms": scenario.policies.num_terms,
            "num_flows": len(scenario.flows),
        },
        episodes=tuple(episodes),
        messages=dict(snapshot.messages),
        message_bytes=dict(snapshot.bytes),
        dropped=snapshot.dropped,
        computations=by_kind,
        computations_by_ad=by_ad,
        state={
            "max_rib": protocol.max_rib_size(),
            "total_rib": protocol.total_rib_size(),
        },
        channel=network.channel.counters()
        if getattr(network, "channel", None)
        else None,
        dataplane=meter.dataplane_block(),
        chaos=chaos,
        versioning=versioning,
        timings=profiler.as_dict(),
        substrate=substrate,
    )


# ----------------------------------------------------------------- sim side


def _execute_chaos_sim(cell: Cell) -> RunRecord:
    profiler = PhaseProfiler()
    with profiler.phase("scenario"):
        scenario = cell.scenario.build()
    with profiler.phase("build"):
        protocol = cell.protocol.instantiate(
            scenario.graph.copy(), scenario.policies.copy()
        )
        network = protocol.build()
    if cell.fault.impaired:
        network.set_channel(
            ImpairedChannel(
                default=cell.fault.impairment(), seed=cell.fault.seed
            )
        )
    network.set_profiler(profiler)
    with profiler.phase("converge"):
        initial = converge(network, max_events=cell.max_events)
    episodes: List[EpisodeRecord] = [
        EpisodeRecord.from_result("initial", initial)
    ]
    meter = _ChaosMeter(cell, protocol, scenario)
    meter.record_epoch(network.sim.now, "initial")

    plan = cell.fault.build_chaos_plan(protocol.graph)
    groups = _group_events(plan)
    base = network.sim.now
    with profiler.phase("chaos"):
        for gi, (t, events) in enumerate(groups):
            # Advance to the group's instant.  Bounded runs are load-
            # bearing: a graceful crash arms a hold timer hold_time
            # ahead, and running to quiescence here would fast-forward
            # straight through it, expiring holds the plan's restart
            # (scheduled *sooner*) should have cancelled.
            network.run(
                until=base + t,
                max_events=cell.max_events,
                raise_on_limit=False,
            )
            fib_before = meter.compile()
            label = _group_label(events)
            for ev in events:
                _apply_sim_event(protocol, cell, ev)
            # The disruption epoch: the pre-event FIB replayed under
            # post-event liveness -- what stale forwarding state
            # actually delivers while the control plane reacts.
            meter.record_epoch(network.sim.now, label, fib=fib_before)
            routable_during = meter.routable()
            next_t = groups[gi + 1][0] if gi + 1 < len(groups) else None
            before = network.metrics.snapshot(network.sim.now)
            if next_t is not None:
                processed = network.run(
                    until=base + next_t,
                    max_events=cell.max_events,
                    raise_on_limit=False,
                )
            else:
                processed = network.run(
                    max_events=cell.max_events, raise_on_limit=False
                )
            after = network.metrics.snapshot(network.sim.now)
            result = ConvergenceResult.from_delta(
                before,
                after,
                processed,
                quiesced=not network.sim.hit_event_limit,
            )
            episodes.append(EpisodeRecord.from_result("chaos", result))
            meter.record_epoch(network.sim.now, f"{label} settled")
            meter.groups.append(
                {
                    "time": t,
                    "label": label,
                    "n_events": len(events),
                    "messages": result.messages,
                    "settle_time": result.time,
                    "routable_during": routable_during,
                    "routable_after": meter.routable(),
                    "quiesced": result.quiesced,
                }
            )
    digest = routes_digest(protocol)
    chaos = meter.chaos_block(plan, digest)
    return _finish_record(
        cell,
        scenario,
        protocol,
        network,
        episodes,
        meter,
        chaos,
        profiler,
        network.sim.now,
        "sim",
    )


# ---------------------------------------------------------------- live side


async def _execute_chaos_live_async(
    cell: Cell, time_scale: float, settle_timeout_s: float
) -> RunRecord:
    from repro.live.chaos import LiveFaultPlan
    from repro.live.network import LiveNetwork
    from repro.live.runner import try_settle
    from repro.live.supervisor import Supervisor, SupervisorConfig

    profiler = PhaseProfiler()
    with profiler.phase("scenario"):
        scenario = cell.scenario.build()
    with profiler.phase("build"):
        protocol = cell.protocol.instantiate(
            scenario.graph.copy(), scenario.policies.copy()
        )
        protocol.substrate = "live"
        network = LiveNetwork(protocol.graph, time_scale=time_scale)
        protocol.build(network=network)
    loop = asyncio.get_running_loop()
    started = loop.time()
    supervisor = Supervisor(network, SupervisorConfig(seed=cell.fault.seed))

    async def measure() -> ConvergenceResult:
        before = network.metrics.snapshot(network.clock.now)
        frames_before = network.frames_received
        quiesced = await try_settle(
            network, CHAOS_IDLE_WINDOW_S, settle_timeout_s
        )
        after = network.metrics.snapshot(network.clock.now)
        return ConvergenceResult.from_delta(
            before,
            after,
            events=network.frames_received - frames_before,
            quiesced=quiesced,
        )

    try:
        await network.start()
        await supervisor.start()
        if cell.fault.loss > 0:
            # The one impairment real loopback can emulate: seeded loss
            # at the receive path, in force from t=0 like the sim's.
            network.set_recv_loss(cell.fault.loss, seed=cell.fault.seed)
        with profiler.phase("converge"):
            initial = await measure()
        episodes: List[EpisodeRecord] = [
            EpisodeRecord.from_result("initial", initial)
        ]
        meter = _ChaosMeter(cell, protocol, scenario)
        meter.record_epoch(network.clock.now, "initial")

        plan = cell.fault.build_chaos_plan(protocol.graph)
        live_plan = LiveFaultPlan(plan, loss_seed=cell.fault.seed)
        groups = _group_events(plan)
        base = network.clock.now
        with profiler.phase("chaos"):
            for t, events in groups:
                while network.clock.now < base + t:
                    remaining = (base + t - network.clock.now) * time_scale
                    await asyncio.sleep(max(0.001, remaining))
                fib_before = meter.compile()
                label = _group_label(events)
                for ev in events:
                    live_plan.apply_event(protocol, ev)
                meter.record_epoch(network.clock.now, label, fib=fib_before)
                routable_during = meter.routable()
                before = network.metrics.snapshot(network.clock.now)
                frames_before = network.frames_received
                quiesced = await try_settle(
                    network, CHAOS_IDLE_WINDOW_S, settle_timeout_s
                )
                after = network.metrics.snapshot(network.clock.now)
                result = ConvergenceResult.from_delta(
                    before,
                    after,
                    events=network.frames_received - frames_before,
                    quiesced=quiesced,
                )
                episodes.append(EpisodeRecord.from_result("chaos", result))
                meter.record_epoch(network.clock.now, f"{label} settled")
                meter.groups.append(
                    {
                        "time": t,
                        "label": label,
                        "n_events": len(events),
                        "messages": result.messages,
                        "settle_time": result.time,
                        "routable_during": routable_during,
                        "routable_after": meter.routable(),
                        "quiesced": result.quiesced,
                    }
                )
        # The maintenance sweep: restart every serve task one at a time.
        # Sockets and node state survive, so the sweep is hitless -- the
        # routes digest below must not notice it happened.
        with profiler.phase("rolling"):
            serve_restarts = await supervisor.rolling_restart(
                dwell_s=CHAOS_ROLLING_DWELL_S
            )
            await try_settle(network, CHAOS_IDLE_WINDOW_S, settle_timeout_s)
            meter.record_epoch(network.clock.now, "rolling serve restart")
        digest = routes_digest(protocol)
        chaos = meter.chaos_block(
            plan,
            digest,
            serve_restarts=serve_restarts,
            supervisor={
                "restarts": sum(supervisor.restart_counts.values()),
                "gave_up": sorted(supervisor.given_up),
                "events": len(supervisor.events),
            },
        )
        record = _finish_record(
            cell,
            scenario,
            protocol,
            network,
            episodes,
            meter,
            chaos,
            profiler,
            network.clock.now,
            "live",
        )
        return dc_replace(
            record,
            timings={**record.timings, "live.wall": loop.time() - started},
        )
    finally:
        await supervisor.stop()
        await network.close()


def _execute_chaos_live(
    cell: Cell, time_scale: float, settle_timeout_s: float
) -> RunRecord:
    return asyncio.run(
        _execute_chaos_live_async(cell, time_scale, settle_timeout_s)
    )


# ----------------------------------------------------------------- dispatch


def execute_chaos_cell(
    cell: Cell,
    *,
    time_scale: Optional[float] = None,
    settle_timeout_s: Optional[float] = None,
) -> RunRecord:
    """Run one chaotic cell end to end on its substrate.

    ``time_scale`` and ``settle_timeout_s`` override the live pacing
    (wall seconds per protocol unit, per-episode settle budget); both
    are ignored on the simulator, whose time is virtual.
    """
    if not cell.fault.chaotic:
        raise ValueError("cell has no chaos program (restarts/partitions)")
    if cell.misbehavior.active:
        raise ValueError("chaotic cells do not support the misbehavior axis")
    if cell.fault.churns or cell.fault.queued:
        raise ValueError(
            "chaotic cells replace the churn/queue timeline; use the "
            "legacy fault axis for those"
        )
    if cell.substrate == "live":
        if cell.fault.dup > 0 or cell.fault.jitter > 0 or cell.fault.burst_enter > 0:
            raise ValueError(
                "live chaos supports loss impairments only; dup/jitter/"
                "burst are simulator models"
            )
        return _execute_chaos_live(
            cell,
            CHAOS_TIME_SCALE if time_scale is None else time_scale,
            CHAOS_SETTLE_TIMEOUT_S
            if settle_timeout_s is None
            else settle_timeout_s,
        )
    if cell.substrate != "sim":
        raise ValueError(
            f"unknown substrate {cell.substrate!r}; use 'sim' or 'live'"
        )
    return _execute_chaos_sim(cell)


# -------------------------------------------------------- version-skew (E16)


def _upgrade_wave_plan(ads: List[int], waves: int) -> List[List[int]]:
    """Split sorted AD ids into contiguous waves (early waves larger)."""
    waves = max(1, min(waves, len(ads)))
    base, extra = divmod(len(ads), waves)
    out: List[List[int]] = []
    start = 0
    for i in range(waves):
        size = base + (1 if i < extra else 0)
        out.append(ads[start : start + size])
        start += size
    return [wave for wave in out if wave]


def _wave_entry(
    label: str,
    wave: List[int],
    version: int,
    result: ConvergenceResult,
    routable_during: int,
    meter: _ChaosMeter,
    protocol,
    baseline_digest: str,
) -> Dict[str, Any]:
    """One wave's record entry; the digest check is the invariant."""
    return {
        "label": label,
        "ads": len(wave),
        "to_version": version,
        "messages": result.messages,
        "settle_time": result.time,
        "routable_during": routable_during,
        "routable_after": meter.routable(),
        "quiesced": result.quiesced,
        "negotiation": protocol.negotiation_summary(),
        "digest_match": routes_digest(protocol) == baseline_digest,
    }


def _versioning_block(
    cell: Cell,
    protocol,
    network,
    now: float,
    waves_info: List[Dict[str, Any]],
    baseline_digest: str,
    start_version: int,
    target_version: int,
    supervisor: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    final_digest = routes_digest(protocol)
    snapshot = network.metrics.snapshot(now)
    return {
        "upgrade_waves": cell.fault.upgrade_waves,
        "rollback": cell.fault.rollback,
        "wire_start": start_version,
        "wire_target": target_version,
        "waves": waves_info,
        "negotiation": protocol.negotiation_summary(),
        "version_rejected": snapshot.version_rejected,
        "baseline_digest": baseline_digest,
        "routes_digest": final_digest,
        "digest_stable": final_digest == baseline_digest
        and all(w["digest_match"] for w in waves_info),
        "supervisor": supervisor,
    }


def _execute_version_sim(cell: Cell) -> RunRecord:
    from repro.simul.wire import WIRE_VERSION

    profiler = PhaseProfiler()
    with profiler.phase("scenario"):
        scenario = cell.scenario.build()
    with profiler.phase("build"):
        protocol = cell.protocol.instantiate(
            scenario.graph.copy(), scenario.policies.copy()
        )
        network = protocol.build()
    if cell.fault.impaired:
        network.set_channel(
            ImpairedChannel(
                default=cell.fault.impairment(), seed=cell.fault.seed
            )
        )
    network.set_profiler(profiler)
    start_version = protocol.wire.version
    with profiler.phase("converge"):
        initial = converge(network, max_events=cell.max_events)
    episodes: List[EpisodeRecord] = [
        EpisodeRecord.from_result("initial", initial)
    ]
    meter = _ChaosMeter(cell, protocol, scenario)
    meter.record_epoch(network.sim.now, "initial")
    baseline_digest = routes_digest(protocol)

    def run_wave(wave: List[int], version: int, label: str) -> Dict[str, Any]:
        fib_before = meter.compile()
        for ad in wave:
            protocol.set_wire_version(ad, version)
        # The disruption epoch: the pre-wave FIB replayed while the
        # wave's Hellos and renegotiations are still in flight.
        meter.record_epoch(network.sim.now, label, fib=fib_before)
        routable_during = meter.routable()
        before = network.metrics.snapshot(network.sim.now)
        processed = network.run(
            max_events=cell.max_events, raise_on_limit=False
        )
        after = network.metrics.snapshot(network.sim.now)
        result = ConvergenceResult.from_delta(
            before,
            after,
            processed,
            quiesced=not network.sim.hit_event_limit,
        )
        episodes.append(EpisodeRecord.from_result("upgrade", result))
        meter.record_epoch(network.sim.now, f"{label} settled")
        return _wave_entry(
            label,
            wave,
            version,
            result,
            routable_during,
            meter,
            protocol,
            baseline_digest,
        )

    ads = sorted(protocol.graph.ad_ids())
    waves = _upgrade_wave_plan(ads, cell.fault.upgrade_waves)
    target = WIRE_VERSION
    waves_info: List[Dict[str, Any]] = []
    with profiler.phase("upgrade"):
        for wi, wave in enumerate(waves):
            waves_info.append(
                run_wave(
                    wave,
                    target,
                    f"upgrade wave {wi + 1}/{len(waves)} -> v{target}",
                )
            )
        if cell.fault.rollback:
            last = waves[-1]
            waves_info.append(
                run_wave(last, start_version, f"rollback -> v{start_version}")
            )
            waves_info.append(run_wave(last, target, f"re-upgrade -> v{target}"))
    versioning = _versioning_block(
        cell,
        protocol,
        network,
        network.sim.now,
        waves_info,
        baseline_digest,
        start_version,
        target,
    )
    return _finish_record(
        cell,
        scenario,
        protocol,
        network,
        episodes,
        meter,
        None,
        profiler,
        network.sim.now,
        "sim",
        versioning=versioning,
    )


async def _execute_version_live_async(
    cell: Cell, time_scale: float, settle_timeout_s: float
) -> RunRecord:
    from repro.live.network import LiveNetwork
    from repro.live.runner import try_settle
    from repro.live.supervisor import Supervisor, SupervisorConfig
    from repro.simul.wire import WIRE_VERSION

    profiler = PhaseProfiler()
    with profiler.phase("scenario"):
        scenario = cell.scenario.build()
    with profiler.phase("build"):
        protocol = cell.protocol.instantiate(
            scenario.graph.copy(), scenario.policies.copy()
        )
        protocol.substrate = "live"
        network = LiveNetwork(protocol.graph, time_scale=time_scale)
        protocol.build(network=network)
    loop = asyncio.get_running_loop()
    started = loop.time()
    supervisor = Supervisor(network, SupervisorConfig(seed=cell.fault.seed))
    start_version = protocol.wire.version

    async def measure() -> ConvergenceResult:
        before = network.metrics.snapshot(network.clock.now)
        frames_before = network.frames_received
        quiesced = await try_settle(
            network, CHAOS_IDLE_WINDOW_S, settle_timeout_s
        )
        after = network.metrics.snapshot(network.clock.now)
        return ConvergenceResult.from_delta(
            before,
            after,
            events=network.frames_received - frames_before,
            quiesced=quiesced,
        )

    try:
        await network.start()
        await supervisor.start()
        if cell.fault.loss > 0:
            network.set_recv_loss(cell.fault.loss, seed=cell.fault.seed)
        with profiler.phase("converge"):
            initial = await measure()
        episodes: List[EpisodeRecord] = [
            EpisodeRecord.from_result("initial", initial)
        ]
        meter = _ChaosMeter(cell, protocol, scenario)
        meter.record_epoch(network.clock.now, "initial")
        baseline_digest = routes_digest(protocol)

        async def run_wave(
            wave: List[int], version: int, label: str
        ) -> Dict[str, Any]:
            fib_before = meter.compile()
            # The rolling deploy: flip the version pin, then bounce the
            # serve task (a binary upgrade restarts the process), one
            # AD at a time with an operator dwell between them.
            for ad in wave:
                protocol.set_wire_version(ad, version)
                await network.restart_runtime(ad)
                await asyncio.sleep(CHAOS_ROLLING_DWELL_S)
            meter.record_epoch(network.clock.now, label, fib=fib_before)
            routable_during = meter.routable()
            result = await measure()
            episodes.append(EpisodeRecord.from_result("upgrade", result))
            meter.record_epoch(network.clock.now, f"{label} settled")
            return _wave_entry(
                label,
                wave,
                version,
                result,
                routable_during,
                meter,
                protocol,
                baseline_digest,
            )

        ads = sorted(protocol.graph.ad_ids())
        waves = _upgrade_wave_plan(ads, cell.fault.upgrade_waves)
        target = WIRE_VERSION
        waves_info: List[Dict[str, Any]] = []
        with profiler.phase("upgrade"):
            for wi, wave in enumerate(waves):
                waves_info.append(
                    await run_wave(
                        wave,
                        target,
                        f"upgrade wave {wi + 1}/{len(waves)} -> v{target}",
                    )
                )
            if cell.fault.rollback:
                last = waves[-1]
                waves_info.append(
                    await run_wave(
                        last, start_version, f"rollback -> v{start_version}"
                    )
                )
                waves_info.append(
                    await run_wave(last, target, f"re-upgrade -> v{target}")
                )
        versioning = _versioning_block(
            cell,
            protocol,
            network,
            network.clock.now,
            waves_info,
            baseline_digest,
            start_version,
            target,
            supervisor={
                "restarts": sum(supervisor.restart_counts.values()),
                "gave_up": sorted(supervisor.given_up),
                "events": len(supervisor.events),
            },
        )
        record = _finish_record(
            cell,
            scenario,
            protocol,
            network,
            episodes,
            meter,
            None,
            profiler,
            network.clock.now,
            "live",
            versioning=versioning,
        )
        return dc_replace(
            record,
            timings={**record.timings, "live.wall": loop.time() - started},
        )
    finally:
        await supervisor.stop()
        await network.close()


def _execute_version_live(
    cell: Cell, time_scale: float, settle_timeout_s: float
) -> RunRecord:
    return asyncio.run(
        _execute_version_live_async(cell, time_scale, settle_timeout_s)
    )


def execute_version_cell(
    cell: Cell,
    *,
    time_scale: Optional[float] = None,
    settle_timeout_s: Optional[float] = None,
) -> RunRecord:
    """Run one mixed-version upgrade cell end to end on its substrate.

    ``time_scale`` and ``settle_timeout_s`` override the live pacing as
    for :func:`execute_chaos_cell`; both are ignored on the simulator.
    """
    if not cell.fault.versioned:
        raise ValueError("cell has no upgrade program (upgrade_waves)")
    if cell.misbehavior.active:
        raise ValueError("version cells do not support the misbehavior axis")
    if cell.fault.chaotic or cell.fault.churns or cell.fault.queued:
        raise ValueError(
            "version cells replace the chaos/churn/queue timeline; use "
            "separate cells for those"
        )
    if cell.substrate == "live":
        if cell.fault.dup > 0 or cell.fault.jitter > 0 or cell.fault.burst_enter > 0:
            raise ValueError(
                "live version cells support loss impairments only; dup/"
                "jitter/burst are simulator models"
            )
        return _execute_version_live(
            cell,
            CHAOS_TIME_SCALE if time_scale is None else time_scale,
            CHAOS_SETTLE_TIMEOUT_S
            if settle_timeout_s is None
            else settle_timeout_s,
        )
    if cell.substrate != "sim":
        raise ValueError(
            f"unknown substrate {cell.substrate!r}; use 'sim' or 'live'"
        )
    return _execute_version_sim(cell)
