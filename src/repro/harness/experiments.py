"""Named experiments: declarative specs + table renderers.

Each entry pairs an :class:`~repro.harness.spec.ExperimentSpec` builder
with a renderer that reduces the merged
:class:`~repro.harness.record.RunRecord` list to exactly the table the
corresponding bench has always emitted (``benchmarks/out/<name>.txt``),
so migrating a bench onto the harness changes *how* the numbers are
produced (declaratively, parallelizably, with full telemetry persisted)
without changing a byte of the table -- ``check_determinism.py`` keeps
that honest.

The specs are plain data: the CLI (``python -m repro experiments run``)
and the benches share them, and ``--smoke`` swaps in a reduced grid for
CI without touching the full artifacts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import Table
from repro.harness.record import RunRecord
from repro.harness.session import ExperimentSession
from repro.harness.spec import (
    ExperimentSpec,
    FailureSpec,
    FaultSpec,
    MisbehaviorSpec,
    ProtocolSpec,
    ScenarioSpec,
    TrafficSpec,
)

# --------------------------------------------------------------------------
# E1 -- Table 1, measured (bench_table1_design_space)

#: Registry names of the eight design points, in Section 5's walk order.
DESIGN_POINT_NAMES: Tuple[str, ...] = (
    "ecma",
    "idrp",
    "ls-hbh",
    "orwg",
    "ls-hbh-topo",
    "ls-src-topo",
    "topo-vector-src",
    "pv-src",
)


def _table1_spec(smoke: bool) -> ExperimentSpec:
    return ExperimentSpec(
        name="table1_design_space",
        scenarios=(
            ScenarioSpec(kind="reference", seed=1, num_flows=12 if smoke else 40),
        ),
        protocols=tuple(ProtocolSpec(name) for name in DESIGN_POINT_NAMES),
        evaluate=True,
    )


def _render_table1(spec: ExperimentSpec, records: Sequence[RunRecord]) -> str:
    from repro.core.scorecard import render_scorecard, score_rows_from_records

    return render_scorecard(score_rows_from_records(records))


# --------------------------------------------------------------------------
# E7 -- Scaling with internet size (bench_scaling)

SCALING_SIZES: Tuple[int, ...] = (25, 50, 100, 200, 400)
SCALING_SIZES_SMOKE: Tuple[int, ...] = (25, 50)
SCALING_PROTOCOLS: Tuple[str, ...] = ("idrp", "ecma", "orwg")


def _scaling_spec(smoke: bool) -> ExperimentSpec:
    sizes = SCALING_SIZES_SMOKE if smoke else SCALING_SIZES
    return ExperimentSpec(
        name="scaling",
        scenarios=tuple(
            ScenarioSpec(
                kind="scaled",
                target_ads=size,
                seed=41,
                num_flows=40,
                restrictiveness=0.2,
            )
            for size in sizes
        ),
        protocols=tuple(ProtocolSpec(name) for name in SCALING_PROTOCOLS),
    )


def synthesis_stats(scenario) -> Dict[str, float]:
    """Per-route synthesis cost over a scenario's flow sample.

    The ``ms_per_route`` figure is wall-clock (masked by
    ``check_determinism.py``); ``states_per_route`` is deterministic.
    """
    from repro.core.synthesis import RouteSynthesizer

    syn = RouteSynthesizer(scenario.graph, scenario.policies)
    t0 = time.perf_counter()
    found = sum(syn.route(f) is not None for f in scenario.flows)
    elapsed = (time.perf_counter() - t0) / max(1, len(scenario.flows))
    return dict(
        found=found,
        states_per_route=syn.stats.states_expanded / max(1, syn.stats.dijkstra_runs),
        ms_per_route=elapsed * 1000,
    )


def _render_scaling(spec: ExperimentSpec, records: Sequence[RunRecord]) -> str:
    table = Table(
        "ADs",
        "links",
        "PTs",
        "idrp msgs",
        "idrp KB",
        "ecma msgs",
        "ecma KB",
        "orwg msgs",
        "orwg KB",
        "orwg max RIB",
        "synth states/route",
        "synth ms/route",
        title="E7: growth with internet size (shape-preserving topologies)",
    )
    n_protocols = len(spec.protocols)
    for si, scenario_spec in enumerate(spec.scenarios):
        group = {
            rec.cell["protocol"]: rec
            for rec in records[si * n_protocols : (si + 1) * n_protocols]
        }
        idrp, ecma, orwg = group["idrp"], group["ecma"], group["orwg"]
        syn = synthesis_stats(scenario_spec.build())
        table.add(
            idrp.scenario["num_ads"],
            idrp.scenario["num_links"],
            idrp.scenario["num_terms"],
            idrp.initial.messages,
            f"{idrp.initial.bytes / 1024:.0f}",
            ecma.initial.messages,
            f"{ecma.initial.bytes / 1024:.0f}",
            orwg.initial.messages,
            f"{orwg.initial.bytes / 1024:.0f}",
            orwg.state["max_rib"],
            f"{syn['states_per_route']:.0f}",
            f"{syn['ms_per_route']:.2f}",
        )
    return table.render()


# --------------------------------------------------------------------------
# E4 -- Reconvergence after failures (bench_convergence)

CONVERGENCE_CONTENDERS: Tuple[ProtocolSpec, ...] = (
    ProtocolSpec("naive-dv", label="naive-dv(inf=16)", options=(("infinity", 16),)),
    ProtocolSpec("naive-dv", label="naive-dv(inf=64)", options=(("infinity", 64),)),
    ProtocolSpec("ecma", label="ecma(1 qos)", options=(("qos_classes", ("default",)),)),
    ProtocolSpec("idrp"),
    ProtocolSpec("plain-ls"),
    ProtocolSpec("orwg"),
)


def _convergence_spec(smoke: bool) -> ExperimentSpec:
    return ExperimentSpec(
        name="convergence",
        scenarios=(ScenarioSpec(kind="reference", seed=17),),
        protocols=CONVERGENCE_CONTENDERS,
        failures=(
            FailureSpec(
                kind="random",
                count=2 if smoke else 5,
                repair=True,
                seed=17,
                label="reroute",
            ),
            FailureSpec(
                kind="stub_partition", count=2 if smoke else 4, label="partition"
            ),
        ),
    )


def episode_cost(record: RunRecord) -> Dict[str, float]:
    """Mean/max per-event reconvergence cost over a record's episodes."""
    msgs = [ep.messages for ep in record.failure_episodes]
    times = [ep.time for ep in record.failure_episodes]
    return dict(
        initial=record.initial.messages,
        mean_msgs=sum(msgs) / len(msgs),
        max_msgs=max(msgs),
        mean_time=sum(times) / len(times),
    )


def _render_convergence(spec: ExperimentSpec, records: Sequence[RunRecord]) -> str:
    num_ads = records[0].scenario["num_ads"]
    table = Table(
        "protocol",
        "initial msgs",
        "reroute msgs/event",
        "partition msgs/event",
        "partition max",
        "partition time",
        title=(
            "E4: reconvergence cost per topology event "
            f"({num_ads} ADs; reroute vs partition events)"
        ),
    )
    n_failures = len(spec.failures)
    for pi, protocol in enumerate(spec.protocols):
        r = episode_cost(records[pi * n_failures])
        p = episode_cost(records[pi * n_failures + 1])
        table.add(
            protocol.display,
            r["initial"],
            f"{r['mean_msgs']:.0f}",
            f"{p['mean_msgs']:.0f}",
            p["max_msgs"],
            f"{p['mean_time']:.0f}",
        )
    return table.render()


# --------------------------------------------------------------------------
# E3 -- Route availability vs policy restrictiveness (bench_availability)

AVAILABILITY_PROTOCOLS: Tuple[str, ...] = (
    "naive-dv",
    "ecma",
    "bgp2",
    "idrp",
    "ls-hbh",
    "orwg",
)
AVAILABILITY_RESTRICTIVENESS: Tuple[float, ...] = (0.0, 0.2, 0.4, 0.6)
AVAILABILITY_RESTRICTIVENESS_SMOKE: Tuple[float, ...] = (0.0, 0.4)


def _availability_spec(smoke: bool) -> ExperimentSpec:
    sweep = (
        AVAILABILITY_RESTRICTIVENESS_SMOKE if smoke else AVAILABILITY_RESTRICTIVENESS
    )
    topology = (
        ("num_backbones", 2),
        ("regionals_per_backbone", 4),
        ("campuses_per_parent", 4),
        ("seed", 9),
    )
    return ExperimentSpec(
        name="availability",
        scenarios=tuple(
            ScenarioSpec(
                kind="custom",
                seed=9,
                topology=topology,
                restrictiveness=r,
                policy_seed=9,
                flows_seed=10,
                num_flows=16 if smoke else 40,
            )
            for r in sweep
        ),
        protocols=tuple(ProtocolSpec(name) for name in AVAILABILITY_PROTOCOLS),
        evaluate=True,
    )


def _render_availability(spec: ExperimentSpec, records: Sequence[RunRecord]) -> str:
    sweep = [s.restrictiveness for s in spec.scenarios]
    num_flows = spec.scenarios[0].num_flows
    avail = Table(
        "protocol",
        *[f"r={r:.1f}" for r in sweep],
        title="E3a: route availability (found legal / existing legal)",
    )
    illegal = Table(
        "protocol",
        *[f"r={r:.1f}" for r in sweep],
        title=f"E3b: illegal routes produced (of {num_flows} flows)",
    )
    n_protocols = len(spec.protocols)
    for pi, protocol in enumerate(spec.protocols):
        row_a, row_i = [], []
        for si in range(len(spec.scenarios)):
            quality = records[si * n_protocols + pi].route_quality
            row_a.append(f"{quality['availability']:.2f}")
            row_i.append(quality["n_illegal"])
        avail.add(protocol.display, *row_a)
        illegal.add(protocol.display, *row_i)
    return avail.render() + "\n\n" + illegal.render()


# --------------------------------------------------------------------------
# E11 -- Robustness under loss and churn (bench_robustness)

#: Loss levels of the sweep (the lossy points also jitter and duplicate).
ROBUSTNESS_LOSSES: Tuple[float, ...] = (0.0, 0.05, 0.2)
ROBUSTNESS_LOSSES_SMOKE: Tuple[float, ...] = (0.0, 0.05)


def _robustness_fault(loss: float, smoke: bool) -> FaultSpec:
    label = "clean" if loss == 0 else f"{loss:.0%} loss"
    return FaultSpec(
        loss=loss,
        dup=0.01 if loss > 0 else 0.0,
        jitter=2.0 if loss > 0 else 0.0,
        flaps=1 if smoke else 2,
        crashes=1,
        retain_state=False,
        seed=3,
        label=label,
    )


def _robustness_protocols(smoke: bool) -> Tuple[ProtocolSpec, ...]:
    """Every design point, plain and fully hardened (the ablation pair)."""
    names = ("ls-hbh", "orwg") if smoke else DESIGN_POINT_NAMES
    out: List[ProtocolSpec] = []
    for name in names:
        out.append(ProtocolSpec(name))
        out.append(
            ProtocolSpec(
                name, label=f"{name}+h", options=(("hardening", "all"),)
            )
        )
    return tuple(out)


def _robustness_spec(smoke: bool) -> ExperimentSpec:
    losses = ROBUSTNESS_LOSSES_SMOKE if smoke else ROBUSTNESS_LOSSES
    return ExperimentSpec(
        name="robustness",
        scenarios=(
            ScenarioSpec(kind="reference", seed=5, num_flows=12 if smoke else 24),
        ),
        protocols=_robustness_protocols(smoke),
        faults=tuple(_robustness_fault(loss, smoke) for loss in losses),
        evaluate=True,
    )


def _render_robustness(spec: ExperimentSpec, records: Sequence[RunRecord]) -> str:
    num_ads = records[0].scenario["num_ads"]
    fault = spec.faults[0]
    columns = ["protocol"]
    for f in spec.faults:
        columns += [f"{f.display} avail", f"{f.display} ok%", f"{f.display} ttr"]
    table = Table(
        *columns,
        title=(
            "E11: robustness under loss and churn "
            f"({num_ads} ADs; {fault.flaps} link flaps + {fault.crashes} AD "
            "crash/restart, state lost; avail = legal routes found after "
            "repair, ok% = probed data-plane reachability during churn, "
            "ttr = mean time-to-repair; '*' = event budget hit)"
        ),
    )
    n_faults = len(spec.faults)
    for pi, protocol in enumerate(spec.protocols):
        row = [protocol.display]
        for fi in range(n_faults):
            rec = records[pi * n_faults + fi]
            star = "" if rec.quiesced else "*"
            row.append(f"{rec.route_quality['availability']:.2f}{star}")
            row.append(f"{100 * rec.robustness['availability']:.0f}")
            row.append(f"{rec.robustness['mean_ttr']:.0f}")
        table.add(*row)
    return table.render()


# --------------------------------------------------------------------------
# E13 -- Control-plane overload under a churn storm (bench_robustness_churn)

#: Churn-storm flap frequencies (cycles per time unit, per flapped link).
CHURN_RATES: Tuple[float, ...] = (0.1, 0.25)
CHURN_RATES_SMOKE: Tuple[float, ...] = (0.25,)
#: Bounded ingress-queue capacities of the sweep.
CHURN_QUEUES: Tuple[int, ...] = (4, 32)
CHURN_QUEUES_SMOKE: Tuple[int, ...] = (4,)

#: Event budget for E13 cells: deliberately tight (initial convergence
#: needs at most ~23k events on the reference internet), so a protocol
#: that cannot quench the storm *measurably* melts down (hits the
#: limit) instead of burning minutes proving the same thing at 5M
#: events.
CHURN_MAX_EVENTS = 60_000


def _churn_fault(hz: float, capacity: int, smoke: bool) -> FaultSpec:
    return FaultSpec(
        churn_hz=hz,
        churn_links=2 if smoke else 6,
        churn_duration=120.0 if smoke else 240.0,
        queue_capacity=capacity,
        seed=7,
        start_time=50.0,
        spacing=100.0,
        probe_interval=20.0,
        probe_flows=12 if smoke else 24,
        label=f"{hz:g}Hz/q{capacity}",
    )


def _churn_protocols(smoke: bool) -> Tuple[ProtocolSpec, ...]:
    """Every design point raw, hardened, and paced+damped (the E13 triple)."""
    names = ("ls-hbh", "orwg") if smoke else DESIGN_POINT_NAMES
    out: List[ProtocolSpec] = []
    for name in names:
        out.append(ProtocolSpec(name))
        out.append(
            ProtocolSpec(name, label=f"{name}+h", options=(("hardening", "all"),))
        )
        out.append(
            ProtocolSpec(
                name,
                label=f"{name}+pd",
                options=(("hardening", "all"), ("pacing", "all")),
            )
        )
    return tuple(out)


def _churn_spec(smoke: bool) -> ExperimentSpec:
    rates = CHURN_RATES_SMOKE if smoke else CHURN_RATES
    queues = CHURN_QUEUES_SMOKE if smoke else CHURN_QUEUES
    return ExperimentSpec(
        name="robustness_churn",
        scenarios=(
            ScenarioSpec(kind="reference", seed=5, num_flows=12 if smoke else 24),
        ),
        protocols=_churn_protocols(smoke),
        faults=tuple(
            _churn_fault(hz, capacity, smoke)
            for hz in rates
            for capacity in queues
        ),
        evaluate=True,
        max_events=CHURN_MAX_EVENTS,
    )


def _render_churn(spec: ExperimentSpec, records: Sequence[RunRecord]) -> str:
    num_ads = records[0].scenario["num_ads"]
    fault = spec.faults[0]
    table = Table(
        "protocol",
        "storm",
        "avail",
        "ok%",
        "ttr",
        "peakq",
        "drops",
        "sup",
        "paced",
        "duty",
        title=(
            "E13: control-plane overload under a churn storm "
            f"({num_ads} ADs; {fault.churn_links} lateral links flapping "
            "concurrently through a bounded ingress queue; avail = legal "
            "routes found after the storm, ok% = probed reachability during "
            "it, ttr = mean time-to-repair, peakq/drops = worst queue depth "
            "and overflow drops, sup = damped announcements, paced = "
            "deferred update batches, duty = mean ingress service duty "
            "cycle; '*' = event budget hit, i.e. the storm was never "
            "quenched)"
        ),
    )
    n_faults = len(spec.faults)
    for pi, protocol in enumerate(spec.protocols):
        for fi, fault in enumerate(spec.faults):
            rec = records[pi * n_faults + fi]
            star = "" if rec.quiesced else "*"
            overload = rec.overload or {}
            table.add(
                protocol.display,
                fault.display,
                f"{rec.route_quality['availability']:.2f}{star}",
                f"{100 * rec.robustness['availability']:.0f}",
                f"{rec.robustness['mean_ttr']:.0f}",
                overload.get("peak_depth", "-"),
                overload.get("dropped", "-"),
                overload.get("suppressed_announcements", 0)
                + overload.get("suppressions", 0),
                overload.get("paced_deferrals", 0),
                f"{overload.get('duty_cycle', 0.0):.2f}",
            )
    return table.render()


# --------------------------------------------------------------------------
# E12 -- Misbehaving-AD blast radius and containment
# (bench_robustness_misbehavior)

#: The factored lie grid: the role axis is swept for the canonical route
#: leak; every other lie is told by the backbone (the worst-placed liar).
#: A full roles x lies cross would quadruple the grid for rows that only
#: repeat the role effect the leak sweep already shows.
MISBEHAVIOR_LIE_SWEEP: Tuple[str, ...] = (
    "bogus-origin",
    "stale-replay",
    "metric-lie",
    "term-forgery",
)


def _misbehavior_points(smoke: bool) -> Tuple[MisbehaviorSpec, ...]:
    baseline = MisbehaviorSpec(label="baseline")
    leak_backbone = MisbehaviorSpec(lie="route-leak", liar_role="backbone")
    if smoke:
        return (baseline, leak_backbone)
    points = [baseline]
    for role in ("stub", "regional", "backbone"):
        points.append(MisbehaviorSpec(lie="route-leak", liar_role=role))
    for lie in MISBEHAVIOR_LIE_SWEEP:
        points.append(MisbehaviorSpec(lie=lie, liar_role="backbone"))
    return tuple(points)


def _misbehavior_protocols(smoke: bool) -> Tuple[ProtocolSpec, ...]:
    """Every design point, plain and validating (the containment pair)."""
    names = ("ls-hbh", "orwg") if smoke else DESIGN_POINT_NAMES
    out: List[ProtocolSpec] = []
    for name in names:
        out.append(ProtocolSpec(name))
        out.append(
            ProtocolSpec(
                name, label=f"{name}+v", options=(("validation", "all"),)
            )
        )
    return tuple(out)


def _misbehavior_spec(smoke: bool) -> ExperimentSpec:
    # Restrictiveness 0.5 gives the top-degree backbone a genuinely
    # restrictive registered policy, so a route leak has something to
    # leak: flows that legally detour (or are unroutable) divert through
    # the liar once it forges an open term.
    return ExperimentSpec(
        name="robustness_misbehavior",
        scenarios=(
            ScenarioSpec(
                kind="reference", seed=11, num_flows=24, restrictiveness=0.5
            ),
        ),
        protocols=_misbehavior_protocols(smoke),
        misbehaviors=_misbehavior_points(smoke),
    )


def _render_misbehavior(spec: ExperimentSpec, records: Sequence[RunRecord]) -> str:
    num_ads = records[0].scenario["num_ads"]
    table = Table(
        "protocol",
        "lie",
        "liar",
        "told",
        "peak",
        "steady",
        "poisoned",
        "contain",
        "viol",
        "quar",
        "false-q",
        title=(
            "E12: single misbehaving AD -- blast radius and containment "
            f"({num_ads} ADs; told = lie expressible at this design point; "
            "peak/steady = probed flows hijacked or newly broken, at worst "
            "and at end; poisoned = source ADs left holding a route through "
            "the liar; contain = time from lie to a lasting zero blast; "
            "'-' = no validation state, 'never' = blast outlasted the run)"
        ),
    )
    n_mis = len(spec.misbehaviors)
    for pi, protocol in enumerate(spec.protocols):
        for mi, point in enumerate(spec.misbehaviors):
            rec = records[pi * n_mis + mi]
            block = rec.misbehavior
            if block is None:
                table.add(protocol.display, point.display, *["-"] * 9)
                continue
            counters = block["counters"]
            if not point.active:
                told, peak, steady, poisoned, contain = "-", "-", "-", "-", "-"
            else:
                told = "yes" if block["applied"] else "no"
                peak, steady = block["peak_blast"], block["steady_blast"]
                poisoned = block["ads_poisoned"]
                latency = block["containment_latency"]
                if not block["applied"]:
                    contain = "-"
                elif latency is None:
                    contain = "never"
                else:
                    contain = f"{latency:.0f}"
            table.add(
                protocol.display,
                point.display,
                "-" if block["liar"] is None else block["liar"],
                told,
                peak,
                steady,
                poisoned,
                contain,
                counters["violations"],
                counters["quarantines"],
                counters["false_quarantines"],
            )
    return table.render()


# --------------------------------------------------------------------------
# E14 -- Data-plane tail latency under convergence (bench_dataplane)

#: Full-scale workload: a million flows through every design point's
#: compiled FIB at every convergence epoch of the storm.
DATAPLANE_FLOWS = 1_000_000
DATAPLANE_FLOWS_SMOKE = 20_000
DATAPLANE_PAIRS = 4096
DATAPLANE_PAIRS_SMOKE = 256


def _dataplane_fault(smoke: bool) -> FaultSpec:
    """An E11-style churn storm: link flaps then an AD crash/restart,
    probed (and FIB-snapshotted) every ``probe_interval``."""
    return FaultSpec(
        flaps=1 if smoke else 2,
        crashes=1,
        retain_state=False,
        seed=3,
        probe_interval=100.0 if smoke else 50.0,
        probe_flows=8,
        label="storm",
    )


def _dataplane_spec(smoke: bool) -> ExperimentSpec:
    return ExperimentSpec(
        name="dataplane_tail",
        scenarios=(ScenarioSpec(kind="reference", seed=5, num_flows=12),),
        protocols=tuple(
            ProtocolSpec(name)
            for name in (("ls-hbh", "orwg") if smoke else DESIGN_POINT_NAMES)
        ),
        faults=(_dataplane_fault(smoke),),
        traffics=(
            TrafficSpec(
                flows=DATAPLANE_FLOWS_SMOKE if smoke else DATAPLANE_FLOWS,
                zipf_s=1.1,
                pairs=DATAPLANE_PAIRS_SMOKE if smoke else DATAPLANE_PAIRS,
                seed=14,
            ),
        ),
    )


def _render_dataplane(spec: ExperimentSpec, records: Sequence[RunRecord]) -> str:
    num_ads = records[0].scenario["num_ads"]
    workload = records[0].dataplane["workload"]
    fault = spec.faults[0]
    table = Table(
        "protocol",
        "epochs",
        "gap0",
        "gap-worst",
        "gap-final",
        "out-p99",
        "out-p999",
        "lat-p99",
        "lat-p999",
        "str-p99",
        "fib-KB",
        title=(
            "E14: data-plane tails under convergence "
            f"({num_ads} ADs; {workload['flows']} zipf flows in "
            f"{workload['classes']} classes, s={workload['zipf_s']:g}; "
            f"{fault.flaps} flaps + {fault.crashes} crash, FIB recompiled "
            "at every probe epoch; gap = fraction of flows undelivered at "
            "the converged start / worst epoch / settled end, out-p99/999 "
            "= storm-long outage fraction of the unluckiest 1%/0.1% of "
            "flows, lat/str = delivered-flow latency and stretch tails at "
            "the worst-gap epoch, fib-KB = compiled state; '*' = event "
            "budget hit)"
        ),
    )
    for pi, protocol in enumerate(spec.protocols):
        rec = records[pi]
        block = rec.dataplane
        series = block["series"]
        epochs = series["epochs"]
        worst = max(epochs, key=lambda e: e["reach_gap"])
        star = "" if rec.quiesced else "*"
        table.add(
            protocol.display,
            len(epochs),
            f"{epochs[0]['reach_gap']:.3f}",
            f"{series['worst_gap']:.3f}{star}",
            f"{epochs[-1]['reach_gap']:.3f}",
            f"{series['outage_p99']:.3f}",
            f"{series['outage_p999']:.3f}",
            f"{worst['latency_p99']:.1f}",
            f"{worst['latency_p999']:.1f}",
            f"{worst['stretch_p99']:.2f}",
            f"{block['fib']['bytes'] / 1024:.0f}",
        )
    return table.render()


# --------------------------------------------------------------------------
# E15 -- Rolling restarts + partition chaos, both substrates
# (bench_live_chaos)

#: The E15 design points: both LS-family hop-by-hop points plus one
#: DV-family point per forwarding mode, each measured plain and with
#: graceful restart fully enabled.
LIVE_CHAOS_PROTOCOLS: Tuple[str, ...] = (
    "ls-hbh",
    "ls-hbh-topo",
    "idrp",
    "pv-src",
)
LIVE_CHAOS_FLOWS = 200_000
LIVE_CHAOS_FLOWS_SMOKE = 20_000
LIVE_CHAOS_PAIRS = 1024
LIVE_CHAOS_PAIRS_SMOKE = 256


def _live_chaos_protocols(smoke: bool) -> Tuple[ProtocolSpec, ...]:
    names = ("ls-hbh",) if smoke else LIVE_CHAOS_PROTOCOLS
    out: List[ProtocolSpec] = []
    for name in names:
        out.append(ProtocolSpec(name))
        out.append(
            ProtocolSpec(
                name, label=f"{name}+gr", options=(("graceful", "all"),)
            )
        )
    return tuple(out)


def _live_chaos_fault(smoke: bool) -> FaultSpec:
    return FaultSpec(
        restarts=1 if smoke else 3,
        partitions=1,
        seed=15,
        start_time=100.0,
        spacing=400.0,
    )


def _live_chaos_spec(smoke: bool) -> ExperimentSpec:
    return ExperimentSpec(
        name="live_chaos",
        scenarios=(
            ScenarioSpec(kind="reference", seed=5, num_flows=12 if smoke else 24),
        ),
        protocols=_live_chaos_protocols(smoke),
        faults=(_live_chaos_fault(smoke),),
        traffics=(
            TrafficSpec(
                flows=LIVE_CHAOS_FLOWS_SMOKE if smoke else LIVE_CHAOS_FLOWS,
                zipf_s=1.1,
                pairs=LIVE_CHAOS_PAIRS_SMOKE if smoke else LIVE_CHAOS_PAIRS,
                seed=15,
            ),
        ),
        substrates=("sim", "live"),
    )


def _render_live_chaos(spec: ExperimentSpec, records: Sequence[RunRecord]) -> str:
    num_ads = records[0].scenario["num_ads"]
    fault = spec.faults[0]
    workload = records[0].dataplane["workload"]
    table = Table(
        "protocol",
        "substrate",
        "gr",
        "avail",
        "gap-worst",
        "out-p99",
        "out-p999",
        "msgs",
        "holds",
        "resyncs",
        "digest",
        title=(
            "E15: rolling-restart + partition chaos, both substrates "
            f"({num_ads} ADs; {fault.restarts} rolling AD restart(s) + "
            f"{fault.partitions} partition window(s); "
            f"{workload['flows']} zipf flows, s={workload['zipf_s']:g}; "
            "avail = mean control-plane routability while each chaos "
            "event is in force, gap-worst = worst-epoch fraction of "
            "flows undelivered, out-p99/999 = chaos-long outage of the "
            "unluckiest 1%/0.1% of flows, msgs = reconvergence messages "
            "across all chaos events, holds/resyncs = graceful-restart "
            "helper activity, digest = post-chaos routes fingerprint "
            "-- equal digests mean identical forwarding state)"
        ),
    )
    for rec in records:
        chaos = rec.chaos
        series = rec.dataplane["series"]
        gsum = chaos["graceful_summary"]
        table.add(
            rec.cell["label"],
            rec.cell["substrate"],
            chaos["graceful"],
            f"{chaos['availability']:.2f}",
            f"{series['worst_gap']:.3f}",
            f"{series['outage_p99']:.3f}",
            f"{series['outage_p999']:.3f}",
            sum(g["messages"] for g in chaos["groups"]),
            gsum["holds"],
            gsum["resyncs"],
            chaos["routes_digest"][:12],
        )
    lines = [table.render()]
    digests: Dict[str, Dict[str, str]] = {}
    for rec in records:
        digests.setdefault(rec.cell["label"], {})[rec.cell["substrate"]] = (
            rec.chaos["routes_digest"]
        )
    footer = [
        f"fidelity {label}: post-chaos routes sim-vs-live "
        + ("IDENTICAL" if subs["sim"] == subs["live"] else "MISMATCH")
        for label, subs in digests.items()
        if "sim" in subs and "live" in subs
    ]
    if footer:
        lines.append("")
        lines.extend(footer)
    return "\n".join(lines)


# --------------------------------------------------------------------------
# E16 -- Mixed-version rolling upgrade, both substrates
# (bench_version_skew)

#: The E16 design points: both LS-family hop-by-hop points plus the
#: IDRP-style path-vector point, every AD starting at wire v1 with
#: negotiation on (the population the rolling upgrade sweeps to the
#: current version).
MIXED_VERSION_PROTOCOLS: Tuple[str, ...] = (
    "ls-hbh",
    "ls-hbh-topo",
    "idrp",
)


def _mixed_version_protocols(smoke: bool) -> Tuple[ProtocolSpec, ...]:
    names = ("ls-hbh",) if smoke else MIXED_VERSION_PROTOCOLS
    return tuple(
        ProtocolSpec(name, options=(("wire", "v1+negotiate"),))
        for name in names
    )


def _mixed_version_fault(smoke: bool) -> FaultSpec:
    return FaultSpec(
        upgrade_waves=2 if smoke else 4,
        rollback=not smoke,
        seed=16,
    )


def _mixed_version_spec(smoke: bool) -> ExperimentSpec:
    return ExperimentSpec(
        name="mixed_version",
        scenarios=(
            ScenarioSpec(kind="reference", seed=5, num_flows=12 if smoke else 24),
        ),
        protocols=_mixed_version_protocols(smoke),
        faults=(_mixed_version_fault(smoke),),
        traffics=(
            TrafficSpec(
                flows=LIVE_CHAOS_FLOWS_SMOKE if smoke else LIVE_CHAOS_FLOWS,
                zipf_s=1.1,
                pairs=LIVE_CHAOS_PAIRS_SMOKE if smoke else LIVE_CHAOS_PAIRS,
                seed=16,
            ),
        ),
        substrates=("sim", "live"),
    )


def _render_version_skew(
    spec: ExperimentSpec, records: Sequence[RunRecord]
) -> str:
    from repro.simul.wire import WIRE_VERSION

    num_ads = records[0].scenario["num_ads"]
    fault = spec.faults[0]
    workload = records[0].dataplane["workload"]
    table = Table(
        "protocol",
        "substrate",
        "waves",
        "upg-msgs",
        "gap-worst",
        "out-p99",
        "pairs",
        "rejected",
        "stable",
        "digest",
        title=(
            "E16: mixed-version rolling upgrade, both substrates "
            f"({num_ads} ADs; wire v1 -> v{WIRE_VERSION} in "
            f"{fault.upgrade_waves} wave(s)"
            + (" + rollback leg" if fault.rollback else "")
            + f"; {workload['flows']} zipf flows, s={workload['zipf_s']:g}; "
            "upg-msgs = reconvergence messages across all waves, "
            "gap-worst = worst-epoch fraction of flows undelivered, "
            "out-p99 = sweep-long outage of the unluckiest 1% of flows, "
            "pairs = negotiated per-neighbour wire versions after the "
            "sweep, rejected = frames refused for unsupported versions, "
            "stable = routes digest matched the pre-upgrade baseline "
            "after every wave -- the upgrade was invisible to routing)"
        ),
    )
    for rec in records:
        v = rec.versioning
        series = rec.dataplane["series"]
        pairs = ",".join(
            f"{k}:{n}"
            for k, n in sorted(v["negotiation"]["pairs"].items())
        )
        table.add(
            rec.cell["label"],
            rec.cell["substrate"],
            len(v["waves"]),
            sum(w["messages"] for w in v["waves"]),
            f"{series['worst_gap']:.3f}",
            f"{series['outage_p99']:.3f}",
            pairs or "-",
            v["version_rejected"],
            "yes" if v["digest_stable"] else "NO",
            v["routes_digest"][:12],
        )
    lines = [table.render()]
    digests: Dict[str, Dict[str, str]] = {}
    for rec in records:
        digests.setdefault(rec.cell["label"], {})[rec.cell["substrate"]] = (
            rec.versioning["routes_digest"]
        )
    footer = [
        f"fidelity {label}: post-upgrade routes sim-vs-live "
        + ("IDENTICAL" if subs["sim"] == subs["live"] else "MISMATCH")
        for label, subs in digests.items()
        if "sim" in subs and "live" in subs
    ]
    if footer:
        lines.append("")
        lines.extend(footer)
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Registry + one-call runner

Renderer = Callable[[ExperimentSpec, Sequence[RunRecord]], str]


@dataclass(frozen=True)
class Experiment:
    """A named, harness-driven experiment."""

    name: str
    eid: str
    description: str
    build_spec: Callable[[bool], ExperimentSpec]
    render: Renderer


EXPERIMENTS: Dict[str, Experiment] = {
    exp.name: exp
    for exp in (
        Experiment(
            name="table1_design_space",
            eid="E1",
            description="Table 1 measured across all 8 design points",
            build_spec=_table1_spec,
            render=_render_table1,
        ),
        Experiment(
            name="availability",
            eid="E3",
            description="Route availability vs policy restrictiveness",
            build_spec=_availability_spec,
            render=_render_availability,
        ),
        Experiment(
            name="convergence",
            eid="E4",
            description="Reconvergence after failures (count-to-infinity)",
            build_spec=_convergence_spec,
            render=_render_convergence,
        ),
        Experiment(
            name="scaling",
            eid="E7",
            description="Scaling with internet size",
            build_spec=_scaling_spec,
            render=_render_scaling,
        ),
        Experiment(
            name="robustness",
            eid="E11",
            description="Robustness under message loss and churn",
            build_spec=_robustness_spec,
            render=_render_robustness,
        ),
        Experiment(
            name="robustness_misbehavior",
            eid="E12",
            description="Misbehaving-AD blast radius and containment",
            build_spec=_misbehavior_spec,
            render=_render_misbehavior,
        ),
        Experiment(
            name="robustness_churn",
            eid="E13",
            description="Control-plane overload under a churn storm",
            build_spec=_churn_spec,
            render=_render_churn,
        ),
        Experiment(
            name="dataplane_tail",
            eid="E14",
            description="Data-plane tail latency under convergence",
            build_spec=_dataplane_spec,
            render=_render_dataplane,
        ),
        Experiment(
            name="live_chaos",
            eid="E15",
            description="Rolling-restart + partition chaos, both substrates",
            build_spec=_live_chaos_spec,
            render=_render_live_chaos,
        ),
        Experiment(
            name="mixed_version",
            eid="E16",
            description="Mixed-version rolling upgrade, both substrates",
            build_spec=_mixed_version_spec,
            render=_render_version_skew,
        ),
    )
}


def _parse_liar(value: str) -> Dict[str, Any]:
    """Parse a ``--liar`` override: a role name or ``ad=<id>``."""
    from repro.faults.misbehavior import ROLES

    if value.startswith("ad="):
        try:
            return {"liar_ad": int(value[3:]), "liar_role": "backbone"}
        except ValueError:
            pass
    elif value in ROLES:
        return {"liar_ad": -1, "liar_role": value}
    raise ValueError(
        f"bad liar {value!r} (expected 'ad=<id>' or one of {', '.join(ROLES)})"
    )


def run_experiment(
    name: str,
    jobs: int = 1,
    smoke: bool = False,
    runs_dir: Optional[str] = None,
    trace: Optional[str] = None,
    seed: Optional[int] = None,
    loss: Optional[float] = None,
    liar: Optional[str] = None,
    lie: Optional[str] = None,
    queue_capacity: Optional[int] = None,
    churn_hz: Optional[float] = None,
    pacing: Optional[str] = None,
    flows: Optional[int] = None,
    zipf_s: Optional[float] = None,
    restarts: Optional[int] = None,
    partitions: Optional[int] = None,
    gr: Optional[str] = None,
    wire_version: Optional[str] = None,
    upgrade_waves: Optional[int] = None,
    rollback: Optional[bool] = None,
) -> Tuple[ExperimentSpec, List[RunRecord], str]:
    """Run a named experiment; returns (spec, records, rendered table).

    ``smoke`` switches to the reduced grid *and* renames the experiment
    to ``<name>_smoke`` so smoke artifacts never overwrite the full
    (determinism-checked) ones.  ``seed`` replaces the spec's seed axis
    with a single seed (re-seeding every scenario); ``loss`` overrides
    the message-loss probability of every fault axis point (duplicate
    points after the override collapse, preserving order).  ``liar``
    (``'ad=<id>'`` or a role name) and ``lie`` (a lie kind, applied to
    the active misbehavior points only) override the misbehavior axis
    the same way.  ``queue_capacity`` (negative removes the queue) and
    ``churn_hz`` override every fault point's ingress queue and churn
    storm; ``pacing`` (``'off'``, a feature name, or ``'full'``)
    replaces every protocol point's pacing option; ``flows`` and
    ``zipf_s`` override the active traffic points (the E14 workload
    size and skew).  ``restarts`` and ``partitions`` override every
    fault point's chaos program (E15), and ``gr`` (``'off'`` or a
    graceful-restart scope) replaces every protocol point's graceful
    option the same way ``pacing`` does.  ``upgrade_waves`` and
    ``rollback`` override every fault point's upgrade program (E16),
    and ``wire_version`` (``'off'`` or a wire spec like ``'v1'``,
    ``'v2'``, ``'v1+negotiate'``) replaces every protocol point's wire
    option the same way ``gr`` does.
    """
    try:
        experiment = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        ) from None
    spec = experiment.build_spec(smoke)
    if smoke:
        spec = replace(spec, name=f"{spec.name}_smoke")
    if trace is not None:
        spec = replace(spec, trace=trace)
    if seed is not None:
        spec = replace(spec, seeds=(seed,))
    if loss is not None:
        overridden = []
        for fault in spec.faults:
            fault = replace(fault, loss=loss, label=None)
            if fault not in overridden:
                overridden.append(fault)
        spec = replace(spec, faults=tuple(overridden))
    if queue_capacity is not None or churn_hz is not None:
        fields: Dict[str, Any] = {}
        if queue_capacity is not None:
            fields["queue_capacity"] = None if queue_capacity < 0 else queue_capacity
        if churn_hz is not None:
            fields["churn_hz"] = churn_hz
        overridden = []
        for fault in spec.faults:
            fault = replace(fault, label=None, **fields)
            if fault not in overridden:
                overridden.append(fault)
        spec = replace(spec, faults=tuple(overridden))
    if pacing is not None:
        from repro.protocols.pacing import pacing_from

        pacing_from("" if pacing == "off" else pacing)  # validate early
        protocols = []
        for point in spec.protocols:
            options = tuple(
                (k, v) for k, v in point.options if k != "pacing"
            )
            if pacing != "off":
                options = options + (("pacing", pacing),)
            point = replace(point, options=options)
            if point not in protocols:
                protocols.append(point)
        spec = replace(spec, protocols=tuple(protocols))
    if restarts is not None or partitions is not None:
        fields = {}
        if restarts is not None:
            if restarts < 0:
                raise ValueError("--restarts must be non-negative")
            fields["restarts"] = restarts
        if partitions is not None:
            if partitions < 0:
                raise ValueError("--partitions must be non-negative")
            fields["partitions"] = partitions
        overridden = []
        for fault in spec.faults:
            fault = replace(fault, label=None, **fields)
            if fault not in overridden:
                overridden.append(fault)
        spec = replace(spec, faults=tuple(overridden))
    if upgrade_waves is not None or rollback is not None:
        fields = {}
        if upgrade_waves is not None:
            if upgrade_waves < 0:
                raise ValueError("--upgrade-waves must be non-negative")
            fields["upgrade_waves"] = upgrade_waves
        if rollback is not None:
            fields["rollback"] = rollback
        overridden = []
        for fault in spec.faults:
            fault = replace(fault, label=None, **fields)
            if fault not in overridden:
                overridden.append(fault)
        spec = replace(spec, faults=tuple(overridden))
    if wire_version is not None:
        from repro.protocols.versioning import wire_from

        if wire_version != "off":
            wire_from(wire_version)  # validate early
        protocols = []
        for point in spec.protocols:
            options = tuple((k, v) for k, v in point.options if k != "wire")
            if wire_version != "off":
                options = options + (("wire", wire_version),)
            point = replace(point, options=options)
            if point not in protocols:
                protocols.append(point)
        spec = replace(spec, protocols=tuple(protocols))
    if gr is not None:
        from repro.protocols.graceful import graceful_from

        graceful_from("" if gr == "off" else gr)  # validate early
        protocols = []
        for point in spec.protocols:
            options = tuple(
                (k, v) for k, v in point.options if k != "graceful"
            )
            if gr != "off":
                options = options + (("graceful", gr),)
            point = replace(point, options=options)
            if point not in protocols:
                protocols.append(point)
        spec = replace(spec, protocols=tuple(protocols))
    if flows is not None or zipf_s is not None:
        fields = {}
        if flows is not None:
            if flows <= 0:
                raise ValueError("--flows must be positive")
            fields["flows"] = flows
        if zipf_s is not None:
            if zipf_s < 0:
                raise ValueError("--zipf-s must be non-negative")
            fields["zipf_s"] = zipf_s
        overridden = []
        for point in spec.traffics:
            if point.active:
                point = replace(point, label=None, **fields)
            if point not in overridden:
                overridden.append(point)
        spec = replace(spec, traffics=tuple(overridden))
    if liar is not None or lie is not None:
        from repro.faults.misbehavior import LIES

        if lie is not None and lie not in LIES:
            raise ValueError(
                f"bad lie {lie!r} (expected one of {', '.join(LIES)})"
            )
        liar_fields = {} if liar is None else _parse_liar(liar)
        overridden = []
        for point in spec.misbehaviors:
            fields = dict(liar_fields)
            # A lie override turns inert baseline points into liars too;
            # a liar override alone leaves the baseline lie-free.
            if lie is not None:
                fields["lie"] = lie
            if point.active or "lie" in fields:
                point = replace(point, label=None, **fields)
            if point not in overridden:
                overridden.append(point)
        spec = replace(spec, misbehaviors=tuple(overridden))
    records = ExperimentSession(spec, out_dir=runs_dir).run(jobs=jobs)
    return spec, records, experiment.render(spec, records)
