"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the harness input: scenario parameters ×
protocol set × seed list × failure plan, all as plain data.  The spec
expands to a grid of :class:`Cell` objects -- every cell is
self-contained and picklable, so the session can hand cells to worker
processes and any cell can be re-run (or re-played under the tracer) in
isolation.

Cells carry *recipes*, not objects: a cell rebuilds its scenario, its
protocol, and its failure plan from seeds inside the worker, which is
what makes parallel execution bit-identical to serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.adgraph.failures import (
    FailurePlan,
    random_failure_plan,
    stub_partition_plan,
)
from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.adgraph.graph import InterADGraph
from repro.core.evaluation import sample_flows
from repro.faults.channel import Impairment
from repro.faults.misbehavior import MisbehaviorPlan, misbehavior_plan
from repro.faults.plan import (
    FaultPlan,
    ad_crash_plan,
    churn_storm_plan,
    link_flap_plan,
    merge_plans,
    partition_plan,
)
from repro.policy.generators import restricted_policies
from repro.workloads.scenarios import (
    Scenario,
    reference_scenario,
    ring_scenario,
    scaled_scenario,
    small_scenario,
)


@dataclass(frozen=True)
class ScenarioSpec:
    """Recipe for one topology + policies + flow sample.

    ``kind`` selects the builder:

    * ``"reference"`` -- :func:`~repro.workloads.scenarios.reference_scenario`;
    * ``"small"``     -- :func:`~repro.workloads.scenarios.small_scenario`;
    * ``"ring"``      -- :func:`~repro.workloads.scenarios.ring_scenario`
      (a lateral transit ring; ``target_ads`` sets the size, default 8);
    * ``"scaled"``    -- :func:`~repro.workloads.scenarios.scaled_scenario`
      (set ``target_ads``);
    * ``"custom"``    -- explicit ``topology`` shape parameters with
      independently seeded policies (``policy_seed``) and flows
      (``flows_seed``), as the availability sweep (E3) needs.
    """

    kind: str = "reference"
    seed: int = 0
    num_flows: int = 60
    restrictiveness: float = 0.3
    target_ads: int = 0
    topology: Optional[Tuple[Tuple[str, int], ...]] = None
    flows_seed: Optional[int] = None
    policy_seed: Optional[int] = None

    def build(self) -> Scenario:
        if self.kind == "reference":
            return reference_scenario(
                seed=self.seed,
                num_flows=self.num_flows,
                restrictiveness=self.restrictiveness,
            )
        if self.kind == "small":
            return small_scenario(seed=self.seed, num_flows=self.num_flows)
        if self.kind == "ring":
            return ring_scenario(
                num_ads=self.target_ads or 8,
                seed=self.seed,
                num_flows=self.num_flows,
            )
        if self.kind == "scaled":
            return scaled_scenario(
                self.target_ads,
                seed=self.seed,
                num_flows=self.num_flows,
                restrictiveness=self.restrictiveness,
            )
        if self.kind == "custom":
            if self.topology is None:
                raise ValueError("custom scenario needs topology parameters")
            graph = generate_internet(TopologyConfig(**dict(self.topology)))
            policy = restricted_policies(
                graph,
                self.restrictiveness,
                seed=self.seed if self.policy_seed is None else self.policy_seed,
            )
            flows = sample_flows(
                graph,
                self.num_flows,
                seed=self.seed + 1 if self.flows_seed is None else self.flows_seed,
            )
            return Scenario(
                name=f"custom(seed={self.seed})",
                graph=graph,
                policy_scenario=policy,
                flows=flows,
            )
        raise ValueError(f"unknown scenario kind {self.kind!r}")

    def describe(self) -> Dict[str, Any]:
        """Cell-key fragment (only the parameters that are set)."""
        out: Dict[str, Any] = {"kind": self.kind, "seed": self.seed}
        if self.kind in ("scaled", "ring"):
            out["target_ads"] = self.target_ads
        if self.topology is not None:
            out["topology"] = dict(self.topology)
        out["restrictiveness"] = self.restrictiveness
        out["num_flows"] = self.num_flows
        return out


@dataclass(frozen=True)
class ProtocolSpec:
    """Recipe for one protocol construction via the registry.

    ``options`` is a tuple of (name, value) pairs forwarded to
    :func:`~repro.protocols.registry.make_protocol`; ``label`` is the
    display name used in tables (defaults to the registry name).
    """

    name: str
    label: Optional[str] = None
    options: Tuple[Tuple[str, Any], ...] = ()

    @property
    def display(self) -> str:
        return self.label or self.name

    def instantiate(self, graph: InterADGraph, policies):
        from repro.protocols.registry import make_protocol

        return make_protocol(self.name, graph, policies, **dict(self.options))


@dataclass(frozen=True)
class FailureSpec:
    """Recipe for a failure plan, rebuilt from the graph inside a cell.

    Kinds: ``"none"`` (pure initial convergence), ``"random"``
    (:func:`~repro.adgraph.failures.random_failure_plan` over non-bridge
    links), ``"stub_partition"``
    (:func:`~repro.adgraph.failures.stub_partition_plan`).
    """

    kind: str = "none"
    count: int = 0
    seed: int = 0
    start_time: float = 100.0
    spacing: float = 500.0
    repair: bool = True
    label: Optional[str] = None

    @property
    def display(self) -> str:
        return self.label or self.kind

    def build(self, graph: InterADGraph) -> Optional[FailurePlan]:
        if self.kind == "none":
            return None
        if self.kind == "random":
            return random_failure_plan(
                graph,
                count=self.count,
                start_time=self.start_time,
                spacing=self.spacing,
                repair=self.repair,
                seed=self.seed,
            )
        if self.kind == "stub_partition":
            return stub_partition_plan(
                graph,
                count=self.count,
                start_time=self.start_time,
                spacing=self.spacing,
            )
        raise ValueError(f"unknown failure kind {self.kind!r}")


@dataclass(frozen=True)
class FaultSpec:
    """Recipe for the robustness axis: channel impairment + churn timeline.

    The impairment (``loss``/``dup``/``jitter``/burst parameters) is in
    force for the whole run, including initial convergence -- that is the
    regime the hardening toggles are measured against.  ``flaps`` and
    ``crashes`` build a post-convergence churn timeline (link flaps
    first, AD crash/restart cycles after), probed by RoutePulse every
    ``probe_interval`` over the scenario's first ``probe_flows`` flows.

    The default spec is completely inert: no channel is attached and no
    timeline runs, keeping legacy cells byte-identical.
    """

    loss: float = 0.0
    dup: float = 0.0
    jitter: float = 0.0
    burst_enter: float = 0.0
    burst_exit: float = 0.5
    flaps: int = 0
    crashes: int = 0
    retain_state: bool = False
    #: Churn storm (E13): ``churn_hz`` > 0 flaps ``churn_links`` links
    #: concurrently at that frequency for ``churn_duration``, after the
    #: sequenced flaps/crashes (if any).
    churn_hz: float = 0.0
    churn_links: int = 3
    churn_duration: float = 400.0
    #: Chaos program (E15): ``restarts`` > 0 runs that many rolling AD
    #: crash/restart cycles (state retained -- a maintenance restart, the
    #: regime graceful restart is measured against) and ``partitions``
    #: > 0 adds that many bounded partition windows afterwards.  Chaotic
    #: cells take the episodic chaos driver
    #: (:mod:`repro.harness.chaos`), which runs on BOTH substrates,
    #: instead of the legacy sim fault timeline.
    restarts: int = 0
    partitions: int = 0
    partition_fraction: float = 0.3
    #: Mixed-version upgrade program (E16): ``upgrade_waves`` > 0 starts
    #: every AD at wire v1 (negotiating) and upgrades the population to
    #: the current wire version in that many rolling waves, measuring a
    #: mixed-population epoch mid-flight; ``rollback`` adds a downgrade/
    #: re-upgrade leg for the last wave.  Versioned cells take the
    #: version-skew driver (:mod:`repro.harness.chaos`), which runs on
    #: BOTH substrates like the chaos driver.
    upgrade_waves: int = 0
    rollback: bool = False
    #: Bounded ingress queue (E13): ``queue_capacity`` >= 0 attaches an
    #: :class:`~repro.simul.ingress.IngressModel` after initial
    #: convergence; ``None`` keeps the unbounded legacy delivery.
    queue_capacity: Optional[int] = None
    queue_policy: str = "tail-drop"
    queue_service: float = 0.5
    seed: int = 0
    start_time: float = 100.0
    spacing: float = 400.0
    probe_interval: float = 50.0
    probe_flows: int = 8
    label: Optional[str] = None

    @property
    def impaired(self) -> bool:
        """Whether any channel impairment is configured."""
        return (
            self.loss > 0
            or self.dup > 0
            or self.jitter > 0
            or self.burst_enter > 0
        )

    @property
    def churns(self) -> bool:
        """Whether a churn timeline (flaps/crashes/storm) is configured."""
        return self.flaps > 0 or self.crashes > 0 or self.churn_hz > 0

    @property
    def queued(self) -> bool:
        """Whether a bounded ingress queue is configured."""
        return self.queue_capacity is not None

    @property
    def chaotic(self) -> bool:
        """Whether a chaos program (rolling restarts/partitions) runs."""
        return self.restarts > 0 or self.partitions > 0

    @property
    def versioned(self) -> bool:
        """Whether a mixed-version upgrade program (E16) runs."""
        return self.upgrade_waves > 0

    @property
    def active(self) -> bool:
        return self.impaired or self.churns or self.queued

    @property
    def display(self) -> str:
        if self.label:
            return self.label
        if not (self.active or self.chaotic or self.versioned):
            return "none"
        parts = []
        if self.loss > 0:
            parts.append(f"loss={self.loss:g}")
        if self.dup > 0:
            parts.append(f"dup={self.dup:g}")
        if self.jitter > 0:
            parts.append(f"jitter={self.jitter:g}")
        if self.burst_enter > 0:
            parts.append(f"burst={self.burst_enter:g}")
        if self.flaps > 0:
            parts.append(f"flaps={self.flaps}")
        if self.crashes > 0:
            parts.append(f"crashes={self.crashes}")
        if self.churn_hz > 0:
            parts.append(f"churn={self.churn_hz:g}Hz")
        if self.queue_capacity is not None:
            parts.append(f"queue={self.queue_capacity}")
        if self.restarts > 0:
            parts.append(f"restarts={self.restarts}")
        if self.partitions > 0:
            parts.append(f"partitions={self.partitions}")
        if self.upgrade_waves > 0:
            parts.append(f"waves={self.upgrade_waves}")
        if self.rollback:
            parts.append("rollback")
        return ",".join(parts)

    def impairment(self) -> Impairment:
        return Impairment(
            drop_prob=self.loss,
            dup_prob=self.dup,
            jitter=self.jitter,
            burst_enter=self.burst_enter,
            burst_exit=self.burst_exit,
        )

    def build_plan(self, graph: InterADGraph) -> FaultPlan:
        """The churn timeline (empty when only impairment is configured)."""
        plans = []
        if self.flaps > 0:
            plans.append(
                link_flap_plan(
                    graph,
                    flaps=self.flaps,
                    start_time=self.start_time,
                    spacing=self.spacing,
                    seed=self.seed,
                )
            )
        if self.crashes > 0:
            plans.append(
                ad_crash_plan(
                    graph,
                    crashes=self.crashes,
                    retain_state=self.retain_state,
                    start_time=self.start_time + self.flaps * self.spacing,
                    spacing=self.spacing,
                    seed=self.seed + 1,
                )
            )
        if self.churn_hz > 0:
            plans.append(
                churn_storm_plan(
                    graph,
                    hz=self.churn_hz,
                    links=self.churn_links,
                    start_time=self.start_time
                    + (self.flaps + self.crashes) * self.spacing,
                    duration=self.churn_duration,
                    seed=self.seed + 2,
                )
            )
        return merge_plans(*plans) if plans else FaultPlan(())

    @property
    def horizon(self) -> float:
        """Probing window length: the timeline plus one settle period."""
        horizon = self.start_time + (self.flaps + self.crashes) * self.spacing
        if self.churn_hz > 0:
            horizon += self.churn_duration + self.spacing
        return horizon

    def build_chaos_plan(self, graph: InterADGraph) -> FaultPlan:
        """The E15 chaos timeline: rolling restarts, then partitions.

        Restarts are crash/restart cycles with state retained (each AD
        is down for half a ``spacing`` window -- shorter than the
        default graceful-restart hold time, so a helper-enabled
        neighbourhood rides the restart out).  Each partition window
        cuts a seeded island of ``partition_fraction`` of the ADs loose
        for half a spacing window, then heals it.
        """
        plans = []
        if self.restarts > 0:
            plans.append(
                ad_crash_plan(
                    graph,
                    crashes=self.restarts,
                    retain_state=True,
                    start_time=self.start_time,
                    spacing=self.spacing,
                    down_for=self.spacing / 2.0,
                    seed=self.seed,
                )
            )
        partition_start = self.start_time + self.restarts * self.spacing
        for i in range(self.partitions):
            plans.append(
                partition_plan(
                    graph,
                    start_time=partition_start + i * self.spacing,
                    duration=self.spacing / 2.0,
                    fraction=self.partition_fraction,
                    seed=self.seed + 3 + i,
                )
            )
        return merge_plans(*plans) if plans else FaultPlan(())


@dataclass(frozen=True)
class MisbehaviorSpec:
    """Recipe for the misbehaving-AD axis: who lies, how, and when.

    The default spec is inert (no liar).  ``liar_ad`` pins the liar
    explicitly; otherwise ``liar_role`` picks the seeded highest-degree
    AD of that role (``"stub"``, ``"regional"``, ``"backbone"``) inside
    the cell, so the same spec names a comparable liar in every
    scenario.  ``duration`` > 0 schedules a reversion to honesty.
    """

    lie: str = ""
    liar_role: str = "backbone"
    liar_ad: int = -1
    start_time: float = 150.0
    duration: float = 0.0
    seed: int = 0
    label: Optional[str] = None

    #: How long after the lie starts RoutePulse keeps probing: covers
    #: the liar's bounded re-assertion window plus containment settling.
    PROBE_WINDOW: float = 600.0

    @property
    def active(self) -> bool:
        return bool(self.lie)

    @property
    def display(self) -> str:
        if self.label:
            return self.label
        if not self.active:
            return "none"
        who = f"ad={self.liar_ad}" if self.liar_ad >= 0 else self.liar_role
        return f"{self.lie}@{who}"

    def build_plan(self, graph: InterADGraph) -> MisbehaviorPlan:
        if not self.active:
            return MisbehaviorPlan(())
        return misbehavior_plan(
            graph,
            self.lie,
            liar=self.liar_ad if self.liar_ad >= 0 else None,
            role=self.liar_role,
            start_time=self.start_time,
            duration=self.duration,
            seed=self.seed,
        )

    @property
    def horizon(self) -> float:
        """Probing window length when the spec is active."""
        return self.start_time + max(self.duration, 0.0) + self.PROBE_WINDOW


@dataclass(frozen=True)
class TrafficSpec:
    """Recipe for the data-plane axis: a zipf workload replayed through
    compiled FIBs at every convergence epoch (E14).

    The default spec is inert -- no workload is generated, no FIBs are
    compiled, and legacy cells stay byte-identical.  With ``flows`` > 0
    the session generates the workload once per cell, compiles a FIB
    after initial convergence, re-snapshots it at every RoutePulse
    sample during the fault timeline, and attaches the epoch series to
    the record's ``dataplane`` block.
    """

    flows: int = 0
    zipf_s: float = 1.1
    pairs: int = 4096
    seed: int = 0
    hour: int = 12
    enforce_policy: bool = True
    label: Optional[str] = None

    @property
    def active(self) -> bool:
        return self.flows > 0

    @property
    def display(self) -> str:
        if self.label:
            return self.label
        if not self.active:
            return "none"
        return f"{self.flows}f/s={self.zipf_s:g}"

    def workload_spec(self):
        from repro.traffic.workload import WorkloadSpec

        return WorkloadSpec(
            flows=self.flows,
            zipf_s=self.zipf_s,
            pairs=self.pairs,
            seed=self.seed,
            hour=self.hour,
        )

    def build(self, graph: InterADGraph):
        from repro.traffic.workload import zipf_workload

        return zipf_workload(graph, self.workload_spec())


@dataclass(frozen=True)
class Cell:
    """One fully-specified run: the unit of parallel execution."""

    experiment: str
    index: int
    scenario: ScenarioSpec
    protocol: ProtocolSpec
    failure: FailureSpec
    fault: FaultSpec = FaultSpec()
    misbehavior: MisbehaviorSpec = MisbehaviorSpec()
    traffic: TrafficSpec = TrafficSpec()
    evaluate: bool = False
    max_events: int = 5_000_000
    trace: Optional[str] = None
    #: Execution substrate: ``"sim"`` (discrete-event engine) or
    #: ``"live"`` (asyncio/UDP via :mod:`repro.live`).  Live cells
    #: support the scenario x protocol x failure axes; the sim-only
    #: axes (impairments, misbehavior, tracing) are rejected loudly.
    substrate: str = "sim"

    def key(self) -> Dict[str, Any]:
        """The record's ``cell`` mapping (sortable, JSON-friendly)."""
        return {
            "index": self.index,
            "scenario": self.scenario.describe(),
            "protocol": self.protocol.name,
            "label": self.protocol.display,
            "options": dict(self.protocol.options),
            "failure": self.failure.display,
            "fault": self.fault.display,
            "misbehavior": self.misbehavior.display,
            "traffic": self.traffic.display,
            "substrate": self.substrate,
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """The declarative input to an :class:`~repro.harness.session.ExperimentSession`.

    The cell grid is the cross product scenarios × seeds × protocols ×
    failures, expanded in that (deterministic) nesting order.  An empty
    ``seeds`` tuple keeps each scenario's own seed; otherwise every seed
    re-seeds every scenario (the seed-sweep axis).
    """

    name: str
    scenarios: Tuple[ScenarioSpec, ...]
    protocols: Tuple[ProtocolSpec, ...]
    seeds: Tuple[int, ...] = ()
    failures: Tuple[FailureSpec, ...] = (FailureSpec(),)
    faults: Tuple[FaultSpec, ...] = (FaultSpec(),)
    misbehaviors: Tuple[MisbehaviorSpec, ...] = (MisbehaviorSpec(),)
    traffics: Tuple[TrafficSpec, ...] = (TrafficSpec(),)
    evaluate: bool = False
    max_events: int = 5_000_000
    trace: Optional[str] = None
    substrate: str = "sim"
    #: Substrate sweep axis (E15): each cell is expanded once per listed
    #: substrate, innermost, so sim/live twins of the same design point
    #: sit adjacent in the grid.  Empty keeps the single ``substrate``.
    substrates: Tuple[str, ...] = ()

    def cells(self) -> List[Cell]:
        expanded: List[Cell] = []
        scenario_axis: List[ScenarioSpec] = []
        for scenario in self.scenarios:
            if self.seeds:
                scenario_axis.extend(
                    replace(scenario, seed=seed) for seed in self.seeds
                )
            else:
                scenario_axis.append(scenario)
        substrate_axis = self.substrates or (self.substrate,)
        index = 0
        for scenario in scenario_axis:
            for protocol in self.protocols:
                for failure in self.failures:
                    for fault in self.faults:
                        for misbehavior in self.misbehaviors:
                            for traffic in self.traffics:
                                for substrate in substrate_axis:
                                    expanded.append(
                                        Cell(
                                            experiment=self.name,
                                            index=index,
                                            scenario=scenario,
                                            protocol=protocol,
                                            failure=failure,
                                            fault=fault,
                                            misbehavior=misbehavior,
                                            traffic=traffic,
                                            evaluate=self.evaluate,
                                            max_events=self.max_events,
                                            trace=self.trace,
                                            substrate=substrate,
                                        )
                                    )
                                    index += 1
        return expanded
