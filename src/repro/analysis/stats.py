"""Summary statistics for experiment series."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.3g} sd={self.stdev:.3g} "
            f"min={self.minimum:.3g} p50={self.p50:.3g} "
            f"p95={self.p95:.3g} max={self.maximum:.3g}"
        )


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted values, q in [0, 1]."""
    if not sorted_values:
        raise ValueError("empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0,1], got {q}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return float(sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac)


def summarize(values: Iterable[float]) -> Summary:
    """Summarise a non-empty sample."""
    data: List[float] = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarise an empty sample")
    n = len(data)
    mean = sum(data) / n
    var = sum((v - mean) ** 2 for v in data) / n if n > 1 else 0.0
    return Summary(
        n=n,
        mean=mean,
        stdev=math.sqrt(var),
        minimum=data[0],
        p50=percentile(data, 0.5),
        p95=percentile(data, 0.95),
        maximum=data[-1],
    )
