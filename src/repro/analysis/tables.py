"""Minimal ASCII table rendering for experiment output.

Every benchmark prints its table/figure rows through this, so the
regenerated "paper" artifacts have a uniform look and are easy to diff
between runs.
"""

from __future__ import annotations

from typing import List, Sequence


class Table:
    """A fixed-column ASCII table."""

    def __init__(self, *columns: str, title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: List[List[str]] = []

    def add(self, *values: object) -> None:
        """Add a row; values are str()-ed.  Must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([str(v) for v in values])

    def render(self) -> str:
        """Render the table with a header rule and column alignment."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.columns))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(fmt(row))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
