"""Reporting helpers: ASCII tables and summary statistics."""

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import Table

__all__ = ["Summary", "Table", "summarize"]
