"""Inter-AD topology substrate.

This subpackage models the internet of Section 2 of the paper: a set of
Administrative Domains (ADs) classified by hierarchy level (backbone,
regional, metro, campus) and by role (stub, multi-homed, transit, hybrid),
connected by inter-AD links that are either *hierarchical* (parent/child),
*lateral* (peer/peer at the same level), or *bypass* (a stub reaching over
intermediate levels directly to a wide-area backbone).

The main entry points are:

* :class:`~repro.adgraph.graph.InterADGraph` — the typed topology object all
  protocols operate on.
* :func:`~repro.adgraph.generator.generate_internet` — the Figure-1 style
  topology generator.
* :class:`~repro.adgraph.partial_order.PartialOrder` — the ECMA partial
  ordering with up/down link labelling.
"""

from repro.adgraph.ad import AD, ADKind, InterADLink, Level, LinkKind
from repro.adgraph.expansion import ExpansionConfig, RouterExpansion
from repro.adgraph.failures import FailurePlan, LinkFailure, random_failure_plan
from repro.adgraph.generator import TopologyConfig, generate_internet
from repro.adgraph.graph import InterADGraph
from repro.adgraph.partial_order import (
    OrderConflictError,
    PartialOrder,
    order_from_constraints,
)

__all__ = [
    "AD",
    "ADKind",
    "ExpansionConfig",
    "FailurePlan",
    "RouterExpansion",
    "InterADGraph",
    "InterADLink",
    "Level",
    "LinkFailure",
    "LinkKind",
    "OrderConflictError",
    "PartialOrder",
    "TopologyConfig",
    "generate_internet",
    "order_from_constraints",
    "random_failure_plan",
]
