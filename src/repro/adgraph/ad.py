"""Administrative Domains and inter-AD links.

The paper (Section 2.1) models the internet as a hierarchy of ADs --
long-haul backbones at the top, then regional, metropolitan, and campus
networks -- augmented with *lateral* links between peers and *bypass* links
that skip levels of the hierarchy.  ADs are further classified by the
transit role they play: *stub* (no transit), *multi-homed* (several
connections, still no transit), *transit* (primary function is carrying
other ADs' traffic), and *hybrid* (end-system access plus limited transit).

Everything here is a plain immutable value type; mutable topology state
(link status) lives on :class:`~repro.adgraph.graph.InterADGraph`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Type alias for AD identifiers.  ADs are identified by small integers so
#: that header sizes can be modelled (two bytes per AD id in a source route).
ADId = int

#: Canonical object per AD id, so the dict/set-heavy hot paths (Dijkstra,
#: LSDB scans, adjacency lookups) hit the identity fast path instead of
#: comparing fresh int objects.  CPython only pre-interns ids < 257.
_AD_ID_CACHE: Dict[ADId, ADId] = {}


def intern_ad_id(ad_id: ADId) -> ADId:
    """Return the canonical shared object for an AD id."""
    cached = _AD_ID_CACHE.get(ad_id)
    if cached is None:
        _AD_ID_CACHE[ad_id] = cached = ad_id
    return cached


class Level(enum.IntEnum):
    """Hierarchy level of an AD.

    Lower numeric value means *higher* in the hierarchy.  The paper's
    Figure 1 shows three drawn levels (backbone, regional, campus); the text
    also names metropolitan networks, so we model four.
    """

    BACKBONE = 0
    REGIONAL = 1
    METRO = 2
    CAMPUS = 3

    @property
    def rank(self) -> int:
        """Height above the leaves: campus=0 ... backbone=3.

        Used by the partial ordering: an *up* link goes to a strictly
        higher-ranked AD.
        """
        return int(Level.CAMPUS) - int(self)


class ADKind(enum.Enum):
    """Transit role of an AD (Section 2.1)."""

    STUB = "stub"
    MULTIHOMED = "multihomed"
    TRANSIT = "transit"
    HYBRID = "hybrid"

    @property
    def may_transit(self) -> bool:
        """Whether ADs of this kind ever carry third-party traffic."""
        return self in (ADKind.TRANSIT, ADKind.HYBRID)


class LinkKind(enum.Enum):
    """Kind of an inter-AD link (Figure 1 legend)."""

    HIERARCHICAL = "hierarchical"
    LATERAL = "lateral"
    BYPASS = "bypass"


@dataclass(frozen=True)
class AD:
    """An Administrative Domain.

    Attributes:
        ad_id: Unique small-integer identifier.
        name: Human-readable name (``"bb0"``, ``"reg3"``, ...).
        level: Hierarchy level.
        kind: Transit role.
    """

    ad_id: ADId
    name: str
    level: Level
    kind: ADKind

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(AD{self.ad_id})"


def canonical_link_key(a: ADId, b: ADId) -> Tuple[ADId, ADId]:
    """Return the canonical (sorted) endpoint pair identifying a link."""
    return (a, b) if a <= b else (b, a)


@dataclass
class InterADLink:
    """An undirected inter-AD connection.

    Metrics are per-metric-name costs used by QOS routing (e.g. ``"delay"``,
    ``"cost"``, ``"bandwidth"``); protocols look metrics up through
    :meth:`metric`.  ``up`` is the administrative/operational status and is
    toggled by failure injection.

    Attributes:
        a: One endpoint AD id (canonically the smaller).
        b: Other endpoint AD id.
        kind: Hierarchical, lateral, or bypass.
        metrics: Mapping from metric name to non-negative cost.
        up: Operational status.
    """

    a: ADId
    b: ADId
    kind: LinkKind
    metrics: Dict[str, float] = field(default_factory=dict)
    up: bool = True

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"self-link at AD {self.a}")
        if self.a > self.b:
            self.a, self.b = self.b, self.a
        self.a = intern_ad_id(self.a)
        self.b = intern_ad_id(self.b)
        for name, value in self.metrics.items():
            if value < 0:
                raise ValueError(f"negative metric {name}={value}")

    @property
    def key(self) -> Tuple[ADId, ADId]:
        """Canonical (smaller, larger) endpoint pair."""
        return (self.a, self.b)

    def other(self, ad_id: ADId) -> ADId:
        """Return the endpoint opposite ``ad_id``."""
        if ad_id == self.a:
            return self.b
        if ad_id == self.b:
            return self.a
        raise ValueError(f"AD {ad_id} is not an endpoint of link {self.key}")

    def metric(self, name: str, default: float = 1.0) -> float:
        """Look up a metric, defaulting to unit cost for unknown names."""
        return self.metrics.get(name, default)


#: Default metric names attached by the topology generator.
DEFAULT_METRICS = ("delay", "cost")
