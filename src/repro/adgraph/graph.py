"""Typed inter-AD topology graph.

:class:`InterADGraph` wraps a :class:`networkx.Graph` with AD/link value
types and the small query surface the protocols need: neighbours, live
links, link lookup, status changes, and deterministic iteration order.

Protocols treat the graph as ground truth for *physical* connectivity; what
each protocol node actually *knows* about the topology is up to the
protocol (DV nodes only ever see their neighbours, LS nodes flood).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx

from repro.adgraph.ad import (
    AD,
    ADId,
    ADKind,
    InterADLink,
    Level,
    LinkKind,
    canonical_link_key,
    intern_ad_id,
)


class InterADGraph:
    """The inter-AD topology: ADs as nodes, inter-AD links as edges.

    The graph is undirected.  Iteration orders (``ads()``, ``links()``,
    ``neighbors()``) are deterministic: sorted by AD id / link key, so that
    simulations are reproducible run to run.
    """

    def __init__(self) -> None:
        self._g = nx.Graph()
        self._ads: Dict[ADId, AD] = {}
        self._links: Dict[Tuple[ADId, ADId], InterADLink] = {}
        # Per-AD adjacency (neighbour -> link) and a lazily built sorted
        # incident-link cache.  Both are structure-only: link *status*
        # changes need no invalidation (links_of filters ``up`` per call),
        # only add_link/remove_link do.
        self._adj: Dict[ADId, Dict[ADId, InterADLink]] = {}
        self._incident: Dict[ADId, Tuple[InterADLink, ...]] = {}

    # ------------------------------------------------------------------ ADs

    def add_ad(self, ad: AD) -> AD:
        """Register an AD.  Raises ``ValueError`` on duplicate id."""
        if ad.ad_id in self._ads:
            raise ValueError(f"duplicate AD id {ad.ad_id}")
        ad_id = intern_ad_id(ad.ad_id)
        self._ads[ad_id] = ad
        self._adj[ad_id] = {}
        self._g.add_node(ad_id)
        return ad

    def ad(self, ad_id: ADId) -> AD:
        """Look up an AD by id."""
        return self._ads[ad_id]

    def has_ad(self, ad_id: ADId) -> bool:
        return ad_id in self._ads

    def ads(self) -> List[AD]:
        """All ADs, sorted by id."""
        return [self._ads[i] for i in sorted(self._ads)]

    def ad_ids(self) -> List[ADId]:
        """All AD ids, sorted."""
        return sorted(self._ads)

    def ads_by_level(self, level: Level) -> List[AD]:
        return [a for a in self.ads() if a.level == level]

    def ads_by_kind(self, kind: ADKind) -> List[AD]:
        return [a for a in self.ads() if a.kind == kind]

    def transit_ads(self) -> List[AD]:
        """ADs whose kind permits carrying third-party traffic."""
        return [a for a in self.ads() if a.kind.may_transit]

    def stub_ads(self) -> List[AD]:
        """ADs that never carry transit traffic (stub + multi-homed)."""
        return [a for a in self.ads() if not a.kind.may_transit]

    @property
    def num_ads(self) -> int:
        return len(self._ads)

    # ---------------------------------------------------------------- links

    def add_link(self, link: InterADLink) -> InterADLink:
        """Register a link.  Both endpoints must already exist."""
        for end in (link.a, link.b):
            if end not in self._ads:
                raise ValueError(f"link endpoint AD {end} not in graph")
        if link.key in self._links:
            raise ValueError(f"duplicate link {link.key}")
        self._links[link.key] = link
        self._adj[link.a][link.b] = link
        self._adj[link.b][link.a] = link
        self._incident.pop(link.a, None)
        self._incident.pop(link.b, None)
        self._g.add_edge(link.a, link.b)
        return link

    def remove_link(self, a: ADId, b: ADId) -> InterADLink:
        """Delete a link entirely (endpoints stay).  ``KeyError`` if absent."""
        link = self._links.pop(canonical_link_key(a, b))
        del self._adj[link.a][link.b]
        del self._adj[link.b][link.a]
        self._incident.pop(link.a, None)
        self._incident.pop(link.b, None)
        self._g.remove_edge(link.a, link.b)
        return link

    def connect(
        self,
        a: ADId,
        b: ADId,
        kind: LinkKind = LinkKind.HIERARCHICAL,
        metrics: Optional[Dict[str, float]] = None,
    ) -> InterADLink:
        """Convenience: build and add a link in one call."""
        return self.add_link(InterADLink(a, b, kind, dict(metrics or {})))

    def link(self, a: ADId, b: ADId) -> InterADLink:
        """Look up the link between two ADs (order-insensitive)."""
        return self._links[canonical_link_key(a, b)]

    def link_if_exists(self, a: ADId, b: ADId) -> Optional[InterADLink]:
        """The link between two ADs, or ``None`` (no tuple allocation)."""
        adj = self._adj.get(a)
        return None if adj is None else adj.get(b)

    def has_link(self, a: ADId, b: ADId) -> bool:
        adj = self._adj.get(a)
        return adj is not None and b in adj

    def links(self, include_down: bool = True) -> List[InterADLink]:
        """All links in canonical key order; optionally only live ones."""
        out = [self._links[k] for k in sorted(self._links)]
        if not include_down:
            out = [ln for ln in out if ln.up]
        return out

    def links_of(self, ad_id: ADId, include_down: bool = False) -> List[InterADLink]:
        """Links incident to ``ad_id`` (live only by default), sorted."""
        inc = self._incident.get(ad_id)
        if inc is None:
            adj = self._adj[ad_id]
            inc = tuple(adj[nbr] for nbr in sorted(adj))
            self._incident[ad_id] = inc
        if include_down:
            return list(inc)
        return [ln for ln in inc if ln.up]

    def neighbors(self, ad_id: ADId, include_down: bool = False) -> List[ADId]:
        """Neighbouring AD ids over live links (sorted)."""
        return [
            ln.b if ln.a == ad_id else ln.a
            for ln in self.links_of(ad_id, include_down)
        ]

    def degree(self, ad_id: ADId) -> int:
        """Number of live incident links."""
        return len(self.links_of(ad_id))

    @property
    def num_links(self) -> int:
        return len(self._links)

    def set_link_status(self, a: ADId, b: ADId, up: bool) -> InterADLink:
        """Mark a link up or down; returns the link."""
        ln = self.link(a, b)
        ln.up = up
        return ln

    # ------------------------------------------------------------- analysis

    def nx_graph(self, live_only: bool = True) -> nx.Graph:
        """Export a plain networkx graph (optionally live links only).

        Edge attributes carry the link's metrics and kind so that standard
        networkx algorithms can be applied directly.
        """
        g = nx.Graph()
        g.add_nodes_from(self.ad_ids())
        for ln in self.links():
            if live_only and not ln.up:
                continue
            g.add_edge(ln.a, ln.b, kind=ln.kind, **ln.metrics)
        return g

    def is_connected(self, live_only: bool = True) -> bool:
        """Whether the (live) topology is a single connected component."""
        g = self.nx_graph(live_only=live_only)
        if g.number_of_nodes() == 0:
            return True
        return nx.is_connected(g)

    def link_kind_counts(self) -> Dict[LinkKind, int]:
        """Histogram of link kinds (all links, up or down)."""
        counts = {kind: 0 for kind in LinkKind}
        for ln in self.links():
            counts[ln.kind] += 1
        return counts

    def level_counts(self) -> Dict[Level, int]:
        """Histogram of AD levels."""
        counts = {level: 0 for level in Level}
        for ad in self.ads():
            counts[ad.level] += 1
        return counts

    def kind_counts(self) -> Dict[ADKind, int]:
        """Histogram of AD kinds."""
        counts = {kind: 0 for kind in ADKind}
        for ad in self.ads():
            counts[ad.kind] += 1
        return counts

    def copy(self) -> "InterADGraph":
        """Deep-enough copy: shares AD value objects, copies link state."""
        out = InterADGraph()
        for ad in self.ads():
            out.add_ad(ad)
        for ln in self.links():
            out.add_link(InterADLink(ln.a, ln.b, ln.kind, dict(ln.metrics), ln.up))
        return out

    def __contains__(self, ad_id: object) -> bool:
        return ad_id in self._ads

    def __iter__(self) -> Iterator[ADId]:
        return iter(self.ad_ids())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InterADGraph(ads={self.num_ads}, links={self.num_links})"
