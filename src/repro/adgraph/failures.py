"""Failure models for inter-AD links.

Section 2.2 of the paper assumes intra-AD partitions are rare (ADs keep
themselves internally connected) but that inter-AD links do fail, so the
routing protocols "must be somewhat adaptive to changes in inter-AD
topology".  Convergence experiments (E4) inject failures from a
:class:`FailurePlan` built here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.adgraph.ad import ADId, LinkKind
from repro.adgraph.graph import InterADGraph


@dataclass(frozen=True)
class LinkFailure:
    """A scheduled status change of one link.

    Attributes:
        time: Simulated time at which the change takes effect.
        a: One endpoint.
        b: Other endpoint.
        up: New status (``False`` = failure, ``True`` = repair).
    """

    time: float
    a: ADId
    b: ADId
    up: bool = False


@dataclass(frozen=True)
class FailurePlan:
    """An ordered sequence of link status changes."""

    events: Tuple[LinkFailure, ...]

    def __post_init__(self) -> None:
        times = [e.time for e in self.events]
        if times != sorted(times):
            raise ValueError("failure events must be time-ordered")

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


def safe_failure_candidates(graph: InterADGraph) -> List[Tuple[ADId, ADId]]:
    """Links whose individual failure leaves the internet connected.

    Convergence experiments fail one link at a time and expect the
    protocols to find alternate routes; failing a cut link would instead
    measure partition behaviour, so candidates exclude bridges.
    """
    import networkx as nx

    g = graph.nx_graph(live_only=True)
    bridges = set(nx.bridges(g))
    bridges |= {(b, a) for a, b in bridges}
    return [ln.key for ln in graph.links(include_down=False) if ln.key not in bridges]


def random_failure_plan(
    graph: InterADGraph,
    count: int = 1,
    start_time: float = 100.0,
    spacing: float = 500.0,
    repair: bool = False,
    kinds: Optional[Sequence[LinkKind]] = None,
    seed: int = 0,
) -> FailurePlan:
    """Build a plan failing ``count`` random non-bridge links.

    Failures are spaced ``spacing`` time units apart so each reconvergence
    can be measured in isolation.  With ``repair=True`` every failure is
    followed by a repair half a spacing later, so candidacy is judged
    once against the intact graph; without repairs the failures
    accumulate and candidacy is recomputed after each pick.

    Args:
        graph: Topology to draw links from.
        count: Number of links to fail.
        start_time: Time of the first failure.
        spacing: Gap between consecutive failures.
        repair: Whether to schedule repairs.
        kinds: Restrict candidates to these link kinds (default: any).
        seed: RNG seed.
    """
    rng = random.Random(seed)

    def pool_of(g: InterADGraph) -> List[Tuple[ADId, ADId]]:
        cands = safe_failure_candidates(g)
        if kinds is not None:
            wanted = set(kinds)
            cands = [key for key in cands if g.link(*key).kind in wanted]
        return cands

    if repair:
        candidates = pool_of(graph)
        if len(candidates) < count:
            raise ValueError(
                f"only {len(candidates)} safe candidate links, need {count}"
            )
        chosen = rng.sample(candidates, count)
    else:
        # Without repairs the failures accumulate, so bridge candidacy
        # must be recomputed against the already-failed topology: a link
        # that is safe in the intact graph can become the last remaining
        # path once earlier picks are down.
        scratch = graph.copy()
        chosen = []
        for _ in range(count):
            pool = pool_of(scratch)
            if not pool:
                raise ValueError(
                    f"no safe candidate links left after "
                    f"{len(chosen)} accumulated failures, need {count}"
                )
            key = rng.choice(pool)
            chosen.append(key)
            scratch.set_link_status(*key, False)
    events: List[LinkFailure] = []
    t = start_time
    for a, b in chosen:
        events.append(LinkFailure(t, a, b, up=False))
        if repair:
            events.append(LinkFailure(t + spacing / 2.0, a, b, up=True))
        t += spacing
    return FailurePlan(tuple(events))


def stub_partition_plan(
    graph: InterADGraph,
    count: int = 1,
    start_time: float = 100.0,
    spacing: float = 500.0,
) -> FailurePlan:
    """Fail (and repair) the single access link of ``count`` stub ADs.

    Each failure partitions one singly-homed stub from the rest of the
    internet -- the event class where naive DV counts to infinity (E4's
    "partition" events).  The repair follows half a spacing later so each
    partition is measured in isolation.
    """
    events: List[LinkFailure] = []
    t = start_time
    stubs = [a for a in graph.stub_ads() if graph.degree(a.ad_id) == 1]
    if len(stubs) < count:
        raise ValueError(
            f"only {len(stubs)} singly-homed stub ADs, need {count}"
        )
    for ad in stubs[:count]:
        link = graph.links_of(ad.ad_id)[0]
        events.append(LinkFailure(t, link.a, link.b, up=False))
        events.append(LinkFailure(t + spacing / 2.0, link.a, link.b, up=True))
        t += spacing
    return FailurePlan(tuple(events))
