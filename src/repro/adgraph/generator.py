"""Figure-1 style topology generator.

Section 2.1 of the paper describes the expected inter-AD topology as "a
hierarchy augmented with special purpose lateral links between some stub
networks and between transit networks, as well as special purpose bypass
links between stub networks and wide area backbone networks".  Figure 1
draws an example: backbones at the top (interconnected), regional networks
under them, campus networks at the leaves, plus dashed lateral links and
bold bypass links.

:func:`generate_internet` produces exactly that family of topologies,
parameterised by :class:`TopologyConfig`.  All randomness flows through a
single seeded :class:`random.Random`, so a given config is perfectly
reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.adgraph.ad import AD, ADId, ADKind, InterADLink, Level, LinkKind
from repro.adgraph.graph import InterADGraph

#: Delay ranges (simulated milliseconds) per link kind; backbone-backbone
#: laterals are long-haul and drawn from a wider range.
_DELAY_RANGES: Dict[LinkKind, Tuple[float, float]] = {
    LinkKind.HIERARCHICAL: (5.0, 15.0),
    LinkKind.LATERAL: (3.0, 12.0),
    LinkKind.BYPASS: (8.0, 20.0),
}
_BACKBONE_DELAY_RANGE = (10.0, 30.0)
_COST_RANGE = (1.0, 10.0)

#: Bandwidth ranges (simulated Mb/s, 1990-flavoured: T1=1.5, T3=45) by how
#: deep in the hierarchy the link sits.
_BANDWIDTH_BACKBONE = (34.0, 45.0)
_BANDWIDTH_MIDDLE = (10.0, 45.0)
_BANDWIDTH_EDGE = (1.5, 10.0)


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters for :func:`generate_internet`.

    The defaults give a small Figure-1 like internet of ~35 ADs.  Increase
    the per-level fan-outs (or use :func:`scaled_config`) for larger
    internets; the *shape* (hierarchy + exception-link density) is
    preserved.

    Attributes:
        num_backbones: Long-haul backbone ADs; they are fully meshed with
            lateral (peer) links.
        regionals_per_backbone: Regional transit ADs attached to each
            backbone.
        metros_per_regional: Metropolitan ADs under each regional; ``0``
            collapses the metro level (regionals parent campuses directly),
            matching the three drawn levels of Figure 1.
        campuses_per_parent: Campus (leaf) ADs under each lowest transit AD.
        lateral_prob: Probability that a pair of sibling transit ADs gets a
            lateral link; half that probability applies to random
            cross-parent same-level pairs and to campus-campus laterals.
        bypass_prob: Probability that a campus gets a bypass link directly
            to a random backbone.
        multihome_prob: Probability that a campus is multi-homed to a second
            parent (remaining a no-transit AD).
        hybrid_fraction: Fraction of regional/metro ADs that are *hybrid*
            (end-system access + limited transit) rather than pure transit.
        seed: Seed for all randomness.
    """

    num_backbones: int = 2
    regionals_per_backbone: int = 3
    metros_per_regional: int = 0
    campuses_per_parent: int = 3
    lateral_prob: float = 0.3
    bypass_prob: float = 0.1
    multihome_prob: float = 0.15
    hybrid_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_backbones < 1:
            raise ValueError("need at least one backbone")
        if self.regionals_per_backbone < 1:
            raise ValueError("need at least one regional per backbone")
        for name in ("lateral_prob", "bypass_prob", "multihome_prob", "hybrid_fraction"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")

    def expected_size(self) -> int:
        """Rough expected AD count for this config."""
        regionals = self.num_backbones * self.regionals_per_backbone
        metros = regionals * self.metros_per_regional
        parents = metros if self.metros_per_regional else regionals
        campuses = parents * self.campuses_per_parent
        return self.num_backbones + regionals + metros + campuses


def scaled_config(target_ads: int, seed: int = 0, **overrides: object) -> TopologyConfig:
    """Build a config whose expected size approximates ``target_ads``.

    Keeps the Figure-1 shape: backbones grow with the cube root of the
    target, regionals with the square root, campuses absorb the rest.
    """
    if target_ads < 6:
        raise ValueError("target_ads must be at least 6")
    num_backbones = max(1, round(target_ads ** (1.0 / 3.0) / 2))
    regionals_per_backbone = max(2, round(math.sqrt(target_ads) / num_backbones))
    transit = num_backbones * (1 + regionals_per_backbone)
    campuses_per_parent = max(
        1, round((target_ads - transit) / (num_backbones * regionals_per_backbone))
    )
    cfg = TopologyConfig(
        num_backbones=num_backbones,
        regionals_per_backbone=regionals_per_backbone,
        campuses_per_parent=campuses_per_parent,
        seed=seed,
    )
    if overrides:
        cfg = replace(cfg, **overrides)  # type: ignore[arg-type]
    return cfg


class _Builder:
    """Accumulates ADs/links before kinds are final, then emits the graph."""

    def __init__(self, rng: random.Random, seed: int = 0) -> None:
        self.rng = rng
        # Bandwidth gets its own stream so adding the metric did not
        # perturb the delay/cost draws of previously committed seeds.
        self.bw_rng = random.Random(seed ^ 0x9E3779B9)
        self.levels: Dict[ADId, Level] = {}
        self.names: Dict[ADId, str] = {}
        self.kinds: Dict[ADId, ADKind] = {}
        self.links: Dict[Tuple[ADId, ADId], LinkKind] = {}
        self.parents: Dict[ADId, ADId] = {}
        self._next_id = 0

    def new_ad(self, prefix: str, level: Level, kind: ADKind) -> ADId:
        ad_id = self._next_id
        self._next_id += 1
        self.levels[ad_id] = level
        self.names[ad_id] = f"{prefix}{ad_id}"
        self.kinds[ad_id] = kind
        return ad_id

    def add_link(self, a: ADId, b: ADId, kind: LinkKind) -> bool:
        key = (a, b) if a <= b else (b, a)
        if a == b or key in self.links:
            return False
        self.links[key] = kind
        return True

    def _link_metrics(self, a: ADId, b: ADId, kind: LinkKind) -> Dict[str, float]:
        backbones = sum(
            1 for end in (a, b) if self.levels[end] == Level.BACKBONE
        )
        if backbones == 2:
            lo, hi = _BACKBONE_DELAY_RANGE
        else:
            lo, hi = _DELAY_RANGES[kind]
        if backbones == 2:
            bw_range = _BANDWIDTH_BACKBONE
        elif backbones == 1 or Level.CAMPUS not in (self.levels[a], self.levels[b]):
            bw_range = _BANDWIDTH_MIDDLE
        else:
            bw_range = _BANDWIDTH_EDGE
        return {
            "delay": round(self.rng.uniform(lo, hi), 2),
            "cost": round(self.rng.uniform(*_COST_RANGE), 2),
            "bandwidth": round(self.bw_rng.uniform(*bw_range), 2),
        }

    def build(self) -> InterADGraph:
        graph = InterADGraph()
        for ad_id in sorted(self.levels):
            graph.add_ad(
                AD(ad_id, self.names[ad_id], self.levels[ad_id], self.kinds[ad_id])
            )
        for (a, b), kind in sorted(self.links.items()):
            graph.add_link(InterADLink(a, b, kind, self._link_metrics(a, b, kind)))
        return graph


def generate_internet(config: Optional[TopologyConfig] = None) -> InterADGraph:
    """Generate a Figure-1 style inter-AD internet.

    The result is always connected (the hierarchy is a spanning tree plus
    the backbone mesh) and deterministic for a given config.

    Kind assignment follows Section 2.1: backbones/regionals/metros are
    transit (a configured fraction of non-backbone transit ADs are hybrid);
    campuses are stub, unless multi-homed or bypassed (multi-homed: several
    connections but no transit) or joined to a peer campus by a lateral
    link (hybrid: they offer limited transit across the lateral).
    """
    cfg = config or TopologyConfig()
    rng = random.Random(cfg.seed)
    b = _Builder(rng, cfg.seed)

    backbones = [b.new_ad("bb", Level.BACKBONE, ADKind.TRANSIT) for _ in range(cfg.num_backbones)]
    # Backbones are peers: full lateral mesh (Figure 1 connects them all).
    for i, bb_a in enumerate(backbones):
        for bb_b in backbones[i + 1:]:
            b.add_link(bb_a, bb_b, LinkKind.LATERAL)

    def transit_kind() -> ADKind:
        return ADKind.HYBRID if rng.random() < cfg.hybrid_fraction else ADKind.TRANSIT

    regionals: List[ADId] = []
    for bb in backbones:
        for _ in range(cfg.regionals_per_backbone):
            reg = b.new_ad("reg", Level.REGIONAL, transit_kind())
            b.add_link(reg, bb, LinkKind.HIERARCHICAL)
            b.parents[reg] = bb
            regionals.append(reg)

    metros: List[ADId] = []
    if cfg.metros_per_regional:
        for reg in regionals:
            for _ in range(cfg.metros_per_regional):
                met = b.new_ad("met", Level.METRO, transit_kind())
                b.add_link(met, reg, LinkKind.HIERARCHICAL)
                b.parents[met] = reg
                metros.append(met)

    campus_parents = metros if metros else regionals
    campuses: List[ADId] = []
    for parent in campus_parents:
        for _ in range(cfg.campuses_per_parent):
            cam = b.new_ad("cam", Level.CAMPUS, ADKind.STUB)
            b.add_link(cam, parent, LinkKind.HIERARCHICAL)
            b.parents[cam] = parent
            campuses.append(cam)

    _add_lateral_links(b, cfg, regionals, metros, campuses)
    _add_bypass_links(b, cfg, backbones, campuses)
    _add_multihoming(b, cfg, campus_parents, campuses)

    return b.build()


def _sibling_pairs(builder: _Builder, members: List[ADId]) -> List[Tuple[ADId, ADId]]:
    """Same-level pairs sharing a parent, in deterministic order."""
    pairs = []
    for i, x in enumerate(members):
        for y in members[i + 1:]:
            if builder.parents.get(x) == builder.parents.get(y):
                pairs.append((x, y))
    return pairs


def _add_lateral_links(
    builder: _Builder,
    cfg: TopologyConfig,
    regionals: List[ADId],
    metros: List[ADId],
    campuses: List[ADId],
) -> None:
    """Lateral (peer) links: siblings, cross-parent transit pairs, campuses."""
    rng = builder.rng
    for tier in (regionals, metros):
        for x, y in _sibling_pairs(builder, tier):
            if rng.random() < cfg.lateral_prob:
                builder.add_link(x, y, LinkKind.LATERAL)
        # Cross-parent laterals at half probability, sampled over a bounded
        # number of random pairs so density does not explode quadratically.
        if len(tier) >= 2:
            for _ in range(len(tier)):
                x, y = rng.sample(tier, 2)
                if builder.parents.get(x) != builder.parents.get(y):
                    if rng.random() < cfg.lateral_prob / 2:
                        builder.add_link(x, y, LinkKind.LATERAL)
    # Campus-campus laterals (the paper: "lateral links between some stub
    # networks"); endpoints become hybrid (they offer limited transit).
    if len(campuses) >= 2:
        for _ in range(len(campuses)):
            x, y = rng.sample(campuses, 2)
            if rng.random() < cfg.lateral_prob / 2:
                if builder.add_link(x, y, LinkKind.LATERAL):
                    builder.kinds[x] = ADKind.HYBRID
                    builder.kinds[y] = ADKind.HYBRID


def _add_bypass_links(
    builder: _Builder,
    cfg: TopologyConfig,
    backbones: List[ADId],
    campuses: List[ADId],
) -> None:
    """Bypass links: stub campus straight to a backbone."""
    rng = builder.rng
    for cam in campuses:
        if rng.random() < cfg.bypass_prob:
            bb = rng.choice(backbones)
            if builder.add_link(cam, bb, LinkKind.BYPASS):
                if builder.kinds[cam] == ADKind.STUB:
                    builder.kinds[cam] = ADKind.MULTIHOMED


def _add_multihoming(
    builder: _Builder,
    cfg: TopologyConfig,
    parents: List[ADId],
    campuses: List[ADId],
) -> None:
    """Multi-home some campuses to a second parent (no transit allowed)."""
    rng = builder.rng
    if len(parents) < 2:
        return
    for cam in campuses:
        if rng.random() < cfg.multihome_prob:
            others = [p for p in parents if p != builder.parents.get(cam)]
            parent2 = rng.choice(others)
            if builder.add_link(cam, parent2, LinkKind.HIERARCHICAL):
                if builder.kinds[cam] == ADKind.STUB:
                    builder.kinds[cam] = ADKind.MULTIHOMED
