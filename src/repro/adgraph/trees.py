"""Spanning-tree computation over the inter-AD topology.

Used in two places:

* the EGP baseline, whose protocol *requires* a cycle-free topology
  (Section 3) and therefore runs on this tree;
* the tree-scoped flooding strategy of the link-state protocols -- the
  Section 6 "database distribution" knob that trades robustness for
  distribution overhead (ablation A2).

The tree prefers hierarchical links (Kruskal with hierarchical links
first), matching the shape the 1990 internet actually ran on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.adgraph.ad import ADId, LinkKind
from repro.adgraph.graph import InterADGraph

LinkKey = Tuple[ADId, ADId]


def spanning_tree_links(graph: InterADGraph) -> FrozenSet[LinkKey]:
    """Canonical link keys of a hierarchical-first spanning tree.

    Kruskal over live links ordered hierarchical-first with deterministic
    tie-breaking, so every node computing this over the same topology
    gets the same tree.  On a disconnected graph, returns a spanning
    forest.
    """
    parent: Dict[ADId, ADId] = {a: a for a in graph.ad_ids()}

    def find(x: ADId) -> ADId:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    kept = set()
    ordered = sorted(
        graph.links(include_down=False),
        key=lambda ln: (ln.kind is not LinkKind.HIERARCHICAL, ln.key),
    )
    for link in ordered:
        ra, rb = find(link.a), find(link.b)
        if ra != rb:
            parent[ra] = rb
            kept.add(link.key)
    return frozenset(kept)
