"""Partial ordering of ADs and the ECMA up/down rule.

The ECMA/NIST proposal (paper Section 5.1.1) avoids loops and
count-to-infinity in a cyclic inter-AD topology by imposing a *partial
ordering* on all ADs.  Every inter-AD link is labelled *up* or *down*
according to the relative position of its endpoints in the ordering, and
the forwarding rule is: **once a packet traverses a down link it cannot
traverse another up link**.

Two constructions are provided:

* :meth:`PartialOrder.from_hierarchy` — the natural ordering for a
  Figure-1 topology: rank by hierarchy level (backbone highest).
* :func:`order_from_constraints` — build an ordering from explicit
  pairwise constraints (as the ECMA central authority must); raises
  :class:`OrderConflictError` when the constraints are not mutually
  satisfiable in a single ordering, which is exactly the failure mode the
  paper warns about (experiment E8).

For link labelling the ordering is refined to a *total* order (ties broken
by AD id) so that every link is strictly up or strictly down; the
refinement preserves all strict relations of the partial order.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph


class Direction(enum.Enum):
    """Direction of a link traversal relative to the ordering."""

    UP = "up"
    DOWN = "down"


class OrderConflictError(ValueError):
    """The given ordering constraints contain a cycle.

    Attributes:
        cycle: A list of AD ids forming the conflicting cycle (each must be
            strictly below the next, and the last strictly below the first).
    """

    def __init__(self, cycle: Sequence[ADId]) -> None:
        self.cycle = list(cycle)
        super().__init__(f"ordering constraints conflict on cycle {self.cycle}")


class PartialOrder:
    """A rank assignment over ADs with a deterministic total refinement.

    ``rank[a] > rank[b]`` means *a is above b* (closer to the backbone).
    Equal ranks are incomparable in the partial order; the total refinement
    breaks ties by AD id (larger id = infinitesimally lower), which keeps
    labelling deterministic and every link strictly oriented.
    """

    def __init__(self, ranks: Mapping[ADId, int]) -> None:
        self._ranks: Dict[ADId, int] = dict(ranks)

    @classmethod
    def from_hierarchy(cls, graph: InterADGraph) -> "PartialOrder":
        """Rank ADs by hierarchy level: campus=0 ... backbone=3."""
        return cls({ad.ad_id: ad.level.rank for ad in graph.ads()})

    def rank(self, ad_id: ADId) -> int:
        """Partial-order rank of an AD."""
        return self._ranks[ad_id]

    def ads(self) -> List[ADId]:
        return sorted(self._ranks)

    def _total_key(self, ad_id: ADId) -> Tuple[int, int]:
        """Total-order sort key: primary rank, ties broken by -ad_id."""
        return (self._ranks[ad_id], -ad_id)

    def above(self, a: ADId, b: ADId) -> bool:
        """Whether ``a`` is strictly above ``b`` in the *total refinement*."""
        return self._total_key(a) > self._total_key(b)

    def comparable(self, a: ADId, b: ADId) -> bool:
        """Whether ``a`` and ``b`` are comparable in the *partial* order."""
        return self._ranks[a] != self._ranks[b]

    def direction(self, from_ad: ADId, to_ad: ADId) -> Direction:
        """Label the traversal ``from_ad -> to_ad`` as up or down.

        Uses the total refinement, so every traversal is strictly oriented.
        """
        if from_ad == to_ad:
            raise ValueError("traversal endpoints must differ")
        return Direction.UP if self.above(to_ad, from_ad) else Direction.DOWN

    def path_is_valid(self, path: Sequence[ADId]) -> bool:
        """Check the up/down rule over a whole AD path.

        Valid iff no up traversal follows a down traversal ("once a packet
        traverses a down link, it cannot traverse another up link").
        """
        gone_down = False
        for frm, to in zip(path, path[1:]):
            d = self.direction(frm, to)
            if d is Direction.DOWN:
                gone_down = True
            elif gone_down:
                return False
        return True

    def max_valid_path_len(self) -> int:
        """Upper bound on the hop count of any valid path.

        A valid path climbs through strictly increasing total-order keys
        and then descends through strictly decreasing ones, so it visits at
        most ``2 * (#ADs)`` nodes; with distinct keys the tight bound is
        ``len(ads)`` per phase.  This bound is what lets ECMA cap its
        metric and avoid count-to-infinity.
        """
        n = len(self._ranks)
        return max(1, 2 * n)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PartialOrder) and self._ranks == other._ranks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PartialOrder({len(self._ranks)} ADs)"


def order_from_constraints(
    ads: Iterable[ADId],
    constraints: Iterable[Tuple[ADId, ADId]],
) -> PartialOrder:
    """Build a partial order satisfying ``lower < upper`` constraints.

    Each constraint ``(lower, upper)`` demands ``rank[lower] < rank[upper]``.
    Ranks are assigned by longest-path layering over the constraint DAG, so
    unconstrained ADs share rank 0 and every constraint holds strictly.

    Raises:
        OrderConflictError: if the constraints contain a cycle (no single
            partial ordering can accommodate them — the ECMA negotiation
            failure of Section 5.1.1).
    """
    ad_list = sorted(set(ads))
    ad_set = set(ad_list)
    succs: Dict[ADId, List[ADId]] = {a: [] for a in ad_list}
    indeg: Dict[ADId, int] = {a: 0 for a in ad_list}
    edges = set()
    for lower, upper in constraints:
        if lower not in ad_set or upper not in ad_set:
            raise ValueError(f"constraint ({lower}, {upper}) names unknown AD")
        if lower == upper:
            raise OrderConflictError([lower])
        if (lower, upper) in edges:
            continue
        edges.add((lower, upper))
        succs[lower].append(upper)
        indeg[upper] += 1

    # Kahn's algorithm with longest-path layering.
    ranks: Dict[ADId, int] = {a: 0 for a in ad_list}
    queue = sorted(a for a in ad_list if indeg[a] == 0)
    done = 0
    while queue:
        node = queue.pop(0)
        done += 1
        for nxt in sorted(succs[node]):
            ranks[nxt] = max(ranks[nxt], ranks[node] + 1)
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                queue.append(nxt)
        queue.sort()
    if done != len(ad_list):
        raise OrderConflictError(_find_cycle(succs, indeg))
    return PartialOrder(ranks)


def try_order_from_constraints(
    ads: Iterable[ADId],
    constraints: Iterable[Tuple[ADId, ADId]],
) -> Optional[PartialOrder]:
    """Like :func:`order_from_constraints` but returns ``None`` on conflict."""
    try:
        return order_from_constraints(ads, constraints)
    except OrderConflictError:
        return None


def _find_cycle(
    succs: Mapping[ADId, List[ADId]], indeg: Mapping[ADId, int]
) -> List[ADId]:
    """Extract one cycle from the residual (non-topologically-sorted) graph."""
    remaining = {a for a, d in indeg.items() if d > 0}
    # Peel off nodes that merely feed a cycle without being on one (no
    # successor inside the residual); what's left is a union of cycles
    # plus cross-edges, so a forward walk must revisit a node.
    changed = True
    while changed:
        changed = False
        for node in sorted(remaining):
            if not any(n in remaining for n in succs[node]):
                remaining.discard(node)
                changed = True
    start = min(remaining)
    seen: Dict[ADId, int] = {}
    walk: List[ADId] = []
    node = start
    while node not in seen:
        seen[node] = len(walk)
        walk.append(node)
        node = min(n for n in succs[node] if n in remaining)
    return walk[seen[node]:]
