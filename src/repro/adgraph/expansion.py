"""Router-level expansion of an AD-level topology.

Section 4.1 fixes the paper's abstraction: inter-AD routing sees ADs, not
routers.  To *price* that abstraction (experiment E9) — and to model
intra-AD path realisation at all — this module expands each AD into an
internal router network:

* each AD becomes a ring of routers (ring size by hierarchy level:
  backbones are bigger networks than campuses);
* each inter-AD link attaches to a specific *border router* on each side
  (deterministically chosen per neighbour, so a multi-homed AD has
  multiple distinct borders);
* internal hops carry a configurable delay.

The expansion yields a :class:`networkx.Graph` whose nodes are
``(ad_id, router_index)`` pairs, plus helpers to evaluate an AD-level
route's best router-level realisation ("corridor" cost) against the
unconstrained router-level optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import networkx as nx

from repro.adgraph.ad import ADId, Level
from repro.adgraph.graph import InterADGraph

#: Default internal routers per hierarchy level.
DEFAULT_ROUTERS_PER_LEVEL: Dict[Level, int] = {
    Level.BACKBONE: 8,
    Level.REGIONAL: 5,
    Level.METRO: 4,
    Level.CAMPUS: 3,
}

RouterId = Tuple[ADId, int]


@dataclass(frozen=True)
class ExpansionConfig:
    """Parameters for :class:`RouterExpansion`.

    Attributes:
        routers_per_level: Ring size per hierarchy level.
        internal_hop_delay: Delay of one intra-AD router hop.
    """

    routers_per_level: Dict[Level, int] = field(
        default_factory=lambda: dict(DEFAULT_ROUTERS_PER_LEVEL)
    )
    internal_hop_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.internal_hop_delay < 0:
            raise ValueError("internal_hop_delay must be non-negative")
        for level, n in self.routers_per_level.items():
            if n < 1:
                raise ValueError(f"{level} needs at least one router, got {n}")


class RouterExpansion:
    """A router-level view of an AD-level internet."""

    def __init__(
        self, graph: InterADGraph, config: Optional[ExpansionConfig] = None
    ) -> None:
        self.ad_graph = graph
        self.config = config or ExpansionConfig()
        self.router_graph = self._expand()

    def router_count(self, ad_id: ADId) -> int:
        """Internal routers of an AD."""
        return self.config.routers_per_level[self.ad_graph.ad(ad_id).level]

    def total_routers(self) -> int:
        return sum(self.router_count(a) for a in self.ad_graph.ad_ids())

    def border_router(self, ad_id: ADId, neighbor: ADId) -> RouterId:
        """The router of ``ad_id`` that terminates the link to ``neighbor``.

        Deterministic (hash of the neighbour id into the ring), so
        distinct neighbours usually land on distinct borders.
        """
        return (ad_id, neighbor % self.router_count(ad_id))

    def _expand(self) -> nx.Graph:
        g = nx.Graph()
        delay = self.config.internal_hop_delay
        for ad in self.ad_graph.ads():
            n = self.router_count(ad.ad_id)
            for i in range(n):
                g.add_node((ad.ad_id, i))
            for i in range(n):
                if n > 1:
                    g.add_edge(
                        (ad.ad_id, i), (ad.ad_id, (i + 1) % n), delay=delay
                    )
        for link in self.ad_graph.links(include_down=False):
            g.add_edge(
                self.border_router(link.a, link.b),
                self.border_router(link.b, link.a),
                delay=link.metric("delay"),
            )
        return g

    # ------------------------------------------------------------- analysis

    def host_router(self, ad_id: ADId) -> RouterId:
        """The router standing in for the AD's end systems (router 0)."""
        return (ad_id, 0)

    def optimal_cost(self, src_ad: ADId, dst_ad: ADId) -> Optional[float]:
        """Unconstrained router-level shortest delay between two ADs."""
        try:
            return nx.shortest_path_length(
                self.router_graph,
                self.host_router(src_ad),
                self.host_router(dst_ad),
                weight="delay",
            )
        except nx.NetworkXNoPath:
            return None

    def corridor(self, ad_path: Sequence[ADId]) -> nx.Graph:
        """Router subgraph realising an AD-level route.

        Keeps only routers of the route's ADs, internal edges inside
        those ADs, and inter-AD edges between *consecutive* route ADs --
        the packet must honour the AD sequence the route server chose.
        """
        allowed = set(ad_path)
        consecutive = set(zip(ad_path, ad_path[1:]))
        consecutive |= {(b, a) for a, b in consecutive}
        sub = nx.Graph()
        for node in self.router_graph.nodes:
            if node[0] in allowed:
                sub.add_node(node)
        for u, v, data in self.router_graph.edges(data=True):
            if u not in sub or v not in sub:
                continue
            if u[0] == v[0] or (u[0], v[0]) in consecutive:
                sub.add_edge(u, v, **data)
        return sub

    def realized_cost(self, ad_path: Sequence[ADId]) -> Optional[float]:
        """Best router-level delay achievable along an AD-level route."""
        if not ad_path:
            return None
        if len(ad_path) == 1:
            return 0.0
        corridor = self.corridor(ad_path)
        try:
            return nx.shortest_path_length(
                corridor,
                self.host_router(ad_path[0]),
                self.host_router(ad_path[-1]),
                weight="delay",
            )
        except nx.NetworkXNoPath:
            return None

    def stretch(self, ad_path: Sequence[ADId]) -> Optional[float]:
        """Cost ratio: AD-level route realisation / router-level optimum.

        ``None`` when either cost is undefined; 1.0 means the abstraction
        cost nothing for this flow.
        """
        if len(ad_path) < 2:
            return 1.0
        optimal = self.optimal_cost(ad_path[0], ad_path[-1])
        realised = self.realized_cost(ad_path)
        if optimal is None or realised is None or optimal <= 0:
            return None
        return realised / optimal

    def information_volume(self) -> Tuple[int, int]:
        """(AD-level, router-level) routing-information unit counts.

        One unit per node plus two per (directed) link -- the LSA-entry
        count a link-state protocol would flood at each granularity.
        """
        ad_level = self.ad_graph.num_ads + 2 * self.ad_graph.num_links
        router_level = (
            self.router_graph.number_of_nodes()
            + 2 * self.router_graph.number_of_edges()
        )
        return ad_level, router_level
