"""Canonical JSON wire codec for protocol messages.

The discrete-event simulator passes message *objects* between nodes, so
sizes are modelled, not serialised.  The live asyncio/UDP substrate
(:mod:`repro.live`) actually puts messages on a socket, which needs a
real encoding; this module is it.  It also makes trace output
machine-readable: any :class:`~repro.simul.messages.Message` can be
rendered to a JSON-safe dict with :func:`to_wire` and reconstructed with
:func:`from_wire`.

The encoding is structural and canonical:

* a message is ``{"t": <type name>, "f": {<field>: <value>, ...}}``;
* registered nested dataclasses (policy terms, route ads, LSAs, ...)
  are ``{"__d": <type name>, "f": {...}}``;
* enums are ``{"__e": <enum name>, "v": <value>}``;
* frozensets are ``{"__fs": [<sorted members>]}`` (sorted by canonical
  JSON text, so two equal sets always encode identically);
* tuples become JSON arrays and come back as tuples (every sequence
  field in the fleet is a tuple).

Only registered message and payload types decode -- the codec is a
closed vocabulary, not a pickle: a peer can never make the decoder
instantiate an arbitrary class.

Framing for stream/datagram transports is a 4-byte big-endian length
prefix followed by the canonical JSON body (:func:`encode_frame` /
:func:`decode_frame`).

Versioning.  The codec speaks every wire version in
``[MIN_WIRE_VERSION, WIRE_VERSION]``:

* a version-1 frame is the original ``{"s", "d", "m"}`` envelope,
  byte-identical to what this module emitted before versioning existed;
* a version-2+ frame adds ``"v": <sender's tx version>`` to the
  envelope and an ``"r": <schema revision>`` stamp to the message dict;
* encoders down-emit older versions on demand (``version=`` keyword):
  fields newer than the target version (:data:`FIELD_REVISIONS`) are
  omitted so a v(N-1) peer never sees a field it cannot name;
* decoders shim the other direction: fields missing from an old frame
  take their dataclass defaults, and version-2+ frames are decoded
  *leniently* (unknown fields from a newer minor revision are dropped,
  not fatal).  Version-1 frames keep the original strict decode.

A frame whose envelope version falls outside the supported range raises
:class:`WireVersionError` (carrying the claimed sender and version) so
the live substrate can quarantine the peer instead of crashing the
serve task.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import struct
from functools import lru_cache
from typing import Any, Dict, Tuple, Type

from repro.adgraph.ad import ADId
from repro.simul.messages import Message

#: Length prefix: 4-byte big-endian unsigned message length.
_LEN = struct.Struct(">I")

#: Hard ceiling on one frame's body (loopback UDP fits ~64 KiB anyway).
MAX_FRAME_BYTES = 1 << 26

#: The newest wire version this build can speak.
WIRE_VERSION = 2

#: The oldest wire version this build can still emit and decode.
MIN_WIRE_VERSION = 1

#: message type name -> wire version at which its current schema was
#: defined (the ``"r"`` stamp on version-2+ frames).  Types absent from
#: this map are revision 1 (the pre-versioning vocabulary).
SCHEMA_REVISIONS: Dict[str, int] = {"Hello": 2}

#: message type name -> {field name -> wire version that introduced it}.
#: Down-emitting at an older version omits these fields; decoders let
#: the dataclass defaults fill them back in.
FIELD_REVISIONS: Dict[str, Dict[str, int]] = {"Hello": {"capabilities": 2}}


class WireError(ValueError):
    """Raised when bytes or JSON do not decode to a known message."""


class WireVersionError(WireError):
    """A frame's envelope version is outside the supported range.

    Carries the envelope's claimed sender (``src``) and version so the
    receiving substrate can quarantine the peer loudly instead of
    treating the frame as undecodable garbage.
    """

    def __init__(self, message: str, *, src: Any = None, version: Any = None):
        super().__init__(message)
        self.src = src
        self.version = version


@lru_cache(maxsize=1)
def _nested_types() -> Dict[str, type]:
    """Registered non-message payload dataclasses, by type name.

    Imported lazily: protocol modules import :mod:`repro.simul`, so a
    module-level import here would be cyclic.
    """
    from repro.policy.flows import FlowSpec
    from repro.policy.sets import ADSet
    from repro.policy.terms import PolicyTerm, TermRef, TimeWindow
    from repro.protocols.flooding import LinkRecord, LinkStateAd
    from repro.protocols.idrp import RouteAd
    from repro.protocols.orwg.messages import Handle

    return {
        cls.__name__: cls
        for cls in (
            ADSet,
            FlowSpec,
            Handle,
            LinkRecord,
            LinkStateAd,
            PolicyTerm,
            RouteAd,
            TermRef,
            TimeWindow,
        )
    }


@lru_cache(maxsize=1)
def _message_types() -> Dict[str, Type[Message]]:
    """Registered wire-encodable message types, by type name."""
    from repro.protocols.dv import DVUpdate
    from repro.protocols.ecma import ECMAUpdate
    from repro.protocols.egp import NRAck, NRUpdate
    from repro.protocols.flooding import ExchangeAck, LSDBExchange, LinkStateAd
    from repro.protocols.idrp import IDRPUpdate
    from repro.protocols.orwg.messages import (
        DataPacket,
        SetupAck,
        SetupNak,
        SetupPacket,
        TeardownPacket,
    )
    from repro.protocols.versioning import Hello

    return {
        cls.__name__: cls
        for cls in (
            DVUpdate,
            DataPacket,
            ECMAUpdate,
            ExchangeAck,
            Hello,
            IDRPUpdate,
            LSDBExchange,
            LinkStateAd,
            NRAck,
            NRUpdate,
            SetupAck,
            SetupNak,
            SetupPacket,
            TeardownPacket,
        )
    }


@lru_cache(maxsize=1)
def _enum_types() -> Dict[str, Type[enum.Enum]]:
    """Registered enum payload types, by enum name."""
    from repro.adgraph.ad import Level
    from repro.policy.qos import QOS
    from repro.policy.sets import _SetMode
    from repro.policy.uci import UCI

    return {cls.__name__: cls for cls in (Level, QOS, UCI, _SetMode)}


def _canonical_key(value: Any) -> str:
    """A total order over encoded values (for frozenset determinism)."""
    return json.dumps(value, sort_keys=True)


def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        # bool before int does not matter here: both survive JSON as-is.
        return value
    if isinstance(value, enum.Enum):
        name = type(value).__name__
        if name not in _enum_types():
            raise WireError(f"unregistered enum type {name}")
        return {"__e": name, "v": value.value}
    if isinstance(value, (tuple, list)):
        return [_encode_value(v) for v in value]
    if isinstance(value, frozenset):
        members = [_encode_value(v) for v in value]
        members.sort(key=_canonical_key)
        return {"__fs": members}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _nested_types():
            raise WireError(f"unregistered payload type {name}")
        return {"__d": name, "f": _encode_fields(value)}
    raise WireError(f"cannot encode {type(value).__name__} value {value!r}")


def _encode_fields(obj: Any) -> Dict[str, Any]:
    """Encode a dataclass's init fields (memoized caches are skipped)."""
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(obj):
        if not f.init:
            continue  # e.g. the lazily-memoized _size slots
        out[f.name] = _encode_value(getattr(obj, f.name))
    return out


def _decode_value(value: Any, lenient: bool = False) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return tuple(_decode_value(v, lenient) for v in value)
    if isinstance(value, dict):
        if "__e" in value:
            cls = _enum_types().get(value["__e"])
            if cls is None:
                raise WireError(f"unknown enum type {value['__e']!r}")
            return cls(value["v"])
        if "__fs" in value:
            return frozenset(_decode_value(v, lenient) for v in value["__fs"])
        if "__d" in value:
            cls = _nested_types().get(value["__d"])
            if cls is None:
                raise WireError(f"unknown payload type {value['__d']!r}")
            return _decode_dataclass(cls, value.get("f", {}), lenient=lenient)
        raise WireError(f"untagged object {sorted(value)!r}")
    raise WireError(f"cannot decode {type(value).__name__} value {value!r}")


def _decode_dataclass(
    cls: type, fields: Dict[str, Any], *, lenient: bool = False
) -> Any:
    known = {f.name for f in dataclasses.fields(cls) if f.init}
    unknown = set(fields) - known
    if unknown:
        if not lenient:
            raise WireError(f"{cls.__name__} has no fields {sorted(unknown)}")
        # Version-skew read shim: a newer minor revision may carry
        # fields this build cannot name yet; drop them, keep the rest.
        fields = {k: v for k, v in fields.items() if k in known}
    try:
        return cls(**{k: _decode_value(v, lenient) for k, v in fields.items()})
    except (TypeError, ValueError) as exc:
        raise WireError(f"bad {cls.__name__} payload: {exc}") from exc


def to_wire(msg: Message, *, version: int = WIRE_VERSION) -> Dict[str, Any]:
    """Render a message as a canonical JSON-safe dict.

    ``version`` selects the target wire version: version 1 reproduces
    the pre-versioning encoding byte for byte (no revision stamp, no
    post-v1 fields); version 2+ stamps the message's schema revision as
    ``"r"`` and carries the full field set allowed at that version.
    """
    name = type(msg).__name__
    if name not in _message_types():
        raise WireError(f"unregistered message type {name}")
    if not MIN_WIRE_VERSION <= version <= WIRE_VERSION:
        raise WireVersionError(
            f"cannot encode wire version {version!r}", version=version
        )
    fields = _encode_fields(msg)
    introduced = FIELD_REVISIONS.get(name)
    if introduced:
        # Down-emit shim: omit fields newer than the target version so
        # an old peer never sees a field it cannot name.
        fields = {
            k: v for k, v in fields.items() if introduced.get(k, 1) <= version
        }
    if version == 1:
        return {"t": name, "f": fields}
    return {
        "t": name,
        "f": fields,
        "r": min(SCHEMA_REVISIONS.get(name, 1), version),
    }


def from_wire(data: Dict[str, Any], *, lenient: bool = False) -> Message:
    """Reconstruct a message from its :func:`to_wire` dict.

    Missing fields take their dataclass defaults (old-frame shim); with
    ``lenient=True`` unknown fields are dropped instead of fatal
    (new-frame shim).  The revision stamp ``"r"``, when present, is
    informational and ignored.
    """
    if not isinstance(data, dict) or "t" not in data:
        raise WireError(f"not a wire message: {data!r}")
    cls = _message_types().get(data["t"])
    if cls is None:
        raise WireError(f"unknown message type {data['t']!r}")
    return _decode_dataclass(cls, data.get("f", {}), lenient=lenient)


def dumps(msg: Message) -> str:
    """Canonical JSON text for a message (stable across processes)."""
    return json.dumps(to_wire(msg), sort_keys=True, separators=(",", ":"))


def loads(text: str) -> Message:
    """Inverse of :func:`dumps`."""
    return from_wire(json.loads(text))


def encode_frame(
    src: ADId, dst: ADId, msg: Message, *, version: int = WIRE_VERSION
) -> bytes:
    """One length-prefixed datagram: 4-byte length + canonical JSON body.

    A version-1 frame is the original ``{"s", "d", "m"}`` envelope --
    byte-identical to the pre-versioning encoder, which is what makes
    down-emitting to a v1 peer safe.  Version 2+ adds ``"v"`` so the
    receiver knows the sender's tx version.
    """
    if not MIN_WIRE_VERSION <= version <= WIRE_VERSION:
        raise WireVersionError(
            f"cannot encode wire version {version!r}", src=src, version=version
        )
    envelope: Dict[str, Any] = {
        "s": src,
        "d": dst,
        "m": to_wire(msg, version=version),
    }
    if version > 1:
        envelope["v"] = version
    body = json.dumps(
        envelope,
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:  # pragma: no cover - defensive
        raise WireError(f"frame body of {len(body)} bytes exceeds the cap")
    return _LEN.pack(len(body)) + body


def decode_frame_ex(frame: bytes) -> Tuple[ADId, ADId, Message, int]:
    """Decode a frame to ``(src, dst, msg, envelope version)``.

    A missing ``"v"`` key means version 1 (legacy envelope).  An
    envelope version outside ``[MIN_WIRE_VERSION, WIRE_VERSION]`` raises
    :class:`WireVersionError` carrying the claimed sender, so the
    receiver can quarantine the peer.  Version-2+ message payloads are
    decoded leniently (unknown fields dropped); version-1 payloads keep
    the original strict decode.
    """
    if len(frame) < _LEN.size:
        raise WireError(f"short frame ({len(frame)} bytes)")
    (length,) = _LEN.unpack_from(frame)
    body = frame[_LEN.size:]
    if length != len(body):
        raise WireError(f"frame length {length} != body length {len(body)}")
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame body: {exc}") from exc
    if not isinstance(data, dict) or not {"s", "d", "m"} <= set(data):
        raise WireError("frame body is not a {s, d, m} envelope")
    version = data.get("v", 1)
    if not isinstance(version, int) or isinstance(version, bool) or not (
        MIN_WIRE_VERSION <= version <= WIRE_VERSION
    ):
        raise WireVersionError(
            f"unsupported wire version {version!r} from {data['s']!r}",
            src=data["s"],
            version=version,
        )
    msg = from_wire(data["m"], lenient=version > 1)
    return data["s"], data["d"], msg, version


def decode_frame(frame: bytes) -> Tuple[ADId, ADId, Message]:
    """Inverse of :func:`encode_frame`; validates the length prefix."""
    src, dst, msg, _version = decode_frame_ex(frame)
    return src, dst, msg
