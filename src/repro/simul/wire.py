"""Canonical JSON wire codec for protocol messages.

The discrete-event simulator passes message *objects* between nodes, so
sizes are modelled, not serialised.  The live asyncio/UDP substrate
(:mod:`repro.live`) actually puts messages on a socket, which needs a
real encoding; this module is it.  It also makes trace output
machine-readable: any :class:`~repro.simul.messages.Message` can be
rendered to a JSON-safe dict with :func:`to_wire` and reconstructed with
:func:`from_wire`.

The encoding is structural and canonical:

* a message is ``{"t": <type name>, "f": {<field>: <value>, ...}}``;
* registered nested dataclasses (policy terms, route ads, LSAs, ...)
  are ``{"__d": <type name>, "f": {...}}``;
* enums are ``{"__e": <enum name>, "v": <value>}``;
* frozensets are ``{"__fs": [<sorted members>]}`` (sorted by canonical
  JSON text, so two equal sets always encode identically);
* tuples become JSON arrays and come back as tuples (every sequence
  field in the fleet is a tuple).

Only registered message and payload types decode -- the codec is a
closed vocabulary, not a pickle: a peer can never make the decoder
instantiate an arbitrary class.

Framing for stream/datagram transports is a 4-byte big-endian length
prefix followed by the canonical JSON body (:func:`encode_frame` /
:func:`decode_frame`).
"""

from __future__ import annotations

import dataclasses
import enum
import json
import struct
from functools import lru_cache
from typing import Any, Dict, Tuple, Type

from repro.adgraph.ad import ADId
from repro.simul.messages import Message

#: Length prefix: 4-byte big-endian unsigned message length.
_LEN = struct.Struct(">I")

#: Hard ceiling on one frame's body (loopback UDP fits ~64 KiB anyway).
MAX_FRAME_BYTES = 1 << 26


class WireError(ValueError):
    """Raised when bytes or JSON do not decode to a known message."""


@lru_cache(maxsize=1)
def _nested_types() -> Dict[str, type]:
    """Registered non-message payload dataclasses, by type name.

    Imported lazily: protocol modules import :mod:`repro.simul`, so a
    module-level import here would be cyclic.
    """
    from repro.policy.flows import FlowSpec
    from repro.policy.sets import ADSet
    from repro.policy.terms import PolicyTerm, TermRef, TimeWindow
    from repro.protocols.flooding import LinkRecord, LinkStateAd
    from repro.protocols.idrp import RouteAd
    from repro.protocols.orwg.messages import Handle

    return {
        cls.__name__: cls
        for cls in (
            ADSet,
            FlowSpec,
            Handle,
            LinkRecord,
            LinkStateAd,
            PolicyTerm,
            RouteAd,
            TermRef,
            TimeWindow,
        )
    }


@lru_cache(maxsize=1)
def _message_types() -> Dict[str, Type[Message]]:
    """Registered wire-encodable message types, by type name."""
    from repro.protocols.dv import DVUpdate
    from repro.protocols.ecma import ECMAUpdate
    from repro.protocols.egp import NRAck, NRUpdate
    from repro.protocols.flooding import ExchangeAck, LSDBExchange, LinkStateAd
    from repro.protocols.idrp import IDRPUpdate
    from repro.protocols.orwg.messages import (
        DataPacket,
        SetupAck,
        SetupNak,
        SetupPacket,
        TeardownPacket,
    )

    return {
        cls.__name__: cls
        for cls in (
            DVUpdate,
            DataPacket,
            ECMAUpdate,
            ExchangeAck,
            IDRPUpdate,
            LSDBExchange,
            LinkStateAd,
            NRAck,
            NRUpdate,
            SetupAck,
            SetupNak,
            SetupPacket,
            TeardownPacket,
        )
    }


@lru_cache(maxsize=1)
def _enum_types() -> Dict[str, Type[enum.Enum]]:
    """Registered enum payload types, by enum name."""
    from repro.adgraph.ad import Level
    from repro.policy.qos import QOS
    from repro.policy.sets import _SetMode
    from repro.policy.uci import UCI

    return {cls.__name__: cls for cls in (Level, QOS, UCI, _SetMode)}


def _canonical_key(value: Any) -> str:
    """A total order over encoded values (for frozenset determinism)."""
    return json.dumps(value, sort_keys=True)


def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        # bool before int does not matter here: both survive JSON as-is.
        return value
    if isinstance(value, enum.Enum):
        name = type(value).__name__
        if name not in _enum_types():
            raise WireError(f"unregistered enum type {name}")
        return {"__e": name, "v": value.value}
    if isinstance(value, (tuple, list)):
        return [_encode_value(v) for v in value]
    if isinstance(value, frozenset):
        members = [_encode_value(v) for v in value]
        members.sort(key=_canonical_key)
        return {"__fs": members}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in _nested_types():
            raise WireError(f"unregistered payload type {name}")
        return {"__d": name, "f": _encode_fields(value)}
    raise WireError(f"cannot encode {type(value).__name__} value {value!r}")


def _encode_fields(obj: Any) -> Dict[str, Any]:
    """Encode a dataclass's init fields (memoized caches are skipped)."""
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(obj):
        if not f.init:
            continue  # e.g. the lazily-memoized _size slots
        out[f.name] = _encode_value(getattr(obj, f.name))
    return out


def _decode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return tuple(_decode_value(v) for v in value)
    if isinstance(value, dict):
        if "__e" in value:
            cls = _enum_types().get(value["__e"])
            if cls is None:
                raise WireError(f"unknown enum type {value['__e']!r}")
            return cls(value["v"])
        if "__fs" in value:
            return frozenset(_decode_value(v) for v in value["__fs"])
        if "__d" in value:
            cls = _nested_types().get(value["__d"])
            if cls is None:
                raise WireError(f"unknown payload type {value['__d']!r}")
            return _decode_dataclass(cls, value.get("f", {}))
        raise WireError(f"untagged object {sorted(value)!r}")
    raise WireError(f"cannot decode {type(value).__name__} value {value!r}")


def _decode_dataclass(cls: type, fields: Dict[str, Any]) -> Any:
    known = {f.name for f in dataclasses.fields(cls) if f.init}
    unknown = set(fields) - known
    if unknown:
        raise WireError(f"{cls.__name__} has no fields {sorted(unknown)}")
    try:
        return cls(**{k: _decode_value(v) for k, v in fields.items()})
    except (TypeError, ValueError) as exc:
        raise WireError(f"bad {cls.__name__} payload: {exc}") from exc


def to_wire(msg: Message) -> Dict[str, Any]:
    """Render a message as a canonical JSON-safe dict."""
    name = type(msg).__name__
    if name not in _message_types():
        raise WireError(f"unregistered message type {name}")
    return {"t": name, "f": _encode_fields(msg)}


def from_wire(data: Dict[str, Any]) -> Message:
    """Reconstruct a message from its :func:`to_wire` dict."""
    if not isinstance(data, dict) or "t" not in data:
        raise WireError(f"not a wire message: {data!r}")
    cls = _message_types().get(data["t"])
    if cls is None:
        raise WireError(f"unknown message type {data['t']!r}")
    return _decode_dataclass(cls, data.get("f", {}))


def dumps(msg: Message) -> str:
    """Canonical JSON text for a message (stable across processes)."""
    return json.dumps(to_wire(msg), sort_keys=True, separators=(",", ":"))


def loads(text: str) -> Message:
    """Inverse of :func:`dumps`."""
    return from_wire(json.loads(text))


def encode_frame(src: ADId, dst: ADId, msg: Message) -> bytes:
    """One length-prefixed datagram: 4-byte length + canonical JSON body."""
    body = json.dumps(
        {"s": src, "d": dst, "m": to_wire(msg)},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:  # pragma: no cover - defensive
        raise WireError(f"frame body of {len(body)} bytes exceeds the cap")
    return _LEN.pack(len(body)) + body


def decode_frame(frame: bytes) -> Tuple[ADId, ADId, Message]:
    """Inverse of :func:`encode_frame`; validates the length prefix."""
    if len(frame) < _LEN.size:
        raise WireError(f"short frame ({len(frame)} bytes)")
    (length,) = _LEN.unpack_from(frame)
    body = frame[_LEN.size:]
    if length != len(body):
        raise WireError(f"frame length {length} != body length {len(body)}")
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame body: {exc}") from exc
    if not isinstance(data, dict) or not {"s", "d", "m"} <= set(data):
        raise WireError("frame body is not a {s, d, m} envelope")
    return data["s"], data["d"], from_wire(data["m"])
