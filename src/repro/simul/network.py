"""The simulated inter-AD network.

:class:`SimNetwork` owns the topology, the event engine, the metrics
collector, and the protocol nodes.  It is the only place control messages
cross between nodes, so every byte is accounted here.

Message delivery models the link's ``delay`` metric; messages sent over a
link that is down (or that dies while unchecked, since we check at send
time) are dropped and counted.  Link status changes notify both endpoint
nodes synchronously at the scheduled time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Set, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.failures import FailurePlan
from repro.adgraph.graph import InterADGraph
from repro.simul.engine import Simulator
from repro.simul.ingress import IngressConfig, IngressModel
from repro.simul.messages import Message
from repro.simul.metrics import MetricsCollector
from repro.simul.node import ProtocolNode
from repro.simul.profiling import PhaseProfiler
from repro.simul.transport import Clock, SimClock, Transport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.channel import ChannelModel, Impairment


class SimNetwork(Transport):
    """Binds a topology to protocol nodes over a discrete-event engine.

    The simulated implementation of the
    :class:`~repro.simul.transport.Transport` interface; its
    :attr:`clock` is a :class:`~repro.simul.transport.SimClock` over the
    discrete-event engine, so everything stays deterministic.
    """

    def __init__(
        self,
        graph: InterADGraph,
        sim: Optional[Simulator] = None,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self.graph = graph
        self.sim = sim or Simulator(profiler=profiler)
        self.metrics = MetricsCollector()
        self.nodes: Dict[ADId, ProtocolNode] = {}
        self.profiler = profiler
        self.channel: Optional["ChannelModel"] = None
        self.ingress: Optional[IngressModel] = None
        self._crashed: Set[ADId] = set()
        self._clock = SimClock(self.sim)

    @property
    def clock(self) -> Clock:
        """The engine behind the substrate-neutral :class:`Clock` API."""
        return self._clock

    def neighbors(self, ad_id: ADId) -> list:
        """Currently reachable neighbour ADs (live links only)."""
        return self.graph.neighbors(ad_id)

    def set_profiler(self, profiler: Optional[PhaseProfiler]) -> None:
        """Attach (or detach) a wall-clock profiler to network and engine."""
        self.profiler = profiler
        self.sim.profiler = profiler

    # ----------------------------------------------------------- node mgmt

    def add_node(self, node: ProtocolNode) -> ProtocolNode:
        """Register a protocol node for an AD in the graph."""
        if node.ad_id not in self.graph:
            raise ValueError(f"AD {node.ad_id} is not in the topology")
        if node.ad_id in self.nodes:
            raise ValueError(f"AD {node.ad_id} already has a node")
        self.nodes[node.ad_id] = node
        node.attach(self)
        return node

    def add_nodes(self, nodes: Iterable[ProtocolNode]) -> None:
        for node in nodes:
            self.add_node(node)

    def node(self, ad_id: ADId) -> ProtocolNode:
        return self.nodes[ad_id]

    def start(self) -> None:
        """Schedule every node's start hook at t=0 (in AD id order).

        Nodes whose runtime negotiates wire versions additionally get
        their Hello announcement scheduled (after every start hook, so
        Hellos land on started peers).  With negotiation off -- the
        default -- no extra event is ever scheduled and the event
        stream is byte-identical to the pre-versioning engine.
        """
        for ad_id in sorted(self.nodes):
            self.sim.schedule(0.0, self.nodes[ad_id].start)
        for ad_id in sorted(self.nodes):
            node = self.nodes[ad_id]
            if node.wire.negotiate:
                self.sim.schedule(0.0, node.announce_wire)

    # ------------------------------------------------------------ messages

    def send(self, src: ADId, dst: ADId, msg: Message) -> None:
        """Transmit a control message from ``src`` to neighbour ``dst``.

        The message is dropped (and counted) if no live link exists at send
        time.  Otherwise it is delivered after the link's delay.
        """
        link = self.graph.link_if_exists(src, dst)
        if link is None:
            raise ValueError(f"AD {src} and AD {dst} are not neighbours")
        if not link.up:
            self.metrics.count_drop()
            return
        delay = link.metrics.get("delay", 1.0)
        if self.channel is None:
            self.sim.schedule(delay, self._deliver, src, dst, msg)
            return
        copies = self.channel.transmit(src, dst)
        if not copies:
            self.metrics.count_channel_drop()
            return
        if len(copies) > 1:
            self.metrics.count_duplicated(len(copies) - 1)
        for extra in copies:
            self.sim.schedule(delay + extra, self._deliver, src, dst, msg)

    def _deliver(self, src: ADId, dst: ADId, msg: Message, attempt: int = 0) -> None:
        # A link that died in flight still delivers what was already sent;
        # the failure notification races the last messages, as in reality.
        if dst in self._crashed:
            self.metrics.count_drop()
            return
        if self.ingress is not None and self.ingress.config.bounded:
            self._enqueue(src, dst, msg, attempt)
            return
        self.metrics.count_message(msg.type_name, msg.size_bytes(), self.sim.now)
        self.nodes[dst].receive(src, msg)

    # -------------------------------------------------------------- ingress

    def set_ingress(self, model: Optional[IngressModel]) -> None:
        """Attach a bounded ingress stage (``None`` restores instant delivery).

        Accepts an :class:`IngressModel` or a bare :class:`IngressConfig`.
        """
        if isinstance(model, IngressConfig):
            model = IngressModel(model)
        self.ingress = model

    def _enqueue(self, src: ADId, dst: ADId, msg: Message, attempt: int) -> None:
        """Admit a delivered message to ``dst``'s bounded input queue."""
        assert self.ingress is not None
        cfg = self.ingress.config
        q = self.ingress.queue_of(dst)
        if not q.busy:
            q.busy = True
            q.serving = (src, msg)
            q.peak_depth = max(q.peak_depth, q.depth)
            self.sim.schedule(cfg.service_time, self._pump, dst, q.epoch)
            return
        if len(q.items) < cfg.capacity:  # type: ignore[operator]
            q.items.append((src, msg, attempt))
            q.peak_depth = max(q.peak_depth, q.depth)
            return
        if cfg.policy == "backpressure" and attempt < cfg.max_redeliveries:
            q.deferred += 1
            self.metrics.count_deferred()
            self.sim.schedule(cfg.retry_delay, self._deliver, src, dst, msg, attempt + 1)
            return
        q.dropped += 1
        self.metrics.count_queue_drop()

    def _pump(self, dst: ADId, epoch: int) -> None:
        """Finish servicing ``dst``'s current message; start the next."""
        assert self.ingress is not None
        q = self.ingress.queue_of(dst)
        if epoch != q.epoch or not q.busy or q.serving is None:
            return  # cancelled by a crash or flush since being scheduled
        cfg = self.ingress.config
        src, msg = q.serving
        q.serving = None
        q.busy_time += cfg.service_time
        q.served += 1
        self.metrics.count_message(msg.type_name, msg.size_bytes(), self.sim.now)
        self.nodes[dst].receive(src, msg)
        if q.items:
            nsrc, nmsg, _ = q.items.popleft()
            q.serving = (nsrc, nmsg)
            self.sim.schedule(cfg.service_time, self._pump, dst, q.epoch)
        else:
            q.busy = False

    def _freeze_ingress(self, ad_id: ADId) -> None:
        """Halt service at a crashing node, preserving queued messages."""
        if self.ingress is None:
            return
        q = self.ingress.queue_of(ad_id)
        q.epoch += 1  # orphan any scheduled _pump
        if q.serving is not None:
            q.items.appendleft((q.serving[0], q.serving[1], 0))
            q.serving = None
        q.busy = False

    def flush_ingress(self, ad_id: ADId) -> int:
        """Discard a node's pending ingress queue (state-losing restart).

        Returns the number of messages lost; each is counted as a queue
        drop.
        """
        if self.ingress is None:
            return 0
        q = self.ingress.queue_of(ad_id)
        self._freeze_ingress(ad_id)
        lost = len(q.items)
        q.items.clear()
        q.dropped += lost
        for _ in range(lost):
            self.metrics.count_queue_drop()
        return lost

    def _resume_ingress(self, ad_id: ADId) -> None:
        """Restart the service pump for a restored node's retained queue."""
        if self.ingress is None:
            return
        q = self.ingress.queue_of(ad_id)
        if q.busy or not q.items:
            return
        src, msg, _ = q.items.popleft()
        q.busy = True
        q.serving = (src, msg)
        self.sim.schedule(self.ingress.config.service_time, self._pump, ad_id, q.epoch)

    # -------------------------------------------------------------- channel

    def set_channel(self, model: Optional["ChannelModel"]) -> None:
        """Attach an impairment channel (``None`` restores perfect links)."""
        self.channel = model

    def set_impairment(
        self, link: Optional[Tuple[ADId, ADId]], spec: "Impairment"
    ) -> None:
        """Change impairment parameters, attaching a channel if needed."""
        if self.channel is None:
            from repro.faults.channel import ImpairedChannel

            self.channel = ImpairedChannel()
        self.channel.set_impairment(link, spec)

    # ------------------------------------------------------------ failures

    def set_link_status(self, a: ADId, b: ADId, up: bool) -> None:
        """Change a link's status now and notify both endpoint nodes."""
        link = self.graph.set_link_status(a, b, up)
        for end in (a, b):
            if end in self._crashed:
                continue
            node = self.nodes.get(end)
            if node is not None:
                node.on_link_change(link, up)

    # --------------------------------------------------------------- crashes

    def crash_node(self, ad_id: ADId) -> None:
        """Silence an AD: in-flight deliveries to it drop, no notifications.

        Link teardown is the protocol driver's job
        (:meth:`~repro.protocols.base.RoutingProtocol.crash_node`), since
        only it knows how to propagate link-status changes consistently.
        """
        if ad_id not in self.nodes:
            raise ValueError(f"AD {ad_id} has no node to crash")
        if ad_id in self._crashed:
            raise ValueError(f"AD {ad_id} is already crashed")
        self._crashed.add(ad_id)
        self._freeze_ingress(ad_id)

    def restore_node(
        self, ad_id: ADId, node: Optional[ProtocolNode] = None
    ) -> None:
        """Un-silence a crashed AD, optionally swapping in a fresh node."""
        if ad_id not in self._crashed:
            raise ValueError(f"AD {ad_id} is not crashed")
        self._crashed.discard(ad_id)
        if node is not None:
            if node.ad_id != ad_id:
                raise ValueError(
                    f"replacement node is for AD {node.ad_id}, not AD {ad_id}"
                )
            self.nodes[ad_id] = node
            node.attach(self)
        self._resume_ingress(ad_id)

    def is_crashed(self, ad_id: ADId) -> bool:
        return ad_id in self._crashed

    def schedule_failure_plan(self, plan: FailurePlan) -> None:
        """Schedule every status change of a failure plan on the engine."""
        for ev in plan:
            self.sim.schedule_at(ev.time, self.set_link_status, ev.a, ev.b, ev.up)

    # -------------------------------------------------------------- helpers

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 5_000_000,
        raise_on_limit: bool = True,
    ) -> int:
        """Run the engine (see :meth:`Simulator.run`)."""
        return self.sim.run(
            until=until, max_events=max_events, raise_on_limit=raise_on_limit
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimNetwork(ads={self.graph.num_ads}, nodes={len(self.nodes)})"
