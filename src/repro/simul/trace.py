"""Structured event tracing for protocol debugging.

A :class:`Tracer` taps a :class:`~repro.simul.network.SimNetwork` and
records every control-message delivery and link status change as typed
records.  Protocol debugging on a 60-AD internet is hopeless from print
statements; the tracer gives filtered timelines instead::

    tracer = Tracer.attach(network)
    protocol.converge()
    print(tracer.timeline(ad=7, limit=20))       # what AD 7 saw
    print(tracer.message_counts())

Tracing is opt-in and purely observational: it never alters delivery
order or timing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

from repro.adgraph.ad import ADId
from repro.simul.messages import Message
from repro.simul.network import SimNetwork


@dataclass(frozen=True)
class TraceRecord:
    """One observed event."""

    time: float
    kind: str  # "msg" | "link"
    src: Optional[ADId]
    dst: Optional[ADId]
    detail: str
    size: int = 0

    def render(self) -> str:
        if self.kind == "msg":
            return (
                f"[{self.time:10.2f}] {self.src:>4} -> {self.dst:<4} "
                f"{self.detail} ({self.size}B)"
            )
        return f"[{self.time:10.2f}] link {self.src}-{self.dst} {self.detail}"


class Tracer:
    """Records deliveries and link changes on a network."""

    def __init__(self, network: SimNetwork, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.network = network
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        self.dropped_records = 0

    @classmethod
    def attach(cls, network: SimNetwork, capacity: int = 100_000) -> "Tracer":
        """Wrap the network's delivery and link-change paths."""
        tracer = cls(network, capacity)
        original_deliver = network._deliver
        original_set_link = network.set_link_status

        def traced_deliver(src: ADId, dst: ADId, msg: Message) -> None:
            tracer._record(
                TraceRecord(
                    time=network.sim.now,
                    kind="msg",
                    src=src,
                    dst=dst,
                    detail=msg.type_name,
                    size=msg.size_bytes(),
                )
            )
            original_deliver(src, dst, msg)

        def traced_set_link(a: ADId, b: ADId, up: bool) -> None:
            tracer._record(
                TraceRecord(
                    time=network.sim.now,
                    kind="link",
                    src=a,
                    dst=b,
                    detail="up" if up else "DOWN",
                )
            )
            original_set_link(a, b, up)

        network._deliver = traced_deliver  # type: ignore[method-assign]
        network.set_link_status = traced_set_link  # type: ignore[method-assign]
        return tracer

    def _record(self, record: TraceRecord) -> None:
        if len(self.records) >= self.capacity:
            self.dropped_records += 1
            return
        self.records.append(record)

    # -------------------------------------------------------------- queries

    def filtered(
        self,
        ad: Optional[ADId] = None,
        kind: Optional[str] = None,
        msg_type: Optional[str] = None,
        since: float = 0.0,
    ) -> List[TraceRecord]:
        """Records matching all given filters."""
        out = []
        for rec in self.records:
            if rec.time < since:
                continue
            if kind is not None and rec.kind != kind:
                continue
            if msg_type is not None and rec.detail != msg_type:
                continue
            if ad is not None and ad not in (rec.src, rec.dst):
                continue
            out.append(rec)
        return out

    def timeline(
        self,
        ad: Optional[ADId] = None,
        limit: int = 50,
        since: float = 0.0,
    ) -> str:
        """Human-readable event timeline (most recent ``limit`` lines)."""
        records = self.filtered(ad=ad, since=since)
        lines = [r.render() for r in records[-limit:]]
        if len(records) > limit:
            lines.insert(0, f"... {len(records) - limit} earlier events elided ...")
        return "\n".join(lines) if lines else "(no events)"

    def message_counts(self) -> Counter:
        """Delivered messages per type."""
        return Counter(r.detail for r in self.records if r.kind == "msg")

    def conversation(
        self, a: ADId, b: ADId
    ) -> List[TraceRecord]:
        """All messages exchanged between two ADs, in order."""
        return [
            r
            for r in self.records
            if r.kind == "msg" and {r.src, r.dst} == {a, b}
        ]

    def __len__(self) -> int:
        return len(self.records)
