"""Protocol node base class.

Each AD is represented by one :class:`ProtocolNode` (the paper's Section
4.1 abstraction: inter-AD routing happens at AD granularity, so one
routing entity per AD suffices; intra-AD detail is invisible).

Subclasses implement three hooks:

* :meth:`ProtocolNode.start` — fires once at simulation start; typically
  sends initial advertisements to neighbours.
* :meth:`ProtocolNode.on_message` — a control message arrived.
* :meth:`ProtocolNode.on_link_change` — an incident link went up or down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.adgraph.ad import ADId, InterADLink
from repro.simul.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.network import SimNetwork


class ProtocolNode:
    """Base class for the per-AD routing process."""

    def __init__(self, ad_id: ADId) -> None:
        self.ad_id = ad_id
        self._network: Optional["SimNetwork"] = None
        self._defunct = False

    # ----------------------------------------------------------- plumbing

    def attach(self, network: "SimNetwork") -> None:
        """Called by the network when the node is registered."""
        self._network = network

    def detach(self) -> None:
        """Disconnect from the network (used when built on a scratch one)."""
        self._network = None

    def retire(self) -> None:
        """Permanently silence this node: pending timers become no-ops.

        Used when a crashed AD is restarted *without* state -- the old
        process is replaced, so its outstanding retransmission and refresh
        timers must never fire against the live network.
        """
        self._defunct = True

    def inherit_nonvolatile(self, previous: "ProtocolNode") -> None:
        """Copy non-volatile state from the node this one replaces.

        Real routing processes keep a few things across a state-losing
        restart (e.g. an LSA sequence counter in NVRAM, so post-restart
        originations are not rejected as stale).  Default: nothing.
        """

    @property
    def network(self) -> "SimNetwork":
        if self._network is None:
            raise RuntimeError(f"node {self.ad_id} is not attached to a network")
        return self._network

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.network.sim.now

    def neighbors(self) -> List[ADId]:
        """Currently reachable neighbour ADs (live links only)."""
        return self.network.graph.neighbors(self.ad_id)

    def send(self, dst: ADId, msg: Message) -> None:
        """Send a control message to a neighbour AD."""
        self.network.send(self.ad_id, dst, msg)

    def broadcast(self, msg: Message, exclude: Optional[ADId] = None) -> None:
        """Send a message to every live neighbour (optionally minus one)."""
        for nbr in self.neighbors():
            if nbr != exclude:
                self.send(nbr, msg)

    def note_computation(self, kind: str, count: int = 1) -> None:
        """Record local computation work in the run's metrics."""
        self.network.metrics.note_computation(self.ad_id, kind, count)

    def schedule(self, delay: float, fn, *args) -> "object":
        """Schedule a local timer on the simulation engine.

        The timer is bound to this node's lifetime: if the node has been
        :meth:`retire`\\ d by the time it fires, it does nothing.
        """

        def fire() -> None:
            if not self._defunct:
                fn(*args)

        return self.network.sim.schedule(delay, fire)

    # --------------------------------------------------------------- hooks

    def start(self) -> None:
        """Simulation-start hook.  Default: do nothing."""

    def on_message(self, sender: ADId, msg: Message) -> None:
        """A control message from a neighbour arrived.  Must be overridden
        by protocols that ever receive messages."""
        raise NotImplementedError(
            f"{type(self).__name__} received unexpected {msg.type_name}"
        )

    def on_link_change(self, link: InterADLink, up: bool) -> None:
        """An incident link changed status.  Default: do nothing."""

    def misbehave(self, lie: str, target: Optional[ADId] = None) -> bool:
        """Turn this node into a liar of the given kind.

        Returns whether the lie is expressible in this protocol family
        (a DV speaker has no policy terms to forge); the driver records
        the outcome rather than failing the run.  Default: no lie is
        expressible.
        """
        return False

    def behave(self) -> None:
        """Stop originating lies (already-sent lies are not withdrawn)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(AD{self.ad_id})"
