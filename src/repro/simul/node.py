"""Protocol node base class.

Each AD is represented by one :class:`ProtocolNode` (the paper's Section
4.1 abstraction: inter-AD routing happens at AD granularity, so one
routing entity per AD suffices; intra-AD detail is invisible).

Nodes are substrate-neutral: everything they touch goes through the
:class:`~repro.simul.transport.Transport` and
:class:`~repro.simul.transport.Clock` interfaces, so the same subclass
runs unmodified on the discrete-event simulator and on the live
asyncio/UDP substrate (:mod:`repro.live`).

Subclasses implement three hooks:

* :meth:`ProtocolNode.start` — fires once at simulation start; typically
  sends initial advertisements to neighbours.
* :meth:`ProtocolNode.on_message` — a control message arrived.
* :meth:`ProtocolNode.on_link_change` — an incident link went up or down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.adgraph.ad import ADId, InterADLink
from repro.simul.messages import Message
from repro.simul.transport import TimerHandle, Transport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.adgraph.graph import InterADGraph
    from repro.protocols.graceful import GracefulRestartConfig
    from repro.protocols.versioning import WireConfig
    from repro.simul.profiling import PhaseProfiler


class ProtocolNode:
    """Base class for the per-AD routing process."""

    def __init__(self, ad_id: ADId) -> None:
        self.ad_id = ad_id
        self._transport: Optional[Transport] = None
        self._defunct = False
        # Imported lazily: repro.protocols imports this module at
        # package-init time, so the reverse import must wait until the
        # first node is constructed.
        from repro.protocols.graceful import GracefulRestartConfig
        from repro.protocols.versioning import WireConfig

        #: Graceful-restart runtime config, restamped at build/restart
        #: time by the driver alongside hardening/validation/pacing.
        self.graceful: "GracefulRestartConfig" = GracefulRestartConfig()
        #: How many times this node acted as a graceful-restart helper
        #: (entered the hold-routes-as-stale state for a neighbour).
        self.grace_holds = 0
        #: Wire-version runtime config, restamped like ``graceful``.
        self.wire: "WireConfig" = WireConfig()
        #: peer -> (min_version, version) last advertised in a Hello.
        self.peer_wire: Dict[ADId, Tuple[int, int]] = {}
        #: peer -> capability strings last advertised in a Hello.
        self.peer_capabilities: Dict[ADId, Tuple[str, ...]] = {}
        #: peer -> negotiated tx version (highest mutually supported).
        self.negotiated: Dict[ADId, int] = {}
        #: Peers whose advertised version range does not overlap ours;
        #: their control traffic is dropped, never believed.
        self.version_blocked: Set[ADId] = set()
        #: Frames dropped because the sender is version-blocked.
        self.version_drops = 0

    # ----------------------------------------------------------- plumbing

    def attach(self, transport: Transport) -> None:
        """Called by the transport when the node is registered."""
        self._transport = transport

    def detach(self) -> None:
        """Disconnect from the transport (used when built on a scratch one)."""
        self._transport = None

    def retire(self) -> None:
        """Permanently silence this node: pending timers become no-ops.

        Used when a crashed AD is restarted *without* state -- the old
        process is replaced, so its outstanding retransmission and refresh
        timers must never fire against the live network.
        """
        self._defunct = True

    def inherit_nonvolatile(self, previous: "ProtocolNode") -> None:
        """Copy non-volatile state from the node this one replaces.

        Real routing processes keep a few things across a state-losing
        restart (e.g. an LSA sequence counter in NVRAM, so post-restart
        originations are not rejected as stale).  Default: nothing.
        """

    @property
    def transport(self) -> Transport:
        """The substrate this node is attached to."""
        if self._transport is None:
            raise RuntimeError(f"node {self.ad_id} is not attached to a network")
        return self._transport

    @property
    def network(self) -> Transport:
        """Historical alias for :attr:`transport`.

        Protocol *drivers* and tests grew up calling the substrate "the
        network"; node subclasses should prefer the interface-shaped
        accessors (:attr:`topology`, :attr:`profiler`, :meth:`schedule`,
        ...).
        """
        return self.transport

    @property
    def topology(self) -> "InterADGraph":
        """The inter-AD topology (links, metrics, policy terms)."""
        return self.transport.graph

    @property
    def profiler(self) -> Optional["PhaseProfiler"]:
        """The substrate's wall-clock profiler, if one is attached."""
        return self.transport.profiler

    @property
    def now(self) -> float:
        """Current time, in protocol time units."""
        return self.transport.clock.now

    def neighbors(self) -> List[ADId]:
        """Currently reachable neighbour ADs (live links only)."""
        return self.transport.neighbors(self.ad_id)

    def send(self, dst: ADId, msg: Message) -> None:
        """Send a control message to a neighbour AD."""
        self.transport.send(self.ad_id, dst, msg)

    def broadcast(self, msg: Message, exclude: Optional[ADId] = None) -> None:
        """Send a message to every live neighbour (optionally minus one)."""
        for nbr in self.neighbors():
            if nbr != exclude:
                self.send(nbr, msg)

    def note_computation(self, kind: str, count: int = 1) -> None:
        """Record local computation work in the run's metrics."""
        self.transport.metrics.note_computation(self.ad_id, kind, count)

    def schedule(self, delay: float, fn, *args) -> TimerHandle:
        """Schedule a local timer; returns a cancellable handle.

        The timer is bound to this node's lifetime: if the node has been
        :meth:`retire`\\ d by the time it fires, it does nothing.  The
        returned :class:`~repro.simul.transport.TimerHandle` follows the
        transport-wide contract -- ``cancel()`` is idempotent and is a
        harmless no-op after the timer has fired, so callers may cancel
        defensively without tracking whether the timer already ran.
        """

        def fire() -> None:
            if not self._defunct:
                fn(*args)

        return self.transport.clock.call_later(delay, fire)

    # ------------------------------------------------- version negotiation

    def receive(self, sender: ADId, msg: Message) -> None:
        """Substrate-facing delivery entry point.

        When negotiation is off (the default) this is exactly
        :meth:`on_message`.  When on, Hellos are consumed here -- before
        any protocol code sees them -- and control traffic from
        version-blocked peers is dropped, so an unsupported-version peer
        can never corrupt the believed view.
        """
        if self.wire.negotiate:
            from repro.protocols.versioning import Hello

            if isinstance(msg, Hello):
                self._on_hello(sender, msg)
                return
            if sender in self.version_blocked:
                self.version_drops += 1
                self.transport.metrics.count_version_reject()
                return
        self.on_message(sender, msg)

    def announce_wire(self) -> None:
        """Send a Hello to every live neighbour (start / post-flip)."""
        if not self.wire.negotiate:
            return
        for nbr in self.neighbors():
            self._send_hello(nbr, reply=False)

    def wire_tx_version(self, dst: ADId) -> int:
        """The version to encode frames to ``dst`` at.

        Before negotiation completes (or when it is off for this pair)
        a negotiating node transmits at its *minimum* version -- the
        only revision it can prove the peer decodes.
        """
        if not self.wire.negotiate:
            return self.wire.version
        return self.negotiated.get(dst, self.wire.min_version)

    def renegotiate(self) -> None:
        """Recompute every pair after a live version flip, re-announce."""
        if not self.wire.negotiate:
            return
        for peer, (peer_min, peer_version) in list(self.peer_wire.items()):
            self._settle_pair(peer, peer_min, peer_version)
        self.announce_wire()

    def _send_hello(self, dst: ADId, *, reply: bool) -> None:
        from repro.protocols.versioning import Hello

        self.send(
            dst,
            Hello(
                version=self.wire.version,
                min_version=self.wire.min_version,
                reply=reply,
                capabilities=self.wire.capabilities,
            ),
        )

    def _on_hello(self, sender: ADId, hello: "Message") -> None:
        self.peer_wire[sender] = (hello.min_version, hello.version)
        self.peer_capabilities[sender] = tuple(hello.capabilities)
        self._settle_pair(sender, hello.min_version, hello.version)
        if not hello.reply:
            self._send_hello(sender, reply=True)

    def _settle_pair(self, peer: ADId, peer_min: int, peer_version: int) -> None:
        low = max(self.wire.min_version, peer_min)
        high = min(self.wire.version, peer_version)
        if low > high:
            # No mutually supported revision: block the peer loudly.
            self.negotiated.pop(peer, None)
            self.version_blocked.add(peer)
            self.transport.metrics.count_version_reject()
            guard = getattr(self, "guard", None)
            if guard is not None:
                guard.quarantine_now(
                    peer,
                    f"unsupported wire version [{peer_min}, {peer_version}]",
                )
            return
        self.version_blocked.discard(peer)
        if self.negotiated.get(peer) != high:
            self.negotiated[peer] = high
            self.transport.metrics.note_negotiated(self.ad_id, peer, high)

    # --------------------------------------------------------------- hooks

    def start(self) -> None:
        """Simulation-start hook.  Default: do nothing."""

    def on_message(self, sender: ADId, msg: Message) -> None:
        """A control message from a neighbour arrived.  Must be overridden
        by protocols that ever receive messages."""
        raise NotImplementedError(
            f"{type(self).__name__} received unexpected {msg.type_name}"
        )

    def on_link_change(self, link: InterADLink, up: bool) -> None:
        """An incident link changed status.  Default: do nothing."""

    def on_neighbor_grace(self, neighbor: ADId, hold_time: float) -> None:
        """A neighbour began a graceful restart: hold its routes as stale.

        The default helper behaviour is *inaction* -- the neighbour's
        routes stay installed because no link-down event is delivered,
        which is exactly the stale-retention semantics every family
        needs.  Subclasses may additionally mark state stale; the base
        class just counts the hold for observability.
        """
        self.grace_holds += 1

    def on_neighbor_resync(self, neighbor: ADId) -> None:
        """A gracefully restarted neighbour is back: replay bring-up.

        Default: re-run this family's own link-up machinery on the
        shared link, which is a full adjacency resynchronisation in
        every implemented family (LS database exchange, DV full-table
        flush, path-vector Loc-RIB re-advertisement) and refreshes any
        stale-held state on both sides.
        """
        link = self.topology.link_if_exists(self.ad_id, neighbor)
        if link is not None and link.up:
            self.on_link_change(link, True)

    def misbehave(self, lie: str, target: Optional[ADId] = None) -> bool:
        """Turn this node into a liar of the given kind.

        Returns whether the lie is expressible in this protocol family
        (a DV speaker has no policy terms to forge); the driver records
        the outcome rather than failing the run.  Default: no lie is
        expressible.
        """
        return False

    def behave(self) -> None:
        """Stop originating lies (already-sent lies are not withdrawn)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(AD{self.ad_id})"
