"""Base message types for protocol exchanges.

Concrete protocols define their own dataclass messages; they all derive
from :class:`Message` so the network can account for their size.  Sizes
are modelled, not serialised: each message type computes an estimated wire
size from a small fixed header plus its payload fields, which is enough
to compare control-traffic volume across architectures (experiments E4,
E7) the way the paper compares them.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Modelled size of the fixed per-message header (type, version, checksum,
#: source/destination AD ids).
HEADER_BYTES = 12

#: Modelled size of one AD identifier on the wire.
AD_ID_BYTES = 2

#: Modelled size of one metric value on the wire.
METRIC_BYTES = 4


@dataclass(frozen=True, slots=True)
class Message:
    """Base class for inter-AD protocol messages.

    ``slots=True`` keeps the per-message footprint to the declared fields;
    messages are the simulator's dominant short-lived allocation.  (Only
    subclasses that also declare ``slots=True`` share the diet; the rest
    simply keep their ``__dict__``.)
    """

    def size_bytes(self) -> int:
        """Estimated wire size; subclasses add their payload."""
        return HEADER_BYTES

    @property
    def type_name(self) -> str:
        """Short name used in per-type message accounting."""
        return type(self).__name__
