"""Convergence runners and failure-injection experiments.

The convergence experiments (E4) measure, per the paper's Section 4.3 and
5.1.1 claims, how many messages/bytes and how much simulated time each
protocol needs to reconverge after a topology change.  The pattern is:

1. start the network and run to quiescence (initial convergence);
2. snapshot metrics;
3. apply one failure, run to quiescence again, snapshot;
4. the delta between snapshots is that failure's reconvergence cost.

Quiescence is natural for the protocols here: they are purely event
driven (triggered updates only, no periodic timers), so an empty event
queue means the protocol has converged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.adgraph.failures import FailurePlan, LinkFailure
from repro.simul.metrics import MetricsSnapshot
from repro.simul.network import SimNetwork


@dataclass(frozen=True)
class ConvergenceResult:
    """Cost of one convergence episode.

    Attributes:
        messages: Control messages delivered during the episode.
        bytes: Control bytes delivered.
        time: Simulated time from episode start until the last protocol
            activity (0 if the episode produced no messages).
        events: Engine events processed.
        quiesced: Whether the event queue actually drained.  ``False``
            means ``max_events`` ran out first -- the protocol had not
            converged, and the costs above are a truncated lower bound,
            not a convergence cost.
    """

    messages: int
    bytes: int
    time: float
    events: int
    quiesced: bool = True

    @classmethod
    def from_delta(
        cls,
        start: MetricsSnapshot,
        end: MetricsSnapshot,
        events: int,
        quiesced: bool = True,
    ) -> "ConvergenceResult":
        delta = end.delta(start)
        active = max(0.0, end.last_activity - start.time)
        if delta.total_messages == 0:
            active = 0.0
        return cls(
            messages=delta.total_messages,
            bytes=delta.total_bytes,
            time=active,
            events=events,
            quiesced=quiesced,
        )


def converge(network: SimNetwork, max_events: int = 5_000_000) -> ConvergenceResult:
    """Start (if needed) and run the network to quiescence.

    A run that exhausts ``max_events`` is reported, not raised:
    the returned result has ``quiesced=False`` so callers can tell a
    converged protocol from one that was cut off mid-storm.
    """
    if network.sim.events_processed == 0 and network.sim.pending == 0:
        network.start()
    before = network.metrics.snapshot(network.sim.now)
    events = network.run(max_events=max_events, raise_on_limit=False)
    after = network.metrics.snapshot(network.sim.now)
    return ConvergenceResult.from_delta(
        before, after, events, quiesced=not network.sim.hit_event_limit
    )


@dataclass(frozen=True)
class FailureEpisode:
    """One failure and the reconvergence it caused."""

    failure: LinkFailure
    result: ConvergenceResult


def run_with_failures(
    network: SimNetwork,
    plan: FailurePlan,
    max_events: int = 5_000_000,
) -> Tuple[ConvergenceResult, List[FailureEpisode]]:
    """Initial convergence, then one isolated episode per plan event.

    Unlike :meth:`SimNetwork.schedule_failure_plan` (which interleaves),
    this applies each status change only after the previous episode has
    quiesced, so per-failure costs are cleanly separable.

    Returns the initial convergence result and the per-failure episodes.
    """
    initial = converge(network, max_events=max_events)
    episodes: List[FailureEpisode] = []
    for ev in plan:
        before = network.metrics.snapshot(network.sim.now)
        network.set_link_status(ev.a, ev.b, ev.up)
        events = network.run(max_events=max_events, raise_on_limit=False)
        after = network.metrics.snapshot(network.sim.now)
        episodes.append(
            FailureEpisode(
                ev,
                ConvergenceResult.from_delta(
                    before, after, events, quiesced=not network.sim.hit_event_limit
                ),
            )
        )
    return initial, episodes
