"""Discrete-event message-passing simulation substrate.

All routing protocols in this reproduction run as message-passing node
processes over a deterministic discrete-event engine:

* :class:`~repro.simul.engine.Simulator` — the event queue (time-ordered,
  ties broken by insertion sequence, so runs are bit-reproducible).
* :class:`~repro.simul.network.SimNetwork` — binds a topology to protocol
  nodes; delivers messages with per-link delay, accounts for every byte,
  and delivers link up/down notifications to the endpoints.
* :class:`~repro.simul.node.ProtocolNode` — base class protocol nodes
  extend.
* :mod:`~repro.simul.runner` — convergence helpers and failure injection.
* :mod:`~repro.simul.transport` — the engine/transport boundary
  (:class:`Transport`/:class:`Clock`/:class:`TimerHandle`); the engine
  above is one implementation of it, :mod:`repro.live` is the other.
* :mod:`~repro.simul.wire` — canonical JSON codec for every message
  type (what the live substrate puts on its sockets).
"""

from repro.simul.engine import Simulator
from repro.simul.messages import Message
from repro.simul.metrics import MetricsCollector, MetricsSnapshot
from repro.simul.network import SimNetwork
from repro.simul.node import ProtocolNode
from repro.simul.profiling import PhaseProfiler
from repro.simul.runner import ConvergenceResult, converge, run_with_failures
from repro.simul.trace import TraceRecord, Tracer
from repro.simul.transport import Clock, TimerHandle, Transport
from repro.simul.wire import WireError, from_wire, to_wire

__all__ = [
    "Clock",
    "ConvergenceResult",
    "Message",
    "MetricsCollector",
    "MetricsSnapshot",
    "PhaseProfiler",
    "ProtocolNode",
    "SimNetwork",
    "Simulator",
    "TimerHandle",
    "TraceRecord",
    "Tracer",
    "Transport",
    "WireError",
    "converge",
    "from_wire",
    "run_with_failures",
    "to_wire",
]
