"""The discrete-event engine.

A minimal, deterministic event queue: events fire in (time, sequence)
order, where sequence is the global insertion counter, so two events
scheduled for the same instant fire in the order they were scheduled.
Nothing here knows about networks or protocols.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.simul.profiling import PhaseProfiler


class SimulationLimitError(RuntimeError):
    """The event budget was exhausted before the queue drained.

    Usually indicates a protocol that never quiesces (e.g. unbounded
    count-to-infinity); the naive-DV baseline caps its metric precisely to
    avoid this.
    """


@dataclass(frozen=True)
class EventHandle:
    """Handle for a scheduled event, usable to cancel it."""

    seq: int
    time: float
    _cancelled: List[bool] = field(default_factory=lambda: [False], repr=False)

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._cancelled[0] = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled[0]


class Simulator:
    """A deterministic discrete-event simulator."""

    def __init__(self, profiler: Optional[PhaseProfiler] = None) -> None:
        self._queue: List[Tuple[float, int, EventHandle, Callable[..., None], tuple]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self.events_processed = 0
        #: Wall-clock profiler; engine time accumulates under "engine.run".
        self.profiler = profiler
        #: Whether the most recent :meth:`run` stopped on ``max_events``
        #: with deliverable events still queued (i.e. did NOT quiesce).
        self.hit_event_limit = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(
        self, time: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise ValueError(f"cannot schedule into the past ({time} < {self._now})")
        handle = EventHandle(next(self._seq), time)
        heapq.heappush(self._queue, (time, handle.seq, handle, fn, args))
        return handle

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 5_000_000,
        raise_on_limit: bool = True,
    ) -> int:
        """Process events until the queue drains (or ``until`` is reached).

        Either way the clock advances to ``until`` when one is given: a
        queue that drains early leaves ``now == until`` exactly as if a
        later event had stopped the run, so callers can alternate
        ``run(until=...)`` slices with wall-clock-style bookkeeping without
        caring which case occurred.

        Returns the number of events processed by this call.  If
        ``max_events`` fire without the queue draining -- a non-quiescing
        protocol -- either raises :class:`SimulationLimitError` (the
        default) or, with ``raise_on_limit=False``, stops with the
        over-budget event still queued and :attr:`hit_event_limit` set, so
        callers can report a non-quiescent run instead of crashing.
        """
        processed = 0
        self.hit_event_limit = False
        t0 = time.perf_counter() if self.profiler is not None else 0.0
        try:
            while self._queue:
                event_time, _seq, handle, fn, args = self._queue[0]
                if until is not None and event_time > until:
                    break
                if processed >= max_events and not handle.cancelled:
                    self.hit_event_limit = True
                    if raise_on_limit:
                        raise SimulationLimitError(
                            f"exceeded {max_events} events at t={self._now}"
                        )
                    break
                heapq.heappop(self._queue)
                self._now = event_time
                if handle.cancelled:
                    continue
                fn(*args)
                processed += 1
                self.events_processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            if self.profiler is not None:
                self.profiler.add("engine.run", time.perf_counter() - t0)
        return processed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Simulator(now={self._now}, pending={self.pending})"
