"""The discrete-event engine.

A minimal, deterministic event queue: events fire in (time, sequence)
order, where sequence is the global insertion counter, so two events
scheduled for the same instant fire in the order they were scheduled.
Nothing here knows about networks or protocols.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, List, Optional, Tuple

from repro.simul.profiling import PhaseProfiler
from repro.simul.transport import TimerHandle


class SimulationLimitError(RuntimeError):
    """The event budget was exhausted before the queue drained.

    Usually indicates a protocol that never quiesces (e.g. unbounded
    count-to-infinity); the naive-DV baseline caps its metric precisely to
    avoid this.
    """


class EventHandle(TimerHandle):
    """Handle for a scheduled event, usable to cancel it.

    The sim substrate's :class:`~repro.simul.transport.TimerHandle`:
    cancellation is idempotent and harmless after the event fired.  A
    ``__slots__`` class: one is allocated per scheduled event, so it is on
    the engine's hottest allocation path.  Never compared or hashed by the
    heap (``seq`` is the unique tiebreak).
    """

    __slots__ = ("seq", "time", "_cancelled", "_on_cancel")

    def __init__(
        self,
        seq: int,
        time: float,
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self.seq = seq
        self.time = time
        self._cancelled = False
        self._on_cancel = on_cancel

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if self._cancelled:
            return
        self._cancelled = True
        callback = self._on_cancel
        if callback is not None:
            self._on_cancel = None
            callback()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventHandle(seq={self.seq}, time={self.time})"


class Simulator:
    """A deterministic discrete-event simulator."""

    #: Below this queue size, cancelled entries are never compacted; the
    #: lazy skip in :meth:`run` is cheaper than a heapify.
    COMPACT_MIN_QUEUE = 64

    def __init__(self, profiler: Optional[PhaseProfiler] = None) -> None:
        self._queue: List[Tuple[float, int, EventHandle, Callable[..., None], tuple]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self.events_processed = 0
        #: Cancelled handles still sitting in the queue (drives compaction).
        self._cancelled_pending = 0
        #: Times the queue was compacted (observability; pinned by tests).
        self.compactions = 0
        #: Wall-clock profiler; engine time accumulates under "engine.run".
        self.profiler = profiler
        #: Whether the most recent :meth:`run` stopped on ``max_events``
        #: with deliverable events still queued (i.e. did NOT quiesce).
        self.hit_event_limit = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined schedule_at (this is the per-message hot path; a
        # non-negative delay can never land in the past).
        time = self._now + delay
        handle = EventHandle(next(self._seq), time, self._note_cancel)
        heapq.heappush(self._queue, (time, handle.seq, handle, fn, args))
        return handle

    def schedule_at(
        self, time: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise ValueError(f"cannot schedule into the past ({time} < {self._now})")
        handle = EventHandle(next(self._seq), time, self._note_cancel)
        heapq.heappush(self._queue, (time, handle.seq, handle, fn, args))
        return handle

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def _note_cancel(self) -> None:
        """A queued handle was cancelled; compact once mostly dead.

        Compaction preserves the surviving entries' (time, seq) pop order
        exactly, so it never perturbs determinism -- it only stops
        timer-heavy runs (pacing/damping) from bloating the heap with
        tombstones that every push and pop must still sift past.
        """
        self._cancelled_pending += 1
        queue = self._queue
        if (
            len(queue) >= self.COMPACT_MIN_QUEUE
            and self._cancelled_pending * 2 > len(queue)
        ):
            self._queue = [entry for entry in queue if not entry[2]._cancelled]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0
            self.compactions += 1

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 5_000_000,
        raise_on_limit: bool = True,
    ) -> int:
        """Process events until the queue drains (or ``until`` is reached).

        Either way the clock advances to ``until`` when one is given: a
        queue that drains early leaves ``now == until`` exactly as if a
        later event had stopped the run, so callers can alternate
        ``run(until=...)`` slices with wall-clock-style bookkeeping without
        caring which case occurred.

        Returns the number of events processed by this call.  If
        ``max_events`` fire without the queue draining -- a non-quiescing
        protocol -- either raises :class:`SimulationLimitError` (the
        default) or, with ``raise_on_limit=False``, stops with the
        over-budget event still queued and :attr:`hit_event_limit` set, so
        callers can report a non-quiescent run instead of crashing.
        """
        processed = 0
        self.hit_event_limit = False
        t0 = time.perf_counter() if self.profiler is not None else 0.0
        try:
            while self._queue:
                event_time, _seq, handle, fn, args = self._queue[0]
                if until is not None and event_time > until:
                    break
                if processed >= max_events and not handle.cancelled:
                    self.hit_event_limit = True
                    if raise_on_limit:
                        raise SimulationLimitError(
                            f"exceeded {max_events} events at t={self._now}"
                        )
                    break
                heapq.heappop(self._queue)
                self._now = event_time
                if handle._cancelled:
                    if self._cancelled_pending > 0:
                        self._cancelled_pending -= 1
                    continue
                # A fired handle may still be cancel()ed later (harmless);
                # detach the callback so that cannot skew the tombstone
                # count toward premature compactions.
                handle._on_cancel = None
                fn(*args)
                processed += 1
                self.events_processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            if self.profiler is not None:
                self.profiler.add("engine.run", time.perf_counter() - t0)
        return processed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Simulator(now={self._now}, pending={self.pending})"
