"""The engine/transport boundary.

Protocol nodes are pure message-in/message-out processes; everything they
need from the outside world is captured by two small interfaces:

* :class:`Clock` — tells the time and schedules timers.  Timers return a
  :class:`TimerHandle` whose :meth:`~TimerHandle.cancel` is idempotent and
  harmless after the timer fired (cancel-after-fire is a no-op, never an
  error).
* :class:`Transport` — owns the topology view, delivers control messages
  between neighbouring ADs, and accounts for every byte.

Two substrates implement them:

* the discrete-event simulator (:class:`~repro.simul.network.SimNetwork`
  + :class:`SimClock` over :class:`~repro.simul.engine.Simulator`), which
  is deterministic and bit-reproducible; and
* the live asyncio/UDP substrate (:mod:`repro.live`), where each AD is an
  asyncio task and timers map onto ``loop.call_later``.

Nodes must only touch these interfaces (plus their own state); protocol
*drivers* — the build/evaluate orchestration in
:mod:`repro.protocols.base` — may still reach for substrate-specific
machinery such as ``SimNetwork.run``.

The boundary is also where wire versioning stays substrate-neutral:
:meth:`Transport.send` carries in-memory :class:`~repro.simul.messages.Message`
objects, and each substrate encodes them with the *sender's* negotiated
wire version (:mod:`repro.simul.wire`, ``ProtocolNode.wire_tx_version``)
at its own edge — the sim when it counts bytes, the live substrate when
it frames UDP datagrams — so nodes negotiate and re-negotiate versions
without knowing which substrate carries their frames.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.adgraph.ad import ADId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adgraph.graph import InterADGraph
    from repro.simul.engine import Simulator
    from repro.simul.messages import Message
    from repro.simul.metrics import MetricsCollector
    from repro.simul.node import ProtocolNode
    from repro.simul.profiling import PhaseProfiler


class TimerHandle(abc.ABC):
    """Handle for a pending timer, usable to cancel it.

    Contract (identical on every substrate):

    * :meth:`cancel` is idempotent — calling it twice is a no-op.
    * Cancelling a timer that already fired is harmless: the handle simply
      stays :attr:`cancelled` and nothing else happens.  Callers may
      therefore keep handles around and cancel them defensively without
      tracking whether the timer ran.
    * A timer cancelled before its deadline never fires.
    """

    __slots__ = ()

    @abc.abstractmethod
    def cancel(self) -> None:
        """Prevent the timer from firing (idempotent, safe after fire)."""

    @property
    @abc.abstractmethod
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""


class Clock(abc.ABC):
    """Time source and timer scheduler for one substrate.

    ``now`` is in protocol time units (the sim's abstract units; the live
    substrate divides wall-clock seconds by its ``time_scale`` so both
    substrates quote comparable numbers).
    """

    __slots__ = ()

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time, in protocol time units."""

    @abc.abstractmethod
    def call_later(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> TimerHandle:
        """Run ``fn(*args)`` after ``delay`` time units; returns a handle."""


class SimClock(Clock):
    """The discrete-event engine exposed through the :class:`Clock` API.

    A thin veneer over :class:`~repro.simul.engine.Simulator`: it adds no
    events, state, or ordering of its own, so the sim substrate stays
    byte-identical to driving the engine directly.
    """

    __slots__ = ("_sim",)

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim

    @property
    def now(self) -> float:
        return self._sim.now

    def call_later(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> TimerHandle:
        return self._sim.schedule(delay, fn, *args)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self._sim.now})"


class Transport(abc.ABC):
    """What a protocol node may ask of the network substrate.

    Concrete transports also expose, as plain attributes:

    * ``graph`` — the :class:`~repro.adgraph.graph.InterADGraph` topology
      (nodes read link state and policy terms from it).
    * ``metrics`` — the :class:`~repro.simul.metrics.MetricsCollector`
      accounting messages, bytes, and computation.
    * ``profiler`` — an optional wall-clock
      :class:`~repro.simul.profiling.PhaseProfiler` (may be ``None``).
    * ``nodes`` — the ``{ad_id: ProtocolNode}`` registry.
    """

    graph: "InterADGraph"
    metrics: "MetricsCollector"
    profiler: Optional["PhaseProfiler"]
    nodes: Dict[ADId, "ProtocolNode"]

    @property
    @abc.abstractmethod
    def clock(self) -> Clock:
        """The substrate's time source and timer scheduler."""

    @abc.abstractmethod
    def send(self, src: ADId, dst: ADId, msg: "Message") -> None:
        """Transmit a control message from ``src`` to neighbour ``dst``.

        Messages over a dead or missing link are dropped and counted, not
        raised (except that ``src``/``dst`` must at least be adjacent in
        the topology).
        """

    @abc.abstractmethod
    def neighbors(self, ad_id: ADId) -> List[ADId]:
        """Currently reachable neighbour ADs of ``ad_id`` (live links)."""
