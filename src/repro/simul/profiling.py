"""Lightweight wall-clock phase profiling for simulation runs.

A :class:`PhaseProfiler` accumulates ``perf_counter`` seconds per named
phase.  The engine and the network accept one opportunistically: when no
profiler is attached (the default) the hot paths pay a single ``None``
check, so profiling never perturbs ordinary runs.  The experiment
harness attaches a profiler per run and persists the phase timings in
each :class:`~repro.harness.record.RunRecord`.

Usage::

    profiler = PhaseProfiler()
    with profiler.phase("build"):
        network = protocol.build()
    network.set_profiler(profiler)     # engine time shows up as "engine.run"
    profiler.as_dict()                 # {"build": 0.012, "engine.run": 0.4}
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.entries: Dict[str, int] = {}

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` of wall-clock time to ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.entries[name] = self.entries.get(name, 0) + 1

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and credit it to ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def as_dict(self) -> Dict[str, float]:
        """Phase name -> accumulated seconds (copy)."""
        return dict(self.seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        phases = ", ".join(
            f"{name}={secs:.3f}s" for name, secs in sorted(self.seconds.items())
        )
        return f"PhaseProfiler({phases})"
