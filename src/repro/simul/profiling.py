"""Lightweight wall-clock phase profiling for simulation runs.

A :class:`PhaseProfiler` accumulates ``perf_counter`` seconds per named
phase.  The engine and the network accept one opportunistically: when no
profiler is attached (the default) the hot paths pay a single ``None``
check, so profiling never perturbs ordinary runs.  The experiment
harness attaches a profiler per run and persists the phase timings in
each :class:`~repro.harness.record.RunRecord`.

Usage::

    profiler = PhaseProfiler()
    with profiler.phase("build"):
        network = protocol.build()
    network.set_profiler(profiler)     # engine time shows up as "engine.run"
    profiler.as_dict()                 # {"build": 0.012, "engine.run": 0.4}
"""

from __future__ import annotations

import time
from typing import Dict


class _Phase:
    """A minimal timing context: cheaper than ``@contextmanager``.

    Protocol hot paths open a phase per *message*, so the generator
    machinery a ``contextlib`` context drags in (frame, send, throw)
    is measurable; this is two ``perf_counter`` calls and a dict update.
    """

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> None:
        self._t0 = time.perf_counter()

    def __exit__(self, *exc) -> None:
        self._profiler.add(self._name, time.perf_counter() - self._t0)


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.entries: Dict[str, int] = {}

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` of wall-clock time to ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.entries[name] = self.entries.get(name, 0) + 1

    def phase(self, name: str) -> _Phase:
        """Time a ``with`` block and credit it to ``name``."""
        return _Phase(self, name)

    def as_dict(self) -> Dict[str, float]:
        """Phase name -> accumulated seconds (copy)."""
        return dict(self.seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        phases = ", ".join(
            f"{name}={secs:.3f}s" for name, secs in sorted(self.seconds.items())
        )
        return f"PhaseProfiler({phases})"
