"""Metrics collection for simulation runs.

One :class:`MetricsCollector` instance lives on each
:class:`~repro.simul.network.SimNetwork` and accumulates:

* control messages and bytes, per message type;
* dropped messages (sent over dead links);
* per-AD computation counters (route computations, SPF runs, ...),
  incremented by protocol code via :meth:`MetricsCollector.note_computation`;
* the time of last protocol activity, from which convergence time is
  derived.

:meth:`MetricsCollector.snapshot` returns an immutable
:class:`MetricsSnapshot`; deltas between snapshots isolate a single
reconvergence episode.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.adgraph.ad import ADId


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable copy of collector state at a point in simulated time."""

    time: float
    messages: Mapping[str, int]
    bytes: Mapping[str, int]
    dropped: int
    computations: Mapping[Tuple[ADId, str], int]
    last_activity: float
    channel_dropped: int = 0
    duplicated: int = 0
    queue_dropped: int = 0
    deferred: int = 0
    live_send_retries: int = 0
    live_send_drops: int = 0
    #: Messages rejected on version grounds (failed negotiations plus
    #: frames dropped from version-blocked peers).
    version_rejected: int = 0
    #: ``"ad>peer" -> negotiated wire version`` for every pair that has
    #: completed the HELLO handshake.  State, not a counter: a delta
    #: carries the *later* snapshot's census as-is.
    negotiated_versions: Mapping[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.negotiated_versions is None:
            object.__setattr__(self, "negotiated_versions", {})

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    @property
    def total_computations(self) -> int:
        return sum(self.computations.values())

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot minus an earlier one (per-key subtraction)."""
        messages = _sub(self.messages, earlier.messages)
        byts = _sub(self.bytes, earlier.bytes)
        comps = _sub(self.computations, earlier.computations)
        return MetricsSnapshot(
            time=self.time - earlier.time,
            messages=messages,
            bytes=byts,
            dropped=self.dropped - earlier.dropped,
            computations=comps,
            last_activity=self.last_activity,
            channel_dropped=self.channel_dropped - earlier.channel_dropped,
            duplicated=self.duplicated - earlier.duplicated,
            queue_dropped=self.queue_dropped - earlier.queue_dropped,
            deferred=self.deferred - earlier.deferred,
            live_send_retries=(
                self.live_send_retries - earlier.live_send_retries
            ),
            live_send_drops=self.live_send_drops - earlier.live_send_drops,
            version_rejected=self.version_rejected - earlier.version_rejected,
            negotiated_versions=self.negotiated_versions,
        )


def _sub(a: Mapping, b: Mapping) -> Dict:
    out = dict(a)
    for key, val in b.items():
        out[key] = out.get(key, 0) - val
        if out[key] == 0:
            del out[key]
    return out


class MetricsCollector:
    """Mutable accumulator of simulation metrics."""

    def __init__(self) -> None:
        self.messages: Counter = Counter()
        self.bytes: Counter = Counter()
        self.dropped = 0
        self.computations: Counter = Counter()
        self.last_activity = 0.0
        self.channel_dropped = 0
        self.duplicated = 0
        self.queue_dropped = 0
        self.deferred = 0
        self.live_send_retries = 0
        self.live_send_drops = 0
        self.version_rejected = 0
        self.negotiated_versions: Dict[str, int] = {}

    def count_message(self, type_name: str, size: int, time: float) -> None:
        """Record one delivered control message."""
        self.messages[type_name] += 1
        self.bytes[type_name] += size
        self.last_activity = max(self.last_activity, time)

    def count_drop(self) -> None:
        """Record a message lost to a dead link."""
        self.dropped += 1

    def count_channel_drop(self) -> None:
        """Record a message lost to channel impairment (not a dead link)."""
        self.channel_dropped += 1

    def count_duplicated(self, n: int = 1) -> None:
        """Record extra copies injected by channel duplication."""
        self.duplicated += n

    def count_queue_drop(self) -> None:
        """Record a message lost to a full ingress queue."""
        self.queue_dropped += 1

    def count_deferred(self) -> None:
        """Record a backpressure deferral (redelivery scheduled)."""
        self.deferred += 1

    def count_live_send_retry(self) -> None:
        """Record a transient UDP send error that will be retried."""
        self.live_send_retries += 1

    def count_live_send_drop(self) -> None:
        """Record a frame given up on after the send retry budget."""
        self.live_send_drops += 1

    def count_version_reject(self) -> None:
        """Record a message rejected on wire-version grounds."""
        self.version_rejected += 1

    def note_negotiated(self, ad_id: ADId, peer: ADId, version: int) -> None:
        """Record a completed per-neighbour version negotiation."""
        self.negotiated_versions[f"{ad_id}>{peer}"] = version

    def note_computation(self, ad_id: ADId, kind: str, count: int = 1) -> None:
        """Record protocol computation work at an AD (e.g. one SPF run)."""
        self.computations[(ad_id, kind)] += count

    def computations_by_ad(self, kind: str) -> Dict[ADId, int]:
        """Per-AD totals for one computation kind."""
        out: Dict[ADId, int] = {}
        for (ad_id, k), n in self.computations.items():
            if k == kind:
                out[ad_id] = out.get(ad_id, 0) + n
        return out

    def snapshot(self, time: float) -> MetricsSnapshot:
        """Freeze current state."""
        return MetricsSnapshot(
            time=time,
            messages=dict(self.messages),
            bytes=dict(self.bytes),
            dropped=self.dropped,
            computations=dict(self.computations),
            last_activity=self.last_activity,
            channel_dropped=self.channel_dropped,
            duplicated=self.duplicated,
            queue_dropped=self.queue_dropped,
            deferred=self.deferred,
            live_send_retries=self.live_send_retries,
            live_send_drops=self.live_send_drops,
            version_rejected=self.version_rejected,
            negotiated_versions=dict(self.negotiated_versions),
        )
