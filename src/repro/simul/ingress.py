"""Bounded per-node ingress queues: the finite control plane.

Real routers do not process updates instantly — each message occupies a
finite input queue and takes CPU time to service.  :class:`IngressModel`
gives every simulated node that bottleneck: a bounded FIFO with a
configurable service time and an overflow policy.  It attaches to a
:class:`~repro.simul.network.SimNetwork` the same way a
:class:`~repro.faults.channel.ChannelModel` does — ``set_ingress(None)``
(the default) keeps the exact legacy instant-delivery path, so every
committed benchmark output stays byte-identical until a queue is
explicitly configured.

Overflow policies:

* ``tail-drop`` — an arrival finding the queue full is discarded and
  counted (``queue_dropped`` in :class:`MetricsSnapshot`).
* ``backpressure`` — the arrival is deferred and redelivered after
  ``retry_delay``; each message gets at most ``max_redeliveries``
  attempts before it is dropped, so a persistently-full queue cannot
  recirculate traffic forever.

Crash semantics follow the NVRAM model: crashing a node freezes its
queue (the message in service is pushed back to the head); restoring
with retained state resumes service, while a state-losing restart
flushes the queue (counted as drops) before the fresh node starts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.adgraph.ad import ADId
from repro.simul.messages import Message

OVERFLOW_POLICIES: Tuple[str, ...] = ("tail-drop", "backpressure")


@dataclass(frozen=True)
class IngressConfig:
    """Sizing of one node's control-plane input stage.

    ``capacity`` bounds the number of messages *waiting* (the message in
    service has left the queue); ``service_time`` is the simulated time
    to process one message.  ``capacity is None`` disables the queue
    entirely (legacy instant delivery).
    """

    capacity: Optional[int] = None
    service_time: float = 0.5
    policy: str = "tail-drop"
    retry_delay: float = 2.0
    max_redeliveries: int = 3

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 0:
            raise ValueError("queue capacity must be >= 0 (or None)")
        if self.service_time < 0:
            raise ValueError("service time must be >= 0")
        if self.policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {self.policy!r}; "
                f"choose from {OVERFLOW_POLICIES}"
            )
        if self.retry_delay <= 0:
            raise ValueError("backpressure retry delay must be > 0")
        if self.max_redeliveries < 0:
            raise ValueError("max redeliveries must be >= 0")

    @property
    def bounded(self) -> bool:
        return self.capacity is not None


class _NodeQueue:
    """Mutable per-node queue state."""

    __slots__ = (
        "items", "serving", "busy", "epoch",
        "peak_depth", "dropped", "deferred", "served", "busy_time",
    )

    def __init__(self) -> None:
        self.items: Deque[Tuple[ADId, Message, int]] = deque()
        self.serving: Optional[Tuple[ADId, Message]] = None
        self.busy = False
        self.epoch = 0
        self.peak_depth = 0
        self.dropped = 0
        self.deferred = 0
        self.served = 0
        self.busy_time = 0.0

    @property
    def depth(self) -> int:
        return len(self.items) + (1 if self.serving is not None else 0)


class IngressModel:
    """All per-node queues plus aggregate accounting for one network."""

    def __init__(self, config: Optional[IngressConfig] = None) -> None:
        self.config = config or IngressConfig()
        self.queues: Dict[ADId, _NodeQueue] = {}

    def queue_of(self, ad_id: ADId) -> _NodeQueue:
        q = self.queues.get(ad_id)
        if q is None:
            q = self.queues[ad_id] = _NodeQueue()
        return q

    # ------------------------------------------------------------- rollups

    @property
    def peak_depth(self) -> int:
        return max((q.peak_depth for q in self.queues.values()), default=0)

    @property
    def dropped(self) -> int:
        return sum(q.dropped for q in self.queues.values())

    @property
    def deferred(self) -> int:
        return sum(q.deferred for q in self.queues.values())

    @property
    def served(self) -> int:
        return sum(q.served for q in self.queues.values())

    def duty_cycle(self, elapsed: float, n_nodes: int) -> float:
        """Mean fraction of time a node's control plane was busy."""
        if elapsed <= 0 or n_nodes <= 0:
            return 0.0
        busy = sum(q.busy_time for q in self.queues.values())
        return busy / (elapsed * n_nodes)

    def counters(self, elapsed: float = 0.0, n_nodes: int = 0) -> Dict[str, object]:
        """Aggregate overload telemetry for a run record."""
        return {
            "capacity": self.config.capacity,
            "service_time": self.config.service_time,
            "policy": self.config.policy,
            "peak_depth": self.peak_depth,
            "dropped": self.dropped,
            "deferred": self.deferred,
            "served": self.served,
            "duty_cycle": round(self.duty_cycle(elapsed, n_nodes), 6),
        }
