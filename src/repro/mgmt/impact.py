"""What-if analysis of policy changes.

An administrator proposes a :class:`PolicyChange` (replace an AD's terms);
the :class:`PolicyImpactAnalyzer` evaluates a traffic sample against the
database before and after, and reports:

* flows that lose their only legal route (connectivity damage to others);
* flows that gain a route (connectivity the change enables);
* transit load: how many sampled flows route *through* the changed AD
  before vs after (the resource-control effect the policy presumably
  wants), and how the AD's position changes other ADs' load;
* route-synthesis work, as a proxy for the route-computation overhead
  the paper warns administrators about.

The analysis is offline: it never touches a live protocol, exactly like
a management tool running against the advertised database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.core.evaluation import sample_flows
from repro.core.synthesis import SynthesisStats, synthesize_route
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.terms import PolicyTerm


@dataclass(frozen=True)
class PolicyChange:
    """A proposed replacement of one AD's Policy Terms.

    ``new_terms`` fully replaces the owner's current advertisement; an
    empty tuple withdraws all transit.  All terms must name ``owner`` as
    their owner.
    """

    owner: ADId
    new_terms: Tuple[PolicyTerm, ...]

    def __post_init__(self) -> None:
        for term in self.new_terms:
            if term.owner != self.owner:
                raise ValueError(
                    f"term owned by AD {term.owner} in change for AD {self.owner}"
                )

    @classmethod
    def withdraw_all(cls, owner: ADId) -> "PolicyChange":
        """Stop offering any transit."""
        return cls(owner, ())

    @classmethod
    def replace_with(cls, *terms: PolicyTerm) -> "PolicyChange":
        """Replace the owner's terms with the given ones (same owner)."""
        if not terms:
            raise ValueError("use withdraw_all for an empty replacement")
        owners = {t.owner for t in terms}
        if len(owners) != 1:
            raise ValueError(f"terms name several owners: {sorted(owners)}")
        return cls(owners.pop(), tuple(terms))


@dataclass
class ImpactReport:
    """Before/after assessment of one policy change."""

    change: PolicyChange
    n_flows: int
    before_available: int
    after_available: int
    flows_lost: List[FlowSpec] = field(default_factory=list)
    flows_gained: List[FlowSpec] = field(default_factory=list)
    transit_before: int = 0
    transit_after: int = 0
    states_before: int = 0
    states_after: int = 0
    rerouted: List[FlowSpec] = field(default_factory=list)

    @property
    def availability_delta(self) -> int:
        """Net change in flows with a legal route (negative = damage)."""
        return self.after_available - self.before_available

    @property
    def transit_delta(self) -> int:
        """Net change in sampled flows transiting the changed AD."""
        return self.transit_after - self.transit_before

    @property
    def synthesis_cost_delta(self) -> int:
        """Change in total route-synthesis work over the sample."""
        return self.states_after - self.states_before

    def summary(self) -> str:
        """One-paragraph administrator-facing summary."""
        lines = [
            f"Impact of policy change at AD {self.change.owner} "
            f"({len(self.change.new_terms)} term(s)):",
            f"  routable flows: {self.before_available} -> {self.after_available} "
            f"({self.availability_delta:+d})",
            f"  flows transiting AD {self.change.owner}: "
            f"{self.transit_before} -> {self.transit_after} "
            f"({self.transit_delta:+d})",
            f"  flows forced onto a different route: {len(self.rerouted)}",
            f"  route-synthesis work: {self.states_before} -> "
            f"{self.states_after} states ({self.synthesis_cost_delta:+d})",
        ]
        if self.flows_lost:
            lost = ", ".join(str(f) for f in self.flows_lost[:5])
            more = "" if len(self.flows_lost) <= 5 else f" (+{len(self.flows_lost) - 5} more)"
            lines.append(f"  LOST connectivity: {lost}{more}")
        if self.flows_gained:
            gained = ", ".join(str(f) for f in self.flows_gained[:5])
            lines.append(f"  gained connectivity: {gained}")
        return "\n".join(lines)


class PolicyImpactAnalyzer:
    """Offline what-if evaluation of policy changes against a flow sample."""

    def __init__(
        self,
        graph: InterADGraph,
        policies: PolicyDatabase,
        flows: Optional[Sequence[FlowSpec]] = None,
        num_flows: int = 80,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.policies = policies
        self.flows = list(flows) if flows is not None else sample_flows(
            graph, num_flows, seed=seed
        )

    def _routes(
        self, policies: PolicyDatabase
    ) -> Tuple[Dict[FlowSpec, Optional[Tuple[ADId, ...]]], int]:
        stats = SynthesisStats()
        routes: Dict[FlowSpec, Optional[Tuple[ADId, ...]]] = {}
        for flow in self.flows:
            route = synthesize_route(self.graph, policies, flow, stats=stats)
            routes[flow] = None if route is None else route.path
        return routes, stats.states_expanded

    @staticmethod
    def _apply(policies: PolicyDatabase, change: PolicyChange) -> PolicyDatabase:
        changed = policies.copy()
        changed.remove_terms(change.owner)
        for term in change.new_terms:
            changed.add_term(term)
        return changed

    def assess(self, change: PolicyChange) -> ImpactReport:
        """Evaluate a proposed change; the live database is untouched."""
        before, states_before = self._routes(self.policies)
        after, states_after = self._routes(self._apply(self.policies, change))

        report = ImpactReport(
            change=change,
            n_flows=len(self.flows),
            before_available=sum(1 for p in before.values() if p is not None),
            after_available=sum(1 for p in after.values() if p is not None),
            states_before=states_before,
            states_after=states_after,
        )
        owner = change.owner
        for flow in self.flows:
            b, a = before[flow], after[flow]
            if b is not None and a is None:
                report.flows_lost.append(flow)
            elif b is None and a is not None:
                report.flows_gained.append(flow)
            elif b is not None and a is not None and b != a:
                report.rerouted.append(flow)
            if b is not None and owner in b[1:-1]:
                report.transit_before += 1
            if a is not None and owner in a[1:-1]:
                report.transit_after += 1
        return report

    def assess_withdrawal(self, owner: ADId) -> ImpactReport:
        """Impact of the AD stopping all transit."""
        return self.assess(PolicyChange.withdraw_all(owner))

    def rank_critical_transits(self, top: int = 5) -> List[Tuple[ADId, int]]:
        """Transit ADs whose total withdrawal would strand the most flows.

        The administrator's view of where the internet is fragile.
        """
        damage = []
        for ad in self.graph.transit_ads():
            if not self.policies.terms_of(ad.ad_id):
                continue
            report = self.assess_withdrawal(ad.ad_id)
            damage.append((ad.ad_id, len(report.flows_lost)))
        damage.sort(key=lambda pair: (-pair[1], pair[0]))
        return damage[:top]
