"""Network-management tools for policy administrators.

Section 6 of the paper (research issue 2): "it will be the job of local
administrators to specify policies for their ADs ... it will be possible
to specify local policies that will result in poor service ... it will
be imperative for these administrators to have available network
management tools to assist them in predicting the impact of their
policies on the service received from the routing architecture."

This package is that tool, built on the ground-truth evaluator:

* :class:`~repro.mgmt.impact.PolicyImpactAnalyzer` — before/after
  assessment of a proposed policy change: connectivity gained/lost,
  transit load attracted/shed, route-synthesis cost;
* :func:`~repro.mgmt.audit.connectivity_audit` — which flows are cut off
  by current policies (relative to open transit) and which AD's policy
  is the first to block each of them.
"""

from repro.mgmt.accounting import Ledger, LedgerEntry, settle
from repro.mgmt.audit import AuditFinding, ConnectivityAudit, connectivity_audit
from repro.mgmt.impact import ImpactReport, PolicyChange, PolicyImpactAnalyzer
from repro.mgmt.negotiation import (
    NegotiationResult,
    negotiate_ordering,
    renegotiate,
)

__all__ = [
    "AuditFinding",
    "ConnectivityAudit",
    "ImpactReport",
    "Ledger",
    "LedgerEntry",
    "NegotiationResult",
    "PolicyChange",
    "PolicyImpactAnalyzer",
    "connectivity_audit",
    "negotiate_ordering",
    "renegotiate",
    "settle",
]
