"""Connectivity audit: which flows do current policies cut off, and who
is blocking them.

The paper warns that locally-reasonable policies can compose into "poor
service ... in terms of route computation overhead and the resulting
inter-AD connectivity" (Section 6).  The audit compares the current
policy database against the fully-open baseline:

* a flow is *physically routable* if it has a route under open transit;
* it is *policy-blocked* if it is physically routable but has no legal
  route under the current database;
* for each blocked flow we name a *culprit*: the first AD whose policy
  rejects the flow on its open-transit route (a heuristic the real
  blocking set may exceed, but the right starting point for a human).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.core.synthesis import synthesize_route
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.generators import open_policies


@dataclass(frozen=True)
class AuditFinding:
    """One policy-blocked flow and the first AD that blocks it."""

    flow: FlowSpec
    open_route: Tuple[ADId, ...]
    culprit: Optional[ADId]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        who = f"AD {self.culprit}" if self.culprit is not None else "unknown"
        return f"{self.flow}: blocked (first blocker: {who})"


@dataclass
class ConnectivityAudit:
    """Aggregate audit result."""

    n_flows: int
    physically_routable: int
    legally_routable: int
    findings: List[AuditFinding] = field(default_factory=list)

    @property
    def policy_blocked(self) -> int:
        return len(self.findings)

    @property
    def connectivity_ratio(self) -> float:
        """Legal routes as a fraction of physically possible ones."""
        if self.physically_routable == 0:
            return 1.0
        return self.legally_routable / self.physically_routable

    def blockers(self) -> List[Tuple[ADId, int]]:
        """Culprit ADs ranked by how many flows they are first to block."""
        counts = Counter(
            f.culprit for f in self.findings if f.culprit is not None
        )
        return sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))

    def summary(self) -> str:
        lines = [
            f"Connectivity audit over {self.n_flows} flows:",
            f"  physically routable: {self.physically_routable}",
            f"  legally routable:    {self.legally_routable} "
            f"({self.connectivity_ratio:.0%} of physical)",
            f"  policy-blocked:      {self.policy_blocked}",
        ]
        for ad_id, count in self.blockers()[:5]:
            lines.append(f"    AD {ad_id} first-blocks {count} flow(s)")
        return "\n".join(lines)


def _first_blocker(
    policies: PolicyDatabase, path: Tuple[ADId, ...], flow: FlowSpec
) -> Optional[ADId]:
    """First transit AD on a path whose policy refuses the flow."""
    for i in range(1, len(path) - 1):
        if not policies.transit_permits(path[i], flow, path[i - 1], path[i + 1]):
            return path[i]
    return None


def connectivity_audit(
    graph: InterADGraph,
    policies: PolicyDatabase,
    flows: Sequence[FlowSpec],
) -> ConnectivityAudit:
    """Audit a flow sample against the current policy database."""
    open_db = open_policies(graph).policies
    audit = ConnectivityAudit(
        n_flows=len(flows), physically_routable=0, legally_routable=0
    )
    for flow in flows:
        open_route = synthesize_route(graph, open_db, flow)
        if open_route is None:
            continue
        audit.physically_routable += 1
        legal = synthesize_route(graph, policies, flow)
        if legal is not None:
            audit.legally_routable += 1
            continue
        audit.findings.append(
            AuditFinding(
                flow=flow,
                open_route=open_route.path,
                culprit=_first_blocker(policies, open_route.path, flow),
            )
        )
    return audit
