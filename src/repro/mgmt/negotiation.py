"""ECMA partial-ordering negotiation.

Section 5.1.1: establishing the ECMA global ordering "requires both
computation and negotiation either by a central authority or by a set of
entities each with authority over a subset of the internetwork ... If
unresolvable conflicts arise among policies ... the relevant authority
must negotiate with the ADs involved to revise their policies".

:func:`negotiate_ordering` plays the central authority: it accepts each
AD's ordering constraints in priority order and *drops* every constraint
that conflicts with those already accepted (the "negotiated revision"),
reporting exactly which ADs had to give up which policies.  Experiment
E8 measures how often negotiation is needed; this tool shows what it
costs whom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.partial_order import (
    PartialOrder,
    order_from_constraints,
    try_order_from_constraints,
)

#: One ordering demand: (lower AD, upper AD), read "lower must rank
#: strictly below upper".
Constraint = Tuple[ADId, ADId]


@dataclass
class NegotiationResult:
    """Outcome of building a single ordering from everyone's policies."""

    order: PartialOrder
    accepted: List[Constraint] = field(default_factory=list)
    dropped: List[Constraint] = field(default_factory=list)

    @property
    def n_requested(self) -> int:
        return len(self.accepted) + len(self.dropped)

    @property
    def acceptance_ratio(self) -> float:
        if self.n_requested == 0:
            return 1.0
        return len(self.accepted) / self.n_requested

    def losers(self) -> Dict[ADId, int]:
        """Per-AD count of dropped demands (keyed by the demanding lower AD)."""
        out: Dict[ADId, int] = {}
        for lower, _upper in self.dropped:
            out[lower] = out.get(lower, 0) + 1
        return out

    def summary(self) -> str:
        lines = [
            f"Ordering negotiation: {len(self.accepted)}/{self.n_requested} "
            f"policy constraints accepted "
            f"({self.acceptance_ratio:.0%})",
        ]
        for ad_id, count in sorted(self.losers().items()):
            lines.append(f"  AD {ad_id} had to revise {count} policy demand(s)")
        return "\n".join(lines)


def negotiate_ordering(
    ads: Iterable[ADId],
    demands: Sequence[Constraint],
) -> NegotiationResult:
    """Build one ordering, dropping conflicting demands greedily.

    Demands are considered in the given order (earlier = higher
    priority, e.g. bigger customers first); a demand is dropped exactly
    when accepting it would make the accepted set cyclic.  The greedy
    rule is the simplest model of the paper's negotiation round; it is
    not a maximum acyclic subgraph (that problem is NP-hard), which is
    itself a faithful property of any realistic authority.
    """
    ad_list = sorted(set(ads))
    accepted: List[Constraint] = []
    dropped: List[Constraint] = []
    for demand in demands:
        lower, upper = demand
        if lower == upper:
            dropped.append(demand)
            continue
        if try_order_from_constraints(ad_list, accepted + [demand]) is None:
            dropped.append(demand)
        else:
            accepted.append(demand)
    order = order_from_constraints(ad_list, accepted)
    return NegotiationResult(order=order, accepted=accepted, dropped=dropped)


def renegotiate(
    ads: Iterable[ADId],
    current: Sequence[Constraint],
    new_demand: Constraint,
) -> Tuple[bool, NegotiationResult]:
    """A single AD files one new demand against an agreed constraint set.

    Returns ``(accepted, result)``: if the demand fits the existing
    ordering it is simply appended; otherwise a full renegotiation runs
    with the new demand at *lowest* priority (incumbents win), and the
    demand is reported dropped -- the Section 5.1.1 failure mode where a
    policy change cannot be accommodated.
    """
    result = negotiate_ordering(ads, list(current) + [new_demand])
    accepted = new_demand in result.accepted
    return accepted, result
