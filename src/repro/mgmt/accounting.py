"""Charging and accounting over policy routes.

Section 2.3 lists "charging and accounting policies" among the policy
dimensions; Policy Terms here carry an advertised ``charge``.  This
module settles the books for a weighted traffic matrix routed by any
route finder:

* per transit AD: *revenue* (sum of its terms' charges over the traffic
  that actually used them, weighted by flow volume) and carried volume;
* per source AD: total *cost* paid to carriers;
* the unsettled remainder (flows with no route).

Administrators combine this with :mod:`repro.mgmt.impact` to see whether
a restrictive policy forfeits more revenue than it saves resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.core.routes import Route
from repro.core.synthesis import synthesize_route
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.workloads.traffic import TrafficMatrix

RouteFinder = Callable[[FlowSpec], Optional[Union[Route, Sequence[ADId]]]]


@dataclass
class LedgerEntry:
    """One AD's side of the books."""

    revenue: float = 0.0
    carried_volume: float = 0.0
    paid: float = 0.0
    originated_volume: float = 0.0


@dataclass
class Ledger:
    """Settled accounting for one traffic matrix."""

    entries: Dict[ADId, LedgerEntry] = field(default_factory=dict)
    routed_volume: float = 0.0
    unrouted_volume: float = 0.0

    def entry(self, ad_id: ADId) -> LedgerEntry:
        return self.entries.setdefault(ad_id, LedgerEntry())

    def top_earners(self, n: int = 5) -> Sequence[Tuple[ADId, float]]:
        ranked = sorted(
            ((ad, e.revenue) for ad, e in self.entries.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:n]

    @property
    def total_revenue(self) -> float:
        return sum(e.revenue for e in self.entries.values())

    @property
    def total_paid(self) -> float:
        return sum(e.paid for e in self.entries.values())

    def summary(self) -> str:
        lines = [
            f"Accounting: routed volume {self.routed_volume:g}, "
            f"unrouted {self.unrouted_volume:g}",
            f"  total charges settled: {self.total_revenue:.2f}",
        ]
        for ad_id, revenue in self.top_earners():
            if revenue > 0:
                lines.append(f"  AD {ad_id} earns {revenue:.2f}")
        return "\n".join(lines)


def settle(
    graph: InterADGraph,
    policies: PolicyDatabase,
    matrix: TrafficMatrix,
    finder: Optional[RouteFinder] = None,
) -> Ledger:
    """Route every matrix flow and settle charges.

    ``finder`` defaults to exact synthesis over the database.  For each
    routed flow of weight *w*, every transit AD on the path earns
    ``w * charge`` of the Policy Term that permitted the traversal, and
    the source pays the sum.
    """
    if finder is None:
        finder = lambda flow: synthesize_route(graph, policies, flow)
    ledger = Ledger()
    for flow, weight in matrix.entries:
        result = finder(flow)
        if result is None:
            ledger.unrouted_volume += weight
            continue
        path = tuple(result.path if isinstance(result, Route) else result)
        ledger.routed_volume += weight
        source_entry = ledger.entry(flow.src)
        source_entry.originated_volume += weight
        total_charge = 0.0
        for i in range(1, len(path) - 1):
            term = policies.permitting_term(
                path[i], flow, path[i - 1], path[i + 1]
            )
            charge = (term.charge if term is not None else 0.0) * weight
            transit_entry = ledger.entry(path[i])
            transit_entry.revenue += charge
            transit_entry.carried_volume += weight
            total_charge += charge
        source_entry.paid += total_charge
    return ledger
