"""repro: a reproduction of Breslau & Estrin (SIGCOMM 1990),
"Design of Inter-Administrative Domain Routing Protocols".

The package turns the paper's design-space analysis into running code:

* :mod:`repro.adgraph` — the inter-AD internet model of Section 2
  (hierarchy + lateral/bypass links, partial orderings, failures);
* :mod:`repro.policy` — Policy Terms, flows, legality, route-selection
  criteria, and policy scenario generators (Section 2.3);
* :mod:`repro.simul` — the deterministic discrete-event message substrate;
* :mod:`repro.protocols` — every protocol the paper discusses: baselines
  (naive DV, plain LS, EGP) and all eight Table 1 design points (ECMA,
  IDRP/BGP-2, LS hop-by-hop, ORWG/IDPR, and the four dismissed variants);
* :mod:`repro.core` — the design space itself, policy route synthesis,
  ground-truth evaluation, and the measured Table 1 scorecard;
* :mod:`repro.forwarding` — the data plane (enforcement, headers);
* :mod:`repro.workloads` — traffic and scenario generators;
* :mod:`repro.harness` — the experiment harness (declarative specs,
  parallel seed fan-out, schema-versioned run telemetry).

Protocols are constructed through the registry — by Table 1 design
point or by name (``available_protocols()`` lists them).

Quickstart::

    from repro import make_protocol, reference_scenario

    scenario = reference_scenario()
    protocol = make_protocol("orwg", scenario.graph, scenario.policies)
    protocol.converge()
    route = protocol.find_route(scenario.flows[0])
"""

from repro.adgraph import (
    AD,
    ADKind,
    InterADGraph,
    InterADLink,
    Level,
    LinkKind,
    PartialOrder,
    TopologyConfig,
    generate_internet,
)
from repro.core import (
    DesignPoint,
    Route,
    RouteSynthesizer,
    enumerate_design_space,
    evaluate_availability,
    legal_route_exists,
    sample_flows,
    synthesize_route,
)
from repro.policy import (
    ADSet,
    FlowSpec,
    PolicyDatabase,
    PolicyTerm,
    QOS,
    RouteSelectionPolicy,
    UCI,
    hierarchical_policies,
    is_legal_path,
    open_policies,
    restricted_policies,
    source_class_policies,
)
from repro.protocols import (
    RoutingProtocol,
    available_protocols,
    make_protocol,
)
from repro.workloads import Scenario, reference_scenario, scaled_scenario

__version__ = "1.0.0"

__all__ = [
    "AD",
    "ADKind",
    "ADSet",
    "DesignPoint",
    "FlowSpec",
    "InterADGraph",
    "InterADLink",
    "Level",
    "LinkKind",
    "PartialOrder",
    "PolicyDatabase",
    "PolicyTerm",
    "QOS",
    "Route",
    "RouteSelectionPolicy",
    "RouteSynthesizer",
    "RoutingProtocol",
    "Scenario",
    "TopologyConfig",
    "UCI",
    "available_protocols",
    "enumerate_design_space",
    "evaluate_availability",
    "generate_internet",
    "hierarchical_policies",
    "is_legal_path",
    "legal_route_exists",
    "make_protocol",
    "open_policies",
    "reference_scenario",
    "restricted_policies",
    "sample_flows",
    "scaled_scenario",
    "source_class_policies",
    "synthesize_route",
]
