"""FIB compilation: converged routing state -> compressed lookup arrays.

The legacy forwarder (:mod:`repro.forwarding.dataplane`) is a faithful
packet's-eye model -- and pays a dict lookup plus a policy re-evaluation
at every hop of every packet.  At 10^6 flows that is the wrong shape.
This module compiles a protocol's *converged* control state into a
:class:`CompiledFIB`: flat integer arrays a batch replay engine indexes
instead of re-deriving.

What gets compiled, per flow class (deduplicated ``FlowSpec``):

* the forwarding decision chain -- the hop-by-hop ``next_hop`` walk or
  the source route, taken **once** at compile time against the frozen
  control state (exactly the route-setup model of Section 5.4: pay the
  route computation once, install state, then data packets index it);
* per hop: a dense link index (for the liveness check) and the frozen
  policy verdict (policies are static; the paper's per-transit
  enforcement collapses to one precomputed bit per hop);
* per class: the cumulative link delay of the full path.

What stays **dynamic** at lookup time is exactly what is dynamic for a
real packet: link liveness.  ``lookup_batch`` walks each class's hop
array against a liveness bitmap snapshot, so a FIB compiled before a
crash, replayed after it, reports precisely the stale-route blackholes
a converged-then-surprised router would -- the E14 observable.

Two adapters mirror Table 1's forwarding axis:

* **table-driven** (hop-by-hop design points): compile also builds
  per-node compressed next-hop tables -- interned dst -> one byte/short
  pointer into a short shared next-hop ("via") list, the classic
  pointer-table FIB compression -- for state accounting;
* **route-setup** (source-routed design points): state is per-flow path
  state installed at the source and a handle entry at each transit AD,
  the Section 5.4 model.

Equivalence with the legacy forwarder is enforced by tests
(``tests/test_traffic_fib.py``): for every design point,
``lookup_batch`` verdicts must match :func:`~repro.forwarding.dataplane.forward_flow`
packet for packet, including on stale post-crash snapshots.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.policy.flows import FlowSpec
from repro.protocols.base import ForwardingMode, RoutingProtocol

# ----------------------------------------------------------------- verdicts

#: Verdict codes, stable across the subsystem (arrays store these).
DELIVERED = 0
NO_ROUTE = 1
DEAD_LINK = 2
POLICY_DROP = 3
LOOP = 4
HOP_BUDGET = 5

VERDICT_NAMES: Tuple[str, ...] = (
    "delivered",
    "no_route",
    "dead_link",
    "policy_drop",
    "loop",
    "hop_budget",
)


def verdict_of_outcome(outcome) -> int:
    """Map a legacy :class:`~repro.forwarding.dataplane.ForwardingOutcome`
    reason onto the compiled verdict codes (the equivalence bridge)."""
    if outcome.delivered:
        return DELIVERED
    reason = outcome.reason
    if "no live link" in reason:
        return DEAD_LINK
    if "policy drop" in reason:
        return POLICY_DROP
    if reason == "forwarding loop":
        return LOOP
    if reason == "hop budget exceeded":
        return HOP_BUDGET
    return NO_ROUTE


# ------------------------------------------------------------------ indexes


class LinkIndex:
    """Dense indexing of a graph's links + liveness bitmap snapshots."""

    def __init__(self, graph: InterADGraph) -> None:
        self.graph = graph
        self.keys: List[Tuple[ADId, ADId]] = [l.key for l in graph.links()]
        self.index: Dict[Tuple[ADId, ADId], int] = {
            key: i for i, key in enumerate(self.keys)
        }
        self.delays = array(
            "d", (graph.link(a, b).metric("delay") for a, b in self.keys)
        )

    def of(self, a: ADId, b: ADId) -> Optional[int]:
        return self.index.get((a, b) if a <= b else (b, a))

    def liveness(self) -> bytearray:
        """Snapshot of per-link operational status, 1 byte per link."""
        graph = self.graph
        return bytearray(
            1 if graph.link(a, b).up else 0 for a, b in self.keys
        )


# ------------------------------------------------------------- compiled FIB


@dataclass(frozen=True)
class FIBStats:
    """State-size accounting of one compiled FIB (the Krioukov/claffy
    stretch-vs-state axis, measured)."""

    classes: int
    table_nodes: int
    table_entries: int
    via_entries: int
    handle_entries: int
    program_hops: int
    bytes: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "classes": self.classes,
            "table_nodes": self.table_nodes,
            "table_entries": self.table_entries,
            "via_entries": self.via_entries,
            "handle_entries": self.handle_entries,
            "program_hops": self.program_hops,
            "bytes": self.bytes,
        }


class CompiledFIB:
    """Converged forwarding state, flattened for batch lookup.

    Per class ``c`` the compiled program lives at
    ``hop_links[offsets[c] : offsets[c] + lengths[c]]`` (dense link
    indices, walk order) with ``hop_policy_ok`` aligned 1:1; a class
    whose compile-time decision already failed (no route, loop, hop
    budget) carries an empty program and a ``static_verdict``.
    """

    def __init__(
        self,
        protocol_name: str,
        mode: ForwardingMode,
        links: LinkIndex,
        classes: Sequence[FlowSpec],
        offsets: array,
        lengths: array,
        hop_links: array,
        hop_policy_ok: bytearray,
        static_verdicts: array,
        path_delays: array,
        path_hops: array,
        stats: FIBStats,
    ) -> None:
        self.protocol_name = protocol_name
        self.mode = mode
        self.links = links
        self.classes = list(classes)
        self.offsets = offsets
        self.lengths = lengths
        self.hop_links = hop_links
        self.hop_policy_ok = hop_policy_ok
        self.static_verdicts = static_verdicts
        self.path_delays = path_delays
        self.path_hops = path_hops
        self.stats = stats

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    def liveness(self) -> bytearray:
        """Current ground-truth liveness bitmap (cheap; take per epoch)."""
        return self.links.liveness()

    # ---------------------------------------------------------- class level

    def class_verdicts(self, liveness: Optional[bytearray] = None) -> array:
        """Per-class verdict codes under a liveness snapshot.

        The only dynamic input is liveness: the walk stops at the first
        dead link (``DEAD_LINK``) or frozen policy refusal
        (``POLICY_DROP``), in hop order -- the same first-failure-wins
        order the legacy per-packet walk observes.  The static verdict
        (delivered / no-route / loop / hop-budget, judged at compile
        time) applies only when the whole program survives, because a
        real packet checks each hop *before* discovering what ends its
        journey.
        """
        if liveness is None:
            liveness = self.liveness()
        out = array("b", self.static_verdicts)
        hop_links = self.hop_links
        hop_ok = self.hop_policy_ok
        offsets = self.offsets
        lengths = self.lengths
        for c in range(len(out)):
            start = offsets[c]
            for i in range(start, start + lengths[c]):
                if not liveness[hop_links[i]]:
                    out[c] = DEAD_LINK
                    break
                if not hop_ok[i]:
                    out[c] = POLICY_DROP
                    break
        return out

    # ----------------------------------------------------------- flow level

    def lookup_batch(
        self,
        class_of: array,
        liveness: Optional[bytearray] = None,
    ) -> array:
        """Per-flow verdicts for a whole batch (the hot path).

        ``class_of`` maps each flow to its compiled class; the per-class
        walk happens once, then per-flow resolution is one C-level
        indexed gather -- no per-packet dicts, no per-packet policy
        evaluation.
        """
        verdicts = self.class_verdicts(liveness)
        return array("b", map(verdicts.__getitem__, class_of))

    def delivered_delay(self, c: int) -> float:
        """Cumulative link delay of class ``c``'s full compiled path."""
        return self.path_delays[c]


# ------------------------------------------------------------------ compile


def _walk_hop_by_hop(
    protocol: RoutingProtocol, flow: FlowSpec
) -> Tuple[int, List[ADId]]:
    """Reproduce the legacy hop-by-hop walk against frozen control state.

    Returns (compile-time verdict, path walked).  Liveness and policy
    are *not* judged here -- they are per-hop program data -- except
    that the walk can only proceed through decisions the control plane
    actually makes; a ``None`` decision or a revisit is static.
    """
    graph = protocol.graph
    path: List[ADId] = [flow.src]
    seen = {flow.src}
    prev: Optional[ADId] = None
    current = flow.src
    for _ in range(graph.num_ads):
        nxt = protocol.next_hop(current, flow, prev)
        if nxt is None:
            return NO_ROUTE, path
        if not graph.has_link(current, nxt):
            # The control plane names a neighbour that does not exist
            # physically; the legacy walk reports a dead link here, but
            # there is no link index to re-check -- keep it static.
            return DEAD_LINK, path
        if nxt in seen:
            path.append(nxt)
            return LOOP, path
        path.append(nxt)
        seen.add(nxt)
        if nxt == flow.dst:
            return DELIVERED, path
        prev, current = current, nxt
    return HOP_BUDGET, path


def _source_path(
    protocol: RoutingProtocol, flow: FlowSpec
) -> Tuple[int, List[ADId]]:
    path = protocol.source_route(flow)
    if path is None:
        return NO_ROUTE, [flow.src]
    missing = [
        i
        for i, (a, b) in enumerate(zip(path, path[1:]))
        if not protocol.graph.has_link(a, b)
    ]
    if missing:
        return DEAD_LINK, list(path[: missing[0] + 1])
    return DELIVERED, list(path)


def compile_fib(
    protocol: RoutingProtocol,
    classes: Sequence[FlowSpec],
    enforce_policy: bool = True,
) -> CompiledFIB:
    """Snapshot ``protocol``'s converged state into a :class:`CompiledFIB`.

    ``enforce_policy`` mirrors the legacy forwarder's flag: when set,
    every transit hop's Policy-Term verdict is frozen into the per-hop
    program bits (the verdict is static because the policy database is).
    """
    links = LinkIndex(protocol.graph)
    permits = protocol.policies.transit_permits
    offsets = array("l")
    lengths = array("l")
    hop_links = array("i")
    hop_policy_ok = bytearray()
    static_verdicts = array("b")
    path_delays = array("d")
    path_hops = array("i")
    source_mode = protocol.mode is ForwardingMode.SOURCE

    # Per-node table-driven compression accounting (hop-by-hop points):
    # dst -> via pointer per node, vias shared in a short per-node list.
    node_vias: Dict[ADId, Dict[ADId, int]] = {}
    node_entries: Dict[ADId, Dict[ADId, int]] = {}
    handle_entries = 0
    # fib_key_fields dedup: classes agreeing on the fields the protocol's
    # *routing* decision discriminates share one control-plane walk (the
    # expensive part).  Policy enforcement reads the full flow -- naive
    # DV routes on destination alone, yet a transit still judges the
    # whole packet -- so per-hop policy bits are re-derived per class.
    walk_of_key: Dict[Tuple, Tuple[int, List[ADId]]] = {}

    for flow in classes:
        offsets.append(len(hop_links))
        if flow.src == flow.dst:
            static_verdicts.append(DELIVERED)
            lengths.append(0)
            path_delays.append(0.0)
            path_hops.append(0)
            continue
        key = protocol.flow_fib_key(flow)
        cached_walk = walk_of_key.get(key)
        if cached_walk is not None:
            verdict, path = cached_walk
        elif source_mode:
            verdict, path = _source_path(protocol, flow)
            walk_of_key[key] = (verdict, path)
        else:
            verdict, path = _walk_hop_by_hop(protocol, flow)
            walk_of_key[key] = (verdict, path)
        delay = 0.0
        # The walked prefix *is* the program: the legacy walk checks
        # liveness and policy hop by hop before it can discover what
        # ends the journey (delivery, loop, missing route, exhausted
        # budget), so every walked hop stays dynamic.  For LOOP classes
        # the zip's final element is the revisiting hop itself, which
        # legacy also liveness/policy-checks before detecting the
        # revisit.
        program = list(zip(path, path[1:]))
        for i, (a, b) in enumerate(program):
            link_idx = links.of(a, b)
            assert link_idx is not None
            hop_links.append(link_idx)
            if enforce_policy and i > 0:
                ok = permits(a, flow, path[i - 1], b)
            else:
                ok = True
            hop_policy_ok.append(1 if ok else 0)
            delay += links.delays[link_idx]
            if not source_mode:
                vias = node_vias.setdefault(a, {})
                if b not in vias:
                    vias[b] = len(vias)
                node_entries.setdefault(a, {})[flow.dst] = vias[b]
        if source_mode and verdict == DELIVERED:
            # Route-setup state model: one path entry at the source, one
            # handle entry per transit AD (Section 5.4).
            handle_entries += max(0, len(path) - 2)
        static_verdicts.append(verdict)
        lengths.append(len(hop_links) - offsets[-1])
        path_delays.append(delay if verdict == DELIVERED else 0.0)
        path_hops.append(len(path) - 1 if verdict == DELIVERED else 0)

    table_entries = sum(len(d) for d in node_entries.values())
    via_entries = sum(len(v) for v in node_vias.values())
    # Compressed byte model: per table entry one pointer byte (via lists
    # are short) + 4 bytes per via + 4 per program hop (link index) + 1
    # policy bit byte + per-class bookkeeping (offset/length/verdict).
    size_bytes = (
        table_entries
        + 4 * via_entries
        + 5 * len(hop_links)
        + 9 * len(static_verdicts)
        + 4 * handle_entries
    )
    stats = FIBStats(
        classes=len(static_verdicts),
        table_nodes=len(node_entries),
        table_entries=table_entries,
        via_entries=via_entries,
        handle_entries=handle_entries,
        program_hops=len(hop_links),
        bytes=size_bytes,
    )
    return CompiledFIB(
        protocol_name=protocol.name,
        mode=protocol.mode,
        links=links,
        classes=classes,
        offsets=offsets,
        lengths=lengths,
        hop_links=hop_links,
        hop_policy_ok=hop_policy_ok,
        static_verdicts=static_verdicts,
        path_delays=path_delays,
        path_hops=path_hops,
        stats=stats,
    )
