"""Data-plane throughput measurement: compiled FIBs vs the legacy walk.

The measurement core behind both ``python -m repro traffic bench`` and
``benchmarks/bench_dataplane.py`` (which adds the acceptance threshold,
the JSON artifact, and the soft CI gate on top).  One measured point is:

1. converge a protocol on the reference internet,
2. generate a zipf workload (:mod:`repro.traffic.workload`),
3. compile its flow classes into a :class:`~repro.traffic.fib.CompiledFIB`
   and time a full per-flow verdict materialisation
   (:meth:`~repro.traffic.replay.TrafficReplay.flow_verdicts`),
4. time the legacy per-packet forwarder on a flow sample and extrapolate
   to the full workload (the sample keeps a 10^6-flow bench run under a
   minute; the *verdicts* are still checked for every flow, via the
   class-dedup oracle, which by construction forwards each distinct
   class exactly the way the per-flow walk would).

Timing uses best-of-``repeats`` ``perf_counter`` deltas -- standard
microbenchmark hygiene; the verdict-identity checks are exact and
repeat-independent.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Sequence

from repro.forwarding.dataplane import forward_flow
from repro.protocols.registry import make_protocol
from repro.traffic.fib import VERDICT_NAMES, compile_fib
from repro.traffic.replay import TrafficReplay
from repro.traffic.workload import WorkloadSpec, zipf_workload
from repro.workloads import reference_scenario

#: Defaults shared with E14: the same reference internet and workload
#: recipe, so the bench's flows/sec numbers describe the experiment's
#: actual replay cost.
SCENARIO_SEED = 5
WORKLOAD_SEED = 14
FLOWS = 1_000_000
PAIRS = 4096
ZIPF_S = 1.1
FLOWS_SMOKE = 50_000
PAIRS_SMOKE = 256

#: Per-flow legacy walks actually timed; the full-N legacy cost is
#: extrapolated from this sample (verdict identity is still exact over
#: every flow -- see module docstring).
LEGACY_SAMPLE = 20_000

#: Representative spread for the full bench: one protocol per routing/
#: forwarding family quadrant (DV/HbH, DV+PT/HbH, LS/HbH, LS/source).
PROTOCOLS = ("ecma", "idrp", "ls-hbh", "orwg")
PROTOCOLS_SMOKE = ("ls-hbh", "orwg")

#: Acceptance bar (ISSUE 8): compiled lookup must beat the legacy
#: per-packet walk by at least this factor at the full scale point.
SPEEDUP_THRESHOLD = 10.0

#: Soft CI gate: flag a >30% compiled-flows/sec drop at the gate point.
GATE_PROTOCOL = "ls-hbh"
GATE_DROP = 0.30


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def measure_protocol(
    name: str,
    scenario,
    spec: WorkloadSpec,
    legacy_sample: int = LEGACY_SAMPLE,
    repeats: int = 3,
) -> Dict[str, object]:
    """Measure one protocol: compile + compiled lookup vs legacy walk."""
    protocol = make_protocol(name, scenario.graph, scenario.policies)
    protocol.converge()
    workload = zipf_workload(scenario.graph, spec)
    replay = TrafficReplay(workload, scenario.graph)

    compile_s = _best_of(
        lambda: compile_fib(protocol, workload.classes), repeats
    )
    fib = compile_fib(protocol, workload.classes)
    lookup_s = _best_of(lambda: replay.flow_verdicts(fib), repeats)
    compiled = replay.flow_verdicts(fib)

    # Exact, full-coverage identity: the class-dedup oracle forwards
    # every distinct class through the legacy walk and gathers per flow.
    legacy = replay.replay_legacy(protocol)
    identical = compiled == legacy

    # Honest legacy timing: per-flow walks, no dedup, on a sample.
    n_sample = min(legacy_sample, len(workload))
    classes = workload.classes
    sample = workload.class_of[:n_sample]
    t0 = perf_counter()
    for idx in sample:
        forward_flow(protocol, classes[idx])
    legacy_sample_s = perf_counter() - t0

    flows = len(workload)
    compiled_rate = flows / lookup_s if lookup_s else 0.0
    legacy_rate = n_sample / legacy_sample_s if legacy_sample_s else 0.0
    summary = replay.replay(fib)
    return {
        "protocol": name,
        "flows": flows,
        "classes": workload.num_classes,
        "compile_ms": round(compile_s * 1e3, 3),
        "lookup_ms": round(lookup_s * 1e3, 3),
        "compiled_flows_per_sec": round(compiled_rate, 1),
        "legacy_sample_flows": n_sample,
        "legacy_sample_s": round(legacy_sample_s, 4),
        "legacy_flows_per_sec": round(legacy_rate, 1),
        "legacy_est_full_s": round(flows / legacy_rate, 2) if legacy_rate else 0.0,
        "speedup": round(compiled_rate / legacy_rate, 1) if legacy_rate else 0.0,
        "identical": identical,
        "verdicts": dict(zip(VERDICT_NAMES, summary.verdict_flows)),
        "reach_gap": round(summary.reach_gap, 4),
        "fib": fib.stats.as_dict(),
    }


def run_bench(
    protocols: Sequence[str] = PROTOCOLS,
    flows: int = FLOWS,
    pairs: int = PAIRS,
    zipf_s: float = ZIPF_S,
    seed: int = WORKLOAD_SEED,
    scenario_seed: int = SCENARIO_SEED,
    legacy_sample: int = LEGACY_SAMPLE,
    repeats: int = 3,
) -> Dict[str, object]:
    """Measure every protocol point; returns the JSON-ready result."""
    scenario = reference_scenario(seed=scenario_seed)
    spec = WorkloadSpec(flows=flows, zipf_s=zipf_s, pairs=pairs, seed=seed)
    rows = [
        measure_protocol(
            name, scenario, spec, legacy_sample=legacy_sample, repeats=repeats
        )
        for name in protocols
    ]
    return {
        "bench": "dataplane",
        "description": (
            "compiled-FIB batched replay vs legacy per-packet forwarding "
            "on the reference internet; legacy flows/sec measured on a "
            f"{legacy_sample}-flow sample, verdict identity checked on "
            "every flow"
        ),
        "scenario": {
            "seed": scenario_seed,
            "ads": scenario.graph.num_ads,
            "links": scenario.graph.num_links,
        },
        "workload": {
            "flows": flows,
            "pairs": pairs,
            "zipf_s": zipf_s,
            "seed": seed,
        },
        "protocols": rows,
        "acceptance": {
            "metric": "compiled vs legacy flows/sec speedup",
            "threshold": SPEEDUP_THRESHOLD,
        },
        "gate": {
            "protocol": GATE_PROTOCOL,
            "metric": "compiled_flows_per_sec",
            "max_drop": GATE_DROP,
        },
    }


def render_table(result: Dict[str, object]) -> str:
    """Fixed-width report of a :func:`run_bench` result."""
    wl = result["workload"]
    header = (
        f"{'protocol':<16}  {'classes':>7}  {'compile ms':>10}  "
        f"{'lookup ms':>9}  {'compiled f/s':>12}  {'legacy f/s':>10}  "
        f"{'speedup':>7}  {'identical':>9}  {'fib KB':>7}"
    )
    lines = [
        f"data plane: compiled FIB vs legacy walk "
        f"({wl['flows']} flows, zipf s={wl['zipf_s']:g}, "
        f"{wl['pairs']} pairs)",
        header,
        "-" * len(header),
    ]
    for row in result["protocols"]:
        lines.append(
            f"{row['protocol']:<16}  {row['classes']:>7}  "
            f"{row['compile_ms']:>10.1f}  {row['lookup_ms']:>9.1f}  "
            f"{row['compiled_flows_per_sec']:>12.0f}  "
            f"{row['legacy_flows_per_sec']:>10.0f}  "
            f"{row['speedup']:>7.1f}  "
            f"{'yes' if row['identical'] else 'NO':>9}  "
            f"{row['fib']['bytes'] / 1024:>7.1f}"
        )
    return "\n".join(lines)


def best_speedup(result: Dict[str, object]) -> float:
    return max((row["speedup"] for row in result["protocols"]), default=0.0)


def gate_verdict(
    baseline: Dict[str, object], current: Dict[str, object]
) -> Optional[str]:
    """Compare a fresh gate-point measurement against a committed one.

    Returns a human-readable verdict line, or ``None`` when the baseline
    has no gate point to compare against.  The caller decides whether a
    regression is fatal (the CI step is soft: ``continue-on-error``).
    """
    gate = baseline.get("gate", {})
    protocol = gate.get("protocol", GATE_PROTOCOL)
    max_drop = gate.get("max_drop", GATE_DROP)
    committed = next(
        (
            row["compiled_flows_per_sec"]
            for row in baseline.get("protocols", [])
            if row["protocol"] == protocol
        ),
        None,
    )
    fresh = next(
        (
            row["compiled_flows_per_sec"]
            for row in current.get("protocols", [])
            if row["protocol"] == protocol
        ),
        None,
    )
    if committed is None or fresh is None:
        return None
    floor = committed * (1.0 - max_drop)
    verdict = "OK" if fresh >= floor else "REGRESSED"
    return (
        f"data-plane gate [{protocol}]: current {fresh:.0f} flows/s vs "
        f"committed {committed:.0f} flows/s "
        f"(floor {floor:.0f}, -{max_drop:.0%}) -> {verdict}"
    )


__all__ = [
    "FLOWS",
    "FLOWS_SMOKE",
    "GATE_DROP",
    "GATE_PROTOCOL",
    "LEGACY_SAMPLE",
    "PAIRS",
    "PAIRS_SMOKE",
    "PROTOCOLS",
    "PROTOCOLS_SMOKE",
    "SCENARIO_SEED",
    "SPEEDUP_THRESHOLD",
    "WORKLOAD_SEED",
    "ZIPF_S",
    "best_speedup",
    "gate_verdict",
    "measure_protocol",
    "render_table",
    "run_bench",
]
