"""Batched replay: drive a whole workload through a compiled FIB.

The replay engine is deliberately two-speed:

* :meth:`TrafficReplay.replay` -- the production path.  Verdicts are
  computed **per flow class** against a liveness snapshot and then
  weighted by per-class flow counts, so replaying 10^6 flows costs
  O(classes x hops) for the walk plus one C-level gather; that is what
  lets E14 re-run the full workload at every convergence epoch of a
  fault storm.
* :meth:`TrafficReplay.replay_legacy` -- the oracle.  Every flow goes
  through :func:`repro.forwarding.dataplane.forward_flow` individually,
  exactly as the pre-compiled data plane did.  The equivalence suite
  and the throughput benchmark both diff the two paths.

Latency is modelled as the sum of link ``delay`` metrics along the
delivered path; stretch as delivered hop count over the policy-blind
BFS shortest hop count on the same graph (the Krioukov/claffy
stretch-vs-state observable).  Percentiles are flow-weighted across
classes: a head class with 200k flows moves p50 the way 200k samples
would.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.forwarding.dataplane import forward_flow
from repro.protocols.base import RoutingProtocol
from repro.traffic.fib import (
    DEAD_LINK,
    DELIVERED,
    HOP_BUDGET,
    LOOP,
    NO_ROUTE,
    POLICY_DROP,
    VERDICT_NAMES,
    CompiledFIB,
    verdict_of_outcome,
)
from repro.traffic.workload import FlowWorkload


def shortest_hops(
    graph: InterADGraph, pairs: Sequence[Tuple[ADId, ADId]]
) -> array:
    """Policy-blind BFS hop counts for (src, dst) pairs (-1: unreachable).

    One BFS per distinct source, shared across every pair that uses it;
    liveness is ignored -- this is the fixed stretch denominator, taken
    against the intact topology.
    """
    by_src: Dict[ADId, Dict[ADId, int]] = {}
    out = array("i")
    for src, dst in pairs:
        dists = by_src.get(src)
        if dists is None:
            dists = {src: 0}
            queue = deque([src])
            while queue:
                node = queue.popleft()
                for nbr in graph.neighbors(node, include_down=True):
                    if nbr not in dists:
                        dists[nbr] = dists[node] + 1
                        queue.append(nbr)
            by_src[src] = dists
        out.append(dists.get(dst, -1))
    return out


def weighted_percentile(
    samples: Sequence[Tuple[float, int]], quantile: float
) -> float:
    """Flow-weighted percentile: ``samples`` is (value, weight) pairs.

    Returns the smallest value v such that at least ``quantile`` of the
    total weight lies at or below v (the inverse-CDF convention); 0.0 on
    an empty sample.
    """
    total = sum(w for _, w in samples)
    if total <= 0:
        return 0.0
    target = quantile * total
    acc = 0
    ordered = sorted(samples)
    for value, weight in ordered:
        acc += weight
        if acc >= target:
            return value
    return ordered[-1][0]


@dataclass(frozen=True)
class ReplaySummary:
    """Flow-weighted outcome of one workload replay."""

    flows: int
    classes: int
    #: Flow counts by verdict, aligned with VERDICT_NAMES.
    verdict_flows: Tuple[int, ...]
    delivered_bytes: int
    total_bytes: int
    latency_p50: float
    latency_p99: float
    latency_p999: float
    stretch_p50: float
    stretch_p99: float
    stretch_p999: float

    @property
    def delivered(self) -> int:
        return self.verdict_flows[DELIVERED]

    @property
    def reach_gap(self) -> float:
        """Fraction of flows NOT delivered (the E14 headline)."""
        if not self.flows:
            return 0.0
        return 1.0 - self.delivered / self.flows

    @property
    def loops(self) -> int:
        return self.verdict_flows[LOOP]

    @property
    def blackholes(self) -> int:
        return self.verdict_flows[DEAD_LINK]

    @property
    def policy_drops(self) -> int:
        return self.verdict_flows[POLICY_DROP]

    @property
    def no_route(self) -> int:
        return self.verdict_flows[NO_ROUTE] + self.verdict_flows[HOP_BUDGET]

    def as_dict(self) -> Dict[str, object]:
        return {
            "flows": self.flows,
            "classes": self.classes,
            "verdicts": dict(zip(VERDICT_NAMES, self.verdict_flows)),
            "reach_gap": self.reach_gap,
            "delivered_bytes": self.delivered_bytes,
            "total_bytes": self.total_bytes,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "latency_p999": self.latency_p999,
            "stretch_p50": self.stretch_p50,
            "stretch_p99": self.stretch_p99,
            "stretch_p999": self.stretch_p999,
        }


class TrafficReplay:
    """Replays one workload against compiled FIBs (or the legacy oracle)."""

    def __init__(self, workload: FlowWorkload, graph: InterADGraph) -> None:
        self.workload = workload
        #: Fixed stretch denominators, one per class, on the intact graph.
        self.baseline_hops = shortest_hops(
            graph, [(f.src, f.dst) for f in workload.classes]
        )

    # ------------------------------------------------------------ aggregate

    def _summarise(self, verdicts: array, fib: CompiledFIB) -> ReplaySummary:
        wl = self.workload
        counts = wl.class_counts
        verdict_flows = [0] * len(VERDICT_NAMES)
        latency: List[Tuple[float, int]] = []
        stretch: List[Tuple[float, int]] = []
        delivered_bytes = 0
        byte_by_class: Optional[array] = None
        for c, verdict in enumerate(verdicts):
            n = counts[c]
            if not n:
                continue
            verdict_flows[verdict] += n
            if verdict == DELIVERED:
                latency.append((fib.path_delays[c], n))
                base = self.baseline_hops[c]
                if base > 0:
                    stretch.append((fib.path_hops[c] / base, n))
                if byte_by_class is None:
                    byte_by_class = self._bytes_by_class()
                delivered_bytes += byte_by_class[c]
        return ReplaySummary(
            flows=len(wl),
            classes=wl.num_classes,
            verdict_flows=tuple(verdict_flows),
            delivered_bytes=delivered_bytes,
            total_bytes=wl.total_bytes,
            latency_p50=weighted_percentile(latency, 0.50),
            latency_p99=weighted_percentile(latency, 0.99),
            latency_p999=weighted_percentile(latency, 0.999),
            stretch_p50=weighted_percentile(stretch, 0.50),
            stretch_p99=weighted_percentile(stretch, 0.99),
            stretch_p999=weighted_percentile(stretch, 0.999),
        )

    def _bytes_by_class(self) -> array:
        cached = getattr(self, "_byte_cache", None)
        if cached is not None:
            return cached
        wl = self.workload
        out = array("q", [0] * wl.num_classes)
        for idx, size in zip(wl.class_of, wl.sizes):
            out[idx] += size
        self._byte_cache = out
        return out

    # ----------------------------------------------------------- fast paths

    def replay(
        self, fib: CompiledFIB, liveness: Optional[bytearray] = None
    ) -> ReplaySummary:
        """Aggregate replay: O(classes x hops), flow counts as weights."""
        return self._summarise(fib.class_verdicts(liveness), fib)

    def flow_verdicts(
        self, fib: CompiledFIB, liveness: Optional[bytearray] = None
    ) -> array:
        """Materialised per-flow verdict array (the bench's honest unit
        of work: one verdict per flow, 10^6 array slots)."""
        return fib.lookup_batch(self.workload.class_of, liveness)

    # --------------------------------------------------------------- oracle

    def replay_legacy(
        self, protocol: RoutingProtocol, enforce_policy: bool = True
    ) -> array:
        """Per-flow verdicts via the legacy per-packet forwarder.

        Every flow pays the full per-packet walk (dict lookups + policy
        engine) -- this is the baseline the compiled path is benchmarked
        against and the oracle the equivalence suite diffs verdicts
        with.
        """
        classes = self.workload.classes
        class_verdicts = array(
            "b",
            (
                verdict_of_outcome(forward_flow(protocol, f, enforce_policy))
                for f in classes
            ),
        )
        return array(
            "b", map(class_verdicts.__getitem__, self.workload.class_of)
        )

    def replay_legacy_per_flow(
        self, protocol: RoutingProtocol, enforce_policy: bool = True
    ) -> array:
        """Strict per-flow oracle: re-forwards every single flow.

        No class-level dedup at all -- each of the N flows runs the
        whole legacy walk.  This is the honest "before" measurement for
        the throughput benchmark.
        """
        wl = self.workload
        classes = wl.classes
        return array(
            "b",
            (
                verdict_of_outcome(
                    forward_flow(protocol, classes[idx], enforce_policy)
                )
                for idx in wl.class_of
            ),
        )


# ------------------------------------------------------------- epoch series


@dataclass
class EpochSample:
    """One convergence epoch of E14: FIB snapshot + replay result."""

    time: float
    label: str
    summary: ReplaySummary
    fib_bytes: int

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"time": self.time, "label": self.label}
        out.update(self.summary.as_dict())
        out["fib_bytes"] = self.fib_bytes
        return out


@dataclass
class TailSeries:
    """The E14 time series: per-epoch replays + across-epoch flow tails.

    ``outage_p99`` answers the marquee question: across the storm, what
    fraction of epochs did the unluckiest 1% of *flows* spend
    unreachable?  Per-class outage fractions are weighted by flow
    counts, so tail percentiles are over flows, not classes -- and only
    over flows whose class was delivered at the first (converged)
    epoch: a flow the design point could never route is a policy/
    availability fact (E3), not a convergence outage, and would
    saturate the tail (the same routability filter RoutePulse applies
    to its probe set).
    """

    workload: FlowWorkload
    epochs: List[EpochSample] = field(default_factory=list)
    #: Per-class count of epochs in which the class was not delivered.
    _class_outage: Optional[array] = None
    #: Delivered-at-first-epoch mask: the ever-routable flow population
    #: the outage percentiles are taken over.
    _baseline_ok: Optional[bytearray] = None

    def record(
        self,
        time: float,
        label: str,
        fib: CompiledFIB,
        replay: TrafficReplay,
    ) -> EpochSample:
        verdicts = fib.class_verdicts()
        if self._class_outage is None:
            self._class_outage = array("l", [0] * self.workload.num_classes)
            self._baseline_ok = bytearray(
                1 if v == DELIVERED else 0 for v in verdicts
            )
        outage = self._class_outage
        for c, verdict in enumerate(verdicts):
            if verdict != DELIVERED:
                outage[c] += 1
        sample = EpochSample(
            time=time,
            label=label,
            summary=replay._summarise(verdicts, fib),
            fib_bytes=fib.stats.bytes,
        )
        self.epochs.append(sample)
        return sample

    def outage_fractions(self) -> List[Tuple[float, int]]:
        if not self.epochs or self._class_outage is None:
            return []
        n_epochs = len(self.epochs)
        counts = self.workload.class_counts
        ok = self._baseline_ok
        return [
            (self._class_outage[c] / n_epochs, counts[c])
            for c in range(len(counts))
            if counts[c] and ok[c]
        ]

    def outage_percentile(self, quantile: float) -> float:
        return weighted_percentile(self.outage_fractions(), quantile)

    def worst_gap(self) -> float:
        return max((e.summary.reach_gap for e in self.epochs), default=0.0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "epochs": [e.as_dict() for e in self.epochs],
            "outage_p50": self.outage_percentile(0.50),
            "outage_p99": self.outage_percentile(0.99),
            "outage_p999": self.outage_percentile(0.999),
            "worst_gap": self.worst_gap(),
        }
