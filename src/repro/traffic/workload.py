"""Zipf-skewed synthetic flow workloads ("millions of users").

The paper's data-plane arguments (Sections 4-5) are about what happens
to *traffic*, but its workload model is implicit.  This module makes it
explicit at production scale: a :class:`FlowWorkload` is 10^6+ seeded
(src AD, dst AD, size) flows whose (src, dst) popularity follows a Zipf
law -- a small head of flow classes carries most packets, a long tail
carries the rest, which is both the empirically observed shape of
inter-domain traffic and the regime where compiled FIBs
(:mod:`repro.traffic.fib`) pay off.

Design notes:

* Flows are stored **columnar**: a per-flow ``class_of`` index into the
  deduplicated flow-class list plus a per-flow ``sizes`` array, never
  10^6 ``FlowSpec`` objects.  Aggregate replay is O(classes); per-packet
  replay materialises specs lazily.
* Generation is deterministic: the same :class:`WorkloadSpec` over the
  same graph always yields byte-identical arrays (``random.Random``
  seeded, sorted candidate pools), so E14 runs replay the exact same
  traffic on every design point and on every run.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.policy.flows import FlowSpec
from repro.policy.qos import QOS
from repro.policy.uci import UCI

#: Mean/sigma of the log-normal flow-size model (bytes).  The values are
#: not load-bearing -- sizes only weight byte-level aggregates -- but the
#: heavy tail keeps byte and packet percentiles visibly distinct.
_SIZE_MU = 9.0
_SIZE_SIGMA = 1.2
_SIZE_MIN = 64


@dataclass(frozen=True)
class WorkloadSpec:
    """Recipe for one deterministic traffic workload.

    Attributes:
        flows: Total flow count (the "users" axis; 10^6+ at full scale).
        zipf_s: Zipf skew of flow-class popularity: 0 is uniform, 1 is
            the classic web-trace shape, larger concentrates harder.
        pairs: Distinct (src, dst) flow classes to draw from; clamped to
            the number of ordered edge-AD pairs the graph offers.
        seed: Generation seed (pools, ranking, draws, sizes).
        hour: Hour-of-day stamped on every flow (policies with time
            windows discriminate on it; one fixed hour keeps the class
            universe equal to the pair universe).
    """

    flows: int = 0
    zipf_s: float = 1.1
    pairs: int = 4096
    seed: int = 0
    hour: int = 12

    @property
    def active(self) -> bool:
        return self.flows > 0

    @property
    def display(self) -> str:
        if not self.active:
            return "none"
        return f"{self.flows}f/s={self.zipf_s:g}"


class FlowWorkload:
    """A generated workload: flow classes + columnar per-flow arrays.

    Attributes:
        spec: The generating recipe.
        classes: Deduplicated flow classes (``FlowSpec``), rank order --
            ``classes[0]`` is the most popular class.
        class_of: Per-flow class index (``array('i')``, len == spec.flows).
        sizes: Per-flow size in bytes (``array('l')``).
        class_counts: Per-class flow counts (``array('l')``, aligned with
            ``classes``); the weights every aggregate reduction uses.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        classes: List[FlowSpec],
        class_of: array,
        sizes: array,
    ) -> None:
        self.spec = spec
        self.classes = classes
        self.class_of = class_of
        self.sizes = sizes
        counts = array("l", [0] * len(classes))
        for idx in class_of:
            counts[idx] += 1
        self.class_counts = counts

    def __len__(self) -> int:
        return len(self.class_of)

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def total_bytes(self) -> int:
        return sum(self.sizes)

    def iter_flows(self) -> Iterator[Tuple[FlowSpec, int]]:
        """Lazy per-packet view: (flow spec, size) per flow, in order."""
        classes = self.classes
        for idx, size in zip(self.class_of, self.sizes):
            yield classes[idx], size

    def head_share(self, head: int = 10) -> float:
        """Fraction of flows carried by the ``head`` most popular classes
        (the skew observable the zipf tests pin)."""
        if not len(self):
            return 0.0
        return sum(self.class_counts[:head]) / len(self)


def _edge_pool(graph: InterADGraph) -> List[ADId]:
    """Where user traffic originates/terminates: the leaf-level ADs."""
    pool = [a.ad_id for a in graph.ads() if a.level.rank == 0]
    return pool if len(pool) >= 2 else graph.ad_ids()


def zipf_workload(graph: InterADGraph, spec: WorkloadSpec) -> FlowWorkload:
    """Generate the deterministic workload ``spec`` describes.

    Three seeded stages, all order-stable:

    1. sample ``spec.pairs`` distinct ordered (src, dst) edge-AD pairs
       and rank them (the rank *is* the popularity order);
    2. draw ``spec.flows`` class indices with probability proportional
       to ``1 / (rank + 1) ** zipf_s`` (``random.choices`` runs the
       heavy loop in C);
    3. draw per-flow log-normal sizes.
    """
    if spec.flows < 0:
        raise ValueError("flow count must be non-negative")
    if spec.zipf_s < 0:
        raise ValueError("zipf_s must be non-negative")
    rng = random.Random(spec.seed)
    pool = _edge_pool(graph)
    max_pairs = len(pool) * (len(pool) - 1)
    n_pairs = max(1, min(spec.pairs, max_pairs))
    pairs: List[Tuple[ADId, ADId]] = []
    seen = set()
    # Rejection-sample distinct ordered pairs; switch to exhaustive
    # enumeration when the request covers most of the pair universe.
    if n_pairs * 2 >= max_pairs:
        universe = [(s, d) for s in pool for d in pool if s != d]
        rng.shuffle(universe)
        pairs = universe[:n_pairs]
    else:
        while len(pairs) < n_pairs:
            src, dst = rng.sample(pool, 2)
            if (src, dst) not in seen:
                seen.add((src, dst))
                pairs.append((src, dst))
    classes = [
        FlowSpec(src, dst, qos=QOS.DEFAULT, uci=UCI.DEFAULT, hour=spec.hour)
        for src, dst in pairs
    ]
    weights = [1.0 / (rank + 1) ** spec.zipf_s for rank in range(len(classes))]
    class_of = array(
        "i",
        rng.choices(range(len(classes)), weights=weights, k=spec.flows)
        if spec.flows
        else [],
    )
    sizes = array(
        "l",
        (
            max(_SIZE_MIN, int(rng.lognormvariate(_SIZE_MU, _SIZE_SIGMA)))
            for _ in range(spec.flows)
        ),
    )
    return FlowWorkload(spec, classes, class_of, sizes)
