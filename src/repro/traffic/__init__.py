"""Production-scale data plane: workloads, compiled FIBs, batched replay.

The subsystem has three layers, each usable alone:

* :mod:`repro.traffic.workload` -- seeded zipf-skewed flow generation
  (10^6+ flows, columnar storage, deterministic replay);
* :mod:`repro.traffic.fib` -- compiles a converged protocol's control
  state into flat lookup arrays (``compile_fib`` / ``lookup_batch``),
  verdict-identical to the legacy per-packet forwarder;
* :mod:`repro.traffic.replay` -- flow-weighted batch replay, latency and
  stretch tails, and the E14 epoch series.
"""

from repro.traffic.fib import (
    DEAD_LINK,
    DELIVERED,
    HOP_BUDGET,
    LOOP,
    NO_ROUTE,
    POLICY_DROP,
    VERDICT_NAMES,
    CompiledFIB,
    FIBStats,
    LinkIndex,
    compile_fib,
    verdict_of_outcome,
)
from repro.traffic.replay import (
    EpochSample,
    ReplaySummary,
    TailSeries,
    TrafficReplay,
    shortest_hops,
    weighted_percentile,
)
from repro.traffic.workload import (
    FlowWorkload,
    WorkloadSpec,
    zipf_workload,
)

__all__ = [
    "DEAD_LINK",
    "DELIVERED",
    "HOP_BUDGET",
    "LOOP",
    "NO_ROUTE",
    "POLICY_DROP",
    "VERDICT_NAMES",
    "CompiledFIB",
    "FIBStats",
    "LinkIndex",
    "compile_fib",
    "verdict_of_outcome",
    "EpochSample",
    "ReplaySummary",
    "TailSeries",
    "TrafficReplay",
    "shortest_hops",
    "weighted_percentile",
    "FlowWorkload",
    "WorkloadSpec",
    "zipf_workload",
]
