"""Wall-clock chaos: the FaultPlan vocabulary on the live substrate.

The sim expresses faults declaratively (:mod:`repro.faults.plan`) and
the discrete-event engine applies them at exact virtual instants.  Real
sockets need a translation: link and node faults reuse the driver-level
machinery unchanged (it only touches the transport surface), while
channel impairments -- a simulator model -- map onto seeded Bernoulli
loss at the UDP receive path
(:meth:`~repro.live.network.LiveNetwork.set_recv_loss`), the one
impairment a real loopback socket can emulate faithfully.

A :class:`LiveFaultPlan` validates that translation up front (loudly
rejecting duplication/jitter impairments rather than silently dropping
them) and offers both execution styles:

* :meth:`LiveFaultPlan.apply_event` -- apply one event now, for
  episodic drivers that settle between events (the E15 chaos driver);
* :meth:`LiveFaultPlan.schedule` -- arm every event on the live clock,
  for background chaos during an otherwise-normal run.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    ImpairmentChange,
    LinkFault,
    NodeFault,
)
from repro.protocols.base import RoutingProtocol

__all__ = ["LiveFaultPlan"]


class LiveFaultPlan:
    """A :class:`~repro.faults.plan.FaultPlan` executable on live UDP."""

    def __init__(self, plan: FaultPlan, *, loss_seed: int = 0) -> None:
        for ev in plan:
            if isinstance(ev, ImpairmentChange):
                if ev.spec.dup_prob > 0.0 or ev.spec.jitter > 0.0:
                    raise ValueError(
                        "live chaos supports loss impairments only; "
                        f"dup/jitter in {ev.spec!r} cannot be induced on "
                        "a real loopback socket"
                    )
                if ev.link is not None:
                    raise ValueError(
                        "live loss is injected at the receive path "
                        "(network-wide); per-link impairments are "
                        "sim-only"
                    )
        self.plan = plan
        self.loss_seed = loss_seed

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.plan)

    def __len__(self) -> int:
        return len(self.plan)

    @property
    def horizon(self) -> float:
        return self.plan.horizon

    # ------------------------------------------------------------ execution

    def apply_event(
        self, protocol: RoutingProtocol, ev: FaultEvent
    ) -> str:
        """Apply one fault event to a live-built protocol, now.

        Returns a short label describing the event (epoch labels in the
        E15 table).  Node faults honour the protocol's distributed
        :class:`~repro.protocols.graceful.GracefulRestartConfig` exactly
        as they do on the sim substrate.
        """
        network = protocol.network
        if network is None:
            raise RuntimeError("protocol is not built on a substrate")
        if isinstance(ev, LinkFault):
            protocol.apply_link_status(ev.a, ev.b, ev.up)
            return f"link {ev.a}-{ev.b} {'up' if ev.up else 'down'}"
        if isinstance(ev, NodeFault):
            if ev.up:
                protocol.restore_node(ev.ad)
                return f"AD {ev.ad} restart"
            protocol.crash_node(ev.ad, retain_state=ev.retain_state)
            return f"AD {ev.ad} crash"
        if isinstance(ev, ImpairmentChange):
            network.set_recv_loss(ev.spec.drop_prob, seed=self.loss_seed)
            if ev.spec.drop_prob > 0.0:
                return f"recv loss {ev.spec.drop_prob:g}"
            return "recv loss off"
        raise TypeError(f"unknown fault event {ev!r}")

    def schedule(self, protocol: RoutingProtocol) -> None:
        """Arm every event on the live clock (background chaos)."""
        network = protocol.network
        if network is None:
            raise RuntimeError("protocol is not built on a substrate")
        for ev in self.plan:
            network.clock.call_later(ev.time, self.apply_event, protocol, ev)


def grouped_events(plan: FaultPlan) -> "list[tuple[float, list[FaultEvent]]]":
    """Events bucketed by identical fire time, in order.

    Episodic chaos drivers treat simultaneous events (every cut link of
    a partition goes down at the same instant) as ONE chaos event with
    one disruption epoch, not dozens.
    """
    groups: "list[tuple[float, list[FaultEvent]]]" = []
    for ev in plan:
        if groups and groups[-1][0] == ev.time:
            groups[-1][1].append(ev)
        else:
            groups.append((ev.time, [ev]))
    return groups
