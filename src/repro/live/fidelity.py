"""Sim-vs-live fidelity: do the two substrates agree?

The live substrate's reason to exist is that the *same* protocol code
runs over real sockets; this module is the check that it actually
behaves the same.  One scenario, one flap sequence, run twice -- once
through the discrete-event engine, once over loopback UDP -- then:

* **route equality**: the final forwarding decision at every AD for
  every ordered (src, dst) pair must be identical.  Meaningful for
  link-state protocols, whose tables are a pure function of the LSDB
  (the LSDB converges to the same contents regardless of message
  arrival order); distance-vector tie-breaks can legitimately depend on
  arrival order, so the default protocol here is the LS baseline.
* **convergence-time distributions**: per-episode reconvergence times
  (in protocol units on both substrates -- the live clock divides wall
  time by its ``time_scale``) side by side.  These are *compared*, not
  asserted equal: the sim models link delay, loopback has real kernel
  latency, so live times are expected to be the same order, not the
  same number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.adgraph.ad import ADId
from repro.faults.plan import FaultPlan, link_flap_plan
from repro.live.runner import LiveRunResult, run_live
from repro.policy.flows import FlowSpec
from repro.protocols.registry import make_protocol
from repro.simul.runner import ConvergenceResult, converge
from repro.workloads.scenarios import Scenario, reference_scenario, small_scenario


@dataclass(frozen=True)
class RouteMismatch:
    """One (src, dst) pair the two substrates route differently."""

    src: ADId
    dst: ADId
    sim_route: Optional[Tuple[ADId, ...]]
    live_route: Optional[Tuple[ADId, ...]]


@dataclass(frozen=True)
class FidelityReport:
    """Outcome of one sim-vs-live comparison run."""

    scenario: str
    protocol: str
    ads: int
    flaps: int
    pairs_compared: int
    mismatches: Tuple[RouteMismatch, ...]
    #: Initial + per-episode convergence times, protocol units.
    sim_times: Tuple[float, ...]
    live_times: Tuple[float, ...]
    sim_messages: int
    live_messages: int
    live_quiesced: bool
    live_wall_seconds: float

    @property
    def routes_identical(self) -> bool:
        return not self.mismatches


def _episodic_sim_run(
    protocol, plan: FaultPlan
) -> Tuple[List[ConvergenceResult], int]:
    """Initial convergence + one settled episode per fault (sim side).

    Same episode structure the live runner uses, so the two result
    sequences line up one-to-one.
    """
    network = protocol.build()
    results = [converge(network)]
    for ev in plan:
        before = network.metrics.snapshot(network.sim.now)
        protocol.apply_link_status(ev.a, ev.b, ev.up)
        events = network.run(max_events=5_000_000, raise_on_limit=False)
        after = network.metrics.snapshot(network.sim.now)
        results.append(
            ConvergenceResult.from_delta(
                before, after, events, quiesced=not network.sim.hit_event_limit
            )
        )
    return results, sum(network.metrics.messages.values())


def fidelity_report(
    protocol: str = "plain-ls",
    scenario: str = "reference",
    seed: int = 0,
    flaps: int = 6,
    time_scale: float = 0.005,
    idle_window_s: float = 0.05,
    timeout_s: float = 120.0,
) -> FidelityReport:
    """Run one scenario on both substrates and compare the outcomes.

    ``scenario`` is ``"small"`` (~25 ADs, fast) or ``"reference"``
    (~60 ADs, the headline six-flap configuration).  Each substrate
    gets its own copies of the graph and policy database, exactly as
    the experiment harness isolates cells.
    """
    builders = {"small": small_scenario, "reference": reference_scenario}
    try:
        scn: Scenario = builders[scenario](seed=seed)
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; use one of {sorted(builders)}"
        ) from None
    plan = link_flap_plan(scn.graph, flaps=flaps, seed=seed)

    sim_proto = make_protocol(protocol, scn.graph.copy(), scn.policies.copy())
    sim_results, sim_messages = _episodic_sim_run(sim_proto, plan)

    live_proto = make_protocol(
        protocol, scn.graph.copy(), scn.policies.copy(), substrate="live"
    )
    live_result: LiveRunResult = run_live(
        live_proto,
        plan,
        time_scale=time_scale,
        idle_window_s=idle_window_s,
        timeout_s=timeout_s,
    )
    live_results = [live_result.initial] + [
        ep.result for ep in live_result.episodes
    ]

    ads = sorted(scn.graph.ad_ids())
    mismatches: List[RouteMismatch] = []
    pairs = 0
    for src in ads:
        for dst in ads:
            if src == dst:
                continue
            pairs += 1
            flow = FlowSpec(src=src, dst=dst)
            sim_route = sim_proto.find_route(flow)
            live_route = live_proto.find_route(flow)
            if sim_route != live_route:
                mismatches.append(
                    RouteMismatch(src, dst, sim_route, live_route)
                )

    return FidelityReport(
        scenario=scn.name,
        protocol=protocol,
        ads=len(ads),
        flaps=flaps,
        pairs_compared=pairs,
        mismatches=tuple(mismatches),
        sim_times=tuple(r.time for r in sim_results),
        live_times=tuple(r.time for r in live_results),
        sim_messages=sim_messages,
        live_messages=sum(r.messages for r in live_results),
        live_quiesced=live_result.quiesced,
        live_wall_seconds=live_result.wall_seconds,
    )


def _dist(times: Tuple[float, ...]) -> str:
    if not times:
        return "(none)"
    lo, hi = min(times), max(times)
    mean = sum(times) / len(times)
    return f"min={lo:.1f} mean={mean:.1f} max={hi:.1f}"


def format_report(report: FidelityReport) -> str:
    """Render a fidelity report as a human-readable block."""
    verdict = (
        "IDENTICAL"
        if report.routes_identical
        else f"{len(report.mismatches)} MISMATCHED"
    )
    lines = [
        f"fidelity: {report.protocol} on {report.scenario} "
        f"({report.ads} ADs, {report.flaps} flaps)",
        f"  routes over {report.pairs_compared} (src, dst) pairs: {verdict}",
        f"  sim  episodes: {len(report.sim_times)}  "
        f"messages={report.sim_messages}  time {_dist(report.sim_times)}",
        f"  live episodes: {len(report.live_times)}  "
        f"messages={report.live_messages}  time {_dist(report.live_times)}"
        f"  (wall {report.live_wall_seconds:.2f}s, "
        f"quiesced={report.live_quiesced})",
    ]
    for mm in report.mismatches[:10]:
        lines.append(
            f"  mismatch {mm.src}->{mm.dst}: "
            f"sim={mm.sim_route} live={mm.live_route}"
        )
    if len(report.mismatches) > 10:
        lines.append(f"  ... and {len(report.mismatches) - 10} more")
    return "\n".join(lines)
