"""Wall-clock time and timers behind the :class:`Clock` interface.

One protocol time unit is ``time_scale`` wall-clock seconds, so the same
protocol code quotes comparable times on both substrates (a sim run that
converges at t=40 and a live run at 0.2 s with ``time_scale=0.005`` are
the same 40 units).  Timers map onto ``loop.call_later`` and honour the
transport-wide :class:`~repro.simul.transport.TimerHandle` contract:
cancellation is idempotent and harmless after the timer fired.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.simul.transport import Clock, TimerHandle


class LiveTimerHandle(TimerHandle):
    """A pending ``loop.call_later`` timer."""

    __slots__ = ("_clock", "_handle", "_cancelled", "_fired")

    def __init__(self, clock: "LiveClock", handle: asyncio.TimerHandle) -> None:
        self._clock = clock
        self._handle = handle
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the timer from firing (idempotent, safe after fire)."""
        if self._cancelled:
            return
        self._cancelled = True
        if not self._fired:
            self._handle.cancel()
            self._clock._pending -= 1

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"LiveTimerHandle({state})"


class LiveClock(Clock):
    """The event loop's clock, scaled to protocol time units."""

    __slots__ = ("_loop", "_t0", "time_scale", "_pending", "on_fire")

    def __init__(
        self, loop: asyncio.AbstractEventLoop, time_scale: float = 0.005
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be > 0 seconds per time unit")
        self._loop = loop
        self._t0 = loop.time()
        #: Wall-clock seconds per protocol time unit.
        self.time_scale = time_scale
        self._pending = 0
        #: Activity callback, invoked whenever a live timer fires (the
        #: network uses it to extend its idle window).
        self.on_fire: Callable[[], None] = lambda: None

    @property
    def now(self) -> float:
        """Protocol time units since the clock was created."""
        return (self._loop.time() - self._t0) / self.time_scale

    @property
    def pending_timers(self) -> int:
        """Timers armed but neither fired nor cancelled."""
        return self._pending

    def call_later(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> LiveTimerHandle:
        """Run ``fn(*args)`` after ``delay`` protocol time units."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._pending += 1
        box: list = []

        def fire() -> None:
            handle = box[0]
            handle._fired = True
            self._pending -= 1
            self.on_fire()
            fn(*args)

        timer = self._loop.call_later(delay * self.time_scale, fire)
        handle = LiveTimerHandle(self, timer)
        box.append(handle)
        return handle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LiveClock(now={self.now:.3f}, pending={self._pending})"
