"""Wall-clock convergence runs on the live substrate.

The discrete-event engine knows it has converged when its queue drains;
real sockets have no such oracle, so the live runner uses *settling*: a
run has quiesced when no frame is in flight or queued and the network
has been observably idle for a configurable wall-clock window.  The
episode accounting mirrors :mod:`repro.simul.runner` exactly -- snapshot
metrics, perturb, settle, snapshot again -- so a
:class:`~repro.simul.runner.ConvergenceResult` from either substrate
reads the same way (times in protocol units, not wall seconds).

Two failure-injection styles:

* **episodic** (a plan of :class:`~repro.faults.plan.LinkFault` only):
  each fault is applied after the previous episode settled, so
  per-failure costs are separable -- the live twin of
  :func:`repro.simul.runner.run_with_failures`;
* **scheduled** (any plan with node crashes/restarts): the whole plan is
  armed on the live clock via
  :meth:`~repro.protocols.base.RoutingProtocol.schedule_fault_plan`,
  the runner waits out its horizon, and the settle afterwards is one
  combined episode -- the live twin of
  :meth:`~repro.simul.network.SimNetwork.schedule_failure_plan` runs.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.faults.plan import FaultPlan, LinkFault
from repro.live.network import LiveNetwork
from repro.protocols.base import RoutingProtocol
from repro.simul.runner import ConvergenceResult

#: How often the settle loop re-checks for quiescence (wall seconds).
_POLL_S = 0.002

#: How many per-AD diagnostic lines a SettleTimeout message carries.
_DIAG_MAX_ADS = 12


class SettleTimeout(RuntimeError):
    """settle() ran out its wall-clock budget before the network idled.

    The message carries per-AD diagnostic state (lifecycle, queue
    depth, dispatch progress, supervisor restart budget) so a hung
    chaos run can be debugged from the error alone.
    """


def _timeout_diagnostics(network: LiveNetwork, timeout_s: float) -> str:
    """Per-AD state for a settle timeout's error message.

    One summary line, then a line per *interesting* AD -- not serving,
    frames still queued, or a restart history -- capped at
    ``_DIAG_MAX_ADS`` entries (63-AD sweeps should not emit 63 healthy
    lines for one wedged node).
    """
    supervisor = network.supervisor
    lines = [
        f"live network failed to settle within {timeout_s:g}s: "
        f"frames sent={network.frames_sent} received={network.frames_received} "
        f"pending_sends={network._pending_sends} "
        f"idle_for={network.idle_for:.3f}s"
    ]
    interesting = []
    for ad_id, state in sorted(network.lifecycle_states().items()):
        stats = network.runtime_stats(ad_id)
        budget = None
        if supervisor is not None:
            used = supervisor.restart_counts.get(ad_id, 0)
            budget = supervisor.config.max_restarts - used
        if (
            stats["unprocessed"] == 0
            and state.value == "serving"
            and stats["restarts"] == 0
            and not network.is_crashed(ad_id)
        ):
            continue
        entry = (
            f"  AD {ad_id}: state={state.value} "
            f"unprocessed={stats['unprocessed']} "
            f"dispatched={stats['dispatched']} "
            f"restarts={stats['restarts']}"
        )
        if network.is_crashed(ad_id):
            entry += " crashed"
        if budget is not None:
            entry += f" restart_budget_remaining={budget}"
        interesting.append(entry)
    if not interesting:
        interesting.append(
            "  (every AD serving with empty queues -- frames in flight "
            "or a pending send retry kept the network non-idle)"
        )
    shown = interesting[:_DIAG_MAX_ADS]
    if len(interesting) > len(shown):
        shown.append(
            f"  ... and {len(interesting) - len(shown)} more AD(s)"
        )
    return "\n".join(lines + shown)


async def settle(
    network: LiveNetwork,
    idle_window_s: float = 0.05,
    timeout_s: float = 30.0,
) -> bool:
    """Wait until the network has been idle for ``idle_window_s``.

    Idle means no frame in flight, none queued, none being processed,
    and no timer fired recently.  Returns ``True`` when the window was
    reached; a timeout raises :class:`SettleTimeout` whose message
    carries per-AD diagnostics (lifecycle state, queue counters,
    supervisor restart budget) -- measurement paths that treat a
    timeout as data catch it (:func:`try_settle`).  Errors raised
    inside serve tasks are re-raised here: a crashed serve loop would
    otherwise masquerade as quiescence.  So is a serve *task* dying
    with frames still queued: without a supervisor to restart it, those
    frames can never drain and the loop would otherwise sit out the
    full timeout on a run that is already lost.
    """
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while True:
        if network.errors:
            raise RuntimeError(
                f"{len(network.errors)} serve-task failure(s); first one follows"
            ) from network.errors[0]
        if network.supervisor is None:
            dead = network.dead_serve_tasks()
            if dead:
                details = ", ".join(
                    f"AD {ad} ({pending} frame(s) pending)"
                    for ad, pending in dead
                )
                raise RuntimeError(
                    f"serve task(s) died without a supervisor: {details}"
                )
        if network.idle() and network.idle_for >= idle_window_s:
            return True
        if loop.time() >= deadline:
            raise SettleTimeout(_timeout_diagnostics(network, timeout_s))
        await asyncio.sleep(_POLL_S)


async def try_settle(
    network: LiveNetwork,
    idle_window_s: float = 0.05,
    timeout_s: float = 30.0,
) -> bool:
    """:func:`settle`, with a timeout reported as ``False``, not raised.

    The measurement paths use this: a non-quiescing episode is a result
    (``quiesced=False`` in the record), not a crashed run.  Serve-task
    failures still raise.
    """
    try:
        return await settle(network, idle_window_s, timeout_s)
    except SettleTimeout:
        return False


@dataclass(frozen=True)
class LiveEpisode:
    """One perturbation and the reconvergence it caused."""

    label: str
    result: ConvergenceResult


@dataclass(frozen=True)
class LiveRunResult:
    """Outcome of one live run: initial convergence plus episodes."""

    initial: ConvergenceResult
    episodes: Tuple[LiveEpisode, ...] = ()
    #: Wall-clock seconds the whole run took (sockets up to close).
    wall_seconds: float = 0.0
    #: Wall seconds per protocol time unit the run used.
    time_scale: float = 0.005

    @property
    def quiesced(self) -> bool:
        """Whether every phase of the run reached quiescence."""
        return self.initial.quiesced and all(
            ep.result.quiesced for ep in self.episodes
        )


async def _measure(
    network: LiveNetwork,
    idle_window_s: float,
    timeout_s: float,
) -> ConvergenceResult:
    """Settle and report the metrics delta as one episode."""
    before = network.metrics.snapshot(network.clock.now)
    frames_before = network.frames_received
    quiesced = await try_settle(network, idle_window_s, timeout_s)
    after = network.metrics.snapshot(network.clock.now)
    return ConvergenceResult.from_delta(
        before,
        after,
        events=network.frames_received - frames_before,
        quiesced=quiesced,
    )


async def run_live_async(
    protocol: RoutingProtocol,
    plan: Optional[FaultPlan] = None,
    *,
    time_scale: float = 0.005,
    idle_window_s: float = 0.05,
    timeout_s: float = 60.0,
) -> LiveRunResult:
    """Build, start, converge, and fault-inject a protocol over live UDP.

    The protocol must not have been built yet; a fresh
    :class:`LiveNetwork` is constructed on the running loop, handed to
    ``protocol.build``, and always closed (sockets and serve tasks torn
    down) before this returns -- including on error.
    """
    if protocol.network is not None:
        raise RuntimeError(f"{protocol.name} is already built on a substrate")
    loop = asyncio.get_running_loop()
    started = loop.time()
    network = LiveNetwork(protocol.graph, time_scale=time_scale)
    protocol.substrate = "live"
    protocol.build(network=network)
    try:
        await network.start()
        initial = await _measure(network, idle_window_s, timeout_s)
        episodes: List[LiveEpisode] = []
        if plan is not None and len(plan) > 0:
            if all(isinstance(ev, LinkFault) for ev in plan):
                # Episodic: one settled episode per link fault, so the
                # per-failure costs are separable (run_with_failures).
                for ev in plan:
                    before = network.metrics.snapshot(network.clock.now)
                    frames_before = network.frames_received
                    protocol.apply_link_status(ev.a, ev.b, ev.up)
                    quiesced = await try_settle(
                        network, idle_window_s, timeout_s
                    )
                    after = network.metrics.snapshot(network.clock.now)
                    state = "up" if ev.up else "down"
                    episodes.append(
                        LiveEpisode(
                            label=f"link {ev.a}-{ev.b} {state}",
                            result=ConvergenceResult.from_delta(
                                before,
                                after,
                                events=network.frames_received - frames_before,
                                quiesced=quiesced,
                            ),
                        )
                    )
            else:
                # Scheduled: arm the whole plan on the live clock, wait
                # out its horizon, and settle the aftermath as one
                # combined episode.
                before = network.metrics.snapshot(network.clock.now)
                frames_before = network.frames_received
                protocol.schedule_fault_plan(plan)
                horizon_at = network.clock.now + plan.horizon
                while network.clock.now < horizon_at:
                    remaining = (horizon_at - network.clock.now) * time_scale
                    await asyncio.sleep(max(_POLL_S, remaining))
                quiesced = await try_settle(network, idle_window_s, timeout_s)
                after = network.metrics.snapshot(network.clock.now)
                episodes.append(
                    LiveEpisode(
                        label=f"plan[{len(plan)} events]",
                        result=ConvergenceResult.from_delta(
                            before,
                            after,
                            events=network.frames_received - frames_before,
                            quiesced=quiesced,
                        ),
                    )
                )
        return LiveRunResult(
            initial=initial,
            episodes=tuple(episodes),
            wall_seconds=loop.time() - started,
            time_scale=time_scale,
        )
    finally:
        await network.close()


def run_live(
    protocol: RoutingProtocol,
    plan: Optional[FaultPlan] = None,
    *,
    time_scale: float = 0.005,
    idle_window_s: float = 0.05,
    timeout_s: float = 60.0,
) -> LiveRunResult:
    """Synchronous wrapper: run a live episode inside ``asyncio.run``."""
    return asyncio.run(
        run_live_async(
            protocol,
            plan,
            time_scale=time_scale,
            idle_window_s=idle_window_s,
            timeout_s=timeout_s,
        )
    )
