"""Supervised node lifecycle for the live substrate.

A routing process on the live substrate is an asyncio serve task, and
real processes die: an unhandled exception, a stray cancellation, a
dispatch that wedges forever.  Without supervision a dead task strands
its queued frames and the whole run with them (``settle`` now raises on
exactly that).  The :class:`Supervisor` is the live substrate's init
system:

* **dead-task detection** -- a serve task that finished while its
  runtime still claims SERVING/DRAINING is restarted;
* **hung-task detection** -- a runtime with queued frames and no
  dispatch progress past the heartbeat deadline is restarted;
* **exponential backoff + jitter** -- restarts of a crash-looping node
  space out geometrically (seeded jitter keeps the schedule
  deterministic per seed) up to a bounded per-AD budget; exhausting the
  budget surfaces a ``RuntimeError`` through ``network.errors`` so the
  next settle fails loudly instead of spinning;
* **rolling restarts** -- an orchestrated one-AD-at-a-time sweep of
  serve-task restarts across the topology, the maintenance-window
  scenario E15 measures.

Restarts preserve the AD's socket (see
:meth:`~repro.live.network.LiveNetwork.restart_runtime`): the port and
any frame already handed to the kernel survive, which keeps idle
detection's ``sent == received`` invariant intact across a recovery.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.adgraph.ad import ADId
from repro.live.network import LiveNetwork

__all__ = ["Supervisor", "SupervisorConfig"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy: detection deadlines and the restart budget.

    All times are wall-clock seconds (supervision is a substrate
    concern, not a protocol one, so it does not scale with
    ``time_scale``).
    """

    #: How often the watch loop inspects every runtime.
    poll_s: float = 0.02
    #: A runtime with queued frames and no dispatch progress for this
    #: long is declared hung and restarted.
    heartbeat_s: float = 1.0
    #: First restart delay; doubles (``backoff_factor``) per successive
    #: restart of the same AD, capped at ``backoff_max_s``.
    backoff_initial_s: float = 0.02
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    #: Jitter fraction: each delay is stretched by up to this much
    #: (seeded, so a given seed replays the same schedule).
    jitter: float = 0.1
    #: Restarts per AD before the supervisor gives the node up and
    #: fails the run through ``network.errors``.
    max_restarts: int = 5
    #: Seed for the jitter RNG.
    seed: int = 0


class Supervisor:
    """Watches a :class:`LiveNetwork`'s serve tasks and restarts casualties."""

    def __init__(
        self,
        network: LiveNetwork,
        config: Optional[SupervisorConfig] = None,
    ) -> None:
        self.network = network
        self.config = config or SupervisorConfig()
        self._rng = random.Random(self.config.seed)
        self._task: Optional[asyncio.Task] = None
        #: Per-AD restart counts (the budget accumulator).
        self.restart_counts: Dict[ADId, int] = {}
        #: ADs whose budget is exhausted; never restarted again.
        self.given_up: Set[ADId] = set()
        #: Chronological supervision log: dicts with ad/reason/delay.
        self.events: List[Dict[str, object]] = []

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> "Supervisor":
        """Spawn the watch loop and attach to the network."""
        if self._task is not None:
            raise RuntimeError("supervisor already started")
        self.network.supervisor = self
        self._task = asyncio.get_running_loop().create_task(
            self._watch(), name="live-supervisor"
        )
        return self

    async def stop(self) -> None:
        """Cancel the watch loop and detach from the network."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self.network.supervisor is self:
            self.network.supervisor = None

    # ------------------------------------------------------------ watching

    async def _watch(self) -> None:
        loop = asyncio.get_running_loop()
        cfg = self.config
        while True:
            for ad_id, pending in self.network.dead_serve_tasks():
                if ad_id not in self.given_up:
                    await self._recover(ad_id, f"dead task ({pending} queued)")
            for ad_id, rt in sorted(self.network._runtimes.items()):
                if ad_id in self.given_up:
                    continue
                if (
                    rt.unprocessed > 0
                    and rt.task is not None
                    and not rt.task.done()
                    and loop.time() - rt.last_progress > cfg.heartbeat_s
                ):
                    await self._recover(
                        ad_id, f"hung ({rt.unprocessed} queued, no progress)"
                    )
            await asyncio.sleep(cfg.poll_s)

    async def _recover(self, ad_id: ADId, reason: str) -> None:
        """Restart one AD's serve task after the backed-off delay."""
        cfg = self.config
        count = self.restart_counts.get(ad_id, 0)
        if count >= cfg.max_restarts:
            self.given_up.add(ad_id)
            self.events.append(
                {"ad": ad_id, "reason": reason, "gave_up": True}
            )
            self.network._errors.append(
                RuntimeError(
                    f"supervisor gave up on AD {ad_id} after "
                    f"{count} restart(s): {reason}"
                )
            )
            return
        delay = min(
            cfg.backoff_initial_s * (cfg.backoff_factor ** count),
            cfg.backoff_max_s,
        )
        delay *= 1.0 + cfg.jitter * self._rng.random()
        self.events.append(
            {"ad": ad_id, "reason": reason, "delay": delay, "gave_up": False}
        )
        await asyncio.sleep(delay)
        self.restart_counts[ad_id] = count + 1
        await self.network.restart_runtime(ad_id)

    # ----------------------------------------------------------- orchestration

    async def rolling_restart(
        self,
        ads: Optional[Sequence[ADId]] = None,
        *,
        dwell_s: float = 0.05,
    ) -> int:
        """Restart every AD's serve task, one at a time (maintenance sweep).

        ``dwell_s`` is the pause between consecutive restarts, giving
        each restarted task time to drain its backlog before the next
        AD goes down -- the "rolling" in rolling restart.  Returns the
        number of ADs restarted.  Budget accounting is not charged for
        orchestrated restarts: the operator asked for them.
        """
        targets = sorted(self.network._runtimes) if ads is None else list(ads)
        restarted = 0
        for ad_id in targets:
            if ad_id in self.given_up:
                continue
            await self.network.restart_runtime(ad_id)
            restarted += 1
            self.events.append(
                {"ad": ad_id, "reason": "rolling restart", "gave_up": False}
            )
            await asyncio.sleep(dwell_s)
        return restarted
