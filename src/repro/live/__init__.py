"""The live asyncio/UDP substrate.

The second implementation of the engine/transport boundary
(:mod:`repro.simul.transport`): the same protocol nodes that run inside
the discrete-event simulator run here as real asyncio tasks, one per AD,
speaking length-prefixed canonical JSON (:mod:`repro.simul.wire`) over
UDP sockets on the loopback interface.

* :class:`~repro.live.clock.LiveClock` — wall-clock time scaled to
  protocol time units; ``schedule()`` maps onto ``loop.call_later``.
* :class:`~repro.live.network.LiveNetwork` — the
  :class:`~repro.simul.transport.Transport`: per-AD UDP endpoints, node
  lifecycle (start/serve/drain/stop), crash/restart.
* :mod:`~repro.live.runner` — wall-clock convergence (settle-based
  quiescence), failure episodes, and FaultPlan-driven runs.
* :mod:`~repro.live.supervisor` — the init system: dead/hung serve-task
  detection, backed-off restarts, rolling-restart orchestration.
* :mod:`~repro.live.chaos` — the FaultPlan vocabulary translated into
  wall-clock chaos (link/node faults, seeded recv-path loss).
* :mod:`~repro.live.fidelity` — the sim-vs-live fidelity report.
"""

from repro.live.chaos import LiveFaultPlan
from repro.live.clock import LiveClock, LiveTimerHandle
from repro.live.network import LiveNetwork, NodeState
from repro.live.runner import (
    LiveRunResult,
    SettleTimeout,
    run_live,
    run_live_async,
    settle,
    try_settle,
)
from repro.live.supervisor import Supervisor, SupervisorConfig
from repro.live.fidelity import FidelityReport, fidelity_report, format_report

__all__ = [
    "FidelityReport",
    "LiveClock",
    "LiveFaultPlan",
    "LiveNetwork",
    "LiveRunResult",
    "LiveTimerHandle",
    "NodeState",
    "SettleTimeout",
    "Supervisor",
    "SupervisorConfig",
    "fidelity_report",
    "format_report",
    "run_live",
    "run_live_async",
    "settle",
    "try_settle",
]
