"""The live UDP transport: per-AD endpoints, lifecycle, crash/restart.

Each AD gets one UDP socket on the loopback interface and one asyncio
*serve task* consuming its inbound datagram queue -- the AD's routing
process.  Datagrams are length-prefixed canonical JSON frames
(:mod:`repro.simul.wire`).  Protocol nodes are untouched: they call the
same :class:`~repro.simul.transport.Transport` interface the simulator
implements, so the bytes on the socket are produced and consumed by the
exact code paths the sim exercises.

Node lifecycle (per AD):

* **start** -- bind the socket, record the port, spawn the serve task;
* **serve** -- decode and dispatch inbound frames to ``on_message``;
* **drain** -- stop accepting new datagrams, finish the queued ones;
* **stop** -- cancel the serve task and close the socket.

Crash/restart mirrors :class:`~repro.simul.network.SimNetwork`: a
crashed AD's inbound frames are dropped and counted; restoring may swap
in a fresh node (state-losing restart), and the driver-level
:meth:`~repro.protocols.base.RoutingProtocol.crash_node` /
``restore_node`` / FaultPlan machinery works unchanged because it only
touches the transport surface.
"""

from __future__ import annotations

import asyncio
import enum
import random
import socket as socketlib
from typing import Dict, List, Optional, Set, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.live.clock import LiveClock
from repro.simul.messages import Message
from repro.simul.metrics import MetricsCollector
from repro.simul.node import ProtocolNode
from repro.simul.transport import Clock, Transport
from repro.simul.wire import (
    WireError,
    WireVersionError,
    decode_frame_ex,
    encode_frame,
)


#: Requested kernel buffer per endpoint socket.  Convergence storms
#: burst hundreds of frames at hub ADs faster than one event-loop
#: iteration drains them; the ~208 KiB Linux default silently drops the
#: overflow, which the protocols (correctly) never recover from on a
#: loss-free loopback.  The kernel clamps this to ``net.core.rmem_max``.
SOCKET_BUF_BYTES = 4 << 20

#: Largest datagram a loopback UDP socket accepts (65535 - headers).
MAX_DATAGRAM_BYTES = 65507

#: Wall-clock backoff schedule for transient UDP send errors
#: (``BlockingIOError``/``ENOBUFS``).  One synchronous attempt plus one
#: retry per delay; a frame that still cannot be handed to the kernel is
#: dropped and counted (``live_send_drops``), never raised into the
#: sending node's serve task.
SEND_RETRY_DELAYS = (0.001, 0.005, 0.02)

#: Wall-clock budget for draining one AD's queue at shutdown.  A dead
#: serve task (or a wedged dispatch) must never hang ``close()``:
#: whatever cannot drain inside the budget is flushed and counted.
DRAIN_DEADLINE_S = 5.0


class NodeState(enum.Enum):
    """Lifecycle state of one AD's live runtime."""

    CREATED = "created"
    SERVING = "serving"
    DRAINING = "draining"
    STOPPED = "stopped"


class _Endpoint(asyncio.DatagramProtocol):
    """Datagram receiver: enqueues raw frames for the serve task."""

    def __init__(self, runtime: "_NodeRuntime") -> None:
        self.runtime = runtime

    def datagram_received(self, data: bytes, addr) -> None:
        self.runtime.enqueue(data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self.runtime.network._errors.append(exc)


class _NodeRuntime:
    """One AD's socket, queue, and serve task."""

    def __init__(self, network: "LiveNetwork", ad_id: ADId) -> None:
        self.network = network
        self.ad_id = ad_id
        self.state = NodeState.CREATED
        self.queue: "asyncio.Queue[bytes]" = asyncio.Queue()
        self.transport: Optional[asyncio.DatagramTransport] = None
        self.port: Optional[int] = None
        self.task: Optional[asyncio.Task] = None
        #: Frames received but not yet fully processed (idle detection).
        self.unprocessed = 0
        #: Frames fully dispatched over this runtime's lifetime.
        self.dispatched = 0
        #: Wall-clock instant of the last dispatch completion; the
        #: supervisor's hung-node heartbeat (``unprocessed > 0`` with no
        #: progress past the deadline means the serve task is wedged).
        self.last_progress = network._loop.time()
        #: Serve-task restarts performed by the supervisor.
        self.restarts = 0

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind the loopback socket and spawn the serve task."""
        if self.state is not NodeState.CREATED:
            raise RuntimeError(f"AD {self.ad_id} runtime already started")
        loop = asyncio.get_running_loop()
        self.transport, _ = await loop.create_datagram_endpoint(
            lambda: _Endpoint(self), local_addr=("127.0.0.1", 0)
        )
        sock = self.transport.get_extra_info("socket")
        if sock is not None:
            for opt in (socketlib.SO_RCVBUF, socketlib.SO_SNDBUF):
                try:
                    sock.setsockopt(socketlib.SOL_SOCKET, opt, SOCKET_BUF_BYTES)
                except OSError:  # pragma: no cover - platform-dependent
                    pass
        self.port = self.transport.get_extra_info("sockname")[1]
        self.state = NodeState.SERVING
        self.task = loop.create_task(
            self.serve(), name=f"ad-{self.ad_id}-serve"
        )

    def enqueue(self, data: bytes) -> None:
        """Admit one inbound frame (drop it when not serving)."""
        if self.state is not NodeState.SERVING:
            self.network.metrics.count_drop()
            return
        self.unprocessed += 1
        self.network._recv_frames += 1
        self.network._touch()
        self.queue.put_nowait(data)

    async def serve(self) -> None:
        """Decode and dispatch inbound frames until cancelled."""
        network = self.network
        while True:
            data = await self.queue.get()
            try:
                self._dispatch(data)
            except Exception as exc:  # noqa: BLE001 - surfaced at settle()
                network._errors.append(exc)
            finally:
                self.unprocessed -= 1
                self.dispatched += 1
                self.last_progress = network._loop.time()
                network._touch()

    def _dispatch(self, data: bytes) -> None:
        network = self.network
        try:
            src, dst, msg, _version = decode_frame_ex(data)
        except WireVersionError as exc:
            # A peer speaking a wire version this build cannot decode is
            # a deployment-skew condition, not a serve-task failure:
            # count it, quarantine the claimed sender, drop the frame.
            network.metrics.count_version_reject()
            node = network.nodes.get(self.ad_id)
            if node is not None and exc.src is not None:
                node.version_blocked.add(exc.src)
                guard = getattr(node, "guard", None)
                if guard is not None:
                    guard.quarantine_now(
                        exc.src, f"undecodable wire version {exc.version!r}"
                    )
            return
        except WireError as exc:
            raise WireError(f"AD {self.ad_id}: {exc}") from exc
        if dst != self.ad_id:
            raise WireError(
                f"AD {self.ad_id} received a frame addressed to AD {dst}"
            )
        if network.is_crashed(dst):
            # Mirrors SimNetwork._deliver: a frame in flight to a crashed
            # process is lost and counted.
            network.metrics.count_drop()
            return
        if network._recv_loss_rate > 0.0 and (
            network._recv_loss_rng.random() < network._recv_loss_rate
        ):
            # Seeded chaos loss at the receive path: the frame reached
            # the socket (so sent/received stay balanced for idle
            # detection) but the routing process never sees it.
            network.metrics.count_channel_drop()
            return
        network.metrics.count_message(
            msg.type_name, msg.size_bytes(), network.clock.now
        )
        network.nodes[dst].receive(src, msg)

    async def drain(self, deadline_s: float = DRAIN_DEADLINE_S) -> None:
        """Stop admitting new frames; process everything already queued.

        Bounded: a serve task that died (or wedged) mid-queue would
        otherwise spin this loop forever and hang ``close()``.  On a
        dead task or an expired deadline the leftover frames are flushed
        and counted as queue drops instead.
        """
        if self.state is NodeState.SERVING:
            self.state = NodeState.DRAINING
        loop = asyncio.get_running_loop()
        deadline = loop.time() + deadline_s
        while self.unprocessed > 0:
            if self.task is not None and self.task.done():
                break
            if loop.time() >= deadline:
                break
            await asyncio.sleep(0)
        if self.unprocessed > 0:
            for _ in range(self.flush()):
                self.network.metrics.count_queue_drop()

    async def stop(self) -> None:
        """Drain, cancel the serve task, and close the socket."""
        if self.state is NodeState.STOPPED:
            return
        if self.state is not NodeState.CREATED:
            await self.drain()
        self.state = NodeState.STOPPED
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except asyncio.CancelledError:
                pass
            self.task = None
        if self.transport is not None:
            self.transport.close()
            self.transport = None

    def flush(self) -> int:
        """Discard queued frames (state-losing restart); returns the count."""
        lost = 0
        while not self.queue.empty():
            self.queue.get_nowait()
            self.unprocessed -= 1
            lost += 1
        return lost

    async def restart_task(self) -> int:
        """Kill and respawn the serve task, keeping the socket.

        The supervised recovery path: the port (and any frame already
        handed to the kernel for it) survives, so idle detection's
        ``sent == received`` invariant is preserved across the restart.
        Queued-but-undispatched frames die with the old task; the count
        of lost frames is returned and accounted as queue drops.
        """
        loop = asyncio.get_running_loop()
        old = self.task
        if old is not None:
            if old.done():
                # A crashed task's exception must be observed exactly
                # once; the supervisor reports it, we just defuse it.
                if not old.cancelled():
                    old.exception()
            else:
                old.cancel()
                try:
                    await old
                except asyncio.CancelledError:
                    pass
        lost = self.flush()
        for _ in range(lost):
            self.network.metrics.count_queue_drop()
        self.state = NodeState.SERVING
        self.restarts += 1
        self.last_progress = loop.time()
        self.task = loop.create_task(
            self.serve(), name=f"ad-{self.ad_id}-serve"
        )
        return lost


class LiveNetwork(Transport):
    """Binds a topology to protocol nodes over loopback UDP sockets.

    Construct inside a running event loop (the sockets and the clock
    belong to it); :func:`repro.live.runner.run_live` does this for you.
    Driver-facing surface mirrors :class:`~repro.simul.network.SimNetwork`
    where the semantics carry over (``node``/``set_link_status``/
    ``crash_node``/``restore_node``/``flush_ingress``); sim-only
    machinery (channel impairments, bounded ingress models) raises.
    """

    def __init__(
        self,
        graph: InterADGraph,
        time_scale: float = 0.005,
    ) -> None:
        self.graph = graph
        self.metrics = MetricsCollector()
        self.profiler = None
        self.nodes: Dict[ADId, ProtocolNode] = {}
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._clock = LiveClock(loop, time_scale)
        self._clock.on_fire = self._touch
        self._runtimes: Dict[ADId, _NodeRuntime] = {}
        self._crashed: Set[ADId] = set()
        self._errors: List[Exception] = []
        self._started = False
        self._sent_frames = 0
        self._recv_frames = 0
        #: Sends waiting on a transient-error retry timer.
        self._pending_sends = 0
        #: Seeded Bernoulli loss at the receive path (chaos injection).
        self._recv_loss_rate = 0.0
        self._recv_loss_rng = random.Random(0)
        #: The attached :class:`~repro.live.supervisor.Supervisor`, when
        #: one is watching this network (set by ``Supervisor.start``).
        self.supervisor = None
        #: Wall-clock instant of the last observable activity.
        self._last_activity = loop.time()

    # -------------------------------------------------------- transport API

    @property
    def clock(self) -> Clock:
        return self._clock

    def neighbors(self, ad_id: ADId) -> List[ADId]:
        return self.graph.neighbors(ad_id)

    def send(self, src: ADId, dst: ADId, msg: Message) -> None:
        """Encode and transmit one frame over the destination's socket."""
        link = self.graph.link_if_exists(src, dst)
        if link is None:
            raise ValueError(f"AD {src} and AD {dst} are not neighbours")
        if not link.up:
            self.metrics.count_drop()
            return
        runtime = self._runtimes[src]
        target = self._runtimes[dst]
        if runtime.transport is None or target.port is None:
            raise RuntimeError(
                f"AD {src} sent before the network started serving"
            )
        # The sender's per-neighbour tx version: the node's configured
        # version by default; with negotiation on, the negotiated one
        # (or the node's minimum until the handshake completes).
        frame = encode_frame(
            src, dst, msg, version=self.nodes[src].wire_tx_version(dst)
        )
        if len(frame) > MAX_DATAGRAM_BYTES:
            raise ValueError(
                f"{msg.type_name} from AD {src} encodes to {len(frame)} "
                f"bytes, over the {MAX_DATAGRAM_BYTES}-byte UDP limit"
            )
        self._transmit(src, dst, frame, attempt=0)

    def _transmit(self, src: ADId, dst: ADId, frame: bytes, attempt: int) -> None:
        """Hand one frame to the kernel, retrying transient errors.

        ``BlockingIOError``/``ENOBUFS`` under a convergence burst is a
        full kernel buffer, not a protocol failure: back off briefly and
        try again instead of letting the exception kill the sending
        node's serve task.  ``_sent_frames`` counts only successful
        hand-offs; a pending retry keeps the network non-idle via
        ``_pending_sends`` so settle() cannot declare quiescence with a
        frame still waiting to leave.
        """
        runtime = self._runtimes[src]
        target = self._runtimes[dst]
        if runtime.transport is None or target.port is None:
            # The endpoint closed while a retry timer was pending.
            self.metrics.count_live_send_drop()
            return
        try:
            runtime.transport.sendto(frame, ("127.0.0.1", target.port))
        except (BlockingIOError, InterruptedError, OSError):
            if attempt >= len(SEND_RETRY_DELAYS):
                self.metrics.count_live_send_drop()
                self._touch()
                return
            self.metrics.count_live_send_retry()
            self._pending_sends += 1
            self._touch()
            self._loop.call_later(
                SEND_RETRY_DELAYS[attempt], self._retry_transmit,
                src, dst, frame, attempt + 1,
            )
            return
        self._sent_frames += 1
        self._touch()

    def _retry_transmit(
        self, src: ADId, dst: ADId, frame: bytes, attempt: int
    ) -> None:
        self._pending_sends -= 1
        self._transmit(src, dst, frame, attempt)

    # ----------------------------------------------------------- node mgmt

    def add_node(self, node: ProtocolNode) -> ProtocolNode:
        """Register a protocol node for an AD in the graph."""
        if node.ad_id not in self.graph:
            raise ValueError(f"AD {node.ad_id} is not in the topology")
        if node.ad_id in self.nodes:
            raise ValueError(f"AD {node.ad_id} already has a node")
        self.nodes[node.ad_id] = node
        self._runtimes[node.ad_id] = _NodeRuntime(self, node.ad_id)
        node.attach(self)
        return node

    def node(self, ad_id: ADId) -> ProtocolNode:
        return self.nodes[ad_id]

    async def start(self) -> None:
        """Bind every AD's socket, then run the start hooks (AD id order)."""
        if self._started:
            raise RuntimeError("live network already started")
        self._started = True
        for ad_id in sorted(self._runtimes):
            await self._runtimes[ad_id].start()
        for ad_id in sorted(self.nodes):
            self.nodes[ad_id].start()
        for ad_id in sorted(self.nodes):
            node = self.nodes[ad_id]
            if node.wire.negotiate:
                node.announce_wire()

    async def close(self) -> None:
        """Stop every AD: drain queues, cancel tasks, close sockets."""
        for ad_id in sorted(self._runtimes):
            await self._runtimes[ad_id].stop()

    def set_profiler(self, profiler) -> None:
        """Attach a phase profiler (nodes read it via the transport)."""
        self.profiler = profiler

    # ------------------------------------------------------- idle detection

    def _touch(self) -> None:
        self._last_activity = self._loop.time()

    @property
    def idle_for(self) -> float:
        """Wall-clock seconds since the last observable activity."""
        return self._loop.time() - self._last_activity

    def idle(self) -> bool:
        """No frame in flight, none queued, nothing being processed.

        Frames handed to the kernel but not yet received are in flight
        and count as activity (``sent != received``), so a quiet instant
        between send and receive is never mistaken for quiescence; a
        send waiting on a transient-error retry timer counts the same
        way (``_pending_sends``).
        """
        return (
            self._pending_sends == 0
            and self._sent_frames == self._recv_frames
            and all(rt.unprocessed == 0 for rt in self._runtimes.values())
        )

    @property
    def errors(self) -> List[Exception]:
        """Exceptions raised inside serve tasks (fatal to the run)."""
        return self._errors

    @property
    def frames_sent(self) -> int:
        """Frames handed to the kernel since the network was created."""
        return self._sent_frames

    @property
    def frames_received(self) -> int:
        """Frames admitted to an AD's inbound queue since creation."""
        return self._recv_frames

    # ------------------------------------------------------------ failures

    def set_link_status(self, a: ADId, b: ADId, up: bool) -> None:
        """Change a link's status now and notify both endpoint nodes."""
        link = self.graph.set_link_status(a, b, up)
        for end in (a, b):
            if end in self._crashed:
                continue
            node = self.nodes.get(end)
            if node is not None:
                node.on_link_change(link, up)

    def crash_node(self, ad_id: ADId) -> None:
        """Silence an AD: in-flight frames to it drop, no notifications."""
        if ad_id not in self.nodes:
            raise ValueError(f"AD {ad_id} has no node to crash")
        if ad_id in self._crashed:
            raise ValueError(f"AD {ad_id} is already crashed")
        self._crashed.add(ad_id)

    def restore_node(
        self, ad_id: ADId, node: Optional[ProtocolNode] = None
    ) -> None:
        """Un-silence a crashed AD, optionally swapping in a fresh node."""
        if ad_id not in self._crashed:
            raise ValueError(f"AD {ad_id} is not crashed")
        self._crashed.discard(ad_id)
        if node is not None:
            if node.ad_id != ad_id:
                raise ValueError(
                    f"replacement node is for AD {node.ad_id}, not AD {ad_id}"
                )
            self.nodes[ad_id] = node
            node.attach(self)

    def is_crashed(self, ad_id: ADId) -> bool:
        return ad_id in self._crashed

    def flush_ingress(self, ad_id: ADId) -> int:
        """Discard an AD's queued inbound frames (state-losing restart)."""
        lost = self._runtimes[ad_id].flush()
        for _ in range(lost):
            self.metrics.count_queue_drop()
        return lost

    def set_recv_loss(self, rate: float, seed: int = 0) -> None:
        """Seeded Bernoulli frame loss at the UDP receive path.

        The live substrate's chaos hook: real sockets cannot be told to
        lose packets on demand, so loss is injected just before dispatch
        (after idle-detection accounting, mirroring crashed-destination
        drops).  ``rate=0`` turns it off.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate {rate} outside [0, 1]")
        self._recv_loss_rate = rate
        self._recv_loss_rng = random.Random(seed)

    async def restart_runtime(self, ad_id: ADId) -> int:
        """Supervised serve-task restart for one AD (socket preserved).

        Returns the number of queued frames lost with the old task.
        """
        return await self._runtimes[ad_id].restart_task()

    def runtime_stats(self, ad_id: ADId) -> Dict[str, object]:
        """One AD's lifecycle counters (observability/supervision)."""
        rt = self._runtimes[ad_id]
        return {
            "state": rt.state,
            "unprocessed": rt.unprocessed,
            "dispatched": rt.dispatched,
            "last_progress": rt.last_progress,
            "restarts": rt.restarts,
        }

    # --------------------------------------------------- sim-only machinery

    def set_channel(self, model) -> None:
        raise NotImplementedError(
            "channel impairments are a simulator model; the live substrate "
            "has real (loopback) links"
        )

    def set_impairment(self, link, spec) -> None:
        raise NotImplementedError(
            "channel impairments are a simulator model; the live substrate "
            "has real (loopback) links"
        )

    def set_ingress(self, model) -> None:
        raise NotImplementedError(
            "bounded ingress is a simulator model; the live substrate's "
            "inbound queues are the real asyncio/UDP ones"
        )

    # -------------------------------------------------------------- helpers

    def lifecycle_states(self) -> Dict[ADId, NodeState]:
        """Each AD's current lifecycle state (observability/tests)."""
        return {ad: rt.state for ad, rt in self._runtimes.items()}

    def dead_serve_tasks(self) -> List[Tuple[ADId, int]]:
        """ADs whose serve task finished while still supposed to serve.

        Returns ``(ad_id, pending_frames)`` pairs.  A task is dead when
        it completed (crash or stray cancellation) while its runtime is
        in SERVING/DRAINING -- a stopped AD's task is cancelled on
        purpose and its runtime is STOPPED first.
        """
        dead: List[Tuple[ADId, int]] = []
        for ad_id in sorted(self._runtimes):
            rt = self._runtimes[ad_id]
            if rt.state in (NodeState.SERVING, NodeState.DRAINING) and (
                rt.task is not None and rt.task.done()
            ):
                dead.append((ad_id, rt.unprocessed))
        return dead

    def port_of(self, ad_id: ADId) -> Optional[int]:
        """The UDP port an AD's endpoint is bound to (None before start)."""
        return self._runtimes[ad_id].port

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LiveNetwork(ads={self.graph.num_ads}, nodes={len(self.nodes)}, "
            f"started={self._started})"
        )
