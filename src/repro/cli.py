"""Command-line interface: ``python -m repro <command>``.

Small, scriptable entry points over the library:

* ``topology``  — generate a Figure-1 internet and describe it;
* ``scorecard`` — run all eight design points and print measured Table 1;
* ``route``     — converge ORWG on a scenario and resolve one flow;
* ``audit``     — connectivity audit of a policy scenario;
* ``impact``    — what-if analysis of an AD withdrawing transit;
* ``experiments`` — list the paper experiments, or ``experiments run``
  a named one through the harness (parallel fan-out, JSONL telemetry).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.adgraph.ad import ADKind, Level, LinkKind
from repro.adgraph.generator import TopologyConfig, generate_internet, scaled_config
from repro.analysis.tables import Table
from repro.policy.qos import QOS


def _build_scenario(args: argparse.Namespace):
    from repro.workloads import reference_scenario

    return reference_scenario(
        seed=args.seed, restrictiveness=args.restrictiveness
    )


def cmd_topology(args: argparse.Namespace) -> int:
    if args.target:
        config = scaled_config(args.target, seed=args.seed)
    else:
        config = TopologyConfig(
            num_backbones=args.backbones,
            regionals_per_backbone=args.regionals,
            campuses_per_parent=args.campuses,
            seed=args.seed,
        )
    graph = generate_internet(config)
    levels = graph.level_counts()
    kinds = graph.kind_counts()
    links = graph.link_kind_counts()
    table = Table("property", "value", title=f"Generated internet (seed {args.seed})")
    table.add("ADs", graph.num_ads)
    table.add("links", graph.num_links)
    table.add("backbone/regional/metro/campus",
              "/".join(str(levels[lvl]) for lvl in Level))
    table.add("stub/multihomed/transit/hybrid",
              "/".join(str(kinds[k]) for k in ADKind))
    table.add("hierarchical/lateral/bypass",
              "/".join(str(links[k]) for k in LinkKind))
    table.add("connected", "yes" if graph.is_connected() else "NO")
    print(table.render())
    return 0


def cmd_scorecard(args: argparse.Namespace) -> int:
    from repro.core.scorecard import build_scorecard, render_scorecard

    scenario = _build_scenario(args)
    rows = build_scorecard(
        scenario.graph, scenario.policies, scenario.flows[: args.flows]
    )
    print(render_scorecard(rows))
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    from repro.policy.flows import FlowSpec
    from repro.protocols import make_protocol

    scenario = _build_scenario(args)
    graph = scenario.graph
    for endpoint in (args.src, args.dst):
        if endpoint not in graph:
            print(f"error: AD {endpoint} not in topology "
                  f"(ids 0..{graph.num_ads - 1})", file=sys.stderr)
            return 2
    protocol = make_protocol("orwg", graph, scenario.policies)
    protocol.converge()
    flow = FlowSpec(args.src, args.dst, qos=QOS(args.qos), hour=args.hour)
    routes = protocol.k_routes(flow, k=args.k)
    if not routes:
        print(f"no legal route for {flow}")
        return 1
    table = Table("#", "route", "hops", "cost", "charges",
                  title=f"Policy routes for {flow}")
    for i, route in enumerate(routes):
        table.add(i + 1, "->".join(map(str, route.path)), route.hops,
                  f"{route.cost:.1f}", f"{route.charges:.1f}")
    print(table.render())
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.mgmt.audit import connectivity_audit

    scenario = _build_scenario(args)
    audit = connectivity_audit(
        scenario.graph, scenario.policies, scenario.flows
    )
    print(audit.summary())
    if args.verbose:
        for finding in audit.findings:
            print(f"  {finding}")
    return 0


def cmd_impact(args: argparse.Namespace) -> int:
    from repro.mgmt.impact import PolicyImpactAnalyzer

    scenario = _build_scenario(args)
    if args.owner not in scenario.graph:
        print(f"error: AD {args.owner} not in topology", file=sys.stderr)
        return 2
    analyzer = PolicyImpactAnalyzer(
        scenario.graph, scenario.policies, flows=scenario.flows
    )
    if args.rank:
        table = Table("AD", "flows stranded by withdrawal",
                      title="Most critical transit ADs")
        for ad_id, damage in analyzer.rank_critical_transits(top=args.rank):
            table.add(ad_id, damage)
        print(table.render())
        return 0
    print(analyzer.assess_withdrawal(args.owner).summary())
    return 0


def cmd_converge(args: argparse.Namespace) -> int:
    from repro.adgraph.failures import random_failure_plan
    from repro.protocols import make_protocol
    from repro.simul.runner import run_with_failures

    scenario = _build_scenario(args)
    contenders = ["naive-dv", "ecma", "idrp", "orwg"]
    table = Table(
        "protocol",
        "initial msgs",
        "initial KB",
        "events",
        "mean msgs/event",
        title=f"Convergence on {scenario.graph.num_ads} ADs "
        f"({args.failures} failure/repair events)",
    )
    plan = None
    if args.failures:
        plan = random_failure_plan(
            scenario.graph, count=args.failures, repair=True, seed=args.seed
        )
    for name in contenders:
        proto = make_protocol(name, scenario.graph.copy(), scenario.policies.copy())
        if plan is None:
            result = proto.converge()
            table.add(name, result.messages, f"{result.bytes / 1024:.0f}", 0, "-")
            continue
        initial, episodes = run_with_failures(proto.build(), plan)
        msgs = [e.result.messages for e in episodes]
        table.add(
            name,
            initial.messages,
            f"{initial.bytes / 1024:.0f}",
            len(episodes),
            f"{sum(msgs) / len(msgs):.0f}",
        )
    print(table.render())
    return 0


def cmd_live_run(args: argparse.Namespace) -> int:
    from repro.faults.plan import link_flap_plan
    from repro.live import run_live
    from repro.protocols import make_protocol
    from repro.workloads import reference_scenario, small_scenario

    builders = {"small": small_scenario, "reference": reference_scenario}
    scenario = builders[args.scenario](seed=args.seed)
    protocol = make_protocol(
        args.protocol,
        scenario.graph.copy(),
        scenario.policies.copy(),
        substrate="live",
    )
    plan = None
    if args.flaps:
        plan = link_flap_plan(scenario.graph, flaps=args.flaps, seed=args.seed)
    result = run_live(
        protocol,
        plan,
        time_scale=args.time_scale,
        timeout_s=args.timeout,
    )
    table = Table(
        "episode",
        "messages",
        "KB",
        "time",
        "quiesced",
        title=f"{args.protocol} live on {scenario.graph.num_ads} ADs "
        f"(UDP loopback, {args.time_scale}s/unit)",
    )

    def _row(label, r):
        table.add(
            label, r.messages, f"{r.bytes / 1024:.1f}", f"{r.time:.1f}",
            "yes" if r.quiesced else "NO",
        )

    _row("initial", result.initial)
    for episode in result.episodes:
        _row(episode.label, episode.result)
    print(table.render())
    print(f"wall time: {result.wall_seconds:.2f}s")
    return 0 if result.quiesced else 1


def cmd_live_fidelity(args: argparse.Namespace) -> int:
    from repro.live import fidelity_report, format_report

    report = fidelity_report(
        protocol=args.protocol,
        scenario=args.scenario,
        seed=args.seed,
        flaps=args.flaps,
        time_scale=args.time_scale,
        timeout_s=args.timeout,
    )
    print(format_report(report))
    return 0 if report.routes_identical and report.live_quiesced else 1


def cmd_live_chaos(args: argparse.Namespace) -> int:
    """Run one chaos program (rolling restarts + partitions) end to end."""
    from repro.harness.chaos import execute_chaos_cell
    from repro.harness.spec import (
        ExperimentSpec,
        FaultSpec,
        ProtocolSpec,
        ScenarioSpec,
        TrafficSpec,
    )

    if args.restarts <= 0 and args.partitions <= 0:
        print("error: need --restarts or --partitions > 0", file=sys.stderr)
        return 2
    options = (("graceful", args.gr),) if args.gr else ()
    label = f"{args.protocol}+gr" if args.gr else None
    spec = ExperimentSpec(
        name="live_chaos_cli",
        scenarios=(
            ScenarioSpec(kind=args.scenario, seed=args.seed, num_flows=12),
        ),
        protocols=(ProtocolSpec(args.protocol, label=label, options=options),),
        faults=(
            FaultSpec(
                restarts=args.restarts,
                partitions=args.partitions,
                seed=args.seed,
            ),
        ),
        traffics=(
            TrafficSpec(flows=args.flows, zipf_s=1.1, pairs=128, seed=args.seed),
        ),
        substrate="sim" if args.sim else "live",
    )
    (cell,) = spec.cells()
    record = execute_chaos_cell(
        cell, time_scale=args.time_scale, settle_timeout_s=args.timeout
    )
    chaos = record.chaos
    substrate = record.substrate
    table = Table(
        "chaos event",
        "t",
        "msgs",
        "settle",
        "routable during",
        "after",
        "quiesced",
        title=f"{cell.protocol.display} chaos on {record.scenario['num_ads']} "
        f"ADs ({substrate}; {args.restarts} restart(s), "
        f"{args.partitions} partition(s))",
    )
    for group in chaos["groups"]:
        table.add(
            group["label"],
            f"{group['time']:g}",
            group["messages"],
            f"{group['settle_time']:.0f}",
            group["routable_during"],
            group["routable_after"],
            "yes" if group["quiesced"] else "NO",
        )
    print(table.render())
    print(
        f"availability: {chaos['availability']:.2f} "
        f"(baseline {chaos['baseline_routable']} routable flows)"
    )
    gsum = chaos["graceful_summary"]
    print(
        f"graceful restart: {chaos['graceful']} (holds={gsum['holds']} "
        f"expirations={gsum['expirations']} resyncs={gsum['resyncs']})"
    )
    if record.dataplane is not None:
        series = record.dataplane["series"]
        print(
            f"flow outage: p99={series['outage_p99']:.3f} "
            f"p999={series['outage_p999']:.3f} "
            f"worst-gap={series['worst_gap']:.3f}"
        )
    print(f"routes digest: {chaos['routes_digest']}")
    if chaos["supervisor"] is not None:
        sup = chaos["supervisor"]
        print(
            f"supervisor: {chaos['serve_restarts']} rolling serve "
            f"restarts, {sup['restarts']} crash recoveries, "
            f"gave_up={sup['gave_up']}"
        )
    return 0 if all(g["quiesced"] for g in chaos["groups"]) else 1


def cmd_report(args: argparse.Namespace) -> int:
    """Run every experiment bench and collate the tables into one report."""
    import os
    import subprocess

    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    bench_dir = os.path.join(repo_root, "benchmarks")
    out_dir = os.path.join(bench_dir, "out")
    if not os.path.isdir(bench_dir):
        print("error: benchmarks/ not found (installed without the repo?)",
              file=sys.stderr)
        return 2
    if not args.skip_run:
        print("running the full experiment suite (several minutes)...")
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", bench_dir, "--benchmark-only", "-q"],
            cwd=repo_root,
        )
        if proc.returncode != 0:
            print("error: experiment suite failed", file=sys.stderr)
            return proc.returncode
    if not os.path.isdir(out_dir):
        print("error: no benchmarks/out/ artifacts found", file=sys.stderr)
        return 2
    sections = []
    for name in sorted(os.listdir(out_dir)):
        if name.endswith(".txt"):
            with open(os.path.join(out_dir, name)) as fh:
                sections.append(fh.read().rstrip())
    report = (
        "REPRODUCTION REPORT — Breslau & Estrin, SIGCOMM 1990\n"
        "(see EXPERIMENTS.md for the paper-claim vs measured discussion)\n\n"
        + "\n\n".join(sections)
        + "\n"
    )
    with open(args.output, "w") as fh:
        fh.write(report)
    print(f"report written to {args.output} "
          f"({len(sections)} experiment tables)")
    return 0


def cmd_experiments_run(args: argparse.Namespace) -> int:
    """Run harness-driven experiments: tables to stdout, runs to JSONL."""
    import os

    from repro.harness import EXPERIMENTS, run_experiment

    name = args.name.replace("-", "_")
    if name == "all":
        names = sorted(EXPERIMENTS, key=lambda n: EXPERIMENTS[n].eid)
    elif name in EXPERIMENTS:
        names = [name]
    else:
        print(
            f"error: unknown experiment {args.name!r}; harness-driven "
            f"experiments: all, {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    for name in names:
        spec, records, text = run_experiment(
            name,
            jobs=args.jobs,
            smoke=args.smoke,
            runs_dir=args.runs_dir,
            trace=args.trace,
            seed=args.exp_seed,
            loss=args.loss,
            liar=args.liar,
            lie=args.lie,
            queue_capacity=args.queue_capacity,
            churn_hz=args.churn_hz,
            pacing=args.pacing,
            flows=args.flows,
            zipf_s=args.zipf_s,
            restarts=args.restarts,
            partitions=args.partitions,
            gr=args.gr,
            wire_version=args.wire_version,
            upgrade_waves=args.upgrade_waves,
            rollback=args.rollback,
        )
        print(text)
        jsonl = os.path.join(args.runs_dir, f"{spec.name}.jsonl")
        print(f"[{len(records)} runs -> {jsonl}]\n")
        if args.profile:
            print(_profile_table(spec.name, records))
            print()
        if args.trace:
            for record in records:
                if record.trace:
                    print(f"--- trace: cell {record.cell['index']} "
                          f"({record.cell['label']}) ---")
                    for line in record.trace:
                        print(line)
    return 0


def cmd_traffic_bench(args: argparse.Namespace) -> int:
    """Compiled-FIB batched replay vs the legacy per-packet forwarder."""
    from repro.traffic import bench

    protocols = tuple(args.protocols) if args.protocols else (
        bench.PROTOCOLS_SMOKE if args.smoke else bench.PROTOCOLS
    )
    flows = args.flows if args.flows is not None else (
        bench.FLOWS_SMOKE if args.smoke else bench.FLOWS
    )
    pairs = args.pairs if args.pairs is not None else (
        bench.PAIRS_SMOKE if args.smoke else bench.PAIRS
    )
    result = bench.run_bench(
        protocols=protocols,
        flows=flows,
        pairs=pairs,
        zipf_s=args.zipf_s if args.zipf_s is not None else bench.ZIPF_S,
        seed=args.seed if args.seed is not None else bench.WORKLOAD_SEED,
        scenario_seed=(
            args.scenario_seed
            if args.scenario_seed is not None
            else bench.SCENARIO_SEED
        ),
    )
    print(bench.render_table(result))
    broken = [r["protocol"] for r in result["protocols"] if not r["identical"]]
    if broken:
        print(
            f"error: compiled verdicts diverge from the legacy forwarder "
            f"for: {', '.join(broken)}",
            file=sys.stderr,
        )
        return 1
    return 0


#: Per-phase wall-clock columns, in pipeline order.  ``engine.run`` and
#: the ``proto.*`` phases accrue *inside* the enclosing pipeline phases,
#: so columns deliberately do not sum to a run's total.
_PROFILE_PHASES = (
    "scenario", "build", "converge", "failures", "faults", "evaluate",
    "engine.run", "proto.flood", "proto.spf",
)


def _profile_table(name: str, records) -> str:
    """Render each run's per-phase wall-clock (seconds) as a table."""
    present = [
        phase
        for phase in _PROFILE_PHASES
        if any(phase in r.timings for r in records)
    ]
    extras = sorted(
        {phase for r in records for phase in r.timings} - set(_PROFILE_PHASES)
    )
    columns = present + extras
    table = Table(
        "cell", "label", *columns,
        title=f"{name}: per-phase wall-clock (s)",
    )
    for record in records:
        table.add(
            record.cell["index"],
            record.cell["label"],
            *(f"{record.timings.get(p, 0.0):.3f}" for p in columns),
        )
    return table.render()


def cmd_experiments(args: argparse.Namespace) -> int:
    experiments = [
        ("E1", "Table 1 measured across all 8 design points",
         "bench_table1_design_space.py"),
        ("E2", "Figure 1 topology composition", "bench_fig1_topology.py"),
        ("E3", "Route availability vs policy restrictiveness",
         "bench_availability.py"),
        ("E4", "Reconvergence after failures (count-to-infinity)",
         "bench_convergence.py"),
        ("E5", "Source-specific policy granularity costs",
         "bench_granularity.py"),
        ("E6", "Route setup amortisation and header overhead",
         "bench_setup_overhead.py"),
        ("E7", "Scaling with internet size", "bench_scaling.py"),
        ("E8", "Partial-ordering satisfiability (ECMA)",
         "bench_partial_order.py"),
        ("E9", "AD-level abstraction: stretch vs information",
         "bench_abstraction.py"),
        ("E10", "Synthesis strategies: precompute/on-demand/hybrid",
         "bench_synthesis_strategies.py"),
        ("E11", "Robustness under message loss and churn",
         "bench_robustness.py"),
        ("E12", "Misbehaving-AD blast radius and containment",
         "bench_robustness_misbehavior.py"),
        ("E13", "Control-plane overload under a churn storm",
         "bench_robustness_churn.py"),
        ("E14", "Data-plane tail latency under convergence",
         "bench_dataplane.py"),
        ("A1-A4", "Ablations: fast path, flooding scope, PG caches, "
         "multi-route IDRP", "bench_ablations.py"),
    ]
    table = Table("id", "what", "bench", title="Paper experiments (see EXPERIMENTS.md)")
    for row in experiments:
        table.add(*row)
    print(table.render())
    print("\nrun all:  pytest benchmarks/ --benchmark-only")
    print("harness:  python -m repro experiments run <name|all> "
          "[--jobs N] [--smoke] [--trace ad=K]")
    return 0


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--restrictiveness",
        type=float,
        default=0.3,
        help="policy restrictiveness in [0,1]",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Inter-AD policy routing design-space simulator "
        "(Breslau & Estrin, SIGCOMM 1990)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("topology", help="generate and describe an internet")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backbones", type=int, default=2)
    p.add_argument("--regionals", type=int, default=3)
    p.add_argument("--campuses", type=int, default=3)
    p.add_argument("--target", type=int, default=0,
                   help="approximate AD count (overrides shape flags)")
    p.set_defaults(fn=cmd_topology)

    p = sub.add_parser("scorecard", help="measured Table 1")
    _add_scenario_args(p)
    p.add_argument("--flows", type=int, default=40)
    p.set_defaults(fn=cmd_scorecard)

    p = sub.add_parser("route", help="resolve one flow under ORWG")
    _add_scenario_args(p)
    p.add_argument("--src", type=int, required=True)
    p.add_argument("--dst", type=int, required=True)
    p.add_argument("--qos", choices=[q.value for q in QOS], default="default")
    p.add_argument("--hour", type=int, default=12)
    p.add_argument("-k", type=int, default=3, help="alternatives to list")
    p.set_defaults(fn=cmd_route)

    p = sub.add_parser("audit", help="connectivity audit")
    _add_scenario_args(p)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=cmd_audit)

    p = sub.add_parser("impact", help="what-if: AD withdraws transit")
    _add_scenario_args(p)
    p.add_argument("--owner", type=int, default=0)
    p.add_argument("--rank", type=int, default=0,
                   help="instead rank the N most critical transit ADs")
    p.set_defaults(fn=cmd_impact)

    p = sub.add_parser("report", help="run all experiments, collate a report")
    p.add_argument("--output", default="REPORT.txt")
    p.add_argument("--skip-run", action="store_true",
                   help="collate existing benchmarks/out artifacts only")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("converge", help="compare convergence costs")
    _add_scenario_args(p)
    p.add_argument("--failures", type=int, default=0,
                   help="failure/repair events to inject")
    p.set_defaults(fn=cmd_converge)

    p = sub.add_parser("live",
                       help="run protocols over the live asyncio/UDP substrate")
    lsub = p.add_subparsers(dest="live_command", required=True)

    def _add_live_args(lp):
        lp.add_argument("--protocol", default="plain-ls",
                        help="registry name (default: plain-ls)")
        lp.add_argument("--seed", type=int, default=0)
        lp.add_argument("--flaps", type=int, default=6,
                        help="link flaps to inject after convergence")
        lp.add_argument("--time-scale", type=float, default=0.005,
                        help="wall seconds per protocol time unit")
        lp.add_argument("--timeout", type=float, default=120.0,
                        help="per-episode settle timeout (wall seconds)")

    lp = lsub.add_parser("run", help="converge and flap one scenario live")
    lp.add_argument("scenario", choices=("small", "reference"),
                    help="scenario to run")
    _add_live_args(lp)
    lp.set_defaults(fn=cmd_live_run)

    lp = lsub.add_parser(
        "fidelity",
        help="run the same scenario on sim and live, compare final routes",
    )
    lp.add_argument("scenario", nargs="?", default="reference",
                    choices=("small", "reference"))
    _add_live_args(lp)
    lp.set_defaults(fn=cmd_live_fidelity)

    lp = lsub.add_parser(
        "chaos",
        help="run a supervised chaos program: rolling AD restarts and "
             "partition windows, with data-plane outage measurement (E15)",
    )
    lp.add_argument("scenario", choices=("ring", "small", "reference"),
                    help="topology to torment")
    lp.add_argument("--protocol", default="ls-hbh",
                    help="registry name (default: ls-hbh)")
    lp.add_argument("--seed", type=int, default=0)
    lp.add_argument("--restarts", type=int, default=1,
                    help="rolling AD crash/restart cycles (state retained)")
    lp.add_argument("--partitions", type=int, default=1,
                    help="bounded partition windows after the restarts")
    lp.add_argument("--gr", default=None, metavar="SCOPE",
                    help="enable graceful restart ('all' or a feature name)")
    lp.add_argument("--flows", type=int, default=20000,
                    help="zipf data-plane flows replayed per epoch")
    lp.add_argument("--sim", action="store_true",
                    help="run on the deterministic simulator instead of "
                         "the asyncio/UDP substrate")
    lp.add_argument("--time-scale", type=float, default=0.005,
                    help="wall seconds per protocol time unit (live only)")
    lp.add_argument("--timeout", type=float, default=60.0,
                    help="per-episode settle timeout in wall seconds "
                         "(live only)")
    lp.set_defaults(fn=cmd_live_chaos)

    p = sub.add_parser("experiments",
                       help="list paper experiments, or run them via the harness")
    p.set_defaults(fn=cmd_experiments)
    esub = p.add_subparsers(dest="experiments_command")
    ep = esub.add_parser("list", help="list paper experiments")
    ep.set_defaults(fn=cmd_experiments)
    ep = esub.add_parser(
        "run", help="run a named experiment through the harness"
    )
    ep.add_argument("name",
                    help="experiment name (see 'experiments list') or 'all'")
    ep.add_argument("--jobs", type=int, default=1,
                    help="worker processes for the cell fan-out")
    ep.add_argument("--smoke", action="store_true",
                    help="reduced grid; artifacts suffixed _smoke")
    ep.add_argument("--trace", default=None, metavar="FILTER",
                    help="per-run protocol trace: 'all' or 'ad=<id>'")
    ep.add_argument("--profile", action="store_true",
                    help="print each run's per-phase wall-clock table "
                         "(engine.run, proto.spf, proto.flood, ...)")
    ep.add_argument("--runs-dir", default="benchmarks/out/runs",
                    help="where <experiment>.jsonl telemetry is written")
    ep.add_argument("--seed", dest="exp_seed", type=int, default=None,
                    help="override the spec's seed axis with one seed")
    ep.add_argument("--loss", type=float, default=None,
                    help="override message-loss probability on the fault "
                         "axis (robustness sweeps)")
    ep.add_argument("--liar", default=None, metavar="WHO",
                    help="override the misbehaving AD: 'ad=<id>' or a "
                         "role (stub, regional, backbone)")
    ep.add_argument("--lie", default=None, metavar="KIND",
                    help="override the lie told on the misbehavior axis "
                         "(route-leak, bogus-origin, stale-replay, "
                         "metric-lie, term-forgery)")
    ep.add_argument("--queue-capacity", type=int, default=None,
                    help="override the bounded ingress-queue capacity on "
                         "the fault axis (negative removes the queue)")
    ep.add_argument("--churn-hz", type=float, default=None,
                    help="override the churn-storm flap frequency on the "
                         "fault axis (cycles per time unit)")
    ep.add_argument("--pacing", choices=("off", "pace", "holddown",
                                         "damp", "full"), default=None,
                    help="override every protocol point's pacing config")
    ep.add_argument("--flows", type=int, default=None,
                    help="override the traffic axis flow count "
                         "(data-plane experiments, e.g. dataplane_tail)")
    ep.add_argument("--zipf-s", dest="zipf_s", type=float, default=None,
                    help="override the traffic axis zipf skew "
                         "(0 = uniform; larger concentrates harder)")
    ep.add_argument("--restarts", type=int, default=None,
                    help="override the chaos-program rolling-restart count "
                         "on the fault axis (live_chaos)")
    ep.add_argument("--partitions", type=int, default=None,
                    help="override the chaos-program partition-window count "
                         "on the fault axis (live_chaos)")
    ep.add_argument("--gr", default=None, metavar="SCOPE",
                    help="override every protocol point's graceful-restart "
                         "config ('off', 'all', or a feature name)")
    ep.add_argument("--wire-version", dest="wire_version", default=None,
                    metavar="SPEC",
                    help="override every protocol point's wire config "
                         "('off', 'v1', 'v2', 'current', 'v1+negotiate', "
                         "...); mixed_version starts all-v1 negotiating")
    ep.add_argument("--upgrade-waves", dest="upgrade_waves", type=int,
                    default=None,
                    help="override the rolling-upgrade wave count on the "
                         "fault axis (mixed_version)")
    ep.add_argument("--rollback", dest="rollback", default=None,
                    action=argparse.BooleanOptionalAction,
                    help="force the downgrade/re-upgrade leg on or off "
                         "(mixed_version)")
    ep.set_defaults(fn=cmd_experiments_run)

    p = sub.add_parser(
        "traffic",
        help="data-plane workloads: compiled-FIB vs legacy throughput",
    )
    tsub = p.add_subparsers(dest="traffic_command", required=True)
    tp = tsub.add_parser(
        "bench",
        help="measure compiled-FIB batched replay against the legacy "
             "per-packet forwarder on the reference internet",
    )
    tp.add_argument("--protocol", action="append", default=None,
                    metavar="NAME", dest="protocols",
                    help="protocol point to measure (repeatable; default: "
                         "the representative ecma/idrp/ls-hbh/orwg spread)")
    tp.add_argument("--flows", type=int, default=None,
                    help="workload flow count (default: 1000000)")
    tp.add_argument("--pairs", type=int, default=None,
                    help="distinct (src, dst) flow classes (default: 4096)")
    tp.add_argument("--zipf-s", dest="zipf_s", type=float, default=None,
                    help="zipf skew of class popularity (default: 1.1)")
    tp.add_argument("--seed", type=int, default=None,
                    help="workload generation seed (default: 14)")
    tp.add_argument("--scenario-seed", type=int, default=None,
                    help="reference-internet seed (default: 5, as in E14)")
    tp.add_argument("--smoke", action="store_true",
                    help="small fast run: 50k flows, 256 pairs, two "
                         "protocols")
    tp.set_defaults(fn=cmd_traffic_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
