"""Packet header size models.

Section 5.4.1 motivates the handle mechanism by "the header-length
overhead of the source route in the Policy Route packet header".  These
functions model the three header styles so E6 can price them:

* plain hop-by-hop datagram: fixed header, no route, no handle;
* per-packet source route: fixed header + 2 bytes per AD on the route
  (+ a hop cursor);
* handle-based: the setup packet pays for route + term citations once,
  then every data packet carries a 4-byte handle.
"""

from __future__ import annotations

from repro.protocols.orwg.messages import FLOW_SPEC_BYTES, HANDLE_BYTES
from repro.simul.messages import AD_ID_BYTES, HEADER_BYTES


def hop_by_hop_header_bytes() -> int:
    """Header of a plain datagram forwarded by per-hop tables."""
    return HEADER_BYTES + FLOW_SPEC_BYTES


def source_route_header_bytes(route_len: int) -> int:
    """Header of a datagram carrying its full source route."""
    if route_len < 1:
        raise ValueError("route must have at least one AD")
    return HEADER_BYTES + FLOW_SPEC_BYTES + AD_ID_BYTES * route_len + 1


def handle_header_bytes() -> int:
    """Header of a data packet riding an established handle."""
    return HEADER_BYTES + FLOW_SPEC_BYTES + HANDLE_BYTES


def setup_header_bytes(route_len: int, num_transit_terms: int) -> int:
    """Header of the one-time setup packet (route + PT citations)."""
    if route_len < 1:
        raise ValueError("route must have at least one AD")
    from repro.policy.terms import TermRef

    ref_bytes = TermRef(0, 0).size_bytes()
    return (
        HEADER_BYTES
        + HANDLE_BYTES
        + FLOW_SPEC_BYTES
        + AD_ID_BYTES * route_len
        + 1
        + ref_bytes * num_transit_terms
    )


def amortized_handle_bytes(route_len: int, num_transit_terms: int, packets: int) -> float:
    """Mean header bytes per packet for setup + ``packets`` data packets."""
    if packets < 1:
        raise ValueError("need at least one packet")
    setup = setup_header_bytes(route_len, num_transit_terms)
    return (setup + packets * handle_header_bytes()) / packets
