"""Data-plane substrate: packet forwarding over converged tables.

* :mod:`~repro.forwarding.dataplane` — walk flows through a converged
  protocol's forwarding decisions with per-hop policy enforcement, loop
  and blackhole detection (transit ADs "can concentrate on assuring that
  routes crossing [them] conform to [their] own policies", Section 5.4).
* :mod:`~repro.forwarding.headers` — byte-accurate packet header models
  for the three data-plane styles E6 compares: plain hop-by-hop
  datagrams, per-packet source routes, and setup + handle.
"""

from repro.forwarding.dataplane import (
    DataPlaneReport,
    ForwardingOutcome,
    forward_flow,
    run_traffic,
)
from repro.forwarding.headers import (
    handle_header_bytes,
    hop_by_hop_header_bytes,
    setup_header_bytes,
    source_route_header_bytes,
)

__all__ = [
    "DataPlaneReport",
    "ForwardingOutcome",
    "forward_flow",
    "handle_header_bytes",
    "hop_by_hop_header_bytes",
    "run_traffic",
    "setup_header_bytes",
    "source_route_header_bytes",
]
