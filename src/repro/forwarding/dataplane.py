"""Forward flows over a converged protocol's decisions, with enforcement.

This is the packet's-eye view of a routing architecture: given converged
control state, what actually happens to traffic?  Each hop:

* must have a live link to the next hop (else: blackhole);
* if ``enforce_policy`` is set, each *transit* AD checks its own Policy
  Terms against the actual (prev, next) hops and drops violating traffic
  -- the paper's position that a transit AD enforces its own policies
  regardless of who computed the route;
* loops are detected by revisit.

The resulting delivery/drop/loop statistics are the data-plane view of
availability (E3) and of the consistency requirements of hop-by-hop
schemes (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.adgraph.ad import ADId
from repro.policy.flows import FlowSpec
from repro.protocols.base import ForwardingMode, RoutingProtocol


class HopDecisionCache:
    """Per-run memo of transit policy verdicts.

    The policy database already memoizes decisions internally, but every
    hit still pays a method call into the engine plus its key assembly.
    A traffic run asks the same (transit, prev, next, flow) question for
    every packet of a flow class; this cache collapses those repeats to
    one local dict probe.  Opt-in (see :func:`run_traffic`): the default
    per-packet path stays byte-identical, because it is the oracle the
    compiled FIBs of :mod:`repro.traffic` are validated against.
    """

    __slots__ = ("_permits", "_memo", "hits", "misses")

    def __init__(
        self, permits: Callable[[ADId, FlowSpec, ADId, ADId], bool]
    ) -> None:
        self._permits = permits
        self._memo: Dict[Tuple[ADId, ADId, ADId, FlowSpec], bool] = {}
        self.hits = 0
        self.misses = 0

    def permits(
        self, transit: ADId, flow: FlowSpec, prev: ADId, nxt: ADId
    ) -> bool:
        key = (transit, prev, nxt, flow)
        cached = self._memo.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        verdict = self._permits(transit, flow, prev, nxt)
        self._memo[key] = verdict
        return verdict


@dataclass(frozen=True)
class ForwardingOutcome:
    """What happened to one flow's packet."""

    flow: FlowSpec
    delivered: bool
    path: Tuple[ADId, ...]
    reason: str = ""

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


def _check_path(
    protocol: RoutingProtocol,
    flow: FlowSpec,
    path: Sequence[ADId],
    enforce_policy: bool,
    cache: Optional[HopDecisionCache] = None,
) -> ForwardingOutcome:
    """Validate a concrete path hop by hop, as the packet would.

    Per-transit enforcement rides the policy database's memoized decision
    engine: a packet following a freshly synthesised route re-asks exactly
    the questions synthesis just answered, so enforcement is cache hits.
    """
    graph = protocol.graph
    permits = cache.permits if cache else protocol.policies.transit_permits
    for i, (a, b) in enumerate(zip(path, path[1:])):
        if not graph.has_link(a, b) or not graph.link(a, b).up:
            return ForwardingOutcome(
                flow, False, tuple(path[: i + 1]), f"no live link {a}-{b}"
            )
        if enforce_policy and i > 0:
            transit, prev, nxt = a, path[i - 1], b
            if not permits(transit, flow, prev, nxt):
                return ForwardingOutcome(
                    flow,
                    False,
                    tuple(path[: i + 1]),
                    f"AD {transit} policy drop",
                )
    return ForwardingOutcome(flow, True, tuple(path))


def forward_flow(
    protocol: RoutingProtocol,
    flow: FlowSpec,
    enforce_policy: bool = True,
    cache: Optional[HopDecisionCache] = None,
) -> ForwardingOutcome:
    """Send one (modelled) packet for ``flow`` and report its fate.

    ``cache`` (optional) memoizes per-hop policy verdicts across calls;
    verdicts are unchanged (policies are static), only the lookup cost
    drops.  With ``cache=None`` the path is the byte-identical legacy
    oracle.
    """
    if flow.src == flow.dst:
        return ForwardingOutcome(flow, True, (flow.src,))
    if protocol.mode is ForwardingMode.SOURCE:
        path = protocol.source_route(flow)
        if path is None:
            return ForwardingOutcome(flow, False, (flow.src,), "no source route")
        return _check_path(protocol, flow, path, enforce_policy, cache)
    # Hop-by-hop: follow live decisions, enforcing policy at each transit.
    path: List[ADId] = [flow.src]
    seen = {flow.src}
    prev: Optional[ADId] = None
    current = flow.src
    graph = protocol.graph
    permits = cache.permits if cache else protocol.policies.transit_permits
    for _ in range(graph.num_ads):
        nxt = protocol.next_hop(current, flow, prev)
        if nxt is None:
            return ForwardingOutcome(flow, False, tuple(path), f"no route at AD {current}")
        if not graph.has_link(current, nxt) or not graph.link(current, nxt).up:
            return ForwardingOutcome(
                flow, False, tuple(path), f"no live link {current}-{nxt}"
            )
        if enforce_policy and prev is not None:
            if not permits(current, flow, prev, nxt):
                return ForwardingOutcome(
                    flow, False, tuple(path), f"AD {current} policy drop"
                )
        if nxt in seen:
            return ForwardingOutcome(
                flow, False, tuple(path) + (nxt,), "forwarding loop"
            )
        path.append(nxt)
        seen.add(nxt)
        if nxt == flow.dst:
            return ForwardingOutcome(flow, True, tuple(path))
        prev, current = current, nxt
    return ForwardingOutcome(flow, False, tuple(path), "hop budget exceeded")


@dataclass
class DataPlaneReport:
    """Aggregate data-plane behaviour over a traffic sample."""

    outcomes: List[ForwardingOutcome] = field(default_factory=list)

    @property
    def n_flows(self) -> int:
        return len(self.outcomes)

    @property
    def delivered(self) -> int:
        return sum(1 for o in self.outcomes if o.delivered)

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.n_flows if self.n_flows else 1.0

    @property
    def loops(self) -> int:
        return sum(1 for o in self.outcomes if o.reason == "forwarding loop")

    @property
    def policy_drops(self) -> int:
        return sum(1 for o in self.outcomes if "policy drop" in o.reason)

    @property
    def blackholes(self) -> int:
        return sum(
            1
            for o in self.outcomes
            if not o.delivered and "no live link" in o.reason
        )

    def mean_hops(self) -> float:
        delivered = [o.hops for o in self.outcomes if o.delivered]
        return sum(delivered) / len(delivered) if delivered else 0.0


def run_traffic(
    protocol: RoutingProtocol,
    flows: Sequence[FlowSpec],
    enforce_policy: bool = True,
    memoize: bool = False,
) -> DataPlaneReport:
    """Forward a whole traffic sample and aggregate the outcomes.

    ``memoize=True`` shares one :class:`HopDecisionCache` across the
    whole sample -- same outcomes, fewer policy-engine round-trips; the
    default stays the byte-identical per-packet oracle.
    """
    cache = (
        HopDecisionCache(protocol.policies.transit_permits)
        if memoize and enforce_policy
        else None
    )
    report = DataPlaneReport()
    for flow in flows:
        report.outcomes.append(
            forward_flow(protocol, flow, enforce_policy, cache)
        )
    return report
