"""The measured Table 1.

Runs every design point's implementation on a common topology + policy
scenario + flow sample and collects the properties the paper argues
about qualitatively:

* convergence cost (control messages / bytes to initial quiescence);
* route availability vs. ground truth, and illegal routes produced;
* forwarding loops observed;
* source control (does the source pick the whole route?);
* per-node computation and state.

Experiment E1 renders this next to the paper's verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.adgraph.graph import InterADGraph
from repro.core.design_space import (
    DesignPoint,
    enumerate_design_space,
    verdict_for,
)
from repro.core.evaluation import evaluate_availability, sample_flows
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.protocols.base import ForwardingMode
from repro.protocols.registry import design_point_of, make_protocol


@dataclass(frozen=True)
class ScoreRow:
    """Measured properties of one design point."""

    point: DesignPoint
    protocol: str
    messages: int
    bytes: int
    convergence_time: float
    availability: float
    illegal_routes: int
    forwarding_loops: int
    source_control: bool
    computations: int
    max_rib: int
    quiesced: bool = True

    @property
    def paper_verdict(self):
        return verdict_for(self.point)


def score_design_point(
    point: DesignPoint,
    graph: InterADGraph,
    policies: PolicyDatabase,
    flows: Sequence[FlowSpec],
) -> ScoreRow:
    """Run one design point's implementation and measure it."""
    protocol = make_protocol(point, graph.copy(), policies.copy())
    result = protocol.converge()
    report = evaluate_availability(
        protocol.graph, protocol.policies, flows, protocol.find_route
    )
    metrics = protocol.network.metrics
    return ScoreRow(
        point=point,
        protocol=protocol.name,
        messages=result.messages,
        bytes=result.bytes,
        convergence_time=result.time,
        availability=report.availability,
        illegal_routes=report.n_illegal,
        forwarding_loops=protocol.forwarding_loops,
        source_control=protocol.mode is ForwardingMode.SOURCE,
        computations=sum(metrics.computations.values()),
        max_rib=protocol.max_rib_size(),
        quiesced=result.quiesced,
    )


def build_scorecard(
    graph: InterADGraph,
    policies: PolicyDatabase,
    flows: Optional[Sequence[FlowSpec]] = None,
    num_flows: int = 60,
    seed: int = 0,
) -> List[ScoreRow]:
    """Score all eight design points on a common scenario."""
    if flows is None:
        flows = sample_flows(graph, num_flows, seed=seed)
    return [
        score_design_point(point, graph, policies, flows)
        for point in enumerate_design_space()
    ]


def score_rows_from_records(records: Sequence) -> List[ScoreRow]:
    """Reduce harness :class:`~repro.harness.record.RunRecord` telemetry
    to score rows.

    The experiment harness measures the same quantities
    :func:`score_design_point` does (initial-convergence episode, route
    quality, final computation/state counters); this adapter lets E1
    render its table from persisted run records instead of re-running.
    """
    rows: List[ScoreRow] = []
    for record in records:
        point = design_point_of(record.cell["protocol"])
        if point is None:
            raise ValueError(
                f"{record.cell['protocol']!r} is a baseline, not a Table 1 cell"
            )
        quality = record.route_quality
        if quality is None:
            raise ValueError(
                f"record for {record.cell['protocol']!r} carries no "
                "route_quality; run the experiment with evaluate=True"
            )
        rows.append(
            ScoreRow(
                point=point,
                protocol=record.cell["protocol"],
                messages=record.initial.messages,
                bytes=record.initial.bytes,
                convergence_time=record.initial.time,
                availability=quality["availability"],
                illegal_routes=quality["n_illegal"],
                forwarding_loops=quality["forwarding_loops"],
                source_control=quality["source_control"],
                computations=sum(record.computations.values()),
                max_rib=record.state["max_rib"],
                quiesced=record.initial.quiesced,
            )
        )
    return rows


def render_scorecard(rows: Sequence[ScoreRow]) -> str:
    """ASCII rendering of the measured Table 1."""
    from repro.analysis.tables import Table

    table = Table(
        "design point",
        "impl",
        "msgs",
        "KB",
        "t_conv",
        "avail",
        "illegal",
        "loops",
        "src ctl",
        "comps",
        "max RIB",
        title="Table 1 (measured): design space for inter-AD routing",
    )
    for row in rows:
        table.add(
            row.point.label,
            row.protocol,
            row.messages,
            f"{row.bytes / 1024:.1f}",
            f"{row.convergence_time:.0f}" + ("" if row.quiesced else "*"),
            f"{row.availability:.2f}",
            row.illegal_routes,
            row.forwarding_loops,
            "yes" if row.source_control else "no",
            row.computations,
            row.max_rib,
        )
    text = table.render()
    if not all(row.quiesced for row in rows):
        text += "\n(*) did not quiesce within the event budget; cost truncated"
    return text
