"""Policy route synthesis.

This is the computation the paper identifies as "probably the most
difficult aspect" of the recommended architecture (Section 6): given the
flooded topology + Policy Term database, find a legal, loop-free,
preference-optimal AD route for a flow.

Because Policy Terms constrain each traversal by the *previous* and *next*
AD, shortest-path optimality over plain ADs does not hold; instead we run
Dijkstra over the **state graph** whose states are ``(current AD, previous
AD)`` pairs.  That search is polynomial and complete over *walks*; legal
routes must additionally be loop-free, so when the best walk revisits an
AD (rare, but possible when entry constraints force detours) we fall back
to an exact branch-and-bound search over simple paths.  The fallback is
also used when hard selection criteria (hop bounds, required ADs) reject
the Dijkstra result.  Policy routing with such constraints is NP-hard in
general, which is precisely the paper's point that "precomputation of all
policy routes in a large internet is computationally intractable"; the
bounded fallback makes the trade-off explicit and measurable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.core.routes import Route
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.legality import is_legal_path, path_metric
from repro.policy.selection import OPEN_SELECTION, RouteSelectionPolicy

#: Default expansion budget for the exact fallback search.
DEFAULT_FALLBACK_BUDGET = 200_000

_LinkKey = Tuple[ADId, ADId]
_State = Tuple[ADId, Optional[ADId]]


@dataclass
class SynthesisStats:
    """Work counters for route synthesis (the E10 cost metrics)."""

    dijkstra_runs: int = 0
    fallback_runs: int = 0
    states_expanded: int = 0
    routes_found: int = 0
    routes_failed: int = 0

    def merge(self, other: "SynthesisStats") -> None:
        self.dijkstra_runs += other.dijkstra_runs
        self.fallback_runs += other.fallback_runs
        self.states_expanded += other.states_expanded
        self.routes_found += other.routes_found
        self.routes_failed += other.routes_failed


def route_charges(
    graph: InterADGraph,
    policies: PolicyDatabase,
    path: Tuple[ADId, ...],
    flow: FlowSpec,
) -> float:
    """Total advertised charge of the PTs a legal path relies on."""
    total = 0.0
    for i in range(1, len(path) - 1):
        charge = policies.transit_charge(path[i], flow, path[i - 1], path[i + 1])
        if charge is None:
            raise ValueError(f"path {path} is not legal at AD {path[i]}")
        total += charge
    return total


# Per-relaxation legality+cost queries inside the searches below go
# through ``PolicyDatabase.transit_charge`` (hoisted to a local ``transit``
# in each inner loop): ``None`` means the traversal is refused, a float is
# the advertised charge.  The flow's source originates its own traffic and
# needs no transit permission, hence the ``u != src`` guards.  The call
# rides the database's indexed, version-memoized decision engine, so
# re-deriving the same route (the LS-hop-by-hop replication, k-alternative
# re-runs, availability sweeps) costs a dictionary hit per edge.


def _widest_constrained_search(
    graph: InterADGraph,
    policies: PolicyDatabase,
    flow: FlowSpec,
    selection: RouteSelectionPolicy,
    excluded_links: FrozenSet[_LinkKey],
    stats: Optional[SynthesisStats],
) -> Optional[Tuple[ADId, ...]]:
    """Widest legal walk (max-min bandwidth) over (AD, previous) states.

    The bottleneck analogue of the constrained Dijkstra: labels carry the
    narrowest link seen so far and the search greedily extends the widest
    frontier.  Charges are not folded into the optimisation (bandwidth
    and money do not compose); selection hard criteria still apply.
    """
    if stats is not None:
        stats.dijkstra_runs += 1
    src, dst = flow.src, flow.dst
    if src == dst:
        return (src,)
    metric = flow.qos.metric

    width: Dict[_State, float] = {(src, None): float("inf")}
    parent: Dict[_State, Optional[_State]] = {(src, None): None}
    heap: List[Tuple[float, ADId, Optional[ADId]]] = [(-float("inf"), src, None)]
    expanded = 0
    goal: Optional[_State] = None
    transit = policies.transit_charge

    while heap:
        neg_w, u, p = heapq.heappop(heap)
        w = -neg_w
        state = (u, p)
        if w < width.get(state, 0.0):
            continue
        expanded += 1
        if u == dst:
            goal = state
            break
        for link in graph.links_of(u):
            v = link.other(u)
            if v == p or v == src:
                continue
            if (min(u, v), max(u, v)) in excluded_links:
                continue
            if v != dst and not selection.permits_node(v):
                continue
            if u != src and transit(u, flow, p, v) is None:
                continue
            nw = min(w, link.metric(metric))
            nstate = (v, u)
            if nw > width.get(nstate, 0.0):
                width[nstate] = nw
                parent[nstate] = state
                heapq.heappush(heap, (-nw, v, u))

    if stats is not None:
        stats.states_expanded += expanded
    if goal is None:
        return None
    path: List[ADId] = []
    cursor: Optional[_State] = goal
    while cursor is not None:
        path.append(cursor[0])
        cursor = parent[cursor]
    path.reverse()
    return tuple(path)


def constrained_dijkstra(
    graph: InterADGraph,
    policies: PolicyDatabase,
    flow: FlowSpec,
    selection: RouteSelectionPolicy = OPEN_SELECTION,
    excluded_links: FrozenSet[_LinkKey] = frozenset(),
    stats: Optional[SynthesisStats] = None,
) -> Optional[Tuple[ADId, ...]]:
    """Cheapest legal *walk* from flow source to destination.

    Runs Dijkstra over ``(current, previous)`` states with edge weights
    ``metric + charge_weight * transit charge``; bottleneck QOS classes
    dispatch to the widest-path variant instead.  The result is optimal
    over walks; callers must verify loop-freeness (a walk that is a simple
    path is an optimal legal route over paths too, since every path is a
    walk).

    Returns ``None`` when no legal walk exists -- which also proves no
    legal simple path exists.
    """
    if flow.qos.is_bottleneck:
        return _widest_constrained_search(
            graph, policies, flow, selection, excluded_links, stats
        )
    if stats is not None:
        stats.dijkstra_runs += 1
    src, dst = flow.src, flow.dst
    if src == dst:
        return (src,)
    metric = flow.qos.metric

    dist: Dict[_State, float] = {(src, None): 0.0}
    parent: Dict[_State, Optional[_State]] = {(src, None): None}
    heap: List[Tuple[float, ADId, Optional[ADId]]] = [(0.0, src, None)]
    expanded = 0
    goal: Optional[_State] = None
    transit = policies.transit_charge

    while heap:
        d, u, p = heapq.heappop(heap)
        state = (u, p)
        if d > dist.get(state, float("inf")):
            continue
        expanded += 1
        if u == dst:
            goal = state
            break
        for link in graph.links_of(u):
            v = link.other(u)
            if v == p or v == src:
                continue
            if (min(u, v), max(u, v)) in excluded_links:
                continue
            if v != dst and not selection.permits_node(v):
                continue
            charge = 0.0 if u == src else transit(u, flow, p, v)
            if charge is None:
                continue
            weight = link.metric(metric) + selection.charge_weight * charge
            nd = d + weight
            nstate = (v, u)
            if nd < dist.get(nstate, float("inf")):
                dist[nstate] = nd
                parent[nstate] = state
                heapq.heappush(heap, (nd, v, u))

    if stats is not None:
        stats.states_expanded += expanded
    if goal is None:
        return None
    path: List[ADId] = []
    cursor: Optional[_State] = goal
    while cursor is not None:
        path.append(cursor[0])
        cursor = parent[cursor]
    path.reverse()
    return tuple(path)


def _widest_exhaustive(
    graph: InterADGraph,
    policies: PolicyDatabase,
    flow: FlowSpec,
    selection: RouteSelectionPolicy,
    excluded_links: FrozenSet[_LinkKey],
    budget: int,
    stats: Optional[SynthesisStats],
) -> Optional[Tuple[ADId, ...]]:
    """Exact widest legal simple path (bottleneck branch-and-bound)."""
    if stats is not None:
        stats.fallback_runs += 1
    src, dst = flow.src, flow.dst
    if src == dst:
        return (src,)
    metric = flow.qos.metric
    max_hops = selection.max_hops or graph.num_ads

    best_path: Optional[Tuple[ADId, ...]] = None
    best_width = 0.0
    heap: List[Tuple[float, Tuple[ADId, ...]]] = [(-float("inf"), (src,))]
    expanded = 0
    transit = policies.transit_charge
    while heap and expanded < budget:
        neg_w, path = heapq.heappop(heap)
        w = -neg_w
        if w <= best_width:
            continue  # width only shrinks as the path grows
        expanded += 1
        u = path[-1]
        p = path[-2] if len(path) > 1 else None
        if len(path) - 1 >= max_hops:
            continue
        for link in graph.links_of(u):
            v = link.other(u)
            if v in path:
                continue
            if (min(u, v), max(u, v)) in excluded_links:
                continue
            if v != dst and not selection.permits_node(v):
                continue
            if u != src and transit(u, flow, p, v) is None:
                continue
            nw = min(w, link.metric(metric))
            npath = path + (v,)
            if v == dst:
                if nw > best_width and selection.acceptable(npath):
                    best_width = nw
                    best_path = npath
            elif nw > best_width:
                heapq.heappush(heap, (-nw, npath))
    if stats is not None:
        stats.states_expanded += expanded
    return best_path


def exhaustive_best_path(
    graph: InterADGraph,
    policies: PolicyDatabase,
    flow: FlowSpec,
    selection: RouteSelectionPolicy = OPEN_SELECTION,
    excluded_links: FrozenSet[_LinkKey] = frozenset(),
    budget: int = DEFAULT_FALLBACK_BUDGET,
    stats: Optional[SynthesisStats] = None,
) -> Optional[Tuple[ADId, ...]]:
    """Exact best legal *simple path*, by branch-and-bound over paths.

    Complete and optimal within the expansion ``budget``; exponential in
    the worst case (the problem is NP-hard with required-AD and hop
    constraints), so the budget caps work and the best path found so far
    is returned when it runs out.  Bottleneck QOS classes dispatch to the
    widest-path variant.
    """
    if flow.qos.is_bottleneck:
        return _widest_exhaustive(
            graph, policies, flow, selection, excluded_links, budget, stats
        )
    if stats is not None:
        stats.fallback_runs += 1
    src, dst = flow.src, flow.dst
    if src == dst:
        return (src,)
    metric = flow.qos.metric
    max_hops = selection.max_hops or graph.num_ads

    best_path: Optional[Tuple[ADId, ...]] = None
    best_cost = float("inf")
    # Heap entries: (cost so far, path).  Tuples of ints compare fine.
    heap: List[Tuple[float, Tuple[ADId, ...]]] = [(0.0, (src,))]
    expanded = 0
    transit = policies.transit_charge

    while heap and expanded < budget:
        cost, path = heapq.heappop(heap)
        if cost >= best_cost:
            continue
        expanded += 1
        u = path[-1]
        p = path[-2] if len(path) > 1 else None
        if len(path) - 1 >= max_hops:
            continue
        for link in graph.links_of(u):
            v = link.other(u)
            if v in path:
                continue
            if (min(u, v), max(u, v)) in excluded_links:
                continue
            if v != dst and not selection.permits_node(v):
                continue
            charge = 0.0 if u == src else transit(u, flow, p, v)
            if charge is None:
                continue
            ncost = cost + link.metric(metric) + selection.charge_weight * charge
            npath = path + (v,)
            if v == dst:
                if ncost < best_cost and selection.acceptable(npath):
                    best_cost = ncost
                    best_path = npath
            elif ncost < best_cost:
                heapq.heappush(heap, (ncost, npath))

    if stats is not None:
        stats.states_expanded += expanded
    return best_path


def _needs_fallback(
    path: Optional[Tuple[ADId, ...]], selection: RouteSelectionPolicy
) -> bool:
    """Whether the Dijkstra result must be re-derived exactly."""
    if path is None:
        # No legal walk exists => no legal path exists, unless required-AD
        # criteria were never consulted (they are post-hoc): requirement
        # sets don't create paths, so None is final.
        return False
    if len(set(path)) != len(path):
        return True
    return not selection.acceptable(path)


def synthesize_route(
    graph: InterADGraph,
    policies: PolicyDatabase,
    flow: FlowSpec,
    selection: RouteSelectionPolicy = OPEN_SELECTION,
    excluded_links: FrozenSet[_LinkKey] = frozenset(),
    fallback_budget: int = DEFAULT_FALLBACK_BUDGET,
    stats: Optional[SynthesisStats] = None,
) -> Optional[Route]:
    """Synthesise the preferred legal route for a flow, or ``None``.

    Fast path: constrained Dijkstra over (AD, previous) states.  Exact
    fallback when the walk optimum is loopy or violates hard selection
    criteria.  ``require_ads`` criteria always validate post-hoc, so a
    flow whose only legal routes miss a required AD yields ``None``.
    """
    path = constrained_dijkstra(
        graph, policies, flow, selection, excluded_links, stats
    )
    if _needs_fallback(path, selection):
        path = exhaustive_best_path(
            graph, policies, flow, selection, excluded_links, fallback_budget, stats
        )
    if path is None or not selection.acceptable(path):
        if stats is not None:
            stats.routes_failed += 1
        return None
    if stats is not None:
        stats.routes_found += 1
    return Route(
        path=path,
        flow=flow,
        cost=path_metric(graph, path, flow.qos),
        charges=route_charges(graph, policies, path, flow),
    )


def k_alternative_routes(
    graph: InterADGraph,
    policies: PolicyDatabase,
    flow: FlowSpec,
    k: int = 3,
    selection: RouteSelectionPolicy = OPEN_SELECTION,
    stats: Optional[SynthesisStats] = None,
) -> List[Route]:
    """Up to ``k`` distinct legal routes, best first (Yen-style pruning).

    The best route is computed, then each of its links is excluded in turn
    and synthesis re-run, accumulating distinct alternatives.  Source
    routing makes multiple routes per destination *feasible* without
    replicating routing tables (Section 5.4) -- this is the mechanism.
    """
    if k < 1:
        raise ValueError("k must be positive")
    best = synthesize_route(graph, policies, flow, selection, stats=stats)
    if best is None:
        return []
    found: Dict[Tuple[ADId, ...], Route] = {best.path: best}
    for a, b in zip(best.path, best.path[1:]):
        if len(found) >= k:
            break
        excluded = frozenset({(min(a, b), max(a, b))})
        alt = synthesize_route(
            graph, policies, flow, selection, excluded_links=excluded, stats=stats
        )
        if alt is not None and alt.path not in found:
            found[alt.path] = alt
    ranked = sorted(
        found.values(),
        key=lambda r: selection.rank_key(graph, r.path, flow.qos, r.charges),
    )
    return ranked[:k]


class RouteSynthesizer:
    """A Route Server's synthesis engine: graph + policies + counters.

    One synthesiser per ORWG Route Server (or per evaluation run); all
    queries funnel through it so work is accounted centrally.
    """

    def __init__(
        self,
        graph: InterADGraph,
        policies: PolicyDatabase,
        fallback_budget: int = DEFAULT_FALLBACK_BUDGET,
    ) -> None:
        self.graph = graph
        self.policies = policies
        self.fallback_budget = fallback_budget
        self.stats = SynthesisStats()

    def route(
        self,
        flow: FlowSpec,
        selection: RouteSelectionPolicy = OPEN_SELECTION,
    ) -> Optional[Route]:
        """Best legal route for a flow, or ``None``."""
        return synthesize_route(
            self.graph,
            self.policies,
            flow,
            selection,
            fallback_budget=self.fallback_budget,
            stats=self.stats,
        )

    def k_routes(
        self,
        flow: FlowSpec,
        k: int = 3,
        selection: RouteSelectionPolicy = OPEN_SELECTION,
    ) -> List[Route]:
        """Up to ``k`` alternatives, best first."""
        return k_alternative_routes(
            self.graph, self.policies, flow, k, selection, stats=self.stats
        )

    def verify(self, route: Route) -> bool:
        """Re-check a route's legality against current state."""
        return is_legal_path(self.graph, self.policies, route.path, route.flow)
