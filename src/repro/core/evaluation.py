"""Ground-truth legality and route-availability evaluation.

The paper's sharpest quantitative claim (Sections 5.1-5.4) is about
*route availability*: hop-by-hop architectures can leave a source with no
route "when in fact a legal route exists", while the link-state
source-routing architecture "allows an AD to discover a valid route if
one in fact exists".  This module provides the ground truth those claims
are measured against (experiment E3):

* :func:`legal_route_exists` — exact existence of a legal loop-free route
  (walk relaxation first, exact path search as tie-breaker);
* :func:`evaluate_availability` — run any protocol's route finder over a
  flow sample and compare with ground truth, also verifying that every
  route the protocol *does* return is actually legal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.adgraph.ad import ADId
from repro.adgraph.graph import InterADGraph
from repro.core.routes import Route
from repro.core.synthesis import constrained_dijkstra, synthesize_route
from repro.policy.database import PolicyDatabase
from repro.policy.flows import FlowSpec
from repro.policy.legality import is_legal_path
from repro.policy.qos import QOS
from repro.policy.uci import UCI

#: Expansion budget for the exact existence search.
DEFAULT_EXISTENCE_BUDGET = 500_000

RouteFinder = Callable[[FlowSpec], Optional[Union[Route, Sequence[ADId]]]]


def _exists_simple_path(
    graph: InterADGraph,
    policies: PolicyDatabase,
    flow: FlowSpec,
    budget: int,
) -> Optional[bool]:
    """Exact DFS for any legal simple path; ``None`` if budget exhausted.

    Per-edge legality rides the database's memoized decision engine, so
    the exponential search re-asks mostly cached questions -- the walk
    relaxation that preceded it has already populated the cache for the
    same flow.
    """
    src, dst = flow.src, flow.dst
    stack: List[Tuple[ADId, ...]] = [(src,)]
    expanded = 0
    permits = policies.transit_permits
    while stack:
        if expanded >= budget:
            return None
        path = stack.pop()
        expanded += 1
        u = path[-1]
        p = path[-2] if len(path) > 1 else None
        for link in graph.links_of(u):
            v = link.other(u)
            if v in path:
                continue
            if u != src and not permits(u, flow, p, v):
                continue
            if v == dst:
                return True
            stack.append(path + (v,))
    return False


def legal_route_exists(
    graph: InterADGraph,
    policies: PolicyDatabase,
    flow: FlowSpec,
    budget: int = DEFAULT_EXISTENCE_BUDGET,
) -> Optional[bool]:
    """Whether any legal loop-free route exists for ``flow``.

    Decision procedure: the cheap walk relaxation first (no legal walk
    implies no legal path; a loop-free optimal walk *is* a legal path),
    exact search only in the ambiguous remainder.  Returns ``None`` only
    when the exact search exceeds its budget (reported, never guessed).
    """
    if flow.src == flow.dst:
        return True
    walk = constrained_dijkstra(graph, policies, flow)
    if walk is None:
        return False
    if len(set(walk)) == len(walk):
        return True
    return _exists_simple_path(graph, policies, flow, budget)


def sample_flows(
    graph: InterADGraph,
    n: int,
    seed: int = 0,
    qos_choices: Sequence[QOS] = (QOS.DEFAULT,),
    uci_choices: Sequence[UCI] = (UCI.DEFAULT,),
    endpoints: str = "stub",
) -> List[FlowSpec]:
    """Sample ``n`` distinct-endpoint flows.

    ``endpoints`` selects the candidate pool: ``"stub"`` (traffic
    originates and terminates at stub/multi-homed/hybrid edge ADs, the
    realistic case) or ``"all"``.
    """
    if endpoints == "stub":
        pool = [a.ad_id for a in graph.ads() if a.level.rank == 0]
        if len(pool) < 2:
            pool = graph.ad_ids()
    elif endpoints == "all":
        pool = graph.ad_ids()
    else:
        raise ValueError(f"unknown endpoint pool {endpoints!r}")
    rng = random.Random(seed)
    flows = []
    for _ in range(n):
        src, dst = rng.sample(pool, 2)
        flows.append(
            FlowSpec(
                src=src,
                dst=dst,
                qos=rng.choice(list(qos_choices)),
                uci=rng.choice(list(uci_choices)),
                hour=rng.randrange(24),
            )
        )
    return flows


@dataclass
class AvailabilityReport:
    """Outcome of evaluating a route finder against ground truth.

    Attributes:
        n_flows: Flows evaluated.
        n_existing: Flows for which a legal route exists (ground truth).
        n_found: Flows for which the finder returned a route.
        n_found_legal: Found routes that are actually legal.
        n_illegal: Found routes that violate some policy (protocol bug or
            architectural unsoundness -- e.g. stale hop-by-hop state).
        n_undecided: Flows whose ground truth exceeded the search budget.
        stretches: Per-flow cost ratio found/optimal, where both known.
    """

    n_flows: int = 0
    n_existing: int = 0
    n_found: int = 0
    n_found_legal: int = 0
    n_illegal: int = 0
    n_undecided: int = 0
    stretches: List[float] = field(default_factory=list)

    @property
    def availability(self) -> float:
        """Fraction of existing legal routes the finder discovered."""
        if self.n_existing == 0:
            return 1.0
        return self.n_found_legal / self.n_existing

    @property
    def mean_stretch(self) -> float:
        """Mean cost inflation over the optimal legal route."""
        if not self.stretches:
            return 1.0
        return sum(self.stretches) / len(self.stretches)


def evaluate_availability(
    graph: InterADGraph,
    policies: PolicyDatabase,
    flows: Sequence[FlowSpec],
    finder: RouteFinder,
    budget: int = DEFAULT_EXISTENCE_BUDGET,
) -> AvailabilityReport:
    """Measure a route finder's availability and stretch vs ground truth."""
    report = AvailabilityReport(n_flows=len(flows))
    for flow in flows:
        exists = legal_route_exists(graph, policies, flow, budget)
        if exists is None:
            report.n_undecided += 1
            continue
        if exists:
            report.n_existing += 1
        result = finder(flow)
        if result is None:
            continue
        path = tuple(result.path if isinstance(result, Route) else result)
        report.n_found += 1
        if not is_legal_path(graph, policies, path, flow):
            report.n_illegal += 1
            continue
        report.n_found_legal += 1
        optimal = synthesize_route(graph, policies, flow)
        if optimal is not None and optimal.cost > 0:
            from repro.policy.legality import path_metric

            found_cost = path_metric(graph, path, flow.qos)
            if flow.qos.is_bottleneck:
                # Wider is better: stretch >= 1 means the found route's
                # bottleneck is narrower than the optimum's.
                if found_cost > 0:
                    report.stretches.append(optimal.cost / found_cost)
            else:
                report.stretches.append(found_cost / optimal.cost)
    return report
